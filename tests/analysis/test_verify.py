"""The reproduction self-check must pass in full."""

import pytest

from repro.analysis import verify


@pytest.mark.parametrize("check", verify.CHECKS, ids=lambda c: c.name)
def test_claim_holds(check):
    assert check.fn(), f"claim failed: {check.claim}"


def test_main_reports_success(capsys):
    assert verify.main([]) == 0
    out = capsys.readouterr().out
    assert "FAIL" not in out
    assert f"{len(verify.CHECKS)}/{len(verify.CHECKS)} claims hold" in out
