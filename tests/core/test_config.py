"""Tests for configuration types."""

import pytest

from repro.clampi.scores import AppScorePolicy, DefaultScorePolicy, LRUScorePolicy
from repro.core.config import CacheSpec, LCCConfig
from repro.utils.errors import ConfigError


class TestCacheSpec:
    def test_basic(self):
        spec = CacheSpec(offsets_bytes=100, adj_bytes=1000)
        assert isinstance(spec.make_policy(), DefaultScorePolicy)

    def test_score_policies(self):
        assert isinstance(CacheSpec(1, 1, score="degree").make_policy(),
                          AppScorePolicy)
        assert isinstance(CacheSpec(1, 1, score="lru").make_policy(),
                          LRUScorePolicy)

    def test_unknown_score_rejected(self):
        with pytest.raises(ConfigError):
            CacheSpec(1, 1, score="random")

    def test_negative_sizes_rejected(self):
        with pytest.raises(ConfigError):
            CacheSpec(-1, 10)

    def test_both_empty_rejected(self):
        with pytest.raises(ConfigError):
            CacheSpec(0, 0)

    def test_paper_split_shapes(self):
        n = 100_000
        spec = CacheSpec.paper_split(1 << 24, n)
        # C_offsets holds 0.4 n entries of 16 bytes.
        assert spec.offsets_bytes == int(0.4 * n) * 16
        assert spec.offsets_bytes + spec.adj_bytes == 1 << 24

    def test_paper_split_small_budget(self):
        spec = CacheSpec.paper_split(1024, 100_000)
        assert spec.offsets_bytes + spec.adj_bytes <= 1024 + 16
        assert spec.adj_bytes > 0

    def test_relative(self):
        spec = CacheSpec.relative(10_000, 0.1, 0.5)
        assert spec.offsets_bytes == 1000
        assert spec.adj_bytes == 5000


class TestLCCConfig:
    def test_defaults_valid(self):
        cfg = LCCConfig()
        assert cfg.nranks == 8
        assert cfg.method == "hybrid"
        assert cfg.cache is None

    def test_replace(self):
        cfg = LCCConfig(nranks=4)
        cfg2 = cfg.replace(nranks=16, method="ssi")
        assert cfg.nranks == 4
        assert cfg2.nranks == 16
        assert cfg2.method == "ssi"

    def test_validation(self):
        with pytest.raises(ConfigError):
            LCCConfig(nranks=0)
        with pytest.raises(ConfigError):
            LCCConfig(method="quantum")
        with pytest.raises(ConfigError):
            LCCConfig(partition="2d")
        with pytest.raises(ConfigError):
            LCCConfig(threads=0)
