"""Admission control: deterministic shedding, defer parity, accounting."""

import pytest

from repro.serve.engine import (
    AsyncServeConfig,
    AsyncServingEngine,
    answers_identical,
)
from repro.serve.scheduler import FIFOScheduler
from repro.serve.workload import WorkloadSpec, default_catalog, generate_workload


@pytest.fixture(scope="module")
def catalog():
    return default_catalog(scale=0.2)


@pytest.fixture(scope="module")
def flash_requests(catalog):
    # A flash crowd: half the workload stampedes one tenant's graph.
    return generate_workload(
        WorkloadSpec(n_queries=40, arrival_rate=4000.0, n_tenants=8,
                     graphs=tuple(catalog), kernels=("lcc",), seed=11,
                     update_mix=0.2).flash_crowd(), catalog)


def _cfg(**kw):
    return AsyncServeConfig(nranks=4, threads=2, pool_capacity=3, **kw)


@pytest.fixture(scope="module")
def unbounded(catalog, flash_requests):
    return AsyncServingEngine(catalog, _cfg(workers=4),
                              FIFOScheduler()).serve(flash_requests)


@pytest.fixture(scope="module")
def shed_outcome(catalog, flash_requests):
    return AsyncServingEngine(
        catalog, _cfg(workers=2, max_queue=4, overflow="shed"),
        FIFOScheduler()).serve(flash_requests)


class TestShed:
    def test_queue_full_rejection_deterministic(self, catalog,
                                                flash_requests,
                                                shed_outcome):
        """Shedding happens on the simulated clock: replays are exact."""
        again = AsyncServingEngine(
            catalog, _cfg(workers=2, max_queue=4, overflow="shed"),
            FIFOScheduler()).serve(flash_requests)
        assert again.rejected_qids() == shed_outcome.rejected_qids()
        assert again.digests() == shed_outcome.digests()

    def test_something_actually_shed(self, shed_outcome):
        assert shed_outcome.rejected
        assert shed_outcome.aggregates["n_rejected"] == len(
            shed_outcome.rejected)

    def test_rejected_never_served_never_digested(self, shed_outcome,
                                                  flash_requests):
        shed = shed_outcome.rejected_qids()
        assert not shed & set(shed_outcome.digests())
        served = ({r.qid for r in shed_outcome.records}
                  | {u.qid for u in shed_outcome.update_records})
        assert not shed & served
        assert shed | served == {r.qid for r in flash_requests}

    def test_reject_records_carry_arrival_state(self, shed_outcome,
                                                flash_requests):
        by_qid = {r.qid: r for r in flash_requests}
        for rej in shed_outcome.rejected:
            req = by_qid[rej.qid]
            assert rej.arrival == req.arrival
            assert rej.is_update == req.is_update
            assert rej.queue_depth >= 4  # the bound that triggered it


class TestDefer:
    def test_defer_keeps_full_parity(self, catalog, flash_requests,
                                     unbounded):
        """A bounded queue delays admission but answers are unchanged."""
        deferred = AsyncServingEngine(
            catalog, _cfg(workers=4, max_queue=5, overflow="defer"),
            FIFOScheduler()).serve(flash_requests)
        assert answers_identical(unbounded, deferred)
        assert not deferred.rejected
        assert deferred.aggregates["n_deferred"] > 0

    def test_deferred_keep_arrival_order_latency_accounting(
            self, catalog, flash_requests):
        """Latency counts from the true arrival, not delayed admission."""
        outcome = AsyncServingEngine(
            catalog, _cfg(workers=2, max_queue=3, overflow="defer"),
            FIFOScheduler()).serve(flash_requests)
        by_qid = {r.qid: r for r in flash_requests}
        deferred = [r for r in outcome.records if r.deferred]
        assert deferred  # the bound was actually hit
        for rec in outcome.records:
            assert rec.arrival == by_qid[rec.qid].arrival
            assert rec.start >= rec.arrival
            assert rec.latency == pytest.approx(rec.finish - rec.arrival)

    def test_deferred_promoted_in_arrival_order(self, catalog,
                                                flash_requests):
        """Freed slots refill oldest-first: a deferred request never
        starts after a *later-arriving* deferred request on the same
        session key (FIFO policy, one lock per key)."""
        outcome = AsyncServingEngine(
            catalog, _cfg(workers=2, max_queue=3, overflow="defer"),
            FIFOScheduler()).serve(flash_requests)
        by_key = {}
        for rec in sorted((r for r in outcome.records if r.deferred),
                          key=lambda r: (r.arrival, r.qid)):
            key = (rec.tenant, rec.graph, rec.kernel)
            prev = by_key.get(key)
            if prev is not None:
                assert rec.start >= prev.start - 1e-12
            by_key[key] = rec
