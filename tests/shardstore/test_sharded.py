"""The sharded store: commit barrier, version vectors, bit-identity."""

import numpy as np
import pytest

from repro.dynamic.delta import UpdateBatch, random_update_batch
from repro.graph.generators import powerlaw_configuration
from repro.graphstore import GraphStore
from repro.graphstore.store import graph_digest
from repro.serve.request import QueryRequest, UpdateRequest
from repro.shardstore import ShardedGraphStore, annotate_shard_sets
from repro.utils.errors import ConfigError
from repro.utils.rng import derive_seed


@pytest.fixture()
def graph():
    return powerlaw_configuration(100, 600, seed=5, name="g")


def batches(graph, rounds=4, n_edges=24):
    """A deterministic batch sequence over an evolving head."""
    out, head = [], graph
    plain = GraphStore({"g": graph})
    for r in range(rounds):
        batch = random_update_batch(head, n_edges=n_edges,
                                    seed=derive_seed(7, "sharded-test", r))
        out.append(batch)
        head = plain.apply("g", batch).graph
    return out


class TestCommit:
    def test_heads_match_unsharded_at_every_version(self, graph):
        sharded = ShardedGraphStore({"g": graph}, nshards=4, nranks=8)
        plain = GraphStore({"g": graph})
        for batch in batches(graph):
            upd = sharded.apply("g", batch)
            ref = plain.apply("g", batch)
            assert upd.version == ref.version
            assert graph_digest(upd.graph) == graph_digest(ref.graph)
        # Historical reconstruction from the shard chains, every version.
        for v in range(sharded.version("g").version + 1):
            assert graph_digest(sharded.graph("g", v)) == \
                graph_digest(plain.graph("g", v))

    def test_version_vector_counts_touched_commits(self, graph):
        sharded = ShardedGraphStore({"g": graph}, nshards=4, nranks=8)
        seen = []
        for batch in batches(graph):
            seen.append(sharded.apply("g", batch).shards)
        vec = sharded.version_vector("g")
        for s in range(4):
            assert vec[s] == sum(1 for touched in seen if s in touched)
        assert sharded.check_version_vector("g") == []

    def test_commit_digest_covers_only_touched_shards(self, graph):
        """Two stores taking the same two disjoint-shard commits in
        opposite orders agree on each commit's digest — the property
        that makes shard-fenced serving scheduler-independent."""
        plan_probe = ShardedGraphStore({"g": graph}, nshards=4, nranks=8)
        lo0, hi0 = plan_probe.plan("g").range_of(0)
        lo3, hi3 = plan_probe.plan("g").range_of(3)
        b_a = UpdateBatch.build([[lo0, lo0 + 1]], None, n=graph.n)
        b_b = UpdateBatch.build([[lo3, lo3 + 1]], None, n=graph.n)
        s1 = ShardedGraphStore({"g": graph}, nshards=4, nranks=8)
        s2 = ShardedGraphStore({"g": graph}, nshards=4, nranks=8)
        d1 = {frozenset(u.shards): u.digest
              for u in (s1.apply("g", b_a), s1.apply("g", b_b))}
        d2 = {frozenset(u.shards): u.digest
              for u in (s2.apply("g", b_b), s2.apply("g", b_a))}
        assert d1 == d2
        assert s1.digest("g") == s2.digest("g")

    def test_empty_batch_advances_logical_version_only(self, graph):
        sharded = ShardedGraphStore({"g": graph}, nshards=4, nranks=8)
        upd = sharded.apply("g", UpdateBatch.build(None, None, n=graph.n))
        assert upd.version.version == 1
        assert upd.shards == frozenset()
        assert sharded.version_vector("g") == (0, 0, 0, 0)
        assert sharded.check_version_vector("g") == []

    def test_store_digest_deterministic_across_stores(self, graph):
        runs = []
        for _ in range(2):
            s = ShardedGraphStore({"g": graph}, nshards=4, nranks=8)
            for batch in batches(graph):
                s.apply("g", batch)
            runs.append((s.digest("g"),
                         tuple(s.shard_digest("g", i) for i in range(4))))
        assert runs[0] == runs[1]


class TestBarrier:
    def test_readers_fenced_mid_commit(self, graph):
        sharded = ShardedGraphStore({"g": graph}, nshards=4, nranks=8)
        observed = []

        def probe(name, shard):
            for fn in (lambda: sharded.graph("g"),
                       lambda: sharded.version("g"),
                       lambda: sharded.digest("g"),
                       lambda: sharded.version_vector("g")):
                with pytest.raises(ConfigError, match="mid-commit"):
                    fn()
            observed.append(shard)

        batch = random_update_batch(graph, n_edges=40, seed=2)
        sharded.apply("g", batch, _on_subcommit=probe)
        assert observed  # the hook actually fired mid-barrier
        # The fence lifts after the commit lands.
        assert sharded.version("g").version == 1

    def test_stable_reads_pass_the_fence(self, graph):
        """The cooperative engine's non-blocking probes: ``fenced()``
        answers without raising, and ``stable=True`` reads observe the
        last *committed* state mid-barrier — the head swaps and the
        version count advances only after the barrier drops."""
        sharded = ShardedGraphStore({"g": graph}, nshards=4, nranks=8)
        first = random_update_batch(graph, n_edges=20, seed=4)
        sharded.apply("g", first)
        committed_digest = graph_digest(sharded.graph("g"))
        observed = []

        def probe(name, shard):
            assert sharded.fenced("g")
            assert sharded.version("g", stable=True).version == 1
            assert graph_digest(sharded.graph("g", stable=True)) == \
                committed_digest
            # The plain read still refuses mid-commit state.
            with pytest.raises(ConfigError, match="mid-commit"):
                sharded.graph("g")
            # Historical reconstruction honors the fence too: the shard
            # chains are mid-mutation and cannot prove anything.
            with pytest.raises(ConfigError, match="mid-commit"):
                sharded.graph("g", 0)
            observed.append(shard)

        head = sharded.graph("g")
        second = random_update_batch(head, n_edges=20, seed=5)
        sharded.apply("g", second, _on_subcommit=probe)
        assert observed
        assert not sharded.fenced("g")
        assert sharded.version("g", stable=True) == sharded.version("g")
        assert graph_digest(sharded.graph("g", stable=True)) == \
            graph_digest(sharded.graph("g"))

    def test_fence_lifts_after_failed_commit(self, graph):
        sharded = ShardedGraphStore({"g": graph}, nshards=4, nranks=8)

        def boom(name, shard):
            raise RuntimeError("shard application died")

        with pytest.raises(RuntimeError):
            sharded.apply("g", random_update_batch(graph, seed=1),
                          _on_subcommit=boom)
        # Readers are not wedged behind a dead barrier.
        sharded.version("g")


class TestSnapshotSeed:
    def test_seed_adopts_history_and_converges(self, graph):
        primary = ShardedGraphStore({"g": graph}, nshards=4, nranks=8)
        seq = batches(graph, rounds=3)
        for batch in seq[:2]:
            primary.apply("g", batch)
        replica = ShardedGraphStore({"g": graph}, nshards=4, nranks=8)
        replica.seed("g", primary.snapshot("g"))
        assert replica.version("g") == primary.version("g")
        assert replica.version_vector("g") == primary.version_vector("g")
        assert replica.digest("g") == primary.digest("g")
        assert replica.check_version_vector("g") == []
        # Convergence is provable on the next independent commit.
        primary.apply("g", seq[2])
        replica.apply("g", seq[2])
        assert replica.digest("g") == primary.digest("g")

    def test_seed_rejects_mismatched_snapshot(self, graph):
        primary = ShardedGraphStore({"g": graph}, nshards=4, nranks=8)
        other = ShardedGraphStore({"g": graph}, nshards=2, nranks=8)
        with pytest.raises(ConfigError, match="4 shards"):
            other.seed("g", primary.snapshot("g"))
        with pytest.raises(ConfigError, match="not 'h'"):
            h = ShardedGraphStore({"g": graph, "h": graph},
                                  nshards=4, nranks=8)
            h.seed("h", primary.snapshot("g"))


class TestErrors:
    def test_unknown_graph(self, graph):
        sharded = ShardedGraphStore({"g": graph}, nshards=2)
        for fn in (lambda: sharded.graph("nope"),
                   lambda: sharded.version("nope"),
                   lambda: sharded.digest("nope"),
                   lambda: sharded.plan("nope")):
            with pytest.raises(ConfigError, match="not in the store"):
                fn()

    def test_duplicate_add_needs_overwrite(self, graph):
        sharded = ShardedGraphStore({"g": graph}, nshards=2)
        with pytest.raises(ConfigError, match="already stored"):
            sharded.add("g", graph)
        sharded.add("g", graph, overwrite=True)
        assert sharded.version("g").version == 0

    def test_version_out_of_range(self, graph):
        sharded = ShardedGraphStore({"g": graph}, nshards=2)
        with pytest.raises(ConfigError, match="has versions 0..0"):
            sharded.graph("g", 3)

    def test_bad_geometry(self, graph):
        with pytest.raises(ConfigError, match=">= 1 shard"):
            ShardedGraphStore(nshards=0)


class TestAnnotation:
    def test_updates_stamped_queries_untouched(self, graph):
        sharded = ShardedGraphStore({"g": graph}, nshards=4, nranks=8)
        lo, hi = sharded.plan("g").range_of(0)
        reqs = [
            QueryRequest(arrival=0.0, qid=0, tenant=0, graph="g"),
            UpdateRequest(arrival=1.0, qid=1, tenant=0, graph="g",
                          inserts=np.array([[lo, lo + 1]])),
            UpdateRequest(arrival=2.0, qid=2, tenant=0, graph="other",
                          inserts=np.array([[0, 1]])),
        ]
        out = annotate_shard_sets(reqs, sharded)
        assert out[0] is reqs[0]
        assert out[1].shards == sharded.touched_by(
            "g", inserts=np.array([[lo, lo + 1]]))
        assert out[2] is reqs[2]            # not in the store: untouched

    def test_empty_batch_stays_whole_graph_fence(self, graph):
        sharded = ShardedGraphStore({"g": graph}, nshards=4, nranks=8)
        req = UpdateRequest(arrival=0.0, qid=0, tenant=0, graph="g")
        assert annotate_shard_sets([req], sharded)[0].shards is None
