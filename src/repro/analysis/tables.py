"""Monospace table rendering for experiment output.

The experiments print in the paper's format (e.g. Table III's
edges-per-microsecond columns) plus a ``paper`` column where the original
reports a comparable number, so shape deviations are visible at a glance.
"""

from __future__ import annotations

from typing import Any, Sequence


class Table:
    """A small fixed-width table builder."""

    def __init__(self, headers: Sequence[str], title: str = ""):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([_fmt(c) for c in cells])

    # -- rendering ------------------------------------------------------------
    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def render_markdown(self) -> str:
        lines = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_speedup(base: float, value: float) -> str:
    """Render 'value is N x faster than base' (paper annotation style)."""
    if value <= 0:
        return "inf"
    return f"{base / value:.1f}x"
