"""Exporters: Chrome ``trace_event`` timelines and utilization reports.

Two ways out of the tracer:

* :func:`chrome_trace` renders a span set as Chrome's ``trace_event``
  JSON (the format ``chrome://tracing`` and Perfetto's legacy loader
  read): one process, one row per engine worker, complete (``ph="X"``)
  events for spans with simulated duration and instant (``ph="i"``)
  events for the synchronous layer spans (store commits, resyncs, cache
  invalidations) that consume wall time but no simulated time.
  Timestamps are the *simulated* clock in microseconds, so the rendered
  timeline is the engine's own — deterministic per seed.
* :func:`utilization_report` generalizes
  :func:`~repro.serve.records.concurrency_profile` from one global
  number to a per-(graph, shard-set) breakdown: for each fence domain,
  how busy it was, how overlapped, and what fraction of the run's
  makespan it occupied.  This is the report that shows *where* the
  cooperative engine's overlap comes from — disjoint graphs, or
  disjoint shard sets within one graph.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.obs.trace import Span
from repro.serve.records import concurrency_profile

__all__ = [
    "chrome_trace",
    "utilization_report",
]


def _effective_worker(span: Span, by_sid: Dict[int, Span]) -> int:
    """A span's display row: its worker, or the nearest ancestor's."""
    seen = set()
    cur: Optional[Span] = span
    while cur is not None and cur.sid not in seen:
        if cur.worker is not None:
            return cur.worker
        seen.add(cur.sid)
        cur = by_sid.get(cur.parent) if cur.parent is not None else None
    return 0


def chrome_trace(spans: Sequence[Span], *,
                 label: str = "repro serving trace") -> dict:
    """Spans as a Chrome ``trace_event`` document (JSON-serializable).

    Load the written file in ``chrome://tracing`` or
    https://ui.perfetto.dev — one row per engine worker, simulated
    microseconds on the x-axis.  Span attributes (including measured
    ``wall_s`` for layer spans) appear under each event's ``args``.
    """
    by_sid = {s.sid: s for s in spans}
    events: List[dict] = [{
        "ph": "M", "name": "process_name", "pid": 0, "tid": 0,
        "args": {"name": label},
    }]
    workers = sorted({_effective_worker(s, by_sid) for s in spans})
    for w in workers:
        events.append({
            "ph": "M", "name": "thread_name", "pid": 0, "tid": w,
            "args": {"name": f"worker {w}"},
        })
    for s in sorted(spans, key=lambda s: (s.t0, s.sid)):
        args = {"sid": s.sid, **s.attrs}
        if s.parent is not None:
            args["parent"] = s.parent
        base = {
            "name": s.name, "cat": s.cat, "pid": 0,
            "tid": _effective_worker(s, by_sid),
            "ts": s.t0 * 1e6, "args": args,
        }
        if s.t1 > s.t0:
            events.append({**base, "ph": "X", "dur": (s.t1 - s.t0) * 1e6})
        else:
            # Zero simulated duration: a synchronous layer call.  An
            # instant event keeps it visible on the timeline.
            events.append({**base, "ph": "i", "s": "t"})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _domain_key(graph: str, shards) -> str:
    """One fence domain's label: ``graph`` or ``graph[s0,s2]``."""
    if not shards:
        return graph
    return f"{graph}[{','.join(str(s) for s in sorted(shards))}]"


def utilization_report(records, update_records=(), *,
                       requests: Sequence = (),
                       workers: Optional[int] = None) -> dict:
    """Per-(graph, shard-set) busy/overlap breakdown of one run.

    Queries read their whole graph, so they land in the graph's
    whole-graph domain; updates land in the domain of their annotated
    shard set (``graph`` itself when un-annotated — the conservative
    whole-graph fence).  ``requests`` supplies the qid → shard-set
    mapping, since retired records don't carry annotations.  Each
    domain row reuses the same interval sweep as
    :func:`~repro.serve.records.concurrency_profile` plus busy time and
    the share of the run's makespan the domain was active; the
    ``overall`` row is exactly ``concurrency_profile`` over everything,
    so the old single-number profile is a projection of this report.
    """
    shards_by_qid = {
        r.qid: tuple(sorted(getattr(r, "shards", None) or ()))
        for r in requests
    }
    domains: Dict[str, dict] = {}

    def bucket(key: str) -> dict:
        return domains.setdefault(
            key, {"queries": [], "updates": []})

    for r in records:
        bucket(_domain_key(r.graph, None))["queries"].append(r)
    for u in update_records:
        bucket(_domain_key(u.graph, shards_by_qid.get(u.qid)))[
            "updates"].append(u)

    all_records = list(records)
    all_updates = list(update_records)
    finishes = [r.finish for r in (*all_records, *all_updates)]
    makespan = max(finishes) if finishes else 0.0

    rows: Dict[str, dict] = {}
    for key in sorted(domains):
        group = domains[key]
        profile = concurrency_profile(group["queries"], group["updates"])
        busy = (sum(r.finish - r.start for r in group["queries"])
                + sum(u.finish - (u.start + u.held_s)
                      for u in group["updates"] if not u.coalesced))
        row = {
            "n_queries": len(group["queries"]),
            "n_updates": len(group["updates"]),
            "busy_s": float(busy),
            "busy_fraction": float(busy / makespan) if makespan else 0.0,
            **profile,
        }
        if workers:
            row["utilization"] = (float(busy / (makespan * workers))
                                  if makespan else 0.0)
        rows[key] = row

    overall = concurrency_profile(all_records, all_updates)
    out = {
        "makespan_s": float(makespan),
        "overall": overall,
        "domains": rows,
    }
    if workers:
        total_busy = sum(r["busy_s"] for r in rows.values())
        out["utilization"] = (float(total_busy / (makespan * workers))
                              if makespan else 0.0)
    return out
