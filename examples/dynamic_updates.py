#!/usr/bin/env python
"""A resident cluster absorbing live edge updates (the dynamic subsystem).

A monitoring service keeps LCC/TC results fresh over a graph that keeps
changing.  Three things make that cheap here, none of which exist in the
static paper setup:

1. **batched deltas** — updates apply as a vectorized CSR merge, never a
   full rebuild (`repro.dynamic.apply_delta`);
2. **incremental recompute** — only the affected vertices (changed-edge
   endpoints plus per-edge common neighborhoods) are recounted, and the
   fold is bit-identical to a full recompute;
3. **targeted invalidation** — the resident session evicts exactly the
   CLaMPI entries the update made stale, so the next query is still
   mostly warm (contrast with transparent mode's flush-everything in
   examples/dynamic_graph.py).

    python examples/dynamic_updates.py
"""

import numpy as np

from repro.core import CacheSpec, LCCConfig
from repro.dynamic import IncrementalState, random_update_batch
from repro.graph import load_dataset
from repro.session import Session


def main() -> None:
    graph = load_dataset("skitter", scale=0.4)
    config = LCCConfig(nranks=8, threads=4,
                       cache=CacheSpec.relative(graph.nbytes, 0.5, 1.0))
    print(f"serving LCC over {graph.name}: |V|={graph.n:,} |E|={graph.m:,}\n")

    state = IncrementalState.from_graph(graph)
    with Session(graph, config) as session:
        session.run("lcc", keep_cache=True)          # cold pass
        warm = session.run("lcc", keep_cache=True)   # the reuse regime
        print(f"warm query: adj hit rate "
              f"{warm.adj_cache_stats['hit_rate']:.3f}\n")

        for epoch in range(1, 4):
            batch = random_update_batch(session.graph, n_edges=16,
                                        delete_fraction=0.25, seed=epoch)
            outcome = session.apply_updates(batch)
            state.apply(batch)
            result = session.run("lcc", keep_cache=True)
            ok = (np.array_equal(result.lcc, state.lcc)
                  and result.global_triangles == state.global_triangles)
            print(f"epoch {epoch}: +{outcome.delta.n_inserted} "
                  f"-{outcome.delta.n_deleted} edges  "
                  f"affected {outcome.affected.shape[0]:>4} vertices  "
                  f"invalidated {outcome.invalidated_entries:>5} / retained "
                  f"{outcome.retained_entries:>5} cache entries  "
                  f"post-update hit rate "
                  f"{result.adj_cache_stats['hit_rate']:.3f}  "
                  f"incremental fold exact: {ok}")

    print(f"\nincremental state recomputed {state.vertices_recomputed:,} "
          f"vertices across {state.updates_applied} batches "
          f"(vs {state.updates_applied * graph.n:,} for full recomputes); "
          f"triangles now {state.global_triangles:,}")


if __name__ == "__main__":
    main()
