"""The decision journal: every engine choice as a typed, replayable event.

The async engine's correctness argument rests on its per-(graph,
shard-set) fences, but until now a finished run kept no evidence of the
*decisions* — which dispatch pick let a rider coalesce, which query sat
``queue_steps`` long enough to trip the starvation override, when a
window closed early because a query arrived.  The journal records each
of those as one typed JSONL event on the simulated clock.

Two properties make it more than a log:

* **Determinism** — events carry only simulated times, qids, graph
  names, versions and store digests; never wall-clock readings.  For a
  fixed workload, scheduler and seed the journal is byte-identical
  across runs, so it can be diffed, hashed and committed like any other
  artifact (the CI gate does exactly that).
* **Replayability** — :func:`replay_journal` re-drives
  :func:`~repro.serve.scheduler.eligible_requests` over the journal,
  reconstructing the waiting/deferred/inflight sets event by event and
  proving every recorded dispatch was fence-legal, every rider set
  matches the engine's coalescing rule, and every request was accounted
  for exactly once.  A journal that passes replay is a machine-checked
  proof that the recorded run respected the ordering contract.

Event vocabulary (the ``ev`` field):

``admit``
    A request entered the run queue (``promoted`` marks a deferred
    request finally getting a slot).
``defer`` / ``shed``
    Admission control bounced an arrival: deferred requests wait for a
    slot, shed requests are gone for good.
``dispatch``
    The engine started a task on a worker (``starved`` marks the
    fairness override; ``eligible`` counts the fence-admitted set the
    pick chose from).
``window_open`` / ``window_close``
    An update leader's coalescing window: planned close on open; actual
    riders and close ``reason`` (``"deadline"`` — ran its bounded
    course, or ``"query_arrival"`` — cut short by a query) on close.
``window_adapt``
    The adaptive controller changed the window width.
``commit``
    A leader (plus riders) committed: per-member store versions and the
    graph's chained history digest.
``retire``
    A task left its worker at its simulated finish time.

This vocabulary is the event log ROADMAP item 3's event-sourced
durability will persist; ``replay_journal`` is its read-side verifier.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.serve.request import arrival_order
from repro.serve.scheduler import eligible_requests

__all__ = [
    "DecisionJournal",
    "EVENT_KINDS",
    "ReplayReport",
    "replay_journal",
]

#: Every event kind the journal may contain, in lifecycle order.
EVENT_KINDS = (
    "admit", "defer", "shed", "dispatch",
    "window_open", "window_close", "window_adapt",
    "commit", "retire",
)


class DecisionJournal:
    """An append-only, JSONL-serializable sequence of decision events."""

    def __init__(self) -> None:
        self.events: List[dict] = []

    def append(self, ev: str, t: float, **fields: object) -> dict:
        """Record one event at simulated time ``t``.

        Field values must be JSON-serializable and deterministic —
        wall-clock readings are the caller's bug, not the journal's.
        """
        if ev not in EVENT_KINDS:
            raise ValueError(f"unknown journal event kind {ev!r}; "
                             f"expected one of {EVENT_KINDS}")
        event = {"ev": ev, "t": float(t), **fields}
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def of_kind(self, ev: str) -> List[dict]:
        return [e for e in self.events if e["ev"] == ev]

    # -- serialization -------------------------------------------------------
    def to_jsonl(self) -> str:
        """One event per line, keys sorted — byte-stable per seed."""
        return "".join(json.dumps(e, sort_keys=True) + "\n"
                       for e in self.events)

    def digest(self) -> str:
        """SHA-1 over the JSONL bytes: one hash names the whole run."""
        return hashlib.sha1(self.to_jsonl().encode()).hexdigest()

    def write(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())

    @classmethod
    def from_events(cls, events: Iterable[dict]) -> "DecisionJournal":
        journal = cls()
        for e in events:
            journal.events.append(dict(e))
        return journal

    @classmethod
    def loads(cls, text: str) -> "DecisionJournal":
        journal = cls()
        for line in text.splitlines():
            line = line.strip()
            if line:
                journal.events.append(json.loads(line))
        return journal

    @classmethod
    def load(cls, path) -> "DecisionJournal":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.loads(fh.read())


@dataclass
class ReplayReport:
    """What replaying a journal against its workload established."""

    ok: bool
    problems: List[str] = field(default_factory=list)
    n_events: int = 0
    n_dispatches: int = 0
    n_commits: int = 0
    n_sheds: int = 0
    n_deferred: int = 0
    n_starvation_overrides: int = 0

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "problems": list(self.problems),
            "n_events": self.n_events,
            "n_dispatches": self.n_dispatches,
            "n_commits": self.n_commits,
            "n_sheds": self.n_sheds,
            "n_deferred": self.n_deferred,
            "n_starvation_overrides": self.n_starvation_overrides,
        }


def replay_journal(journal: DecisionJournal | Sequence[dict],
                   requests: Sequence) -> ReplayReport:
    """Re-drive the fences over a journal: was the recorded run legal?

    Reconstructs the engine's waiting / deferred / holding / running
    sets from the event stream and, at every ``dispatch``, recomputes
    :func:`~repro.serve.scheduler.eligible_requests` over that state —
    the recorded pick must be in the fence-admitted set.  At every
    ``window_close`` the recorded riders must equal the engine's
    contiguous-run coalescing rule recomputed from the same state, and
    at every ``commit`` the member versions must extend the graph's
    chain by exactly one each.  A clean report is a machine-checked
    proof that the run observed the ordering contract the bit-identity
    argument depends on.
    """
    events = list(journal.events if isinstance(journal, DecisionJournal)
                  else journal)
    by_qid = {r.qid: r for r in requests}
    report = ReplayReport(ok=True, n_events=len(events))
    problems = report.problems

    waiting: List[int] = []       # run queue, in admission order
    deferred: List[int] = []
    holding: List[int] = []       # dispatched update leaders, window open
    running: List[int] = []       # dispatched, occupying a worker
    done: set = set()
    shed: set = set()
    busy_workers: Dict[int, int] = {}   # worker -> qid
    last_t = float("-inf")
    last_version: Dict[str, int] = {}

    def req(qid: int):
        r = by_qid.get(qid)
        if r is None:
            problems.append(f"event references unknown qid {qid}")
        return r

    def expected_riders(leader_qid: int) -> Optional[List[int]]:
        """The engine's gather_riders rule, recomputed from replay state."""
        leader = by_qid.get(leader_qid)
        if leader is None:
            return None
        uncommitted = ([by_qid[q] for q in waiting if q in by_qid]
                       + [by_qid[q] for q in deferred if q in by_qid]
                       + [by_qid[q] for q in holding
                          if q != leader_qid and q in by_qid])
        known = sorted((r for r in uncommitted if r.graph == leader.graph),
                       key=arrival_order)
        riders: List[int] = []
        for r in known:
            if arrival_order(r) < arrival_order(leader):
                return []
            if not r.is_update or r.qid not in waiting:
                break
            riders.append(r.qid)
        return riders

    for i, e in enumerate(events):
        ev, t = e.get("ev"), e.get("t", 0.0)
        qid = e.get("qid")
        where = f"event {i} ({ev} qid={qid} t={t})"
        if ev not in EVENT_KINDS:
            problems.append(f"{where}: unknown event kind")
            continue
        if t < last_t - 1e-12:
            problems.append(f"{where}: time runs backwards "
                            f"({t} < {last_t})")
        last_t = max(last_t, t)

        if ev == "admit":
            if e.get("promoted"):
                if qid in deferred:
                    deferred.remove(qid)
                else:
                    problems.append(f"{where}: promoted but never deferred")
            elif qid in waiting or qid in deferred or qid in done:
                problems.append(f"{where}: admitted twice")
            if req(qid) is not None:
                waiting.append(qid)
        elif ev == "defer":
            if req(qid) is not None:
                deferred.append(qid)
            report.n_deferred += 1
        elif ev == "shed":
            shed.add(qid)
            report.n_sheds += 1
        elif ev == "dispatch":
            report.n_dispatches += 1
            if e.get("starved"):
                report.n_starvation_overrides += 1
            r = req(qid)
            if qid not in waiting:
                problems.append(f"{where}: dispatched while not waiting")
                continue
            if r is not None:
                inflight = ([by_qid[q] for q in deferred if q in by_qid]
                            + [by_qid[q] for q in running if q in by_qid]
                            + [by_qid[q] for q in holding if q in by_qid])
                legal = eligible_requests(
                    [by_qid[q] for q in waiting if q in by_qid],
                    inflight=inflight)
                if r not in legal:
                    problems.append(
                        f"{where}: dispatch violates the per-(graph, "
                        f"shard-set) fence — {r.graph!r} blocked by an "
                        "earlier conflicting request")
            worker = e.get("worker")
            if worker in busy_workers:
                problems.append(
                    f"{where}: worker {worker} already busy with "
                    f"qid {busy_workers[worker]}")
            if worker is not None:
                busy_workers[worker] = qid
            waiting.remove(qid)
            if r is not None and r.is_update:
                holding.append(qid)
            else:
                running.append(qid)
        elif ev == "window_open":
            if qid not in holding:
                problems.append(f"{where}: window opened by a "
                                "non-holding task")
        elif ev == "window_close":
            if qid not in holding:
                problems.append(f"{where}: window closed but never held")
                continue
            riders = list(e.get("riders", ()))
            expected = expected_riders(qid)
            if expected is not None and riders != expected:
                problems.append(
                    f"{where}: riders {riders} violate the contiguous-"
                    f"run coalescing rule (expected {expected})")
            for rider in riders:
                if rider in waiting:
                    waiting.remove(rider)
                    done.add(rider)
                else:
                    problems.append(
                        f"{where}: rider {rider} was not waiting")
            holding.remove(qid)
            running.append(qid)
        elif ev == "commit":
            report.n_commits += 1
            if qid not in running:
                problems.append(f"{where}: commit by a task that is "
                                "not running its commit slot")
            r = req(qid)
            versions = list(e.get("versions", ()))
            graph = e.get("graph", r.graph if r is not None else "?")
            expect_n = 1 + len(e.get("riders", ()))
            if len(versions) != expect_n:
                problems.append(
                    f"{where}: {len(versions)} versions for "
                    f"{expect_n} group members")
            head = last_version.get(graph, 0)
            for v in versions:
                if v != head + 1:
                    problems.append(
                        f"{where}: version {v} does not extend "
                        f"{graph!r}'s chain at v{head}")
                head = v
            last_version[graph] = head
        elif ev == "retire":
            if qid in running:
                running.remove(qid)
                done.add(qid)
            else:
                problems.append(f"{where}: retired while not running")
            worker = e.get("worker")
            if worker is not None:
                if busy_workers.get(worker) == qid:
                    del busy_workers[worker]
                else:
                    problems.append(
                        f"{where}: worker {worker} was not running "
                        f"qid {qid}")
        # window_adapt carries no state transition.

    for name, leftovers in (("waiting", waiting), ("deferred", deferred),
                            ("holding", holding), ("running", running)):
        if leftovers:
            problems.append(f"journal ends with {name} tasks: {leftovers}")
    expected_done = {r.qid for r in requests} - shed
    if done != expected_done:
        missing = sorted(expected_done - done)
        extra = sorted(done - expected_done)
        if missing:
            problems.append(f"requests never completed: {missing}")
        if extra:
            problems.append(f"completions for unexpected qids: {extra}")
    overlap = done & shed
    if overlap:
        problems.append(f"shed requests also completed: {sorted(overlap)}")

    report.ok = not problems
    return report
