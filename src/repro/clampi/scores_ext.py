"""Additional eviction-score policies (paper future-work direction iii).

The paper closes with "studying other application-specific scores for
cached entries to improve caching efficiency".  This module implements the
natural candidates and an ablation benchmark compares them:

* :class:`LFUScorePolicy` — pure access-frequency (protects entries that
  *have been* reused, rather than predicting reuse from degree);
* :class:`CostAwareScorePolicy` — frequency times refetch cost: evicting a
  large entry forfeits a more expensive get, so value = expected refetches
  x bytes;
* :class:`DensityScorePolicy` — value per cached byte (frequency / size):
  the knapsack-style heuristic, favouring many small hot entries over one
  big one;
* :class:`HybridDegreeLRUPolicy` — the paper's degree score blended with
  recency, recovering some scan-resistance the pure degree score lacks.
"""

from __future__ import annotations

from repro.clampi.allocator import BufferAllocator
from repro.clampi.scores import ScorePolicy


class LFUScorePolicy(ScorePolicy):
    """Evict the least-frequently-used entry (observed reuse)."""

    def victim_score(self, entry, allocator: BufferAllocator, clock: int) -> float:
        recency = entry.last_access / clock if clock > 0 else 0.0
        return entry.n_accesses + 1e-6 * recency


class CostAwareScorePolicy(ScorePolicy):
    """Value = observed frequency x refetch cost (bytes).

    A hub adjacency list is both more likely to be reused *and* more
    expensive to refetch; weighting frequency by size protects exactly the
    entries whose misses dominate communication time.
    """

    def victim_score(self, entry, allocator: BufferAllocator, clock: int) -> float:
        recency = entry.last_access / clock if clock > 0 else 0.0
        return entry.n_accesses * max(1, entry.nbytes) + recency


class DensityScorePolicy(ScorePolicy):
    """Value per byte: frequency / size (knapsack heuristic).

    The dual of :class:`CostAwareScorePolicy`: under severe capacity
    pressure, many small warm entries can out-serve one huge hub list.
    """

    def victim_score(self, entry, allocator: BufferAllocator, clock: int) -> float:
        recency = entry.last_access / clock if clock > 0 else 0.0
        return entry.n_accesses / max(1, entry.nbytes) + 1e-9 * recency


class HybridDegreeLRUPolicy(ScorePolicy):
    """Degree score blended with recency.

    ``score = w * degree_norm + (1 - w) * recency`` — degrees predict
    reuse (Observation 3.1) but a pure degree policy never ages out a hub
    whose accesses are exhausted; the recency term restores that.
    """

    def __init__(self, weight: float = 0.7, degree_norm: float = 1024.0):
        if not (0.0 <= weight <= 1.0):
            raise ValueError(f"weight must be in [0, 1], got {weight}")
        if degree_norm <= 0:
            raise ValueError("degree_norm must be positive")
        self.weight = weight
        self.degree_norm = degree_norm

    @property
    def uses_app_score(self) -> bool:
        return True

    def victim_score(self, entry, allocator: BufferAllocator, clock: int) -> float:
        app = entry.app_score if entry.app_score is not None else 0.0
        degree_term = min(1.0, app / self.degree_norm)
        recency = entry.last_access / clock if clock > 0 else 0.0
        return self.weight * degree_term + (1.0 - self.weight) * recency


#: Registry used by the score-policy ablation benchmark.
EXTENDED_POLICIES = {
    "lfu": LFUScorePolicy,
    "cost-aware": CostAwareScorePolicy,
    "density": DensityScorePolicy,
    "degree-lru": HybridDegreeLRUPolicy,
}
