"""Asynchronous distributed-memory triangle counting and LCC with RMA caching.

A production-quality Python reproduction of Strausz, Vella, Di Girolamo,
Besta and Hoefler (IPDPS 2022, arXiv:2202.13976): fully asynchronous
distributed TC/LCC over one-sided RMA reads of a 1D-partitioned CSR graph,
with CLaMPI-style caching of remote accesses and degree-centrality
eviction scores.

Quickstart — one resident cluster, many queries::

    from repro import Session
    from repro.core import CacheSpec, LCCConfig
    from repro.graph import load_dataset

    g = load_dataset("livejournal")
    cfg = LCCConfig(nranks=64, threads=12,
                    cache=CacheSpec.paper_split(2 * g.nbytes, g.n,
                                                score="degree"))
    with Session(g, cfg) as session:
        lcc = session.run("lcc", keep_cache=True)    # cold CLaMPI caches
        warm = session.run("lcc", keep_cache=True)   # warm: paper's reuse win
        tric = session.run("tric")                   # baselines by name
        cells = session.sweep({"ssi": {"method": "ssi"},
                               "hybrid": {"method": "hybrid"}})

Kernels (``lcc``, ``tc``, ``tc2d``, ``tric``, ``disttc``, ``mapreduce``)
are registered by name; add your own with
:func:`~repro.session.register_kernel`.  The single-shot helpers
(:func:`repro.core.compute_lcc`, :func:`repro.core.count_triangles`)
remain as thin wrappers.

Subpackages: :mod:`repro.runtime` (simulated MPI/RMA), :mod:`repro.clampi`
(the cache), :mod:`repro.graph` (CSR/generators/partitioning),
:mod:`repro.core` (the paper's algorithms), :mod:`repro.baselines`
(TriC, DistTC, MapReduce), :mod:`repro.analysis` (the experiment harness
regenerating every table and figure); :mod:`repro.session` (the
resident-cluster query API); :mod:`repro.dynamic` (batched edge updates,
incremental recompute and targeted cache invalidation);
:mod:`repro.graphstore` (the versioned graph store and the resident 1D /
2D clusters it feeds); :mod:`repro.serve` (multi-tenant query serving
with cache-affinity scheduling over a bounded session pool, mixing reads
with versioned graph updates — serially or through the cooperative
async engine, whose overlapped answers are pinned bit-identical to the
serial oracle); :mod:`repro.shardstore` (partition-aligned
shards with cross-shard commit barriers, consistent-hash routing and
digest-verified read replicas over the store); :mod:`repro.obs` (the
observability layer: simulated-clock span tracing, the typed metrics
registry, the replayable decision journal with its fence-legality
verifier, and the Chrome-trace/utilization exporters — pass
``Observation.enabled()`` to the async engine to collect everything).
"""

__version__ = "1.7.0"

from repro.dynamic import (  # noqa: E402
    DeltaBuffer,
    IncrementalState,
    UpdateBatch,
    apply_delta,
)
from repro.graphstore import (  # noqa: E402
    GraphStore,
    GraphVersion,
    GridCluster2D,
    ResidentCluster,
)
from repro.obs import (  # noqa: E402
    MetricsRegistry,
    Observation,
    SpanTracer,
)
from repro.shardstore import (  # noqa: E402
    ReplicaSet,
    ShardPlan,
    ShardRouter,
    ShardedGraphStore,
)
from repro.session import (  # noqa: E402
    KernelResult,
    KernelSpec,
    Session,
    UpdateOutcome,
    get_kernel,
    kernel_names,
    register_kernel,
    run_kernel,
    unregister_kernel,
)

__all__ = [
    "DeltaBuffer",
    "GraphStore",
    "GraphVersion",
    "GridCluster2D",
    "IncrementalState",
    "KernelResult",
    "KernelSpec",
    "MetricsRegistry",
    "Observation",
    "ReplicaSet",
    "ResidentCluster",
    "Session",
    "ShardPlan",
    "ShardRouter",
    "ShardedGraphStore",
    "SpanTracer",
    "UpdateBatch",
    "UpdateOutcome",
    "apply_delta",
    "get_kernel",
    "kernel_names",
    "register_kernel",
    "run_kernel",
    "unregister_kernel",
    "__version__",
]
