"""Bench: all five triangle-counting implementations head to head.

One scale-free graph, one rank count; every implementation must agree on
the count, and the asynchronous algorithms must beat the synchronizing
baselines (the repository's core claim, in one table).
"""

from conftest import run_once

from repro.baselines.disttc import DistTCConfig, run_disttc
from repro.baselines.mapreduce import MapReduceConfig, run_mapreduce_tc
from repro.baselines.tric import TricConfig, run_tric
from repro.core.config import LCCConfig
from repro.core.local import triangle_count_local
from repro.core.tc import run_distributed_tc
from repro.core.tc2d import run_distributed_tc_2d


def test_all_algorithms(benchmark, rmat_s21):
    p = 16

    def run_all():
        return {
            "async-1d": run_distributed_tc(rmat_s21, LCCConfig(
                nranks=p, threads=12)),
            "async-2d": run_distributed_tc_2d(rmat_s21, LCCConfig(
                nranks=p, threads=12)),
            "tric": run_tric(rmat_s21, TricConfig(nranks=p)),
            "disttc": run_disttc(rmat_s21, DistTCConfig(nranks=p)),
            "mapreduce": run_mapreduce_tc(rmat_s21, MapReduceConfig(nranks=p)),
        }

    results = run_once(benchmark, run_all)
    expected = triangle_count_local(rmat_s21)
    for name, res in results.items():
        assert res.global_triangles == expected, f"{name} miscounted"
    # The asynchronous RMA designs avoid the synchronization the paper
    # targets: both must beat TriC here.
    assert results["async-1d"].time < results["tric"].time
    assert results["async-2d"].time < results["tric"].time
    # The synchronizing baselines actually synchronize.
    for name in ("tric", "disttc", "mapreduce"):
        assert results[name].outcome.total("sync_time") > 0
    # The asynchronous ones never do.
    for name in ("async-1d", "async-2d"):
        assert results[name].outcome.total("sync_time") == 0
