"""Micro-benchmarks of the algebraic 2D kernels against their loops.

Real wall-clock timings of the masked-SpGEMM path: ``tc2d_spgemm``
replays packed SUMMA panels vectorized, the ``loop`` variants run the
edge-centric per-round reference (``tc2d`` with ``fast_path=False``).
Parity between the two is pinned elsewhere
(``tests/core/test_linalg.py``); here we only watch the speed.
``repro bench`` records the same comparison into ``BENCH_kernels.json``
per PR (the ``linalg`` section).
"""

import pytest

from repro.core.config import CacheSpec, LCCConfig
from repro.core.linalg import build_round_streams, summa_stats
from repro.graph.generators import powerlaw_configuration
from repro.graph.partition2d import GridPartition2D
from repro.session import Session

NRANKS = 9  # square 3x3 grid: the shape the SUMMA kernels require


@pytest.fixture(scope="module")
def graph():
    return powerlaw_configuration(768, 6000, seed=7)


@pytest.fixture(scope="module")
def cache_spec(graph):
    return CacheSpec.relative(graph.nbytes, 0.5, 1.0)


def _config(cache=None, fast_path=True):
    return LCCConfig(nranks=NRANKS, threads=4, cache=cache,
                     fast_path=fast_path)


@pytest.mark.parametrize("kernel,fast_path",
                         [("tc2d", False), ("tc2d_spgemm", True)],
                         ids=["loop", "spgemm"])
def test_warm_uncached_tc2d(benchmark, graph, kernel, fast_path):
    """Warm resident query: scalar edge-centric loop vs. SUMMA replay."""
    with Session(graph, _config(fast_path=fast_path)) as session:
        session.run(kernel)  # build the grid (and panels) once
        result = benchmark(session.run, kernel)
    assert result.global_triangles > 0


@pytest.mark.parametrize("fast_path", [False, True],
                         ids=["loop", "batched"])
def test_warm_cached_tc2d(benchmark, graph, cache_spec, fast_path):
    """Warm cached query: scalar cache loop vs. batched panel replay."""
    with Session(graph, _config(cache=cache_spec,
                                fast_path=fast_path)) as session:
        session.run("tc2d", keep_cache=True)  # warm the block caches
        result = benchmark(session.run, "tc2d", keep_cache=True)
    assert result.global_triangles > 0


def test_warm_lcc2d(benchmark, graph):
    """Warm resident per-vertex LCC over the SUMMA grid."""
    with Session(graph, _config()) as session:
        session.run("lcc2d")
        result = benchmark(session.run, "lcc2d")
    assert result.lcc is not None


def test_summa_stats_build(benchmark, graph):
    """One-off panel build cost (paid once per resident epoch)."""
    grid = GridPartition2D(graph.n, NRANKS)
    from repro.core.tc2d import build_grid_blocks

    blocks = build_grid_blocks(graph, grid)
    stats = benchmark(summa_stats, graph, grid, blocks)
    assert int(stats.tpv.sum()) % 6 == 0


def test_round_streams_build(benchmark, graph):
    """Per-epoch stream construction for the batched replay."""
    from repro.core.tc2d import BLOCKS_WINDOW, build_grid_blocks, pack_block
    from repro.runtime.engine import Engine
    from repro.runtime.window import Window

    config = _config()
    engine = Engine(NRANKS, network=config.network, memory=config.memory,
                    compute=config.compute)
    grid = GridPartition2D(graph.n, NRANKS)
    blocks = build_grid_blocks(graph, grid)
    win = engine.windows.add(Window(BLOCKS_WINDOW,
                                    [pack_block(b) for b in blocks]))
    streams = benchmark(build_round_streams, grid, win)
    assert len(streams) == NRANKS
