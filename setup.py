"""Shim for legacy tooling; all metadata lives in pyproject.toml.

``python -m build --sdist`` / ``pip install .`` read the src-layout
package discovery, console script and dynamic version from there.
"""
from setuptools import setup

setup()
