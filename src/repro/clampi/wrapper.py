"""Glue between CLaMPI caches and the simulated runtime.

The LCC application enables caching on **both** RMA windows at every rank
(paper Section III-B), producing two caches per rank:

* ``C_offsets`` — fixed-size entries (the (start, end) offset pair of a
  remote adjacency list).  The paper sizes its hash table as roughly one
  slot per storable entry: ``capacity / entry_bytes``.
* ``C_adj`` — variable-size entries (the adjacency lists).  Under a power
  -law degree distribution, a cache of relative size ``c = capacity /
  graph_bytes`` is expected to hold about ``n * c**alpha`` entries with
  ``alpha = 2`` ("we found that alpha = 2 results in a good approximation",
  Section III-B1).

The helpers here build per-rank caches with those heuristics and attach
them to the simulation contexts so that every remote get is intercepted.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.clampi.cache import (
    AppScoreFn,
    ClampiCache,
    ClampiConfig,
    ConsistencyMode,
)
from repro.clampi.scores import DefaultScorePolicy, ScorePolicy
from repro.runtime.context import SimContext
from repro.runtime.window import Window


def offsets_hash_slots(capacity_bytes: int, entry_nbytes: int) -> int:
    """Paper heuristic: one slot per storable fixed-size entry."""
    return max(64, capacity_bytes // max(1, entry_nbytes))


def adjacency_hash_slots(capacity_bytes: int, graph_nbytes: int, n_vertices: int,
                         alpha: float = 2.0) -> int:
    """Paper heuristic: ``n * (relative_size) ** alpha`` slots, alpha = 2."""
    rel = min(1.0, capacity_bytes / max(1, graph_nbytes))
    return max(64, int(n_vertices * rel ** alpha))


def degree_app_score(target: int, offset: int, count: int,
                     data: np.ndarray) -> float:
    """The paper's application score for ``C_adj``: the vertex out-degree.

    The degree is exactly the length of the adjacency list just fetched
    ("after completing the get targeting w_offsets, we know the out-degree
    of the non-local vertex, and we can assign it as a score").
    """
    return float(len(data))


def attach_offset_caches(
    contexts: Sequence[SimContext],
    window: Window,
    capacity_bytes: int,
    *,
    mode: ConsistencyMode = ConsistencyMode.ALWAYS_CACHE,
    score_policy: ScorePolicy | None = None,
    entry_count: int = 2,
    adaptive=None,
) -> list[ClampiCache]:
    """Create and attach one ``C_offsets`` per rank; returns the caches.

    ``entry_count`` is the number of window elements per cached read (the
    LCC kernel reads (start, end) pairs, i.e. two offsets).
    """
    entry_nbytes = entry_count * window.itemsize
    caches = []
    for ctx in contexts:
        cfg = ClampiConfig(
            capacity_bytes=capacity_bytes,
            nslots=offsets_hash_slots(capacity_bytes, entry_nbytes),
            mode=mode,
            score_policy=score_policy or DefaultScorePolicy(),
            adaptive=adaptive,
        )
        cache = ClampiCache(window, ctx.rank, cfg,
                            network=ctx.network, memory=ctx.memory)
        ctx.attach_cache(window, cache)
        caches.append(cache)
    return caches


def attach_adjacency_caches(
    contexts: Sequence[SimContext],
    window: Window,
    capacity_bytes: int,
    *,
    mode: ConsistencyMode = ConsistencyMode.ALWAYS_CACHE,
    score_policy: ScorePolicy | None = None,
    app_score_fn: AppScoreFn | None = None,
    n_vertices: int | None = None,
    adaptive=None,
) -> list[ClampiCache]:
    """Create and attach one ``C_adj`` per rank; returns the caches.

    When ``score_policy`` is an :class:`AppScorePolicy` and no callback is
    given, the degree score (:func:`degree_app_score`) is used, reproducing
    the paper's extension.
    """
    policy = score_policy or DefaultScorePolicy()
    fn = app_score_fn
    if policy.uses_app_score and fn is None:
        fn = degree_app_score
    graph_nbytes = window.total_nbytes()
    n = n_vertices if n_vertices is not None else graph_nbytes // max(1, window.itemsize)
    caches = []
    for ctx in contexts:
        cfg = ClampiConfig(
            capacity_bytes=capacity_bytes,
            nslots=adjacency_hash_slots(capacity_bytes, graph_nbytes, n),
            mode=mode,
            score_policy=policy,
            app_score_fn=fn,
            adaptive=adaptive,
        )
        cache = ClampiCache(window, ctx.rank, cfg,
                            network=ctx.network, memory=ctx.memory)
        ctx.attach_cache(window, cache)
        caches.append(cache)
    return caches
