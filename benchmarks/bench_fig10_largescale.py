"""Bench: regenerate Figure 10 — large-scale (128+ ranks) behaviour."""

from conftest import run_once

from repro.analysis.experiments import exp_fig10


def test_fig10(benchmark):
    tables = run_once(benchmark, exp_fig10.run, fast=True)
    table = tables[0]
    for row in table.rows:
        lcc_t, cached_t, tric_t = map(float, row[1:4])
        assert lcc_t > 0 and cached_t > 0
        assert tric_t > lcc_t  # TriC behind at scale, as in the paper
