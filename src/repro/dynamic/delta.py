"""Batched edge updates over the immutable :class:`~repro.graph.csr.CSRGraph`.

The paper's kernels assume a static graph; this module is the write path
that turns the reproduction into a dynamic-graph system.  A graph is never
mutated in place — an :class:`UpdateBatch` of edge inserts/deletes is
*applied*, producing a fresh ``CSRGraph`` plus the bookkeeping every
consumer of the change needs:

* **normalization** mirrors ``CSRGraph.from_edges`` exactly: simple
  graphs only, so self-loops are dropped, duplicate edges coalesced, and
  undirected batches symmetrized (both stored directions);
* **application** (:func:`apply_delta`) is a vectorized three-way CSR
  merge — delete mask, sorted-key merge of the inserts, one ``bincount``
  for the new offsets — O((m + k) log k), no per-edge Python loop;
* the **affected-vertex set** is the contract the incremental layer
  builds on: every vertex whose LCC/TC value *can* have changed is in it
  (changed-edge endpoints plus, per changed edge, the old/new *common*
  neighborhoods — the exact subset of "endpoints ∪ their neighbors" that
  triangles actually touch; recomputing an unchanged vertex is exact,
  missing a changed one would be a wrong answer).

Edges present in both the insert and delete lists of one batch are
rejected as ambiguous.  ``strict=True`` additionally rejects inserting an
edge that already exists or deleting one that does not; the serving path
uses ``strict=False`` (idempotent upsert/ignore-missing semantics).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import (
    CSRGraph,
    OFFSET_DTYPE,
    VERTEX_DTYPE,
    _check_vertex_range,
    gather_ranges,
)
from repro.utils.errors import GraphFormatError
from repro.utils.rng import make_rng

__all__ = [
    "DeltaBuffer",
    "DeltaResult",
    "UpdateBatch",
    "apply_delta",
    "random_update_arrays",
    "random_update_batch",
]


def _canonical_keys(edges, n: int, directed: bool, what: str) -> np.ndarray:
    """Edge array -> sorted unique ``u * n + v`` keys in stored form.

    Stored form means both directions for undirected graphs, matching how
    the CSR keeps them; normalization (self-loop drop, dedup) matches
    ``CSRGraph.from_edges``.
    """
    if edges is None:
        return np.empty(0, dtype=np.int64)
    e = np.asarray(edges)
    if e.size == 0:
        return np.empty(0, dtype=np.int64)
    if e.ndim != 2 or e.shape[1] != 2:
        raise GraphFormatError(f"{what} must be (k, 2), got shape {e.shape}")
    if e.dtype.kind not in "iu":
        raise GraphFormatError(
            f"{what} must be an integer array, got dtype {e.dtype}")
    e = e.astype(np.int64, copy=False)
    if e.min() < 0:
        raise GraphFormatError(f"negative vertex id in {what}")
    if e.max() >= n:
        raise GraphFormatError(
            f"vertex id {int(e.max())} in {what} out of range for n={n}")
    src, dst = e[:, 0], e[:, 1]
    keep = src != dst  # drop self-loops, as from_edges does
    src, dst = src[keep], dst[keep]
    if not directed:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    return np.unique(src * np.int64(n) + dst)


def _decode_keys(keys: np.ndarray, n: int, directed: bool) -> np.ndarray:
    """Stored-form keys -> (k, 2) edge array, one row per paper edge."""
    src, dst = keys // n, keys % n
    if not directed:
        keep = src < dst  # stored both ways; report each edge once
        src, dst = src[keep], dst[keep]
    return np.column_stack([src, dst])


@dataclass(frozen=True)
class UpdateBatch:
    """A validated, normalized batch of edge inserts and deletes.

    ``insert_keys`` / ``delete_keys`` are sorted unique ``u * n + v``
    int64 keys in stored (directed) form.  Build via :meth:`build` or a
    :class:`DeltaBuffer`; instances are immutable and reusable.
    """

    n: int
    directed: bool
    insert_keys: np.ndarray = field(repr=False)
    delete_keys: np.ndarray = field(repr=False)

    @classmethod
    def build(cls, inserts=None, deletes=None, *, n: int,
              directed: bool = False) -> "UpdateBatch":
        """Normalize raw (k, 2) edge arrays into a batch for an n-vertex graph."""
        if n < 0:
            raise GraphFormatError(f"negative vertex count {n}")
        _check_vertex_range(n)  # one source of truth with from_edges
        ins = _canonical_keys(inserts, n, directed, "inserts")
        dels = _canonical_keys(deletes, n, directed, "deletes")
        if ins.size and dels.size:
            both = np.intersect1d(ins, dels)
            if both.size:
                u, v = int(both[0]) // n, int(both[0]) % n
                raise GraphFormatError(
                    f"edge ({u}, {v}) appears in both inserts and deletes "
                    "(ambiguous batch)")
        return cls(n=int(n), directed=bool(directed),
                   insert_keys=ins, delete_keys=dels)

    # -- geometry -----------------------------------------------------------
    @property
    def num_insert_edges(self) -> int:
        """Inserted edges as the paper counts them (undirected: unordered)."""
        return self.insert_keys.shape[0] // (1 if self.directed else 2)

    @property
    def num_delete_edges(self) -> int:
        return self.delete_keys.shape[0] // (1 if self.directed else 2)

    def __len__(self) -> int:
        return self.num_insert_edges + self.num_delete_edges

    def insert_edges(self) -> np.ndarray:
        """(k, 2) inserted edges, one row per edge (u < v when undirected)."""
        return _decode_keys(self.insert_keys, self.n, self.directed)

    def delete_edges(self) -> np.ndarray:
        return _decode_keys(self.delete_keys, self.n, self.directed)

    def endpoints(self) -> np.ndarray:
        """Sorted unique vertex ids named by any edge of the batch."""
        keys = np.concatenate([self.insert_keys, self.delete_keys])
        if keys.size == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate([keys // self.n, keys % self.n]))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "D" if self.directed else "U"
        return (f"UpdateBatch(n={self.n}, {kind}, +{self.num_insert_edges} "
                f"-{self.num_delete_edges} edges)")


class DeltaBuffer:
    """Accumulates edge operations, then freezes them into an UpdateBatch.

    The mutable staging area in front of the immutable batch: serving
    code (or a stream consumer) records inserts/deletes one by one or in
    array chunks, then calls :meth:`freeze` when it wants to apply.
    Conflicting operations on the same edge resolve to the *latest* one
    recorded (insert-then-delete nets out to a delete), matching
    last-writer-wins stream semantics.
    """

    def __init__(self, n: int, directed: bool = False):
        if n < 0:
            raise GraphFormatError(f"negative vertex count {n}")
        self.n = int(n)
        self.directed = bool(directed)
        # Ops are canonicalized (validated, normalized to stored-form
        # keys) once at record time; freeze only has to merge them.
        self._ops: list[tuple[bool, np.ndarray]] = []  # (is_insert, keys)

    def __len__(self) -> int:
        """Normalized edges pending (per-op duplicates already coalesced)."""
        div = 1 if self.directed else 2
        return sum(k.shape[0] // div for _, k in self._ops)

    def insert(self, u: int, v: int) -> None:
        self.insert_edges(np.array([[u, v]], dtype=np.int64))

    def delete(self, u: int, v: int) -> None:
        self.delete_edges(np.array([[u, v]], dtype=np.int64))

    def insert_edges(self, edges) -> None:
        # Validate eagerly so a bad op is reported where it was recorded.
        self._ops.append(
            (True, _canonical_keys(edges, self.n, self.directed, "inserts")))

    def delete_edges(self, edges) -> None:
        self._ops.append(
            (False, _canonical_keys(edges, self.n, self.directed, "deletes")))

    def clear(self) -> None:
        self._ops.clear()

    def freeze(self) -> UpdateBatch:
        """Resolve op order (last writer wins) into an immutable batch."""
        if not self._ops:
            return UpdateBatch(n=self.n, directed=self.directed,
                               insert_keys=np.empty(0, dtype=np.int64),
                               delete_keys=np.empty(0, dtype=np.int64))
        keys = np.concatenate([k for _, k in self._ops])
        flags = np.concatenate([
            np.full(k.shape[0], is_insert, dtype=bool)
            for is_insert, k in self._ops])
        # First occurrence in the reversed stream == the last op recorded
        # for that key; np.unique returns keys sorted, as UpdateBatch wants.
        uniq, first_rev = np.unique(keys[::-1], return_index=True)
        wins = flags[::-1][first_rev]
        return UpdateBatch(n=self.n, directed=self.directed,
                           insert_keys=uniq[wins],
                           delete_keys=uniq[~wins])


@dataclass
class DeltaResult:
    """What one :func:`apply_delta` produced."""

    graph: CSRGraph               # the post-update graph (new object)
    affected: np.ndarray          # sorted vertex ids whose results may change
    endpoints: np.ndarray         # sorted endpoints of effectively changed edges
    changed_keys: np.ndarray      # stored-form u*n+v keys of changed edges
    n_inserted: int               # edges actually added (paper count)
    n_deleted: int                # edges actually removed
    n_skipped_inserts: int = 0    # already present (strict=False only)
    n_skipped_deletes: int = 0    # absent (strict=False only)

    @property
    def changed(self) -> bool:
        return self.n_inserted > 0 or self.n_deleted > 0


def _stored_keys(graph: CSRGraph) -> np.ndarray:
    """The graph's stored directed edges as globally sorted int64 keys."""
    row_of = np.repeat(np.arange(graph.n, dtype=np.int64), graph.degrees())
    return row_of * np.int64(graph.n) + graph.adjacency.astype(np.int64)


def _member_positions(sorted_keys: np.ndarray, queries: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray]:
    """``(present_mask, positions)`` of ``queries`` in ``sorted_keys``."""
    present = np.zeros(queries.shape[0], dtype=bool)
    pos = np.zeros(queries.shape[0], dtype=np.int64)
    if queries.size and sorted_keys.size:
        p = np.searchsorted(sorted_keys, queries)
        inb = p < sorted_keys.shape[0]
        present[inb] = sorted_keys[p[inb]] == queries[inb]
        pos = p
    return present, pos


def _out_neighbors(graph: CSRGraph, vs: np.ndarray) -> np.ndarray:
    """Concatenated adjacency lists of ``vs`` (with duplicates)."""
    if vs.size == 0:
        return np.empty(0, dtype=np.int64)
    starts = graph.offsets[vs]
    gathered, _ = gather_ranges(graph.adjacency, starts,
                                graph.offsets[vs + 1] - starts)
    return gathered.astype(np.int64)


def _in_neighbors(graph: CSRGraph, vs: np.ndarray) -> np.ndarray:
    """Vertices with an edge *to* any of ``vs`` (directed graphs only)."""
    if vs.size == 0 or graph.adjacency.size == 0:
        return np.empty(0, dtype=np.int64)
    hit = np.isin(graph.adjacency.astype(np.int64), vs)
    row_of = np.repeat(np.arange(graph.n, dtype=np.int64), graph.degrees())
    return row_of[hit]


def _common_neighbors_pairs(graph: CSRGraph, us: np.ndarray, vs: np.ndarray
                            ) -> np.ndarray:
    """Concatenated ``adj(u) ∩ adj(v)`` over the given endpoint pairs."""
    from repro.core.intersect import intersect_values

    pieces = [intersect_values(graph.adj(int(u)), graph.adj(int(v)))
              .astype(np.int64)
              for u, v in zip(us, vs)]
    if not pieces:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(pieces)


def _affected_vertices(old: CSRGraph, new: CSRGraph, eff_ins: np.ndarray,
                       eff_del: np.ndarray, endpoints: np.ndarray
                       ) -> np.ndarray:
    """Every vertex whose triangle counts can differ between old and new.

    Undirected: a triangle present in exactly one of the graphs contains
    a changed edge (u, v), so its third vertex lies in ``adj(u) ∩ adj(v)``
    — of the old graph for deleted edges (the destroyed triangles existed
    there) and of the new graph for inserted ones.  The exact set is
    therefore the changed endpoints plus those per-edge *common*
    neighborhoods — a sharp subset of "endpoints ∪ their neighbors",
    which is what keeps the incremental recompute sublinear on hub-heavy
    graphs.  Directed graphs fall back to the conservative superset
    (endpoints ∪ out- and in-neighborhoods, old and new).
    """
    if endpoints.size == 0:
        return np.empty(0, dtype=np.int64)
    n = old.n
    if old.directed:
        pieces = [endpoints,
                  _out_neighbors(old, endpoints), _out_neighbors(new, endpoints),
                  _in_neighbors(old, endpoints), _in_neighbors(new, endpoints)]
        return np.unique(np.concatenate(pieces))
    pieces = [endpoints]
    for keys, graph in ((eff_del, old), (eff_ins, new)):
        if keys.size:
            u, v = keys // n, keys % n
            one_dir = u < v  # stored both ways; intersect each edge once
            pieces.append(_common_neighbors_pairs(graph, u[one_dir],
                                                  v[one_dir]))
    return np.unique(np.concatenate(pieces))


def apply_delta(graph: CSRGraph, batch: UpdateBatch, *,
                strict: bool = True) -> DeltaResult:
    """Apply an update batch; returns the new graph + the affected set.

    Equivalent to rebuilding with ``CSRGraph.from_edges`` over the edited
    edge list (pinned bit-identically by the property suite) but runs as
    a vectorized merge against the existing CSR.  ``strict=False`` skips
    already-present inserts and absent deletes instead of raising.
    """
    if batch.n != graph.n:
        raise GraphFormatError(
            f"batch over {batch.n} vertices does not match graph with {graph.n}")
    if batch.directed != graph.directed:
        raise GraphFormatError(
            f"batch directedness ({batch.directed}) does not match graph "
            f"({graph.directed})")
    n = graph.n
    old_keys = _stored_keys(graph)

    del_present, del_pos = _member_positions(old_keys, batch.delete_keys)
    if strict and not del_present.all():
        missing = batch.delete_keys[~del_present][0]
        raise GraphFormatError(
            f"delete of absent edge ({int(missing) // n}, {int(missing) % n})")
    ins_present, _ = _member_positions(old_keys, batch.insert_keys)
    if strict and ins_present.any():
        dup = batch.insert_keys[ins_present][0]
        raise GraphFormatError(
            f"insert of existing edge ({int(dup) // n}, {int(dup) % n})")

    eff_del = batch.delete_keys[del_present]
    eff_ins = batch.insert_keys[~ins_present]

    keep = np.ones(old_keys.shape[0], dtype=bool)
    keep[del_pos[del_present]] = False
    kept = old_keys[keep]
    n_ins = eff_ins.shape[0]
    merged = np.empty(kept.shape[0] + n_ins, dtype=np.int64)
    if n_ins:
        # Classic two-sorted-array merge via searchsorted: each insert's
        # final position is its rank among the kept keys plus the number
        # of inserts before it.
        ins_at = np.searchsorted(kept, eff_ins) + np.arange(n_ins)
        is_ins = np.zeros(merged.shape[0], dtype=bool)
        is_ins[ins_at] = True
        merged[is_ins] = eff_ins
        merged[~is_ins] = kept
    else:
        merged[:] = kept

    src, dst = merged // n, merged % n
    offsets = np.zeros(n + 1, dtype=OFFSET_DTYPE)
    np.cumsum(np.bincount(src, minlength=n), out=offsets[1:])
    new_graph = CSRGraph(offsets, dst.astype(VERTEX_DTYPE),
                         directed=graph.directed, name=graph.name)

    changed = np.concatenate([eff_ins, eff_del])
    endpoints = (np.unique(np.concatenate([changed // n, changed % n]))
                 if changed.size else np.empty(0, dtype=np.int64))
    div = 1 if graph.directed else 2
    return DeltaResult(
        graph=new_graph,
        affected=_affected_vertices(graph, new_graph, eff_ins, eff_del,
                                    endpoints),
        endpoints=endpoints,
        changed_keys=np.sort(changed),
        n_inserted=n_ins // div,
        n_deleted=eff_del.shape[0] // div,
        n_skipped_inserts=int(ins_present.sum()) // div,
        n_skipped_deletes=int((~del_present).sum()) // div,
    )


# ---------------------------------------------------------------------------
# Deterministic random batches (benchmarks, workloads, examples)
# ---------------------------------------------------------------------------

def random_update_arrays(graph: CSRGraph, n_edges: int = 16,
                         delete_fraction: float = 0.25,
                         seed: int | np.random.Generator | None = None
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Raw ``(inserts, deletes)`` arrays for a synthetic update batch.

    Inserts are uniform random pairs (self-loops and existing edges land
    in the batch and are normalized/skipped downstream — as real feeds
    do); deletes sample existing edges.  Deletes colliding with an insert
    are dropped so the batch stays unambiguous.  Fully deterministic for
    a given seed.
    """
    if n_edges < 0:
        raise GraphFormatError(f"n_edges must be >= 0, got {n_edges}")
    if not 0.0 <= delete_fraction <= 1.0:
        raise GraphFormatError(
            f"delete_fraction must be in [0, 1], got {delete_fraction}")
    rng = make_rng(seed)
    n_del = int(round(n_edges * delete_fraction))
    n_ins = n_edges - n_del
    inserts = (rng.integers(0, graph.n, size=(n_ins, 2))
               if n_ins and graph.n else np.empty((0, 2), dtype=np.int64))
    deletes = np.empty((0, 2), dtype=np.int64)
    if n_del:
        edges = graph.edges()
        if not graph.directed:
            edges = edges[edges[:, 0] < edges[:, 1]]
        if edges.shape[0]:
            idx = rng.choice(edges.shape[0],
                             size=min(n_del, edges.shape[0]), replace=False)
            deletes = edges[np.sort(idx)]
    if inserts.size and deletes.size:
        # Canonical undirected key = (min, max) pair; directed = as-is.
        def canon(e):
            if graph.directed:
                a, b = e[:, 0], e[:, 1]
            else:
                a = np.minimum(e[:, 0], e[:, 1])
                b = np.maximum(e[:, 0], e[:, 1])
            return a * np.int64(graph.n) + b
        deletes = deletes[~np.isin(canon(deletes), canon(inserts))]
    return inserts, deletes


def random_update_batch(graph: CSRGraph, n_edges: int = 16,
                        delete_fraction: float = 0.25,
                        seed: int | np.random.Generator | None = None
                        ) -> UpdateBatch:
    """A ready-to-apply deterministic random batch for ``graph``."""
    inserts, deletes = random_update_arrays(graph, n_edges, delete_fraction,
                                            seed)
    return UpdateBatch.build(inserts, deletes, n=graph.n,
                             directed=graph.directed)
