"""Consistent-hash placement of session keys over stores.

The :class:`HashRing` is the classic construction: every node owns
``vnodes`` points on a 64-bit ring, a key lands on the first point at or
clockwise of its own hash, and membership changes only reassign the arcs
adjacent to the affected node's points — removing one of ``N`` nodes
remaps only the keys it owned (~``K/N`` of them), and adding a node
steals ~``K/N`` keys spread evenly across the others.  The property
suite pins both bounds.

Hashing is :func:`hashlib.blake2b` over ``repr(key)`` bytes —
deliberately *not* Python's builtin ``hash``, which is salted per
process (``PYTHONHASHSEED``) and would make placement unreproducible
across runs.  Everything here is a pure function of the membership set
and the key, which is what makes routed serving bit-reproducible.

The :class:`ShardRouter` binds a ring to actual stores: serving resolves
a request's ``session_key`` to the replica that owns it, and membership
doubles as liveness — evicting a replica removes its points, so
surviving replicas inherit its keys with no coordination.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Hashable, Iterable

from repro.utils.errors import ConfigError

__all__ = ["HashRing", "ShardRouter"]

DEFAULT_VNODES = 64


def _point(data: bytes) -> int:
    """A stable 64-bit ring position for ``data``."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big")


def _key_bytes(key: Hashable) -> bytes:
    # repr() of the session-key tuples used for routing is deterministic
    # (str graph names, sorted override tuples) — unlike hash(), which
    # is process-salted.
    return repr(key).encode()


class HashRing:
    """A consistent-hash ring of named nodes with virtual points."""

    def __init__(self, nodes: Iterable[str] = (), *,
                 vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ConfigError(f"need >= 1 vnode per node, got {vnodes}")
        self.vnodes = int(vnodes)
        self._points: list[tuple[int, str]] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def add(self, node: str) -> None:
        """Insert ``node``'s points; ~K/len(ring) keys move to it."""
        if not node:
            raise ConfigError("a ring node needs a non-empty name")
        if node in self._nodes:
            raise ConfigError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        for i in range(self.vnodes):
            point = _point(f"{node}#{i}".encode())
            self._points.append((point, node))
        self._points.sort()

    def remove(self, node: str) -> None:
        """Drop ``node``'s points; only the keys it owned move."""
        if node not in self._nodes:
            raise ConfigError(f"node {node!r} is not on the ring")
        self._nodes.discard(node)
        self._points = [p for p in self._points if p[1] != node]

    def owner(self, key: Hashable) -> str:
        """The node owning ``key``: first point clockwise of its hash."""
        if not self._points:
            raise ConfigError("the ring has no nodes")
        point = _point(_key_bytes(key))
        idx = bisect_right(self._points, (point, "￿"))
        return self._points[idx % len(self._points)][1]

    def table(self, keys: Iterable[Hashable]) -> dict:
        """Placement of many keys at once (for stability measurements)."""
        return {key: self.owner(key) for key in keys}


class ShardRouter:
    """A ring over live stores: ``session_key`` → the store serving it."""

    def __init__(self, stores: dict | None = None, *,
                 vnodes: int = DEFAULT_VNODES):
        self._ring = HashRing(vnodes=vnodes)
        self._stores: dict[str, object] = {}
        for store_id, store in (stores or {}).items():
            self.add_store(store_id, store)

    def __len__(self) -> int:
        return len(self._stores)

    def __contains__(self, store_id: str) -> bool:
        return store_id in self._stores

    def store_ids(self) -> list[str]:
        return self._ring.nodes()

    def add_store(self, store_id: str, store) -> None:
        self._ring.add(store_id)
        self._stores[store_id] = store

    def remove_store(self, store_id: str):
        """Take a store out of rotation; its keys re-route immediately."""
        self._ring.remove(store_id)
        return self._stores.pop(store_id)

    def route(self, session_key: Hashable) -> str:
        """The id of the store owning ``session_key``."""
        return self._ring.owner(session_key)

    def store_for(self, session_key: Hashable):
        """The store object owning ``session_key`` (the pool's hook)."""
        return self._stores[self._ring.owner(session_key)]

    def get(self, store_id: str):
        try:
            return self._stores[store_id]
        except KeyError:
            raise ConfigError(
                f"store {store_id!r} is not routed "
                f"({', '.join(self.store_ids()) or 'empty'})") from None
