"""Property-based end-to-end tests: distributed == local == networkx."""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CacheSpec, LCCConfig
from repro.core.lcc import run_distributed_lcc
from repro.core.local import triangle_count_local
from repro.core.tc import run_distributed_tc
from repro.graph.csr import CSRGraph


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=3, max_value=40))
    m = draw(st.integers(min_value=0, max_value=120))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(m, 2))
    return CSRGraph.from_edges(edges, n)


@given(random_graphs(), st.integers(min_value=1, max_value=6))
@settings(max_examples=60, deadline=None)
def test_distributed_lcc_matches_networkx(graph, nranks):
    res = run_distributed_lcc(graph, LCCConfig(nranks=nranks))
    g = nx.Graph()
    g.add_nodes_from(range(graph.n))
    g.add_edges_from(map(tuple, graph.edges()))
    expected = nx.clustering(g)
    for v in range(graph.n):
        assert abs(res.lcc[v] - expected[v]) < 1e-12


@given(random_graphs(), st.integers(min_value=1, max_value=6),
       st.sampled_from(["block", "cyclic"]),
       st.sampled_from(["ssi", "binary", "hybrid"]))
@settings(max_examples=60, deadline=None)
def test_distributed_tc_invariant_to_configuration(graph, nranks, partition,
                                                   method):
    res = run_distributed_tc(graph, LCCConfig(
        nranks=nranks, partition=partition, method=method))
    assert res.global_triangles == triangle_count_local(graph)


@given(random_graphs(), st.integers(min_value=2, max_value=5),
       st.integers(min_value=256, max_value=1 << 14),
       st.sampled_from(["default", "degree", "lru"]))
@settings(max_examples=40, deadline=None)
def test_caching_never_changes_results(graph, nranks, cache_bytes, score):
    cfg = LCCConfig(nranks=nranks)
    plain = run_distributed_lcc(graph, cfg)
    cached = run_distributed_lcc(graph, cfg.replace(
        cache=CacheSpec.paper_split(cache_bytes, max(graph.n, 4),
                                    score=score)))
    np.testing.assert_array_equal(plain.lcc, cached.lcc)
    np.testing.assert_array_equal(plain.triangles_per_vertex,
                                  cached.triangles_per_vertex)
