"""Schema validation for BENCH_*.json reports and trajectory rows."""

import json

import pytest

from repro.analysis.benchreport import append_trajectory_row
from repro.analysis.schema import (
    REPORT_KINDS,
    infer_kind,
    required_keys,
    validate_file,
    validate_report,
    validate_trajectory,
    validate_trajectory_row,
    validate_tree,
)


def _minimal_report(kind):
    report = {key: {} for key in required_keys(kind)}
    report["schema_version"] = 1
    report["quick"] = True
    return report


def test_infer_kind_from_filenames():
    assert infer_kind("BENCH_kernels.json") == "kernels"
    assert infer_kind("/some/dir/BENCH_async.json") == "async"
    assert infer_kind("BENCH_async_quick.json") is None
    assert infer_kind("BENCH_trajectory.json") is None
    assert infer_kind("report.json") is None


def test_required_keys_unknown_kind():
    with pytest.raises(ValueError, match="unknown report kind"):
        required_keys("nope")


@pytest.mark.parametrize("kind", sorted(REPORT_KINDS))
def test_minimal_report_passes_per_kind(kind):
    assert validate_report(_minimal_report(kind), kind) == []


def test_missing_key_and_bad_schema_version():
    report = _minimal_report("kernels")
    del report["graphs"]
    report["schema_version"] = 0
    problems = validate_report(report, "kernels")
    assert any("missing key 'graphs'" in p for p in problems)
    assert any("schema_version" in p for p in problems)


def test_baseline_mode_accepts_partial_reports():
    # --check baselines may be partial: only the compared sections exist.
    partial = {"cached_replay": {"lcc:g": {"warm_speedup": 8.0}}}
    assert validate_report(partial, "kernels", strict=False) == []
    # But anything present must still be well-formed.
    assert validate_report({"schema_version": "one"}, "kernels",
                           strict=False)
    assert validate_report({"x": float("nan")}, "kernels", strict=False)


def test_non_finite_numbers_rejected():
    report = _minimal_report("kernels")
    report["kernels"] = {"lcc:g": {"wall_clock_s": float("nan")}}
    problems = validate_report(report, "kernels")
    assert any("non-finite" in p and "wall_clock_s" in p for p in problems)


def test_non_dict_report():
    assert validate_report([1, 2], "kernels")
    assert validate_report(None) != []


def test_trajectory_row_validation():
    good = {"date": "2026-08-08", "kind": "async", "speedup": 2.0}
    assert validate_trajectory_row(good) == []
    assert validate_trajectory_row({"date": "yesterday", "x": 1})
    assert validate_trajectory_row({"date": "2026-08-08"})  # no payload
    assert validate_trajectory_row(
        {"date": "2026-08-08", "x": float("inf")})


def test_trajectory_document_validation():
    good = {"schema_version": 1,
            "rows": [{"date": "2026-01-01", "n": 3}]}
    assert validate_trajectory(good) == []
    assert validate_trajectory({"schema_version": 1, "rows": "nope"})
    bad_row = {"schema_version": 1, "rows": [{"n": 3}]}
    problems = validate_trajectory(bad_row)
    assert any("row 0" in p for p in problems)


def test_validate_file_dispatch(tmp_path):
    p = tmp_path / "BENCH_kernels.json"
    p.write_text(json.dumps(_minimal_report("kernels")))
    assert validate_file(str(p)) == []
    t = tmp_path / "BENCH_trajectory.json"
    t.write_text(json.dumps({"schema_version": 1, "rows": []}))
    assert validate_file(str(t)) == []
    missing = validate_file(str(tmp_path / "BENCH_store.json"))
    assert missing and "does not exist" in missing[0]
    corrupt = tmp_path / "BENCH_async.json"
    corrupt.write_text("{not json")
    assert any("not valid JSON" in p for p in validate_file(str(corrupt)))
    problems = validate_tree([str(p), str(corrupt)])
    assert len(problems) == 1 and str(corrupt) in problems[0]


def test_append_refuses_malformed_row(tmp_path):
    path = str(tmp_path / "BENCH_trajectory.json")
    with pytest.raises(ValueError, match="malformed trajectory row"):
        append_trajectory_row({"date": "not-a-date", "x": 1}, path)
    # A good row still appends.
    row = append_trajectory_row({"date": "2026-08-08", "x": 1}, path)
    assert row["x"] == 1
    data = json.loads(open(path).read())
    assert len(data["rows"]) == 1
