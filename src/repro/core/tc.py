"""Distributed, fully asynchronous global triangle counting.

Same communication structure as the LCC kernel (Algorithm 3), but with the
paper's double-counting elimination (Section II-C): for an undirected
graph, rank ``r`` processes each locally-owned edge ``(v, j)`` only when
``v < j`` and counts common neighbours ``k > j``, so every triangle
``i < j < k`` is counted exactly once, at its smallest-id vertex's owner.

The final global sum is a single allreduce; its cost (``log2 p`` latency
stages) is charged to every rank's clock.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.config import DistributedRunResult, LCCConfig
from repro.core.intersect import count_common_above
from repro.core.lcc import setup_distributed, _merged_stats
from repro.core.threading import OpenMPModel
from repro.graph.csr import CSRGraph
from repro.graph.distributed import DistributedCSR
from repro.runtime.context import SimContext
from repro.utils.errors import ConfigError


def _tc_rank_fn(dist: DistributedCSR, config: LCCConfig, omp: OpenMPModel,
                counts_out: np.ndarray):
    method = config.method
    overlap = config.overlap
    memory = config.memory
    network = config.network
    nranks = config.nranks

    def rank_fn(ctx: SimContext) -> int:
        rank = ctx.rank
        vs = dist.local_vertices(rank)
        offs_local = dist.w_offsets.local_part(rank)
        adj_local = dist.w_adj.local_part(rank)
        local_count = 0
        for li in range(vs.shape[0]):
            v = int(vs[li])
            a = adj_local[offs_local[li]:offs_local[li + 1]]
            dt = memory.local_read_time(a.nbytes)
            ctx.advance(dt)
            ctx.trace.comp_time += dt
            # Only the upper-triangle endpoints: j > v.
            uppers = a[np.searchsorted(a, v + 1):]
            deg = a.shape[0]
            if overlap and uppers.shape[0]:
                local_count += _count_overlapped(ctx, dist, omp, method,
                                                 a, uppers, deg)
            else:
                for j in uppers:
                    b = dist.read_adjacency(ctx, int(j))
                    ctx.compute(omp.kernel_time(method, deg, b.shape[0]))
                    local_count += count_common_above(a, b, int(j), method)
        # Global reduction of the per-rank counts.
        stages = math.ceil(math.log2(nranks)) if nranks > 1 else 0
        ctx.advance(stages * (network.alpha + 8 * network.beta))
        counts_out[rank] = local_count
        return local_count

    return rank_fn


def _count_overlapped(ctx, dist, omp, method, a, uppers, deg) -> int:
    b, comm_dt = dist.read_adjacency_timed(ctx, int(uppers[0]))
    ctx.advance(comm_dt)
    total = 0
    for i in range(uppers.shape[0]):
        j = int(uppers[i])
        kernel_dt = omp.kernel_time(method, deg, b.shape[0])
        total += count_common_above(a, b, j, method)
        if i + 1 < uppers.shape[0]:
            b_next, comm_next = dist.read_adjacency_timed(ctx, int(uppers[i + 1]))
            ctx.advance(max(kernel_dt, comm_next))
            ctx.trace.comp_time += kernel_dt
            b = b_next
        else:
            ctx.compute(kernel_dt)
    return total


def require_undirected(graph: CSRGraph) -> None:
    """Reject directed graphs with the triangle-counting error message."""
    if graph.directed:
        raise ConfigError(
            "global triangle counting expects an undirected graph; "
            "use run_distributed_lcc for directed transitive-triad analysis"
        )


def run_distributed_tc(graph: CSRGraph, config: LCCConfig | None = None
                       ) -> DistributedRunResult:
    """Count all triangles of an undirected graph on the simulated cluster."""
    require_undirected(graph)
    config = config or LCCConfig()
    engine, dist, off_caches, adj_caches = setup_distributed(graph, config)
    return execute_tc(engine, dist, config, off_caches, adj_caches)


def execute_tc(engine, dist: DistributedCSR, config: LCCConfig,
               off_caches: list = (), adj_caches: list = ()
               ) -> DistributedRunResult:
    """Run the TC kernel on an already-built cluster (epochs open on entry).

    Like :func:`repro.core.lcc.execute_lcc`, dispatches to the batched
    replay (:mod:`repro.core.replay`) when ``config.fast_path`` is on and
    op recording is off, and to the per-edge loop otherwise.
    """
    if config.fast_path and not config.record_ops:
        from repro.core.replay import execute_tc_batched

        return execute_tc_batched(engine, dist, config, off_caches,
                                  adj_caches)
    return execute_tc_loop(engine, dist, config, off_caches, adj_caches)


def execute_tc_loop(engine, dist: DistributedCSR, config: LCCConfig,
                    off_caches: list = (), adj_caches: list = ()
                    ) -> DistributedRunResult:
    """The per-edge TC loop — the batched replay's reference oracle.

    Counterpart of :func:`repro.core.lcc.execute_lcc_loop` for global
    triangle counting; epochs must be open on entry and are closed on
    return.
    """
    omp = OpenMPModel(threads=config.threads, compute=config.compute,
                      wait_policy=config.wait_policy)
    counts = np.zeros(config.nranks, dtype=np.int64)
    outcome = engine.run(_tc_rank_fn(dist, config, omp, counts))
    dist.close_epochs()
    return DistributedRunResult(
        lcc=None,
        triangles_per_vertex=None,
        global_triangles=int(counts.sum()),
        outcome=outcome,
        offsets_cache_stats=_merged_stats(off_caches),
        adj_cache_stats=_merged_stats(adj_caches),
    )
