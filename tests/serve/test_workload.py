"""Workload generation: determinism, arrival process, popularity skew."""

import numpy as np
import pytest

from repro.serve.request import QueryRequest, freeze_overrides
from repro.serve.workload import (
    WorkloadSpec,
    default_catalog,
    generate_workload,
    zipf_weights,
)
from repro.utils.errors import ConfigError

SPEC = WorkloadSpec(n_queries=400, arrival_rate=500.0, n_tenants=10, seed=3)


class TestZipfWeights:
    def test_uniform_at_zero_skew(self):
        w = zipf_weights(8, 0.0)
        assert np.allclose(w, 1.0 / 8)

    def test_skew_concentrates_on_first_ranks(self):
        w = zipf_weights(8, 1.2)
        assert np.all(np.diff(w) < 0)
        assert w[0] > 0.3
        assert np.isclose(w.sum(), 1.0)

    def test_invalid_args_rejected(self):
        with pytest.raises(ConfigError):
            zipf_weights(0, 1.0)
        with pytest.raises(ConfigError):
            zipf_weights(4, -0.1)


class TestGenerate:
    def test_deterministic_for_a_seed(self):
        assert generate_workload(SPEC) == generate_workload(SPEC)

    def test_different_seed_different_trace(self):
        from dataclasses import replace
        other = generate_workload(replace(SPEC, seed=4))
        assert other != generate_workload(SPEC)

    def test_arrivals_are_sorted_and_positive(self):
        requests = generate_workload(SPEC)
        arrivals = [r.arrival for r in requests]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0
        # Poisson at 500 q/s: 400 arrivals span roughly a second.
        assert 0.3 < arrivals[-1] < 3.0

    def test_qids_dense_and_unique(self):
        requests = generate_workload(SPEC)
        assert [r.qid for r in requests] == list(range(SPEC.n_queries))

    def test_zipf_tenants_skewed_uniform_not(self):
        skewed = generate_workload(SPEC)
        uniform = generate_workload(SPEC.uniform())
        top_skew = max(np.bincount([r.tenant for r in skewed]))
        top_uni = max(np.bincount([r.tenant for r in uniform]))
        assert top_skew > 2 * SPEC.n_queries / SPEC.n_tenants
        assert top_skew > top_uni

    def test_tenant_home_is_stable(self):
        """Every query of one tenant lands on one (graph, variant) key."""
        requests = generate_workload(SPEC)
        homes = {}
        for r in requests:
            homes.setdefault(r.tenant, set()).add(r.session_key)
        assert all(len(keys) == 1 for keys in homes.values())

    def test_kernels_only_resident(self):
        with pytest.raises(ConfigError, match="resident"):
            generate_workload(WorkloadSpec(kernels=("tric",)))

    def test_graphs_match_catalog(self):
        catalog = default_catalog(scale=0.2)
        requests = generate_workload(
            WorkloadSpec(n_queries=50, graphs=tuple(catalog)))
        assert {r.graph for r in requests} <= set(catalog)


class TestRequestModel:
    def test_ordering_is_arrival_then_qid(self):
        a = QueryRequest(arrival=1.0, qid=2, tenant=0, graph="g")
        b = QueryRequest(arrival=1.0, qid=3, tenant=0, graph="g")
        c = QueryRequest(arrival=0.5, qid=9, tenant=0, graph="g")
        assert sorted([b, a, c]) == [c, a, b]

    def test_session_key_folds_graph_and_overrides(self):
        r = QueryRequest(arrival=0.0, qid=0, tenant=1, graph="g",
                         overrides=freeze_overrides({"method": "ssi"}))
        assert r.session_key == ("g", (("method", "ssi"),))
        assert r.override_dict() == {"method": "ssi"}

    def test_invalid_fields_rejected(self):
        with pytest.raises(ConfigError):
            QueryRequest(arrival=-1.0, qid=0, tenant=0, graph="g")
        with pytest.raises(ConfigError):
            QueryRequest(arrival=0.0, qid=-1, tenant=0, graph="g")

    def test_spec_validation(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(n_queries=0)
        with pytest.raises(ConfigError):
            WorkloadSpec(arrival_rate=0.0)
        with pytest.raises(ConfigError):
            WorkloadSpec(graphs=())


class TestArrivalModes:
    def test_poisson_trace_unchanged_by_the_new_knobs(self):
        """The burst machinery must not perturb the default mode: a
        "poisson" spec reproduces the pre-knob trace bit for bit."""
        base = generate_workload(SPEC)
        again = generate_workload(
            WorkloadSpec(n_queries=400, arrival_rate=500.0, n_tenants=10,
                         seed=3, arrival_mode="poisson",
                         burst_factor=99.0, burst_fraction=0.9))
        assert [(r.qid, r.arrival, r.tenant, r.graph) for r in base] == \
               [(r.qid, r.arrival, r.tenant, r.graph) for r in again]

    def test_bursty_compresses_gaps_only_inside_episodes(self):
        base = generate_workload(SPEC)
        burst = generate_workload(SPEC.bursty(factor=8.0, fraction=0.3))
        base_gaps = np.diff([r.arrival for r in base], prepend=0.0)
        burst_gaps = np.diff([r.arrival for r in burst], prepend=0.0)
        compressed = np.isclose(burst_gaps, base_gaps / 8.0)
        untouched = np.isclose(burst_gaps, base_gaps)
        assert np.all(compressed | untouched)
        assert compressed.any() and untouched.any()
        # Identity otherwise: same tenants, graphs, qids.
        assert [(r.qid, r.tenant, r.graph) for r in base] == \
               [(r.qid, r.tenant, r.graph) for r in burst]

    def test_flash_crowd_is_contiguous_and_retargeted(self):
        base = generate_workload(SPEC)
        flash = generate_workload(SPEC.flash_crowd(factor=50.0,
                                                   fraction=0.4))
        base_gaps = np.diff([r.arrival for r in base], prepend=0.0)
        gaps = np.diff([r.arrival for r in flash], prepend=0.0)
        hit = np.flatnonzero(np.isclose(gaps, base_gaps / 50.0)
                             & ~np.isclose(base_gaps, 0.0))
        assert len(hit) >= int(0.3 * len(base))
        # One contiguous stampede...
        assert np.all(np.diff(hit) == 1)
        # ...aimed at the hottest tenant (Zipf rank 0).
        assert all(flash[i].tenant == 0 for i in hit)

    def test_arrivals_stay_sorted_in_every_mode(self):
        for spec in (SPEC.bursty(), SPEC.flash_crowd()):
            arrivals = [r.arrival for r in generate_workload(spec)]
            assert arrivals == sorted(arrivals)
            assert all(a >= 0 for a in arrivals)

    def test_burst_knobs_validated(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(arrival_mode="storm")
        with pytest.raises(ConfigError):
            WorkloadSpec(arrival_mode="bursty", burst_factor=1.0)
        with pytest.raises(ConfigError):
            WorkloadSpec(arrival_mode="flash", burst_fraction=0.0)
        with pytest.raises(ConfigError):
            WorkloadSpec(arrival_mode="flash", burst_fraction=1.0)
