"""Property tests: a sharded store is indistinguishable from an unsharded one.

Random catalogs, random shard geometries, random insert/delete batch
sequences: after every commit the sharded head's bytes equal the
unsharded :class:`~repro.graphstore.store.GraphStore` head's bytes,
kernel answers agree, the version vector re-derives from the commit log,
and two sharded stores replaying the same sequence produce bit-identical
per-shard chain digests.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.local import triangles_min_vertex, triangles_per_vertex_batched
from repro.dynamic.delta import random_update_batch
from repro.graph.csr import CSRGraph
from repro.graphstore import GraphStore
from repro.graphstore.store import graph_digest
from repro.shardstore import ShardedGraphStore
from repro.utils.rng import derive_seed


@st.composite
def shard_cases(draw):
    """A random graph, an aligned shard geometry, and a batch-seed."""
    n = draw(st.integers(min_value=12, max_value=48))
    m = draw(st.integers(min_value=0, max_value=160))
    nshards = draw(st.sampled_from([1, 2, 3, 4]))
    nranks = nshards * draw(st.sampled_from([1, 2, 3]))
    rounds = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(derive_seed(seed, "sharded-prop", n, m))
    graph = CSRGraph.from_edges(rng.integers(0, n, size=(m, 2)), n)
    return graph, nshards, nranks, rounds, seed


@given(shard_cases())
@settings(max_examples=40, deadline=None)
def test_sharded_equals_unsharded(case):
    graph, nshards, nranks, rounds, seed = case
    sharded = ShardedGraphStore({"g": graph}, nshards=nshards, nranks=nranks)
    replay = ShardedGraphStore({"g": graph}, nshards=nshards, nranks=nranks)
    plain = GraphStore({"g": graph})
    for r in range(rounds):
        batch = random_update_batch(
            plain.graph("g"), n_edges=12, delete_fraction=0.3,
            seed=derive_seed(seed, "sharded-prop-batch", r))
        upd = sharded.apply("g", batch)
        replay.apply("g", batch)
        ref = plain.apply("g", batch)
        # Heads are bit-identical, so every kernel answer is too; check
        # the bytes and two real kernel answers to make that concrete.
        np.testing.assert_array_equal(upd.graph.offsets, ref.graph.offsets)
        np.testing.assert_array_equal(upd.graph.adjacency,
                                      ref.graph.adjacency)
        assert graph_digest(sharded.graph("g")) == \
            graph_digest(plain.graph("g"))
        np.testing.assert_array_equal(
            triangles_per_vertex_batched(sharded.graph("g")),
            triangles_per_vertex_batched(plain.graph("g")))
        np.testing.assert_array_equal(
            triangles_min_vertex(sharded.graph("g")),
            triangles_min_vertex(plain.graph("g")))
    # The commit log proves the version vector; replay proves the chains.
    assert sharded.version("g").version == rounds
    assert sharded.check_version_vector("g") == []
    assert sharded.version_vector("g") == replay.version_vector("g")
    for s in range(nshards):
        assert sharded.shard_digest("g", s) == replay.shard_digest("g", s)
    assert sharded.digest("g") == replay.digest("g")


@given(shard_cases())
@settings(max_examples=20, deadline=None)
def test_history_reconstruction_matches_unsharded(case):
    graph, nshards, nranks, rounds, seed = case
    sharded = ShardedGraphStore({"g": graph}, nshards=nshards, nranks=nranks)
    plain = GraphStore({"g": graph})
    for r in range(rounds):
        batch = random_update_batch(
            plain.graph("g"), n_edges=10, delete_fraction=0.25,
            seed=derive_seed(seed, "sharded-hist", r))
        sharded.apply("g", batch)
        plain.apply("g", batch)
    for v in range(rounds + 1):
        assert graph_digest(sharded.graph("g", v)) == \
            graph_digest(plain.graph("g", v))
