"""The ``repro trace`` command: artifacts, summary, and the gate."""

import json

import pytest

from repro.analysis.tracing import (
    TRACE_REPORT_KEYS,
    check_traced_run,
    format_check_report,
    one_off_trace_run,
)
from repro.cli import main
from repro.obs.journal import DecisionJournal, replay_journal


@pytest.fixture(scope="module")
def check_report():
    return check_traced_run(quick=True, repeats=1)


def test_check_report_shape_and_verdict(check_report):
    for key in TRACE_REPORT_KEYS:
        assert key in check_report, key
    assert check_report["ok"], check_report["problems"]
    assert check_report["digests_identical"] is True
    assert check_report["journal_deterministic"] is True
    assert check_report["replay"]["ok"] is True
    assert check_report["span_problems"] == []
    assert check_report["overhead_ratio"] >= 0.0
    json.dumps(check_report)


def test_format_check_report_lines(check_report):
    lines = format_check_report(check_report)
    assert any("parity" in line for line in lines)
    assert any("overhead" in line for line in lines)


def test_one_off_writes_replayable_artifacts(tmp_path):
    journal_path = str(tmp_path / "journal.jsonl")
    trace_path = str(tmp_path / "trace.json")
    payload = one_off_trace_run(journal_path=journal_path,
                                trace_path=trace_path, quick=True)
    assert payload["replay"]["ok"], payload["replay"]["problems"]
    assert payload["span_problems"] == []
    # The written journal round-trips and matches the in-memory digest.
    journal = DecisionJournal.load(journal_path)
    assert journal.digest() == payload["journal_digest"]
    assert len(journal) == payload["n_events"]
    # Replay works from the serialized form too.
    from repro.analysis.tracing import trace_workload

    _, requests, _ = trace_workload(quick=True)
    assert replay_journal(journal, requests).ok
    doc = json.loads(open(trace_path).read())
    assert doc["traceEvents"]
    # Domains in the utilization report include shard-set fences.
    assert any("[" in key for key in payload["utilization"]["domains"])


def test_cli_trace_one_off(tmp_path, capsys):
    journal = str(tmp_path / "j.jsonl")
    trace = str(tmp_path / "t.json")
    rc = main(["trace", "--quick", "--json",
               "--journal", journal, "--trace", trace])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["replay"]["ok"] is True
    assert json.loads(open(trace).read())["traceEvents"]


def test_cli_trace_interleave_scheduler(tmp_path, capsys):
    rc = main(["trace", "--quick", "--json", "--scheduler", "interleave",
               "--seed", "3",
               "--journal", str(tmp_path / "j.jsonl"),
               "--trace", str(tmp_path / "t.json")])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["scheduler"] == "interleave"
    assert payload["replay"]["ok"] is True


def test_cli_trace_check_rejects_customization(tmp_path):
    with pytest.raises(SystemExit, match="pinned gate workload"):
        main(["trace", "--quick", "--check", "--scheduler", "interleave"])


def test_check_flags_artifact_problems(tmp_path, monkeypatch):
    bad = tmp_path / "BENCH_async.json"
    bad.write_text("{broken")
    monkeypatch.chdir(tmp_path)
    report = check_traced_run(quick=True, repeats=1)
    assert not report["ok"]
    assert any("artifact schema" in p for p in report["problems"])
