"""Bench: regenerate Figure 4 — reuse concentration across distributions.

Acceptance shape: power-law graphs concentrate remote reads on the
top-degree vertices far more than the uniform graph does.
"""

from conftest import run_once

from repro.analysis.experiments import exp_fig4
from repro.analysis.reuse import top_degree_read_share
from repro.graph.datasets import load_dataset


def test_fig4(benchmark):
    tables = run_once(benchmark, exp_fig4.run, fast=True)
    assert tables


def test_concentration_contrast(benchmark):
    def shares():
        uni = top_degree_read_share(load_dataset("uniform"), 8)
        pl = top_degree_read_share(load_dataset("rmat-s21-ef16"), 8)
        return uni, pl

    uni, pl = benchmark(shares)
    assert pl > uni + 0.2  # paper: 91.9% vs 11.7%
