"""2D (grid) edge partitioning — the paper's future-work direction i.

The conclusion plans "new asynchronous algorithms for TC/LCC based on
distribution schema that have lower communication costs than 1D
distribution", citing 2.5D matrix-multiplication work; the related-work
section describes 2D partitioning as assigning *edges* to a process grid
(Tom & Karypis).  This module provides that substrate:

ranks form an ``r x c`` grid; edge ``(u, v)`` lives on rank
``grid[row_block(u)][col_block(v)]``.  A rank therefore owns the adjacency
*block* A[I, J] for its row range I and column range J.  For triangle
counting, the classic consequence is that the lists needed to close a
wedge are found within one grid row + one grid column — O(sqrt(p)) peers —
instead of potentially all ``p`` peers under 1D.

:func:`tc2d_communication_volume` quantifies that saving analytically and
is exercised by the ablation benchmark; a full asynchronous 2D TC kernel
is provided by :func:`repro.core.tc2d.run_distributed_tc_2d`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.csr import CSRGraph, _check_vertex_range
from repro.utils.errors import PartitionError


def _validate_edge_array(edges: np.ndarray, n: int) -> np.ndarray:
    """Validate an (m, 2) edge array against an ``n``-vertex universe.

    Mirrors :meth:`CSRGraph.from_edges`: the array must be integer-typed
    with every id in ``[0, n)``; the whole array is checked in one
    vectorized pass (min/max), not one vertex at a time.  Returns the
    array as int64.
    """
    e = np.asarray(edges)
    if e.ndim != 2 or e.shape[1] != 2:
        raise PartitionError(f"edges must be (m, 2), got shape {e.shape}")
    if e.dtype.kind not in "iu":
        raise PartitionError(
            f"edges must be an integer array, got dtype {e.dtype}")
    if e.size:
        if int(e.min()) < 0:
            raise PartitionError("negative vertex id in edge array")
        if int(e.max()) >= n:
            raise PartitionError(
                f"vertex id {int(e.max())} out of range for n={n}")
    return e.astype(np.int64, copy=False)


class GridPartition2D:
    """An ``r x c`` process grid over the vertex-pair space.

    Vertices are split into ``r`` row blocks and ``c`` column blocks
    (balanced contiguous ranges); rank ``(i, j)`` — linearized as
    ``i * c + j`` — owns the directed edges whose source falls in row
    block ``i`` and destination in column block ``j``.
    """

    def __init__(self, n: int, nranks: int):
        if nranks < 1:
            raise PartitionError(f"need >= 1 rank, got {nranks}")
        if n < 0:
            raise PartitionError(f"negative vertex count {n}")
        _check_vertex_range(n)  # same int32-wrap guard as CSRGraph.from_edges
        self.n = int(n)
        self.nranks = int(nranks)
        self.rows = int(math.isqrt(nranks))
        while nranks % self.rows != 0:
            self.rows -= 1
        self.cols = nranks // self.rows
        self._row_starts = self._ranges(self.rows)
        self._col_starts = self._ranges(self.cols)

    def _ranges(self, parts: int) -> np.ndarray:
        base, extra = divmod(self.n, parts)
        counts = np.full(parts, base, dtype=np.int64)
        counts[:extra] += 1
        starts = np.zeros(parts + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        return starts

    # -- mapping ----------------------------------------------------------------
    def row_of(self, v: int) -> int:
        """Row block of vertex ``v``."""
        self._check_vertex(v)
        return int(np.searchsorted(self._row_starts, v, side="right") - 1)

    def col_of(self, v: int) -> int:
        """Column block of vertex ``v``."""
        self._check_vertex(v)
        return int(np.searchsorted(self._col_starts, v, side="right") - 1)

    def owner_of_edge(self, u: int, v: int) -> int:
        """Linearized rank owning directed edge ``(u, v)``."""
        return self.row_of(u) * self.cols + self.col_of(v)

    def owners_of_edges(self, edges: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`owner_of_edge` for an (m, 2) array.

        The whole array is range-validated in one pass (the scalar
        ``_check_vertex`` loop would dominate on large edge sets); a
        malformed or out-of-range array is rejected exactly as
        :meth:`CSRGraph.from_edges` rejects it.
        """
        edges = _validate_edge_array(edges, self.n)
        rows = np.searchsorted(self._row_starts, edges[:, 0], side="right") - 1
        cols = np.searchsorted(self._col_starts, edges[:, 1], side="right") - 1
        return rows * self.cols + cols

    def grid_coords(self, rank: int) -> tuple[int, int]:
        """(row, col) of a linearized rank."""
        if not (0 <= rank < self.nranks):
            raise PartitionError(f"rank {rank} out of range [0, {self.nranks})")
        return rank // self.cols, rank % self.cols

    def row_range(self, row: int) -> tuple[int, int]:
        return int(self._row_starts[row]), int(self._row_starts[row + 1])

    def col_range(self, col: int) -> tuple[int, int]:
        return int(self._col_starts[col]), int(self._col_starts[col + 1])

    def row_peers(self, rank: int) -> list[int]:
        """Ranks sharing this rank's grid row (the wedge-closure partners)."""
        row, _ = self.grid_coords(rank)
        return [row * self.cols + j for j in range(self.cols)]

    def col_peers(self, rank: int) -> list[int]:
        """Ranks sharing this rank's grid column."""
        _, col = self.grid_coords(rank)
        return [i * self.cols + col for i in range(self.rows)]

    def _check_vertex(self, v: int) -> None:
        if not (0 <= v < self.n):
            raise PartitionError(f"vertex {v} out of range [0, {self.n})")


def split_edges_2d(graph: CSRGraph, grid: GridPartition2D,
                   edges: np.ndarray | None = None) -> list[np.ndarray]:
    """Per-rank (m_r, 2) edge arrays under the grid partition.

    ``edges`` defaults to the graph's own (always in-range) edge list; a
    caller-supplied array is validated wholesale by
    :meth:`GridPartition2D.owners_of_edges` — out-of-range or
    non-integer arrays are rejected the same way ``CSRGraph.from_edges``
    rejects them, before any rank sees a malformed slice.
    """
    if edges is None:
        edges = graph.edges()
    owners = grid.owners_of_edges(edges)
    return [edges[owners == r] for r in range(grid.nranks)]


def communication_peers_1d(graph: CSRGraph, nranks: int) -> float:
    """Average number of distinct peers a rank reads from under 1D."""
    from repro.graph.partition import BlockPartition1D

    part = BlockPartition1D(graph.n, nranks)
    edges = graph.edges()
    src_owner = part.owners(edges[:, 0])
    dst_owner = part.owners(edges[:, 1])
    peers = {
        r: set(dst_owner[(src_owner == r) & (dst_owner != r)].tolist())
        for r in range(nranks)
    }
    return float(np.mean([len(p) for p in peers.values()]))


def communication_peers_2d(nranks: int) -> float:
    """Peer count under 2D: a rank only talks within its row and column."""
    rows = int(math.isqrt(nranks))
    while nranks % rows != 0:
        rows -= 1
    cols = nranks // rows
    return float(rows + cols - 2)
