"""Reproduction self-check: assert the paper's headline claims quickly.

``python -m repro.analysis.verify`` runs a fast subset of every claim the
reproduction stands on and prints PASS/FAIL per item — a one-command
answer to "does this repository still reproduce the paper?".

The checks mirror the benchmark suite's assertions but are trimmed to run
in about a minute.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.analysis.reuse import top_degree_read_share
from repro.analysis.throughput import edges_per_microsecond
from repro.core.config import CacheSpec, LCCConfig
from repro.core.local import lcc_local
from repro.graph.datasets import load_dataset
from repro.session import Session, run_kernel


@dataclass
class Check:
    name: str
    claim: str
    fn: Callable[[], bool]


def _graph(name: str, scale: float = 1.0):
    return load_dataset(name, scale=scale, seed=0)


def check_correctness() -> bool:
    g = _graph("skitter", 0.3)
    res = run_kernel("lcc", g, LCCConfig(nranks=8))
    return bool(np.allclose(res.lcc, lcc_local(g)))


def check_hybrid_wins() -> bool:
    g = _graph("rmat-s20-ef16")
    h = edges_per_microsecond(g, "hybrid", threads=16)
    s = edges_per_microsecond(g, "ssi", threads=16)
    b = edges_per_microsecond(g, "binary", threads=16)
    return h >= max(s, b) * 0.999 and s > b


def check_thread_saturation() -> bool:
    g = _graph("rmat-s20-ef16")
    t1 = edges_per_microsecond(g, "hybrid", threads=1)
    t16 = edges_per_microsecond(g, "hybrid", threads=16)
    return 1.2 < t16 / t1 < 8.0


def check_reuse_concentration() -> bool:
    uni = top_degree_read_share(_graph("uniform"), 8)
    pl = top_degree_read_share(_graph("rmat-s21-ef16"), 8)
    return pl > uni + 0.2


def check_caching_helps() -> bool:
    g = _graph("rmat-s21-ef16")
    with Session(g, LCCConfig(nranks=8, threads=12)) as session:
        plain = session.run("lcc")
        cached = session.run(
            "lcc", cache=CacheSpec.paper_split(2 * g.nbytes, g.n))
    return cached.time < plain.time * 0.8


def check_cache_gain_erodes_with_ranks() -> bool:
    g = _graph("rmat-s21-ef16")
    gains = []
    with Session(g, LCCConfig(threads=12)) as session:
        for p in (4, 64):
            plain = session.run("lcc", nranks=p)
            cached = session.run(
                "lcc", nranks=p,
                cache=CacheSpec.paper_split(2 * g.nbytes, g.n))
            gains.append(1 - cached.time / plain.time)
    return gains[0] > gains[1] > 0


def check_degree_scores_never_lose() -> bool:
    g = _graph("rmat-s20-ef16")
    cap = max(4096, g.adjacency.nbytes // 4)
    rates = {}
    with Session(g, LCCConfig(nranks=8, threads=12)) as session:
        for score in ("default", "degree"):
            res = session.run("lcc", cache=CacheSpec(
                offsets_bytes=0, adj_bytes=cap, score=score))
            rates[score] = res.adj_cache_stats["miss_rate"]
    return rates["degree"] <= rates["default"] + 1e-9


def check_warm_cache_reuse() -> bool:
    g = _graph("rmat-s20-ef16")
    spec = CacheSpec.paper_split(max(4096, g.nbytes // 2), g.n)
    with Session(g, LCCConfig(nranks=8, threads=12, cache=spec)) as session:
        cold = session.run("lcc", keep_cache=True)
        warm = session.run("lcc", keep_cache=True)
    return (warm.adj_cache_stats["hit_rate"]
            > cold.adj_cache_stats["hit_rate"]
            and warm.time < cold.time)


def check_async_beats_tric() -> bool:
    g = _graph("rmat-s21-ef16")
    with Session(g, LCCConfig(nranks=16, threads=12)) as session:
        tric = session.run("tric")
        a = session.run("lcc")
    return a.time < tric.time


def check_async_scales() -> bool:
    g = _graph("rmat-s21-ef16")
    with Session(g, LCCConfig(threads=12)) as session:
        t4 = session.run("lcc", nranks=4).time
        t64 = session.run("lcc", nranks=64).time
    return t4 / t64 > 4.0


CHECKS = [
    Check("correctness", "distributed LCC == local reference", check_correctness),
    Check("table3", "hybrid beats SSI and binary, SSI beats binary",
          check_hybrid_wins),
    Check("fig6", "thread speedup positive but saturating",
          check_thread_saturation),
    Check("fig4", "power-law reuse concentration >> uniform",
          check_reuse_concentration),
    Check("fig9-cache", "caching cuts runtime by >20% at small scale",
          check_caching_helps),
    Check("fig9-erosion", "cache gain erodes with over-partitioning",
          check_cache_gain_erodes_with_ranks),
    Check("fig8", "degree eviction scores never lose to stock scores",
          check_degree_scores_never_lose),
    Check("fig4-reuse", "warm caches across session queries raise hit rate",
          check_warm_cache_reuse),
    Check("fig9-tric", "async LCC beats TriC on scale-free graphs",
          check_async_beats_tric),
    Check("fig9-scaling", "async LCC strong-scales 4 -> 64 nodes",
          check_async_scales),
]


def main(argv: list[str] | None = None) -> int:
    failures = 0
    print("reproduction self-check (fast subset of the claims)\n")
    for check in CHECKS:
        start = time.perf_counter()
        try:
            ok = check.fn()
        except Exception as exc:  # pragma: no cover - diagnostic path
            ok = False
            print(f"  ERROR {check.name}: {exc!r}")
        elapsed = time.perf_counter() - start
        status = "PASS" if ok else "FAIL"
        failures += not ok
        print(f"[{status}] {check.name:14s} {check.claim}  ({elapsed:.1f}s)")
    print(f"\n{len(CHECKS) - failures}/{len(CHECKS)} claims hold")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
