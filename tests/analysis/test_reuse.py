"""Tests for the reuse analytics."""

import numpy as np
import pytest

from repro.analysis.reuse import (
    expected_reads_per_vertex,
    remote_edge_fraction,
    remote_read_counts,
    repetition_histogram,
    reuse_curve,
    top_degree_read_share,
)
from repro.graph.csr import CSRGraph
from repro.graph.generators import complete_graph, erdos_renyi, rmat, star_graph
from repro.graph.partition import BlockPartition1D, CyclicPartition1D


class TestRemoteReadCounts:
    def test_counts_by_hand(self):
        # 0-1 local to rank 0 (n=4, p=2: {0,1} vs {2,3}); 1-2 crosses.
        g = CSRGraph.from_edges([(0, 1), (1, 2), (2, 3)])
        counts = remote_read_counts(g, 2)
        # Edge (1,2): rank0 reads 2, rank1 reads 1 (both directions stored).
        np.testing.assert_array_equal(counts, [0, 1, 1, 0])

    def test_initiator_filter(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2), (2, 3)])
        counts0 = remote_read_counts(g, 2, initiator=0)
        np.testing.assert_array_equal(counts0, [0, 0, 1, 0])

    def test_sum_matches_cut_edges(self):
        g = rmat(7, 8, seed=1)
        part = BlockPartition1D(g.n, 4)
        edges = g.edges()
        cut = (part.owners(edges[:, 0]) != part.owners(edges[:, 1])).sum()
        assert remote_read_counts(g, 4).sum() == cut

    def test_single_rank_no_remote(self):
        g = rmat(6, 4, seed=1)
        assert remote_read_counts(g, 1).sum() == 0

    def test_custom_partition(self):
        g = rmat(7, 8, seed=1)
        cyc = remote_read_counts(g, 4, partition=CyclicPartition1D(g.n, 4))
        blk = remote_read_counts(g, 4)
        assert cyc.sum() != blk.sum() or not np.array_equal(cyc, blk)


class TestHistogramAndCurve:
    def test_histogram_total(self):
        g = rmat(7, 8, seed=1)
        reps, freq = repetition_histogram(g, 4, initiator=0)
        counts = remote_read_counts(g, 4, initiator=0)
        assert (reps * freq).sum() == counts.sum()
        assert freq.sum() == (counts > 0).sum()

    def test_curve_monotone(self):
        g = rmat(8, 8, seed=1)
        frac, cum = reuse_curve(g, 8)
        assert np.all(np.diff(cum) >= -1e-12)
        assert cum[-1] == pytest.approx(1.0)

    def test_empty_graph_curve(self):
        g = CSRGraph.from_edges([], n=4)
        frac, cum = reuse_curve(g, 2)
        assert cum[-1] == 0.0


class TestShares:
    def test_star_concentration(self):
        # Half of all remote reads target the hub (the leaves' reads);
        # the other half are the hub reading its remote leaves once each.
        g = star_graph(63)  # n=64, p=2: hub on rank 0
        share = top_degree_read_share(g, 2, 0.05)
        assert share >= 0.5

    def test_uniform_low_concentration(self):
        g = erdos_renyi(1024, 8192, seed=3)
        assert top_degree_read_share(g, 8, 0.1) < 0.3


class TestFractionsAndExpectation:
    def test_remote_fraction_grows_with_ranks(self):
        g = rmat(8, 8, seed=1)
        fr = [remote_edge_fraction(g, p) for p in (2, 4, 8, 16)]
        assert fr == sorted(fr)

    def test_complete_graph_fraction(self):
        g = complete_graph(8)
        # p=2, each side 4 vertices: remote directed edges = 2*4*4 of 56.
        assert remote_edge_fraction(g, 2) == pytest.approx(32 / 56)

    def test_expected_reads_formula(self):
        g = complete_graph(8)
        expected = expected_reads_per_vertex(g, 4)
        np.testing.assert_allclose(expected, 7 * 3 / 4)

    def test_expectation_tracks_actual(self):
        # On a relabeled graph the analytic expectation approximates the
        # actual block-partition counts in aggregate.
        g = rmat(9, 8, seed=2)
        actual = remote_read_counts(g, 8).sum()
        predicted = expected_reads_per_vertex(g, 8).sum()
        assert actual == pytest.approx(predicted, rel=0.25)
