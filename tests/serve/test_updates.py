"""Mixed read/write serving: update requests, barriers, determinism."""

import numpy as np
import pytest

from repro.serve import (
    ServeConfig,
    ServingEngine,
    UpdateRequest,
    WorkloadSpec,
    default_catalog,
    eligible_requests,
    generate_workload,
    make_scheduler,
)
from repro.serve.engine import answers_identical
from repro.serve.request import QueryRequest
from repro.utils.errors import ConfigError


@pytest.fixture(scope="module")
def catalog():
    return default_catalog(scale=0.25)


def mixed_spec(catalog, **kw):
    defaults = dict(n_queries=40, arrival_rate=2000.0, n_tenants=6,
                    graphs=tuple(catalog), seed=5, update_mix=0.3,
                    update_edges=6)
    defaults.update(kw)
    return WorkloadSpec(**defaults)


class TestWorkloadGeneration:
    def test_mix_produces_updates_and_queries(self, catalog):
        reqs = generate_workload(mixed_spec(catalog), catalog)
        updates = [r for r in reqs if r.is_update]
        queries = [r for r in reqs if not r.is_update]
        assert updates and queries
        assert len(reqs) == 40
        assert not reqs[0].is_update  # first request always a query

    def test_deterministic(self, catalog):
        spec = mixed_spec(catalog)
        a = generate_workload(spec, catalog)
        b = generate_workload(spec, catalog)
        for ra, rb in zip(a, b):
            assert type(ra) is type(rb)
            assert ra.qid == rb.qid and ra.arrival == rb.arrival
            if ra.is_update:
                np.testing.assert_array_equal(ra.inserts, rb.inserts)
                np.testing.assert_array_equal(ra.deletes, rb.deletes)

    def test_zero_mix_trace_unchanged(self, catalog):
        """update_mix=0 reproduces the PR-3 trace bit-for-bit."""
        spec = mixed_spec(catalog, update_mix=0.0)
        with_catalog = generate_workload(spec, catalog)
        without = generate_workload(spec)
        assert with_catalog == without
        assert all(not r.is_update for r in without)

    def test_mix_requires_catalog(self, catalog):
        with pytest.raises(ConfigError, match="catalog"):
            generate_workload(mixed_spec(catalog))

    def test_mix_validation(self, catalog):
        with pytest.raises(ConfigError):
            mixed_spec(catalog, update_mix=0.95)
        with pytest.raises(ConfigError):
            mixed_spec(catalog, update_edges=0)
        with pytest.raises(ConfigError):
            mixed_spec(catalog, update_delete_fraction=-0.1)


class TestBarriers:
    def make(self, cls, arrival, qid, graph="g", **kw):
        if cls is UpdateRequest:
            return UpdateRequest(arrival=arrival, qid=qid, tenant=0,
                                 graph=graph, **kw)
        return QueryRequest(arrival=arrival, qid=qid, tenant=0, graph=graph,
                            **kw)

    def test_update_blocks_later_queries_on_its_key(self):
        q0 = self.make(QueryRequest, 0.0, 0)
        upd = self.make(UpdateRequest, 1.0, 1)
        q2 = self.make(QueryRequest, 2.0, 2)
        eligible = eligible_requests([q2, upd, q0])
        assert q0 in eligible
        assert upd not in eligible  # q0 must drain first
        assert q2 not in eligible   # fenced behind the update

    def test_update_at_head_is_eligible(self):
        upd = self.make(UpdateRequest, 0.0, 0)
        q1 = self.make(QueryRequest, 1.0, 1)
        eligible = eligible_requests([q1, upd])
        assert eligible == [upd]

    def test_other_keys_unaffected(self):
        upd = self.make(UpdateRequest, 0.0, 0, graph="a")
        other = self.make(QueryRequest, 1.0, 1, graph="b")
        eligible = eligible_requests([upd, other])
        assert upd in eligible and other in eligible

    def test_second_update_fenced_behind_first(self):
        u0 = self.make(UpdateRequest, 0.0, 0)
        u1 = self.make(UpdateRequest, 1.0, 1)
        assert eligible_requests([u1, u0]) == [u0]

    def test_nonempty_for_nonempty_queue(self):
        reqs = [self.make(UpdateRequest, float(i), i) for i in range(5)]
        assert eligible_requests(reqs)


class TestMixedServing:
    @pytest.fixture(scope="class")
    def outcomes(self, catalog):
        reqs = generate_workload(mixed_spec(catalog), catalog)
        config = ServeConfig(nranks=4, threads=2, pool_capacity=2)
        outs = {}
        for name in ("fifo", "affinity"):
            engine = ServingEngine(catalog, config, make_scheduler(name))
            outs[name] = engine.serve(reqs)
        return outs

    def test_schedulers_agree_bit_for_bit(self, outcomes):
        """The headline invariant: mutations + any scheduler, same answers
        and same per-key graph histories (update digests included)."""
        assert answers_identical(outcomes["fifo"], outcomes["affinity"])

    def test_update_accounting_separate(self, outcomes):
        for outcome in outcomes.values():
            aggs = outcome.aggregates
            assert aggs["n_updates"] == len(outcome.update_records) > 0
            assert aggs["update_latency_mean_s"] > 0
            assert aggs["update_service_total_s"] >= 0
            assert aggs["n_queries"] == len(outcome.records)
            # Query latency aggregates exclude updates entirely.
            lat = [r.latency for r in outcome.records]
            assert aggs["latency_mean_s"] == pytest.approx(np.mean(lat))

    def test_updates_invalidate_and_retain(self, outcomes):
        aff = outcomes["affinity"].aggregates
        assert aff["invalidated_entries"] > 0
        assert aff["retained_entries_mean"] > 0

    def test_eviction_cannot_roll_back_updates(self, catalog):
        """With a 1-slot pool every update's session is evicted before the
        next touch; pinned graphs must still give identical histories."""
        reqs = generate_workload(mixed_spec(catalog, n_queries=30), catalog)
        config = ServeConfig(nranks=4, threads=2, pool_capacity=1)
        outs = [ServingEngine(catalog, config, make_scheduler(n)).serve(reqs)
                for n in ("fifo", "affinity")]
        assert answers_identical(outs[0], outs[1])
        assert outs[0].pool_stats["evictions"] > 0

    def test_update_record_fields(self, outcomes):
        rec = outcomes["fifo"].update_records[0]
        assert rec.finish >= rec.start >= rec.arrival
        assert rec.n_inserted + rec.n_deleted >= 0
        assert rec.digest
        assert rec.latency >= 0


class TestPureWriteTrace:
    def test_updates_only_workload_is_served(self, catalog):
        """An all-update trace must not crash after doing the work."""
        import numpy as np

        from repro.serve.request import UpdateRequest

        name = next(iter(catalog))
        g = catalog[name]
        reqs = [UpdateRequest(arrival=float(i), qid=i, tenant=0, graph=name,
                              inserts=np.array([[i, (i + 1) % g.n]]),
                              deletes=None)
                for i in range(3)]
        engine = ServingEngine(catalog,
                               ServeConfig(nranks=4, threads=2,
                                           pool_capacity=1),
                               make_scheduler("fifo"))
        outcome = engine.serve(reqs)
        assert outcome.records == []
        assert len(outcome.update_records) == 3
        aggs = outcome.aggregates
        assert aggs["n_queries"] == 0 and aggs["n_updates"] == 3
        assert aggs["makespan_s"] >= reqs[-1].arrival
