"""Typed metrics: counters, gauges and histograms behind one registry.

Before this module, every layer grew its own ad-hoc counter fields —
``AsyncServeOutcome.decisions``, the engine's local ``updates_coalesced``,
the seventeen plain ints on :class:`~repro.clampi.stats.CacheStats`.
Each was cheap, but none were discoverable, and none could be exported
uniformly.  The :class:`MetricsRegistry` keeps the cheapness (a counter
is one attribute add on a slotted object — no locks, no labels, no
string formatting on the hot path) while giving every metric a name, a
type and a single :meth:`~MetricsRegistry.snapshot` that downstream
reports delegate to.

Delegation, not replacement: existing report dictionaries are frozen
API surface (committed ``BENCH_*.json`` files diff against them), so
:meth:`CacheStats.snapshot` and ``AsyncServeOutcome`` now *build* their
dicts through a registry but emit byte-identical keys and values.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

Number = Union[int, float]


class Counter:
    """A monotonically increasing integer-or-float count."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc by {amount})")
        self.value += amount

    def snapshot(self) -> Number:
        return self.value


class Gauge:
    """A value that can go up and down (queue depth, window width)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount

    def snapshot(self) -> Number:
        return self.value


class Histogram:
    """Streaming distribution: count/sum/min/max plus exact quantiles.

    Observations are retained (these are simulation-scale cardinalities,
    thousands not billions), so quantiles are exact, not bucketed.
    """

    __slots__ = ("name", "help", "_values")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._values: List[float] = []

    def observe(self, value: Number) -> None:
        self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return float(sum(self._values))

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[idx]

    def snapshot(self) -> Dict[str, float]:
        if not self._values:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": min(self._values),
            "max": max(self._values),
            "mean": self.sum / self.count,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A flat, ordered namespace of typed metrics.

    Metrics are created on first request and returned on every later
    one; asking for an existing name with a different type is a bug and
    raises.  :meth:`snapshot` walks metrics in registration order, so a
    registry populated in a report's historical key order reproduces
    that report dict exactly.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, cls, help: str) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}")
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get(name, Histogram, help)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> List[str]:
        return list(self._metrics)

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def snapshot(self) -> Dict[str, object]:
        """Every metric's current value, in registration order.

        Counters and gauges flatten to their scalar; histograms to their
        stats dict.  The result is plain JSON-serializable data.
        """
        return {name: metric.snapshot()
                for name, metric in self._metrics.items()}

    def fill(self, values: Iterable[tuple[str, Number]]) -> "MetricsRegistry":
        """Bulk-register counters from ``(name, value)`` pairs.

        The delegation helper for legacy stat blocks: preserves pair
        order so :meth:`snapshot` reproduces the historical dict.
        """
        for name, value in values:
            self.counter(name).inc(value)
        return self
