"""The discrete-event engine driving one simulated job.

A *rank program* is either

* a **plain function** ``fn(ctx) -> result`` — for fully asynchronous
  algorithms (the paper's LCC/TC): nothing ever blocks on a peer, so each
  rank simply runs to completion on its own virtual clock; or
* a **generator function** ``fn(ctx)`` that ``yield``s
  :mod:`~repro.runtime.requests` objects — for synchronizing algorithms
  (TriC's query/response rounds): the engine matches sends with receives
  and rendezvouses collectives, advancing clocks according to the network
  model.

The reported job time is ``max`` over rank clocks, matching the paper's
"median of the longest-running node" methodology (we are deterministic, so
the median over repetitions is the single value itself).
"""

from __future__ import annotations

import inspect
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.runtime.collectives import CollectiveState
from repro.runtime.compute import ComputeModel
from repro.runtime.context import SimContext
from repro.runtime.network import MemoryModel, NetworkModel
from repro.runtime.requests import (
    AllreduceRequest,
    AlltoallvRequest,
    BarrierRequest,
    RecvRequest,
    SendRequest,
)
from repro.runtime.trace import OpKind, RankTrace
from repro.runtime.window import WindowRegistry
from repro.utils.errors import CommError


@dataclass
class RunOutcome:
    """Results and metrics of one simulated job."""

    time: float
    clocks: list[float]
    traces: list[RankTrace]
    results: list[Any]

    @property
    def nranks(self) -> int:
        return len(self.clocks)

    @property
    def slowest_rank(self) -> int:
        """Rank whose clock defines the job time (paper reports this node)."""
        return max(range(self.nranks), key=lambda r: self.clocks[r])

    def total(self, attr: str) -> float:
        """Sum a :class:`RankTrace` counter over all ranks."""
        return sum(getattr(t, attr) for t in self.traces)

    @property
    def comm_time(self) -> float:
        return self.total("comm_time")

    @property
    def comp_time(self) -> float:
        return self.total("comp_time")

    @property
    def load_imbalance(self) -> float:
        """max/mean clock ratio - 1 (0 means perfectly balanced)."""
        mean = sum(self.clocks) / len(self.clocks)
        return (max(self.clocks) / mean - 1.0) if mean > 0 else 0.0

    def summary(self) -> dict[str, float]:
        """Flat metric dict for tables."""
        total_reads = self.total("total_reads")
        remote = self.total("n_remote_gets")
        hits = self.total("n_cache_hits")
        intents = remote + hits
        return {
            "time": self.time,
            "comm_time": self.comm_time,
            "comp_time": self.comp_time,
            "sync_time": self.total("sync_time"),
            "cache_time": self.total("cache_time"),
            "remote_gets": remote,
            "cache_hits": hits,
            "hit_rate": hits / intents if intents else 0.0,
            "remote_fraction": remote / total_reads if total_reads else 0.0,
            "bytes_remote": self.total("bytes_remote"),
            "load_imbalance": self.load_imbalance,
        }


@dataclass
class _RankState:
    """Scheduler-side state of one rank."""

    gen: Any = None
    result: Any = None
    done: bool = False
    blocked_on: Any = None  # RecvRequest or int (collective seq)
    resume_value: Any = None
    has_resume_value: bool = False


class Engine:
    """Owns contexts, windows and the scheduler for one simulated job."""

    def __init__(
        self,
        nranks: int,
        *,
        network: NetworkModel | None = None,
        memory: MemoryModel | None = None,
        compute: ComputeModel | None = None,
        record_ops: bool = False,
    ):
        if nranks < 1:
            raise CommError(f"need at least one rank, got {nranks}")
        self.nranks = nranks
        self.network = network or NetworkModel.aries()
        self.memory = memory or MemoryModel()
        self.compute = compute or ComputeModel()
        self.record_ops = record_ops
        self.windows = WindowRegistry()
        self.contexts: list[SimContext] = [
            SimContext(
                r,
                nranks,
                network=self.network,
                memory=self.memory,
                compute=self.compute,
                record_ops=record_ops,
            )
            for r in range(nranks)
        ]

    # -- running ----------------------------------------------------------------
    def run(self, rank_fn: Callable[[SimContext], Any]) -> RunOutcome:
        """Execute ``rank_fn`` on every rank and return the outcome."""
        if inspect.isgeneratorfunction(rank_fn):
            results = self._run_generators(rank_fn)
        else:
            results = [rank_fn(ctx) for ctx in self.contexts]
        clocks = [ctx.now for ctx in self.contexts]
        return RunOutcome(
            time=max(clocks),
            clocks=clocks,
            traces=[ctx.trace for ctx in self.contexts],
            results=results,
        )

    # -- generator scheduling ---------------------------------------------------
    def _run_generators(self, rank_fn: Callable) -> list[Any]:
        states = [_RankState(gen=rank_fn(ctx)) for ctx in self.contexts]
        for st in states:
            st.has_resume_value = True  # first resume primes the generator
            st.resume_value = None
        coll = CollectiveState(self.nranks, self.network)
        self._all_states = states  # shared with collective resume logic
        # mailbox[(src, dst, tag)] -> FIFO of (arrival_time, payload, nbytes)
        mailbox: dict[tuple[int, int, int], deque] = {}

        progress = True
        while progress:
            progress = False
            for rank, st in enumerate(states):
                if st.done or not self._runnable(rank, st, coll, mailbox):
                    continue
                progress = True
                self._step(rank, st, states, coll, mailbox)
            if not progress:
                # Either everyone finished, or we deadlocked.
                if all(st.done for st in states):
                    break
                blocked = [
                    (r, st.blocked_on)
                    for r, st in enumerate(states)
                    if not st.done
                ]
                raise CommError(
                    "deadlock: no rank can make progress; blocked = "
                    f"{blocked}; collectives: {coll.blocked_description()}"
                )
        return [st.result for st in states]

    def _runnable(self, rank: int, st: _RankState, coll: CollectiveState,
                  mailbox: dict) -> bool:
        """Check whether a blocked rank can be unblocked, priming its resume."""
        if st.has_resume_value:
            return True
        block = st.blocked_on
        if isinstance(block, RecvRequest):
            key = (block.source, rank, block.tag)
            queue = mailbox.get(key)
            if queue:
                arrival, payload, nbytes = queue.popleft()
                ctx = self.contexts[rank]
                wait = max(0.0, arrival - ctx.now)
                ctx.trace.sync_time += wait
                ctx.set_time(max(ctx.now, arrival))
                ctx.trace.n_recvs += 1
                ctx.trace.bytes_received += nbytes
                ctx.trace.record(OpKind.RECV, target=block.source,
                                 nbytes=nbytes, t=ctx.now)
                st.resume_value = payload
                st.has_resume_value = True
                st.blocked_on = None
                return True
            return False
        if isinstance(block, int):  # collective sequence number
            if coll.complete(block):
                done_t, results = coll.finish(block)
                self._resume_collective(block, done_t, results)
                return st.has_resume_value
            return False
        raise CommError(f"rank {rank} blocked on unknown request {block!r}")

    def _resume_collective(self, seq: int, done_t: float,
                           results: dict[int, Any]) -> None:
        for rank, st in enumerate(self._all_states):
            if st.blocked_on == seq and not st.done:
                ctx = self.contexts[rank]
                ctx.trace.sync_time += max(0.0, done_t - ctx.now)
                ctx.set_time(done_t)
                st.resume_value = results[rank]
                st.has_resume_value = True
                st.blocked_on = None

    def _step(self, rank: int, st: _RankState, states: list[_RankState],
              coll: CollectiveState, mailbox: dict) -> None:
        """Advance one rank's generator until it blocks or finishes."""
        ctx = self.contexts[rank]
        while True:
            try:
                value = st.resume_value if st.has_resume_value else None
                st.has_resume_value = False
                st.resume_value = None
                request = st.gen.send(value)
            except StopIteration as stop:
                st.done = True
                st.result = stop.value
                return

            if isinstance(request, SendRequest):
                dt = self.network.send_overhead(request.nbytes)
                ctx.advance(dt)
                ctx.trace.comm_time += dt
                ctx.trace.n_sends += 1
                ctx.trace.bytes_sent += request.nbytes
                ctx.trace.record(OpKind.SEND, target=request.dest,
                                 nbytes=request.nbytes, t=ctx.now)
                arrival = ctx.now + self.network.message_time(request.nbytes)
                key = (rank, request.dest, request.tag)
                mailbox.setdefault(key, deque()).append(
                    (arrival, request.payload, request.nbytes)
                )
                st.has_resume_value = True  # sends complete immediately
                st.resume_value = None
                continue

            if isinstance(request, RecvRequest):
                st.blocked_on = request
                return

            if isinstance(request, BarrierRequest):
                ctx.trace.n_barriers += 1
                seq = coll.join(rank, "barrier", ctx.now, None)
                st.blocked_on = seq
                return

            if isinstance(request, AlltoallvRequest):
                ctx.trace.n_alltoallv += 1
                sent = sum(request.nbytes) - request.nbytes[rank]
                ctx.trace.bytes_sent += sent
                ctx.trace.comm_time += self.network.alltoallv_rank_time(
                    sent, 0, self.nranks
                )
                seq = coll.join(rank, "alltoallv", ctx.now,
                                (list(request.payloads), list(request.nbytes)))
                st.blocked_on = seq
                ctx.trace.record(OpKind.ALLTOALLV, nbytes=sent, t=ctx.now)
                return

            if isinstance(request, AllreduceRequest):
                seq = coll.join(rank, "allreduce", ctx.now,
                                (request.value, request.nbytes))
                st.blocked_on = seq
                return

            raise CommError(
                f"rank {rank} yielded an unsupported value {request!r}; rank "
                "programs must yield request objects from repro.runtime.requests"
            )
