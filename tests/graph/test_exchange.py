"""Tests for the initial graph-distribution phase."""

import numpy as np
import pytest

from repro.core.config import LCCConfig
from repro.graph.exchange import exchange_graph
from repro.graph.generators import rmat
from repro.graph.partition import BlockPartition1D, CyclicPartition1D, split_csr
from repro.runtime.engine import Engine
from repro.utils.errors import PartitionError


class TestExchange:
    @pytest.mark.parametrize("partition_cls", [BlockPartition1D,
                                               CyclicPartition1D])
    def test_exchange_reproduces_split(self, partition_cls):
        g = rmat(7, 8, seed=9)
        engine = Engine(4)
        part = partition_cls(g.n, 4)
        result = exchange_graph(g, engine, part)
        ref_offsets, ref_adjacency = split_csr(g, part)
        for r in range(4):
            np.testing.assert_array_equal(
                result.dist.w_offsets.local_part(r), ref_offsets[r])
            np.testing.assert_array_equal(
                result.dist.w_adj.local_part(r), ref_adjacency[r])

    def test_setup_is_timed(self):
        g = rmat(7, 8, seed=9)
        engine = Engine(4)
        result = exchange_graph(g, engine)
        assert result.setup_time > 0
        assert result.bytes_exchanged > 0
        assert result.setup_outcome.total("n_alltoallv") == 4

    def test_single_rank_exchange(self):
        g = rmat(6, 4, seed=9)
        engine = Engine(1)
        result = exchange_graph(g, engine)
        assert result.bytes_exchanged == 0
        np.testing.assert_array_equal(
            result.dist.w_adj.local_part(0), g.adjacency)

    def test_mismatched_partition_rejected(self):
        g = rmat(6, 4, seed=9)
        engine = Engine(2)
        with pytest.raises(PartitionError):
            exchange_graph(g, engine, BlockPartition1D(999, 2))

    def test_lcc_works_after_exchange(self):
        from repro.core.lcc import _lcc_rank_fn
        from repro.core.local import lcc_local
        from repro.core.threading import OpenMPModel

        g = rmat(6, 4, seed=9)
        engine = Engine(2)
        result = exchange_graph(g, engine, BlockPartition1D(g.n, 2))
        dist = result.dist
        dist.open_epochs()
        config = LCCConfig(nranks=2)
        omp = OpenMPModel()
        tpv = np.zeros(g.n, dtype=np.int64)
        lcc = np.zeros(g.n)
        engine.run(_lcc_rank_fn(dist, config, omp, tpv, lcc))
        np.testing.assert_allclose(lcc, lcc_local(g), atol=1e-12)
