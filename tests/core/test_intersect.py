"""Tests for the intersection kernels."""

import numpy as np
import pytest

from repro.core.intersect import (
    binary_search_count,
    count_common,
    count_common_above,
    hybrid_count,
    intersect_values,
    ssi_count,
)

A = np.array([1, 3, 5, 7, 9], dtype=np.int32)
B = np.array([2, 3, 4, 7, 8, 10, 12], dtype=np.int32)


class TestKernelsAgree:
    def test_known_intersection(self):
        assert ssi_count(A, B) == 2
        assert binary_search_count(A, B) == 2
        assert hybrid_count(A, B) == 2

    def test_empty_lists(self):
        e = np.empty(0, dtype=np.int32)
        assert ssi_count(e, B) == 0
        assert binary_search_count(A, e) == 0
        assert hybrid_count(e, e) == 0

    def test_disjoint(self):
        a = np.array([1, 2, 3], dtype=np.int32)
        b = np.array([4, 5, 6], dtype=np.int32)
        assert ssi_count(a, b) == 0
        assert binary_search_count(a, b) == 0

    def test_identical(self):
        assert ssi_count(A, A) == 5
        assert binary_search_count(A, A) == 5

    def test_subset(self):
        sub = np.array([3, 7], dtype=np.int32)
        assert ssi_count(sub, B) == 2
        assert binary_search_count(sub, B) == 2

    def test_singletons(self):
        one = np.array([7], dtype=np.int32)
        assert binary_search_count(one, B) == 1
        assert binary_search_count(np.array([6], np.int32), B) == 0

    def test_asymmetric_lengths(self):
        short = np.array([500], dtype=np.int32)
        long_ = np.arange(0, 10_000, 2, dtype=np.int32)
        assert ssi_count(short, long_) == 1
        assert binary_search_count(short, long_) == 1
        assert binary_search_count(long_, short) == 1

    def test_random_agreement(self):
        rng = np.random.default_rng(8)
        for _ in range(100):
            a = np.unique(rng.integers(0, 200, rng.integers(0, 50)))
            b = np.unique(rng.integers(0, 200, rng.integers(0, 120)))
            a, b = a.astype(np.int32), b.astype(np.int32)
            expected = len(set(a) & set(b))
            assert ssi_count(a, b) == expected
            assert binary_search_count(a, b) == expected
            assert hybrid_count(a, b) == expected


class TestDispatch:
    def test_by_name(self):
        assert count_common(A, B, "ssi") == 2
        assert count_common(A, B, "binary") == 2
        assert count_common(A, B, "hybrid") == 2

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown"):
            count_common(A, B, "magic")


class TestCountAbove:
    def test_threshold_filters(self):
        # Common: {3, 7}; above 3: only 7.
        assert count_common_above(A, B, 3) == 1
        assert count_common_above(A, B, 0) == 2
        assert count_common_above(A, B, 7) == 0

    def test_upper_triangle_semantics(self):
        # For edge (i, j) the count must exclude k <= j.
        adj_i = np.array([2, 5, 8, 9], dtype=np.int32)
        adj_j = np.array([5, 8, 9], dtype=np.int32)
        assert count_common_above(adj_i, adj_j, 5) == 2  # {8, 9}

    def test_methods_agree(self):
        rng = np.random.default_rng(9)
        for _ in range(50):
            a = np.unique(rng.integers(0, 100, 40)).astype(np.int32)
            b = np.unique(rng.integers(0, 100, 40)).astype(np.int32)
            t = int(rng.integers(0, 100))
            expected = len({x for x in (set(a) & set(b)) if x > t})
            for method in ("ssi", "binary", "hybrid"):
                assert count_common_above(a, b, t, method) == expected


class TestIntersectValues:
    def test_values(self):
        np.testing.assert_array_equal(intersect_values(A, B), [3, 7])
