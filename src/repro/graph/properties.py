"""Graph-property helpers used by the analysis experiments.

Degree statistics feed the reuse analysis (Figures 4 and 5): under 1D
partitioning with random placement, a vertex of in-degree ``d`` is read
remotely about ``d * (p - 1) / p`` times, so the degree distribution *is*
the remote-reuse distribution.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph


def degree_stats(graph: CSRGraph) -> dict[str, float]:
    """Summary statistics of the out-degree distribution."""
    deg = graph.degrees().astype(np.float64)
    if deg.size == 0:
        return {"min": 0, "max": 0, "mean": 0, "median": 0, "p99": 0, "gini": 0}
    return {
        "min": float(deg.min()),
        "max": float(deg.max()),
        "mean": float(deg.mean()),
        "median": float(np.median(deg)),
        "p99": float(np.percentile(deg, 99)),
        "gini": gini(deg),
    }


def gini(values: np.ndarray) -> float:
    """Gini coefficient — 0 for uniform degrees, ->1 for extreme skew."""
    v = np.sort(np.asarray(values, dtype=np.float64))
    if v.size == 0 or v.sum() == 0:
        return 0.0
    idx = np.arange(1, v.size + 1)
    return float((2 * (idx * v).sum() / (v.size * v.sum())) - (v.size + 1) / v.size)


def degree_histogram(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """(degree values, counts), sorted ascending."""
    deg = graph.degrees()
    values, counts = np.unique(deg, return_counts=True)
    return values, counts


def top_degree_share(graph: CSRGraph, top_fraction: float = 0.1) -> float:
    """Fraction of adjacency entries pointed at the top-``fraction`` vertices.

    The Figure 4 highlight: in power-law graphs the top 10% highest-degree
    vertices attract the majority of remote reads.
    """
    indeg = graph.in_degrees().astype(np.float64)
    if indeg.sum() == 0:
        return 0.0
    k = max(1, int(np.ceil(top_fraction * indeg.size)))
    top = np.sort(indeg)[::-1][:k]
    return float(top.sum() / indeg.sum())


def is_power_law_like(graph: CSRGraph, gini_threshold: float = 0.4) -> bool:
    """Cheap skewness classifier used to pick cache-sizing heuristics."""
    return gini(graph.degrees().astype(np.float64)) >= gini_threshold
