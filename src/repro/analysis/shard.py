"""Shardstore benchmark: bit-identity, read scaling, failover.

``repro shard --bench`` (and :func:`run_shard_bench`) records the
distribution layer's trajectory point, ``BENCH_shard.json``:

* **bit_identity** — per bench graph, a :class:`~repro.shardstore
  .sharded.ShardedGraphStore` and a plain :class:`~repro.graphstore
  .store.GraphStore` apply the *same* random batch sequence; every
  round's logical heads must match byte-for-byte (``graph_digest``),
  multi-shard commits must actually occur, the version vector must
  re-derive from the commit log, and **every registered kernel** run on
  both final heads must digest identically — the "sharded == unsharded"
  contract, measured rather than assumed;
* **read_scaling** — the same query-only burst served by a
  :class:`~repro.shardstore.replica.ReplicaSet` of 1 vs
  ``SHARD_REPLICAS`` read replicas routed by consistent hashing; the
  committed gate requires ≥ :data:`MIN_READ_SCALING` × throughput at
  the full replica count *and* bit-identical answer digests (placement
  may change latency, never answers);
* **updates** — cross-shard vs single-shard commit latency, plus a
  mixed read/write serving run through the sharded store with
  shard-set-annotated updates (the per-(graph, shard-set) fence): FIFO
  and cache-affinity must stay answer-identical, and sharded query
  answers must equal the unsharded engine's;
* **failover** — the drill: kill a replica mid-burst (resident
  sessions closed, keys re-routed), re-seed it from the primary,
  rejoin — query digests must equal an undisturbed run's, with exactly
  one re-seed;
* **replication** — convergence proved by chained history digests
  across commits, plus the detect → evict → re-seed → re-converge path
  for an injected divergence.

:func:`check_shard_report` is the absolute gate; CI re-runs ``--quick``
sizes and gates against the committed baseline with
:func:`check_shard_against_baseline`.
"""

from __future__ import annotations

import math
import time
from typing import Any, Mapping

import numpy as np

from repro.analysis.benchreport import (
    BENCH_THREADS,
    bench_graphs,
    write_report,
)
from repro.core.config import LCCConfig
from repro.dynamic import UpdateBatch, random_update_batch
from repro.graph.csr import CSRGraph
from repro.graphstore import GraphStore, graph_digest
from repro.serve.engine import ServeConfig, ServingEngine, _digest, answers_identical
from repro.serve.scheduler import make_scheduler
from repro.serve.workload import WorkloadSpec, default_catalog, generate_workload
from repro.session import get_kernel, kernel_names, run_kernel
from repro.shardstore import ReplicaSet, ShardedGraphStore, annotate_shard_sets
from repro.utils.rng import derive_seed

SHARD_SCHEMA_VERSION = 1

#: Keys every shard report carries (pinned by tests and the CLI).
SHARD_REPORT_KEYS = ("schema_version", "quick", "nranks", "nshards",
                     "replicas", "threads", "graphs", "bit_identity",
                     "read_scaling", "updates", "failover", "replication")

#: Shard geometry every bench cell runs with: 4 shards grouping an
#: 8-rank 1D partition (2 ranks per shard, so resident acquisition is
#: provably shard-local).
SHARD_NRANKS = 8
SHARD_NSHARDS = 4

#: Replica count the read-scaling and failover scenarios run at.
SHARD_REPLICAS = 3

#: Read throughput at SHARD_REPLICAS replicas must beat 1 replica by
#: this factor (the committed gate).
MIN_READ_SCALING = 1.5

SHARD_SEED = 13

#: Config-variant pool for the routed read burst: enough distinct
#: session keys that the ring spreads load across every replica.
READ_VARIANTS = ((), (("method", "ssi"),), (("method", "binary"),))


def _sharded(catalog) -> ShardedGraphStore:
    return ShardedGraphStore(catalog, nshards=SHARD_NSHARDS,
                             nranks=SHARD_NRANKS)


def bench_bit_identity(graph: CSRGraph, gname: str, *,
                       rounds: int = 6) -> dict[str, Any]:
    """Sharded vs unsharded application of one random batch sequence.

    Both stores start from the same graph and apply identical batches;
    each round's logical heads are compared byte-for-byte, and after the
    last round every registered kernel runs on both heads with its
    digests compared — including across multi-shard commits, which the
    row counts to prove the barrier path was actually exercised.
    """
    name = graph.name or gname
    sharded = _sharded({name: graph})
    plain = GraphStore({name: graph})
    heads_identical = True
    multi_shard_commits = 0
    n_edges = max(8, graph.m // 25)
    for r in range(rounds):
        batch = random_update_batch(
            plain.graph(name), n_edges, 0.3,
            seed=derive_seed(SHARD_SEED, "shard-bit", gname, r))
        su = sharded.apply(name, batch)
        uu = plain.apply(name, batch)
        heads_identical = heads_identical and (
            graph_digest(su.graph) == graph_digest(uu.graph))
        if len(su.shards) > 1:
            multi_shard_commits += 1
    version = sharded.version(name).version
    config = LCCConfig(nranks=SHARD_NRANKS, threads=BENCH_THREADS)
    kernels_identical = True
    kernels_checked = 0
    for kernel in kernel_names():
        spec = get_kernel(kernel)
        if spec.undirected_only and graph.directed:
            continue
        if spec.square_grid_only and \
                math.isqrt(SHARD_NRANKS) ** 2 != SHARD_NRANKS:
            continue  # SUMMA kernels need a square grid

        rs = run_kernel(kernel, sharded.graph(name), config)
        ru = run_kernel(kernel, plain.graph(name), config)
        kernels_identical = kernels_identical and (
            _digest(rs, version) == _digest(ru, version))
        kernels_checked += 1
    return {
        "rounds": rounds,
        "nshards": sharded.plan(name).nshards,
        "multi_shard_commits": multi_shard_commits,
        "heads_identical": bool(heads_identical),
        "kernels_checked": kernels_checked,
        "kernels_identical": bool(kernels_identical),
        "version_vector": list(sharded.version_vector(name)),
        "version_vector_ok": sharded.check_version_vector(name) == [],
        "final_version": version,
    }


def _read_burst(quick: bool) -> list:
    catalog = default_catalog(scale=0.3 if quick else 0.5)
    spec = WorkloadSpec(
        n_queries=36 if quick else 120, arrival_rate=4000.0,
        n_tenants=9, graphs=tuple(catalog), kernels=("lcc", "tc2d"),
        seed=SHARD_SEED, update_mix=0.0, variants=READ_VARIANTS)
    return catalog, generate_workload(spec, catalog)


def bench_read_scaling(quick: bool = False) -> dict[str, Any]:
    """The same routed read burst at 1 vs ``SHARD_REPLICAS`` replicas.

    Replicas hold bit-identical graphs, so the digests must match run to
    run; what scales is throughput — each replica drains its ring-owned
    keys on its own clock with its own resident pool.
    """
    catalog, requests = _read_burst(quick)
    config = ServeConfig(nranks=SHARD_NRANKS, threads=BENCH_THREADS,
                         pool_capacity=3)
    outcomes = {}
    for n in (1, SHARD_REPLICAS):
        replicas = ReplicaSet(catalog, replicas=n, nshards=SHARD_NSHARDS,
                              nranks=SHARD_NRANKS)
        outcomes[n] = replicas.serve_reads(requests, config)
    one, many = outcomes[1], outcomes[SHARD_REPLICAS]
    return {
        "n_queries": len(requests),
        "replicas": SHARD_REPLICAS,
        "throughput_1_qps": one.throughput_qps,
        "throughput_n_qps": many.throughput_qps,
        "read_scaling": many.throughput_qps / one.throughput_qps,
        "digests_identical": one.digests() == many.digests(),
        "replica_counts": {rid: count for rid, count
                           in sorted(many.replica_counts.items())},
    }


def bench_update_latency(graph: CSRGraph, gname: str, *,
                         repeats: int = 3) -> dict[str, Any]:
    """Single-shard vs cross-shard commit latency on one graph.

    Single-shard batches draw both endpoints from shard 0's vertex
    range (one sub-batch, no other chain advances); cross-shard batches
    draw uniformly (typically touching every shard, paying the k-way
    split + barrier + digest proof).  Fresh random batches per repeat so
    the mean is not a cache artifact.
    """
    name = graph.name or gname
    store = _sharded({name: graph})
    plan = store.plan(name)
    lo, hi = plan.range_of(0)
    rng = np.random.default_rng(
        derive_seed(SHARD_SEED, "shard-lat", gname))
    n_edges = max(8, graph.m // 25)

    def committed(edges) -> float:
        batch = UpdateBatch.build(edges, None, n=graph.n,
                                  directed=graph.directed)
        t0 = time.perf_counter()
        update = store.apply(name, batch)
        wall = time.perf_counter() - t0
        return wall, len(update.shards)

    single_walls, cross_walls, cross_touched = [], [], []
    for _ in range(repeats):
        wall, touched = committed(rng.integers(lo, hi, size=(n_edges, 2)))
        assert touched <= 1
        single_walls.append(wall)
        wall, touched = committed(rng.integers(0, graph.n,
                                               size=(n_edges, 2)))
        cross_walls.append(wall)
        cross_touched.append(touched)
    single = float(np.mean(single_walls))
    cross = float(np.mean(cross_walls))
    return {
        "edges_per_batch": n_edges,
        "single_shard_wall_s": single,
        "cross_shard_wall_s": cross,
        "cross_to_single_latency": cross / single if single else 0.0,
        "cross_shards_touched_mean": float(np.mean(cross_touched)),
        "version_vector_ok": store.check_version_vector(name) == [],
    }


def bench_sharded_serving(quick: bool = False) -> dict[str, Any]:
    """Mixed read/write serving through the sharded store.

    Updates are annotated with their touched-shard sets, so the engine's
    fence narrows to per-(graph, shard-set); FIFO vs cache-affinity must
    stay answer-identical, and sharded query digests must equal the
    unsharded engine's on the same trace (same answers, same observed
    versions).
    """
    catalog = default_catalog(scale=0.25 if quick else 0.4)
    spec = WorkloadSpec(
        n_queries=32 if quick else 80, arrival_rate=2000.0,
        n_tenants=6, graphs=tuple(catalog), kernels=("lcc", "tc2d"),
        seed=SHARD_SEED, update_mix=0.3, update_edges=8)
    requests = generate_workload(spec, catalog)
    annotated = annotate_shard_sets(requests, _sharded(catalog))
    multi_shard_updates = sum(
        1 for r in annotated
        if r.is_update and r.shards is not None and len(r.shards) > 1)
    config = ServeConfig(nranks=SHARD_NRANKS, threads=BENCH_THREADS,
                         pool_capacity=3)
    outcomes = {
        sched: ServingEngine(catalog, config, make_scheduler(sched),
                             store_factory=_sharded).serve(annotated)
        for sched in ("fifo", "affinity")}
    fifo, aff = outcomes["fifo"], outcomes["affinity"]
    unsharded = ServingEngine(catalog, config,
                              make_scheduler("fifo")).serve(requests)
    return {
        "n_requests": len(requests),
        "n_updates": fifo.aggregates["n_updates"],
        "multi_shard_updates": multi_shard_updates,
        "results_identical": answers_identical(fifo, aff),
        "matches_unsharded_queries": (
            {r.qid: r.digest for r in fifo.records}
            == {r.qid: r.digest for r in unsharded.records}),
        "schedulers": {sched: {
            "throughput_qps": o.aggregates["throughput_qps"],
            "warm_fraction": o.aggregates["warm_fraction"],
            "updates_coalesced": o.aggregates["updates_coalesced"],
        } for sched, o in outcomes.items()},
    }


def bench_failover(quick: bool = False) -> dict[str, Any]:
    """The drill: kill a replica mid-burst, re-route, re-seed, rejoin.

    The faulted run's per-query digests must equal an undisturbed run's
    — killing a replica moves queries (and their warm/cold timing),
    never their answers — and the killed replica must come back digest-
    converged after exactly one re-seed.
    """
    catalog, requests = _read_burst(quick)
    config = ServeConfig(nranks=SHARD_NRANKS, threads=BENCH_THREADS,
                         pool_capacity=3)

    def fresh() -> ReplicaSet:
        return ReplicaSet(catalog, replicas=SHARD_REPLICAS,
                          nshards=SHARD_NSHARDS, nranks=SHARD_NRANKS)

    ordered = sorted(requests)
    kill_at = ordered[len(ordered) // 3].qid
    rejoin_at = ordered[(2 * len(ordered)) // 3].qid
    plain = fresh().serve_reads(requests, config)
    victim = max(plain.replica_counts, key=lambda rid:
                 (plain.replica_counts[rid], rid))
    replicas = fresh()
    faulted = replicas.serve_reads(requests, config, kill_replica=victim,
                                   kill_at=kill_at, rejoin_at=rejoin_at)
    return {
        "n_queries": len(requests),
        "killed_replica": victim,
        "kill_at_qid": kill_at,
        "rejoin_at_qid": rejoin_at,
        "digests_identical": plain.digests() == faulted.digests(),
        "reseeds": replicas.reseeds,
        "rejoined_converged": replicas.verify() == [],
        "throughput_plain_qps": plain.throughput_qps,
        "throughput_faulted_qps": faulted.throughput_qps,
        "replica_counts_faulted": {rid: count for rid, count
                                   in sorted(faulted.replica_counts.items())},
    }


def bench_replication(graph: CSRGraph, gname: str, *,
                      commits: int = 4) -> dict[str, Any]:
    """Convergence by digest, then the detect → heal path for divergence."""
    name = graph.name or gname
    replicas = ReplicaSet({name: graph}, replicas=SHARD_REPLICAS,
                          nshards=SHARD_NSHARDS, nranks=SHARD_NRANKS)
    n_edges = max(8, graph.m // 25)
    for r in range(commits):
        replicas.commit(name, random_update_batch(
            replicas.primary.graph(name), n_edges, 0.3,
            seed=derive_seed(SHARD_SEED, "shard-rep", gname, r)))
    converged = replicas.verify() == []
    # Inject divergence: a write that bypasses the set hits one replica.
    rogue = replicas.live_ids()[0]
    replicas.replica(rogue).apply(name, UpdateBatch.build(
        [[0, graph.n - 1]], None, n=graph.n, directed=graph.directed))
    detected = replicas.divergent() == [rogue]
    healed = replicas.heal() == [rogue]
    # Convergence must be provable again on the next commit.
    replicas.commit(name, random_update_batch(
        replicas.primary.graph(name), n_edges, 0.3,
        seed=derive_seed(SHARD_SEED, "shard-rep", gname, "post")))
    return {
        "commits": commits,
        "replicas": SHARD_REPLICAS,
        "converged": bool(converged),
        "divergence_detected": bool(detected),
        "healed": bool(healed),
        "converged_after_heal": replicas.verify() == [],
        "reseeds": replicas.reseeds,
    }


def run_shard_bench(quick: bool = False,
                    graphs: Mapping[str, CSRGraph] | None = None
                    ) -> dict[str, Any]:
    """Produce the full shard report dict (see module docstring)."""
    graphs = dict(graphs) if graphs is not None else bench_graphs(quick)
    report: dict[str, Any] = {
        "schema_version": SHARD_SCHEMA_VERSION,
        "quick": quick,
        "nranks": SHARD_NRANKS,
        "nshards": SHARD_NSHARDS,
        "replicas": SHARD_REPLICAS,
        "threads": BENCH_THREADS,
        "graphs": {name: {"vertices": g.n, "edges": g.m}
                   for name, g in graphs.items()},
        "bit_identity": {},
        "read_scaling": bench_read_scaling(quick),
        "updates": {"serving": bench_sharded_serving(quick)},
        "failover": bench_failover(quick),
        "replication": {},
    }
    rounds = 4 if quick else 6
    for gname, graph in graphs.items():
        report["bit_identity"][gname] = bench_bit_identity(
            graph, gname, rounds=rounds)
        report["updates"][gname] = bench_update_latency(graph, gname)
        report["replication"][gname] = bench_replication(graph, gname)
    return report


def check_shard_report(report: Mapping[str, Any], *,
                       min_scaling: float = MIN_READ_SCALING) -> list[str]:
    """The absolute gate a shard report must pass to be recorded.

    Returns human-readable problems (empty list = pass): bit-identity
    with multi-shard commits actually exercised, version vectors
    re-derivable, read scaling above the floor with placement-
    independent digests, scheduler-independent sharded serving that
    matches the unsharded engine, a digest-clean failover drill, and
    the full divergence detect → heal path.
    """
    problems = []
    for key in SHARD_REPORT_KEYS:
        if key not in report:
            problems.append(f"shard report missing key {key!r}")
    for gname, row in report.get("bit_identity", {}).items():
        if not row.get("heads_identical", False):
            problems.append(
                f"bit_identity:{gname}: sharded heads diverged from the "
                "unsharded store")
        if not row.get("kernels_identical", False):
            problems.append(
                f"bit_identity:{gname}: kernel answers differ between "
                "sharded and unsharded heads")
        if int(row.get("multi_shard_commits", 0)) <= 0:
            problems.append(
                f"bit_identity:{gname}: no multi-shard commit was "
                "exercised (the barrier path went untested)")
        if not row.get("version_vector_ok", False):
            problems.append(
                f"bit_identity:{gname}: version vector does not re-derive "
                "from the commit log")
    scaling = report.get("read_scaling", {})
    if float(scaling.get("read_scaling", 0.0)) < min_scaling:
        problems.append(
            f"read_scaling: {scaling.get('read_scaling', 0.0):.2f}x at "
            f"{scaling.get('replicas', '?')} replicas is below the "
            f"{min_scaling:.1f}x floor")
    if scaling.get("digests_identical") is not True:
        problems.append(
            "read_scaling: answers changed with replica count (placement "
            "must never change answers)")
    updates = report.get("updates", {})
    serving = updates.get("serving", {})
    if serving.get("results_identical") is not True:
        problems.append(
            "updates:serving: sharded serving is not scheduler-independent "
            "(shard-set fence broken?)")
    if serving.get("matches_unsharded_queries") is not True:
        problems.append(
            "updates:serving: sharded query answers diverged from the "
            "unsharded engine")
    for gname, row in updates.items():
        if gname == "serving":
            continue
        if not row.get("version_vector_ok", False):
            problems.append(
                f"updates:{gname}: version vector inconsistent after the "
                "latency scenario")
    failover = report.get("failover", {})
    if failover.get("digests_identical") is not True:
        problems.append(
            "failover: killing a replica changed query answers")
    if int(failover.get("reseeds", 0)) != 1:
        problems.append(
            f"failover: expected exactly 1 re-seed, got "
            f"{failover.get('reseeds')}")
    if failover.get("rejoined_converged") is not True:
        problems.append(
            "failover: the rejoined replica is not digest-converged")
    for gname, row in report.get("replication", {}).items():
        for field in ("converged", "divergence_detected", "healed",
                      "converged_after_heal"):
            if row.get(field) is not True:
                problems.append(f"replication:{gname}: {field} is false")
    return problems


def check_shard_against_baseline(report: Mapping[str, Any],
                                 baseline: Mapping[str, Any], *,
                                 tolerance: float = 0.25) -> list[str]:
    """CI gate: a fresh (quick) report versus the committed baseline.

    Correctness clauses are absolute (bit-identity, digest-clean
    failover, convergence) and the :data:`MIN_READ_SCALING` floor always
    applies; on top, the fresh read scaling must stay above
    ``tolerance`` times the baseline's, mirroring ``repro bench
    --check`` (quick sizes run against the full-size baseline, so graph
    names are deliberately not matched).
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be > 0, got {tolerance}")
    problems = check_shard_report(report)
    base_scaling = baseline.get("read_scaling", {})
    if not base_scaling:
        problems.append(
            "baseline has no read_scaling section (is --check pointed at "
            "a BENCH_shard.json?)")
        return problems
    floor = tolerance * float(base_scaling.get("read_scaling", 0.0))
    fresh = float(report.get("read_scaling", {}).get("read_scaling", 0.0))
    if fresh < floor:
        problems.append(
            f"read scaling {fresh:.2f}x fell below {floor:.2f}x "
            f"({tolerance:.0%} of the baseline's "
            f"{float(base_scaling.get('read_scaling', 0.0)):.2f}x)")
    return problems


def write_shard_report(report: Mapping[str, Any], path: str, *,
                       gate: bool = True) -> None:
    """Gate-check (optionally), schema-check and write the shard report.

    ``gate=False`` skips the absolute gate and only schema-checks — for
    CI runs whose verdict comes from
    :func:`check_shard_against_baseline` instead.
    """
    if gate:
        problems = check_shard_report(report)
        if problems:
            raise ValueError("; ".join(problems))
    write_report(report, path, required_keys=SHARD_REPORT_KEYS)


def shard_trajectory_row(report: Mapping[str, Any], *,
                         date: str | None = None) -> dict[str, Any]:
    """Condense one shard report into a dated trajectory line."""
    import datetime

    latencies = [float(row["cross_to_single_latency"])
                 for gname, row in report.get("updates", {}).items()
                 if gname != "serving"]
    return {
        "date": date or datetime.date.today().isoformat(),
        "kind": "shard",
        "quick": bool(report.get("quick", False)),
        "read_scaling": float(
            report.get("read_scaling", {}).get("read_scaling", 0.0)),
        "multi_shard_commits": int(sum(
            row.get("multi_shard_commits", 0)
            for row in report.get("bit_identity", {}).values())),
        "cross_to_single_latency_mean": (
            float(np.mean(latencies)) if latencies else 0.0),
        "failover_digests_identical": bool(
            report.get("failover", {}).get("digests_identical", False)),
    }


# ---------------------------------------------------------------------------
# One-off CLI runs (``repro shard`` without --bench)
# ---------------------------------------------------------------------------

def one_off_shard_run(graph: CSRGraph, *, nshards: int = SHARD_NSHARDS,
                      nranks: int = SHARD_NRANKS,
                      replicas: int = SHARD_REPLICAS, n_edges: int = 16,
                      delete_fraction: float = 0.25, seed: int = 0
                      ) -> dict[str, Any]:
    """Shard one graph, commit one batch, prove identity + convergence."""
    name = graph.name or "graph"
    sharded = ShardedGraphStore({name: graph}, nshards=nshards,
                                nranks=nranks)
    plain = GraphStore({name: graph})
    batch = random_update_batch(graph, n_edges, delete_fraction, seed=seed)
    su = sharded.apply(name, batch)
    uu = plain.apply(name, batch)
    replica_set = ReplicaSet({name: graph}, replicas=replicas,
                             nshards=nshards, nranks=nranks)
    replica_set.commit(name, batch)
    return {
        "graph": name, "vertices": graph.n, "edges": graph.m,
        "nshards": nshards,
        "shard_starts": [int(s) for s in sharded.plan(name).starts],
        "version": str(su.version),
        "shards_touched": sorted(su.shards),
        "version_vector": list(sharded.version_vector(name)),
        "version_vector_ok": sharded.check_version_vector(name) == [],
        "edges_inserted": su.delta.n_inserted,
        "edges_deleted": su.delta.n_deleted,
        "bit_identical": graph_digest(su.graph) == graph_digest(uu.graph),
        "store_digest": sharded.digest(name)[:12],
        "replicas": replicas,
        "replicas_converged": replica_set.verify() == [],
        "ring": replica_set.router.store_ids(),
    }
