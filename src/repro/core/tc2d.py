"""Asynchronous 2D (grid) triangle counting — the paper's future work i.

Each rank of an ``r x c`` grid owns one adjacency block ``A[I, J]``.  The
algebraic identity ``6T = sum((A @ A) ∘ A)`` (related-work Section V-B)
decomposes over blocks as

    6T = sum_{I,J} sum_K  || (A[I,K] @ A[K,J]) ∘ A[I,J] ||_1

so rank ``(I, J)`` needs exactly the blocks of its grid **row** (``A[I,K]``,
owned by row peers) and grid **column** (``A[K,J]``, owned by column
peers).  As in the 1D algorithm, the blocks are fetched with one-sided
gets — no synchronization — but now each rank communicates with only
``r + c - 2 = O(sqrt(p))`` peers, and the per-rank received volume drops
from O(edge-cut) to two block strips: the "lower communication cost than
1D distribution" the paper's conclusion anticipates.

Blocks travel as packed CSR (``[n_rows, nnz, indptr..., indices...]``)
through a single RMA window; computation is priced per sparse-multiply
operand and output element.

The module is split the same way :mod:`repro.core.lcc` is: *setup*
(:func:`build_grid_blocks` + a window) and *execution*
(:func:`execute_tc2d`), so a resident
:class:`~repro.graphstore.grid2d.GridCluster2D` can build the grid once
and serve any number of warm queries, while the legacy per-call entry
point :func:`run_distributed_tc_2d` keeps rebuilding everything per call
(it is the resident path's bit-identity oracle).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.config import DistributedRunResult, LCCConfig
from repro.graph.csr import CSRGraph
from repro.graph.partition2d import GridPartition2D, split_edges_2d
from repro.runtime.context import SimContext
from repro.runtime.engine import Engine
from repro.runtime.window import Window
from repro.utils.errors import ConfigError

#: Window name the packed blocks are exposed through.
BLOCKS_WINDOW = "edge_blocks"


def pack_block(block: sp.csr_matrix) -> np.ndarray:
    """Serialize a CSR block into one int32 vector for the RMA window."""
    return np.concatenate([
        np.array([block.shape[0], block.nnz], dtype=np.int32),
        block.indptr.astype(np.int32),
        block.indices.astype(np.int32),
    ])


def _unpack_block(data: np.ndarray, n_cols: int) -> sp.csr_matrix:
    """Inverse of :func:`pack_block`."""
    n_rows = int(data[0])
    nnz = int(data[1])
    indptr = data[2:3 + n_rows].astype(np.int64)
    indices = data[3 + n_rows:3 + n_rows + nnz].astype(np.int64)
    values = np.ones(nnz, dtype=np.int64)
    return sp.csr_matrix((values, indices, indptr), shape=(n_rows, n_cols))


def build_block(graph: CSRGraph, grid: GridPartition2D, rank: int
                ) -> sp.csr_matrix:
    """One rank's local CSR block, rebuilt directly from the global CSR.

    Equivalent to the ``rank`` element of :func:`build_grid_blocks` but
    touches only this block's row range — the unit of work a dynamic
    resync pays per *touched* block instead of re-splitting every edge.
    """
    row, col = grid.grid_coords(rank)
    r_lo, r_hi = grid.row_range(row)
    c_lo, c_hi = grid.col_range(col)
    shape = (r_hi - r_lo, c_hi - c_lo)
    start, end = int(graph.offsets[r_lo]), int(graph.offsets[r_hi])
    adj = graph.adjacency[start:end].astype(np.int64, copy=False)
    mask = (adj >= c_lo) & (adj < c_hi)
    if not mask.any():
        return sp.csr_matrix(shape, dtype=np.int64)
    degs = (graph.offsets[r_lo + 1:r_hi + 1]
            - graph.offsets[r_lo:r_hi]).astype(np.int64)
    rows = np.repeat(np.arange(shape[0], dtype=np.int64), degs)
    return sp.csr_matrix(
        (np.ones(int(mask.sum()), dtype=np.int64),
         (rows[mask], adj[mask] - c_lo)),
        shape=shape,
    )


def build_grid_blocks(graph: CSRGraph, grid: GridPartition2D
                      ) -> list[sp.csr_matrix]:
    """One local CSR block per rank, in rank order."""
    per_rank_edges = split_edges_2d(graph, grid)
    blocks = []
    for rank, edges in enumerate(per_rank_edges):
        row, col = grid.grid_coords(rank)
        r_lo, r_hi = grid.row_range(row)
        c_lo, c_hi = grid.col_range(col)
        shape = (r_hi - r_lo, c_hi - c_lo)
        if edges.shape[0] == 0:
            blocks.append(sp.csr_matrix(shape, dtype=np.int64))
            continue
        block = sp.csr_matrix(
            (np.ones(edges.shape[0], dtype=np.int64),
             (edges[:, 0] - r_lo, edges[:, 1] - c_lo)),
            shape=shape,
        )
        blocks.append(block)
    return blocks


# Backwards-compatible aliases (pre-refactor private names).
_pack_block = pack_block
_build_blocks = build_grid_blocks


def require_square_grid(grid: GridPartition2D, *, kernel: str | None = None,
                        strict: bool = False) -> bool:
    """True when the SUMMA-style square-grid kernel applies.

    The SUMMA round structure needs the row and column vertex blockings
    to coincide, which only holds on square process grids.  With
    ``strict=True`` a rectangular grid raises a :class:`ConfigError`
    naming the kernel and suggesting the nearest square rank counts —
    the guard the algebraic ``tc2d_spgemm``/``lcc2d`` kernels run behind
    (the edge-centric ``tc2d`` instead falls back to the rectangular
    path on a ``False`` return).
    """
    square = grid.rows == grid.cols
    if strict and not square:
        import math

        root = math.isqrt(grid.nranks)
        hints = sorted({root * root, (root + 1) * (root + 1)}
                       - {grid.nranks})
        raise ConfigError(
            f"kernel {kernel or 'tc2d_spgemm'!r} needs a square process grid "
            f"(SUMMA rounds share one vertex blocking), but nranks="
            f"{grid.nranks} gives a {grid.rows}x{grid.cols} grid; choose a "
            f"square rank count (e.g. {' or '.join(str(h) for h in hints)}) "
            "or use the edge-centric 'tc2d' kernel, which supports "
            "rectangular grids")
    return square


def execute_tc2d(engine: Engine, grid: GridPartition2D,
                 blocks: list[sp.csr_matrix], win: Window,
                 config: LCCConfig, graph: CSRGraph) -> DistributedRunResult:
    """Run the 2D triangle count on an already-built grid cluster.

    Epochs must be open on entry and are left open on return (the
    resident cluster keeps them open across queries; the per-call path
    never reuses the engine).  Remote block fetches go through any
    CLaMPI caches attached to ``win``, exactly like the 1D kernels.
    """
    counts = np.zeros(grid.nranks, dtype=np.int64)
    cm = config.compute

    # The inner index K must range over one shared blocking of the vertex
    # space; on a square grid (rows == cols) the row and column blockings
    # coincide and the SUMMA-style sum below applies directly.  Non-square
    # grids take a correctness-first fallback that still exhibits the 2D
    # communication pattern.
    if not require_square_grid(grid):
        return _execute_rectangular_fallback(engine, grid, win, graph)

    def rank_fn_square(ctx: SimContext) -> int:
        rank = ctx.rank
        row, col = grid.grid_coords(rank)
        own = blocks[rank]
        total = 0
        for k in range(grid.cols):
            left_owner = row * grid.cols + k     # A[I, K]: row peer
            right_owner = k * grid.cols + col    # A[K, J]: column peer
            left = _fetch_block(ctx, win, blocks, grid, left_owner)
            right = _fetch_block(ctx, win, blocks, grid, right_owner)
            if left.nnz == 0 or right.nnz == 0 or own.nnz == 0:
                continue
            product = (left @ right).multiply(own)
            flops = left.nnz + right.nnz + product.nnz
            ctx.compute(cm.edge_overhead + flops * cm.c_ssi)
            total += int(product.sum())
        counts[rank] = total
        return total

    outcome = engine.run(rank_fn_square)
    total = int(counts.sum())
    assert total % 6 == 0, f"2D triplet total {total} not divisible by 6"
    return DistributedRunResult(
        lcc=None,
        triangles_per_vertex=None,
        global_triangles=total // 6,
        outcome=outcome,
    )


def run_distributed_tc_2d(graph: CSRGraph, config: LCCConfig | None = None
                          ) -> DistributedRunResult:
    """Asynchronous triangle count over a throwaway 2D grid partition.

    Rebuilds the engine, grid, blocks and window on every call — the
    legacy behavior, kept as the oracle the resident
    ``GridCluster2D`` path is pinned bit-identical against.
    """
    if graph.directed:
        raise ConfigError("2D triangle counting expects an undirected graph")
    config = config or LCCConfig()
    engine = Engine(config.nranks, network=config.network,
                    memory=config.memory, compute=config.compute)
    grid = GridPartition2D(graph.n, config.nranks)
    blocks = build_grid_blocks(graph, grid)
    win = engine.windows.add(Window(BLOCKS_WINDOW,
                                    [pack_block(b) for b in blocks]))
    for rank in range(config.nranks):
        win.lock_all(rank)
    return execute_tc2d(engine, grid, blocks, win, config, graph)


def _fetch_block(ctx: SimContext, win: Window, blocks, grid, owner: int
                 ) -> sp.csr_matrix:
    """Get a peer's packed block (own block is read locally)."""
    _, owner_col = grid.grid_coords(owner)
    c_lo, c_hi = grid.col_range(owner_col)
    if owner == ctx.rank:
        return blocks[owner]
    data = ctx.get(win, owner, 0, win.part_len(owner))
    return _unpack_block(data, c_hi - c_lo)


def _execute_rectangular_fallback(engine: Engine, grid: GridPartition2D,
                                  win: Window, graph: CSRGraph
                                  ) -> DistributedRunResult:
    """Non-square grids: every rank fetches the blocks it needs and the
    count is assembled from the full matrix (correctness-first path)."""

    def rank_fn(ctx: SimContext) -> int:
        # Fetch the whole grid row and column strips (the 2D volume), then
        # count this rank's masked contribution using the global matrix.
        for peer in grid.row_peers(ctx.rank) + grid.col_peers(ctx.rank):
            if peer != ctx.rank:
                ctx.get(win, peer, 0, win.part_len(peer))
        return 0

    outcome = engine.run(rank_fn)
    from repro.core.local import triangle_count_local

    return DistributedRunResult(
        lcc=None,
        triangles_per_vertex=None,
        global_triangles=triangle_count_local(graph),
        outcome=outcome,
    )
