"""Tests for units and formatting."""

import pytest

from repro.utils.units import (
    GiB,
    KiB,
    MiB,
    MS,
    NS,
    US,
    format_bytes,
    format_seconds,
)
from repro.utils.units import format_rate


class TestConstants:
    def test_byte_units(self):
        assert KiB == 1024
        assert MiB == 1024 ** 2
        assert GiB == 1024 ** 3

    def test_time_units(self):
        assert US == pytest.approx(1000 * NS)
        assert MS == pytest.approx(1000 * US)


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kib(self):
        assert format_bytes(2048) == "2.0 KiB"

    def test_mib(self):
        assert format_bytes(905.8 * MiB) == "905.8 MiB"

    def test_gib(self):
        assert format_bytes(3.6 * GiB) == "3.60 GiB"


class TestFormatSeconds:
    def test_ns(self):
        assert format_seconds(500e-9) == "500 ns"

    def test_us(self):
        assert format_seconds(2.5e-6) == "2.50 us"

    def test_ms(self):
        assert format_seconds(0.25) == "250.0 ms"

    def test_s(self):
        assert format_seconds(90) == "90.00 s"

    def test_negative(self):
        assert format_seconds(-2.5e-6) == "-2.50 us"


class TestFormatRate:
    def test_rate(self):
        assert format_rate(100, 100e-6) == "1.000 edges/us"

    def test_zero_time(self):
        assert format_rate(10, 0) == "inf"
