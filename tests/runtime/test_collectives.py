"""Direct tests for the collective-rendezvous bookkeeping."""

import pytest

from repro.runtime.collectives import CollectiveState
from repro.runtime.network import NetworkModel
from repro.utils.errors import CommError


def make_state(nranks=3):
    return CollectiveState(nranks, NetworkModel.aries())


class TestBarrier:
    def test_completion_tracking(self):
        st = make_state(2)
        seq = st.join(0, "barrier", 1.0)
        assert not st.complete(seq)
        st.join(1, "barrier", 2.5)
        assert st.complete(seq)
        done, results = st.finish(seq)
        assert done > 2.5
        assert results == {0: None, 1: None}

    def test_double_join_rejected(self):
        st = make_state(2)
        st.join(0, "barrier", 0.0)
        # Rank 0's next join goes to sequence 1 automatically; to hit the
        # double-join guard we forge participation through internal state.
        st._seq[0] = 0
        with pytest.raises(CommError, match="twice"):
            st.join(0, "barrier", 0.0)

    def test_kind_mismatch_rejected(self):
        st = make_state(2)
        st.join(0, "barrier", 0.0)
        with pytest.raises(CommError, match="mismatch"):
            st.join(1, "alltoallv", 0.0, ([None, None], [0, 0]))

    def test_finish_before_complete_rejected(self):
        st = make_state(2)
        seq = st.join(0, "barrier", 0.0)
        with pytest.raises(CommError):
            st.finish(seq)


class TestAlltoallv:
    def test_payload_routing(self):
        st = make_state(2)
        seq = st.join(0, "alltoallv", 0.0, (["to0", "to1"], [4, 8]))
        st.join(1, "alltoallv", 0.0, (["TO0", "TO1"], [16, 0]))
        done, results = st.finish(seq)
        assert results[0] == ["to0", "TO0"]
        assert results[1] == ["to1", "TO1"]
        assert done > 0

    def test_cost_gated_by_heaviest_rank(self):
        net = NetworkModel.aries()
        st_light = CollectiveState(2, net)
        seq = st_light.join(0, "alltoallv", 0.0, ([None, None], [0, 64]))
        st_light.join(1, "alltoallv", 0.0, ([None, None], [64, 0]))
        done_light, _ = st_light.finish(seq)

        st_heavy = CollectiveState(2, net)
        seq = st_heavy.join(0, "alltoallv", 0.0, ([None, None], [0, 1 << 22]))
        st_heavy.join(1, "alltoallv", 0.0, ([None, None], [64, 0]))
        done_heavy, _ = st_heavy.finish(seq)
        assert done_heavy > done_light

    def test_sequences_are_independent(self):
        st = make_state(2)
        s0 = st.join(0, "barrier", 0.0)
        s1 = st.join(0, "barrier", 0.0)  # rank 0 raced ahead to barrier #2
        assert s0 != s1
        st.join(1, "barrier", 0.0)
        assert st.complete(s0)
        assert not st.complete(s1)


class TestAllreduce:
    def test_sum_and_timing(self):
        st = make_state(2)
        seq = st.join(0, "allreduce", 1.0, (2.5, 8))
        st.join(1, "allreduce", 3.0, (4.5, 8))
        done, results = st.finish(seq)
        assert results == {0: 7.0, 1: 7.0}
        assert done > 3.0


class TestDiagnostics:
    def test_blocked_description(self):
        st = make_state(3)
        st.join(0, "barrier", 0.0)
        desc = st.blocked_description()
        assert "seq 0" in desc
        assert "[1, 2]" in desc

    def test_no_pending(self):
        assert make_state().blocked_description() == "none"
