"""Tests for SimContext: clock accounting and RMA cost charging."""

import numpy as np
import pytest

from repro.runtime.context import SimContext
from repro.runtime.window import Window
from repro.utils.errors import SimulationError


def make_ctx(rank=0, nranks=2, **kw):
    return SimContext(rank, nranks, **kw)


def make_win():
    return Window("w", [np.arange(50, dtype=np.int64),
                        np.arange(500, 550, dtype=np.int64)])


class TestClock:
    def test_starts_at_zero(self):
        assert make_ctx().now == 0.0

    def test_advance_accumulates(self):
        ctx = make_ctx()
        ctx.advance(1.5)
        ctx.advance(0.5)
        assert ctx.now == pytest.approx(2.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(SimulationError):
            make_ctx().advance(-0.1)

    def test_set_time_backwards_rejected(self):
        ctx = make_ctx()
        ctx.advance(1.0)
        with pytest.raises(SimulationError):
            ctx.set_time(0.5)

    def test_invalid_rank_rejected(self):
        with pytest.raises(SimulationError):
            SimContext(5, 2)


class TestCompute:
    def test_compute_charges_clock_and_trace(self):
        ctx = make_ctx()
        ctx.compute(2e-6)
        assert ctx.now == pytest.approx(2e-6)
        assert ctx.trace.comp_time == pytest.approx(2e-6)

    def test_charge_kernel_matches_model(self):
        ctx = make_ctx()
        expected = ctx.compute_model.hybrid_time(10, 20)
        dt = ctx.charge_kernel("hybrid", 10, 20)
        assert dt == pytest.approx(expected)
        assert ctx.now == pytest.approx(expected)


class TestGet:
    def test_local_get_charges_memory_cost(self):
        ctx = make_ctx(rank=0)
        win = make_win()
        data = ctx.get(win, 0, 5, 3)
        np.testing.assert_array_equal(data, [5, 6, 7])
        assert ctx.now == pytest.approx(ctx.memory.local_read_time(24))
        assert ctx.trace.n_local_reads == 1
        assert ctx.trace.n_remote_gets == 0

    def test_remote_get_charges_network_cost(self):
        ctx = make_ctx(rank=0)
        win = make_win()
        win.lock_all(0)
        data = ctx.get(win, 1, 0, 4)
        np.testing.assert_array_equal(data, [500, 501, 502, 503])
        assert ctx.now == pytest.approx(ctx.network.get_time(32))
        assert ctx.trace.n_remote_gets == 1
        assert ctx.trace.bytes_remote == 32
        assert ctx.trace.comm_time == pytest.approx(ctx.now)

    def test_remote_get_slower_than_local(self):
        ctx_l, ctx_r = make_ctx(0), make_ctx(0)
        win = make_win()
        win.lock_all(0)
        ctx_l.get(win, 0, 0, 10)
        ctx_r.get(win, 1, 0, 10)
        assert ctx_r.now > ctx_l.now * 5

    def test_get_nowait_does_not_advance_clock(self):
        ctx = make_ctx(rank=0)
        win = make_win()
        win.lock_all(0)
        data, dt = ctx.get_nowait(win, 1, 0, 4)
        np.testing.assert_array_equal(data, [500, 501, 502, 503])
        assert dt == pytest.approx(ctx.network.get_time(32))
        assert ctx.now == 0.0
        # ...but the trace still records the busy time.
        assert ctx.trace.comm_time == pytest.approx(dt)


class TestPut:
    def test_put_moves_data_and_charges(self):
        ctx = make_ctx(rank=0)
        win = make_win()
        win.lock_all(0)
        ctx.put(win, 1, 0, np.array([9, 9], dtype=np.int64))
        np.testing.assert_array_equal(win.local_part(1)[:3], [9, 9, 502])
        assert ctx.now == pytest.approx(ctx.network.put_time(16))
        assert ctx.trace.n_puts == 1


class TestRequestBuilders:
    def test_send_validates_dest(self):
        ctx = make_ctx()
        with pytest.raises(SimulationError):
            ctx.send(9, "x", 10)

    def test_recv_validates_source(self):
        ctx = make_ctx()
        with pytest.raises(SimulationError):
            ctx.recv(-1)

    def test_alltoallv_requires_full_vectors(self):
        ctx = make_ctx(nranks=4)
        with pytest.raises(SimulationError):
            ctx.alltoallv(["a"], [1])

    def test_request_shapes(self):
        ctx = make_ctx(nranks=2)
        s = ctx.send(1, "hi", 64, tag=3)
        assert (s.dest, s.payload, s.nbytes, s.tag) == (1, "hi", 64, 3)
        r = ctx.recv(1, tag=3)
        assert (r.source, r.tag) == (1, 3)


class TestCacheAttachment:
    def test_attach_and_detach(self):
        ctx = make_ctx()
        win = make_win()

        class FakeCache:
            def __init__(self):
                self.calls = 0

            def access(self, target, offset, count):
                self.calls += 1
                return np.zeros(count, dtype=np.int64), 1e-9, True

            def on_epoch_close(self):
                pass

        cache = FakeCache()
        ctx.attach_cache(win, cache)
        assert ctx.cache_for(win) is cache
        ctx.get(win, 1, 0, 3)
        assert cache.calls == 1
        assert ctx.trace.n_cache_hits == 1
        ctx.detach_cache(win)
        assert ctx.cache_for(win) is None

    def test_local_get_bypasses_cache(self):
        ctx = make_ctx(rank=0)
        win = make_win()

        class Exploding:
            def access(self, *a):
                raise AssertionError("cache must not see local reads")

            def on_epoch_close(self):
                pass

        ctx.attach_cache(win, Exploding())
        ctx.get(win, 0, 0, 2)  # must not raise
