"""Cache statistics.

Everything the paper's cache figures need: hit/miss/compulsory-miss rates
(Figure 7's grey "compulsory" band), evictions split by cause (capacity vs
hash conflict, both watched by the adaptive tuner), and served-bytes
accounting for communication-volume reductions.

The hot-path counters stay plain ints on a dataclass — a cache access
must cost one attribute add, not a registry lookup.  Reporting is where
the counters meet the :mod:`repro.obs.metrics` registry:
:meth:`CacheStats.snapshot` and :meth:`CacheStats.as_registry` build the
same typed metric set, and the snapshot dict is byte-identical to the
historical one (same keys, same order, same values), so every committed
``BENCH_*.json`` stays stable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry


@dataclass
class CacheStats:
    """Counters for one :class:`~repro.clampi.cache.ClampiCache`."""

    hits: int = 0
    misses: int = 0
    compulsory_misses: int = 0
    capacity_evictions: int = 0
    conflict_evictions: int = 0
    hash_conflicts: int = 0
    insert_failures: int = 0  # entry not cached (too big / nothing evictable)
    flushes: int = 0
    adaptive_resizes: int = 0
    invalidations: int = 0    # entries evicted because their data changed
    invalidated_bytes: int = 0
    rekeys: int = 0           # entries retained under a new key (data moved)
    rekeyed_bytes: int = 0

    bytes_served_from_cache: int = 0
    bytes_fetched: int = 0

    mgmt_time: float = 0.0  # seconds spent on cache management (overhead)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def compulsory_miss_rate(self) -> float:
        """Fraction of all accesses that were first-touch misses.

        A compulsory miss cannot be avoided by any cache size — Figure 7
        shades this region grey.
        """
        return self.compulsory_misses / self.accesses if self.accesses else 0.0

    @property
    def avoidable_miss_rate(self) -> float:
        """Misses a bigger/better cache could have converted into hits."""
        return self.miss_rate - self.compulsory_miss_rate

    @property
    def evictions(self) -> int:
        return self.capacity_evictions + self.conflict_evictions

    #: ``snapshot()``'s historical key order: counters interleaved with
    #: derived rates.  ``as_registry`` registers metrics in exactly this
    #: order so the registry snapshot reproduces the legacy dict.
    SNAPSHOT_COUNTERS = (
        "hits", "misses", "capacity_evictions", "conflict_evictions",
        "hash_conflicts", "insert_failures", "flushes", "invalidations",
        "invalidated_bytes", "rekeys", "rekeyed_bytes",
        "bytes_served_from_cache", "bytes_fetched",
    )
    SNAPSHOT_GAUGES = (
        "hit_rate", "miss_rate", "compulsory_miss_rate", "mgmt_time",
    )
    SNAPSHOT_KEYS = (
        "hits", "misses", "hit_rate", "miss_rate",
        "compulsory_miss_rate", "capacity_evictions",
        "conflict_evictions", "hash_conflicts", "insert_failures",
        "flushes", "invalidations", "invalidated_bytes", "rekeys",
        "rekeyed_bytes", "bytes_served_from_cache", "bytes_fetched",
        "mgmt_time",
    )

    def as_registry(self, prefix: str = "") -> MetricsRegistry:
        """These counters as typed metrics in one registry.

        Counters register as :class:`~repro.obs.metrics.Counter`,
        derived rates and ``mgmt_time`` as
        :class:`~repro.obs.metrics.Gauge`, in the historical snapshot
        key order.
        """
        registry = MetricsRegistry()
        for name in self.SNAPSHOT_KEYS:
            if name in self.SNAPSHOT_COUNTERS:
                registry.counter(prefix + name).inc(getattr(self, name))
            else:
                registry.gauge(prefix + name).set(getattr(self, name))
        return registry

    def snapshot(self) -> dict[str, float]:
        """Flat dict for reporting — the registry snapshot, verbatim.

        Delegates to :meth:`as_registry`; keys, order and values are
        byte-identical to the historical hand-built dict.
        """
        return self.as_registry().snapshot()

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another cache's counters (cluster-wide reporting)."""
        for name in (
            "hits", "misses", "compulsory_misses", "capacity_evictions",
            "conflict_evictions", "hash_conflicts", "insert_failures",
            "flushes", "adaptive_resizes", "invalidations",
            "invalidated_bytes", "rekeys", "rekeyed_bytes",
            "bytes_served_from_cache", "bytes_fetched",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.mgmt_time += other.mgmt_time
