"""The async-serving bench report and its regression gates."""

import copy

import pytest

from repro.analysis.async_serve import (
    ASYNC_REPORT_KEYS,
    MIN_ASYNC_SPEEDUP,
    async_trajectory_row,
    check_async_against_baseline,
    check_async_report,
    one_off_async_run,
    run_async_bench,
    write_async_report,
)


@pytest.fixture(scope="module")
def quick_report():
    return run_async_bench(quick=True)


class TestQuickRun:
    def test_schema_and_gates(self, quick_report):
        for key in ASYNC_REPORT_KEYS:
            assert key in quick_report
        assert check_async_report(quick_report) == []

    def test_steady_row(self, quick_report):
        steady = quick_report["steady"]
        assert steady["results_identical"] is True
        assert steady["p99_ratio"] <= 1.1
        assert steady["p99_async_s"] > 0

    def test_burst_row(self, quick_report):
        burst = quick_report["burst"]
        assert burst["results_identical"] is True
        assert burst["throughput_ratio"] >= MIN_ASYNC_SPEEDUP
        assert burst["disjoint_updates"] > 0
        assert burst["async"]["overlap_fraction"] > 0
        assert burst["async"]["max_concurrency"] > 1

    def test_backpressure_row(self, quick_report):
        bp = quick_report["backpressure"]
        assert bp["defer_identical"] is True
        assert bp["shed_deterministic"] is True
        assert bp["rejected_absent_from_digests"] is True
        assert bp["deferred_keep_arrival_accounting"] is True
        assert bp["n_rejected"] > 0
        assert bp["n_deferred"] > 0

    def test_interleavings_row(self, quick_report):
        inter = quick_report["interleavings"]
        assert inter["all_identical"] is True
        assert len(inter["seeds"]) >= 2
        assert set(inter["identical"]) == {str(s) for s in inter["seeds"]}
        assert inter["overlap_fraction_min"] > 0

    def test_write_round_trip(self, quick_report, tmp_path):
        from repro.analysis.benchreport import load_report

        path = tmp_path / "async.json"
        write_async_report(quick_report, str(path))
        loaded = load_report(str(path))
        assert set(loaded) >= set(ASYNC_REPORT_KEYS)
        assert loaded["burst"]["throughput_ratio"] == pytest.approx(
            quick_report["burst"]["throughput_ratio"])

    def test_passes_against_itself_as_baseline(self, quick_report):
        assert check_async_against_baseline(quick_report, quick_report) == []

    def test_trajectory_row_fields(self, quick_report):
        row = async_trajectory_row(quick_report)
        assert row["kind"] == "async"
        assert row["burst_speedup"] >= MIN_ASYNC_SPEEDUP
        assert row["interleavings_identical"] is True
        assert row["date"]


class TestGates:
    def test_bit_identity_is_non_negotiable(self, quick_report):
        for scenario in ("steady", "burst"):
            bad = copy.deepcopy(quick_report)
            bad[scenario]["results_identical"] = False
            assert any("diverged" in p for p in check_async_report(bad))

    def test_p99_ceiling(self, quick_report):
        bad = copy.deepcopy(quick_report)
        bad["steady"]["p99_ratio"] = 2.0
        assert any("ceiling" in p for p in check_async_report(bad))

    def test_throughput_floor(self, quick_report):
        bad = copy.deepcopy(quick_report)
        bad["burst"]["throughput_ratio"] = 1.0
        assert any("floor" in p for p in check_async_report(bad))

    def test_overlap_required(self, quick_report):
        """A 'speedup' with no measured overlap is an accounting bug."""
        bad = copy.deepcopy(quick_report)
        bad["burst"]["async"]["overlap_fraction"] = 0.0
        assert any("no overlap" in p for p in check_async_report(bad))

    def test_backpressure_booleans_required(self, quick_report):
        bad = copy.deepcopy(quick_report)
        bad["backpressure"]["shed_deterministic"] = False
        assert any("shed_deterministic" in p
                   for p in check_async_report(bad))

    def test_interleaving_battery_required(self, quick_report):
        bad = copy.deepcopy(quick_report)
        bad["interleavings"]["all_identical"] = False
        bad["interleavings"]["identical"]["3"] = False
        assert any("diverged" in p for p in check_async_report(bad))
        short = copy.deepcopy(quick_report)
        short["interleavings"]["seeds"] = [0]
        assert any("battery" in p for p in check_async_report(short))

    def test_baseline_relative_speedup(self, quick_report):
        inflated = copy.deepcopy(quick_report)
        inflated["burst"]["throughput_ratio"] *= 1000
        problems = check_async_against_baseline(quick_report, inflated)
        assert any("fell below" in p for p in problems)

    def test_wrong_baseline_kind_flagged(self, quick_report):
        problems = check_async_against_baseline(quick_report,
                                                {"quick": True})
        assert any("BENCH_async.json" in p for p in problems)

    def test_bad_tolerance_rejected(self, quick_report):
        with pytest.raises(ValueError):
            check_async_against_baseline(quick_report, quick_report,
                                         tolerance=0.0)

    def test_write_refuses_failing_report(self, quick_report, tmp_path):
        bad = copy.deepcopy(quick_report)
        bad["burst"]["results_identical"] = False
        with pytest.raises(ValueError):
            write_async_report(bad, str(tmp_path / "bad.json"))
        write_async_report(bad, str(tmp_path / "ungated.json"), gate=False)


class TestCommittedBaseline:
    def test_committed_report_passes_its_own_gate(self):
        """The checked-in BENCH_async.json must satisfy the absolute
        gate — CI compares fresh quick runs against it."""
        import json
        import os

        path = os.path.join(os.path.dirname(__file__), "..", "..",
                            "BENCH_async.json")
        with open(path) as fh:
            report = json.load(fh)
        assert report["quick"] is False
        assert check_async_report(report) == []


class TestOneOff:
    def test_one_off_run_fields(self):
        payload = one_off_async_run(n_queries=24, arrival_rate=2000.0,
                                    n_tenants=4, update_mix=0.25,
                                    workers=3, scale=0.2, seed=1)
        assert payload["results_identical"] is True
        assert payload["n_rejected"] == 0
        assert payload["async"]["max_concurrency"] >= 1
        assert payload["serial"]["throughput_qps"] > 0

    def test_one_off_shed_reports_none_identity(self):
        """With requests shed the oracle comparison is meaningless —
        the payload says so instead of comparing unequal sets."""
        payload = one_off_async_run(n_queries=32, arrival_rate=8000.0,
                                    n_tenants=4, update_mix=0.2,
                                    workers=1, max_queue=2,
                                    overflow="shed", arrival_mode="flash",
                                    scale=0.2, seed=2)
        assert payload["n_rejected"] > 0
        assert payload["results_identical"] is None
