"""Rendezvous bookkeeping for collectives.

The engine delegates the "wait for everyone, then complete together" logic
to :class:`CollectiveState`.  Completion times follow the cost model in
:class:`~repro.runtime.network.NetworkModel`:

* **barrier** — everyone resumes at ``max(arrival) + barrier_time(p)``;
* **alltoallv** — everyone resumes at ``max(arrival) + max_r cost_r`` where
  ``cost_r`` accounts for rank ``r``'s sent+received bytes.  Using the *max*
  per-rank cost models the blocking semantics the paper blames for TriC's
  synchronization overhead: the slowest, most loaded rank gates everyone.
* **allreduce** — a dissemination pattern: ``log2(p)`` latency stages.

Collective calls are matched by sequence number per rank; mixing up the
order (rank 0 at a barrier while rank 1 is at an alltoallv) is a program
bug and raises :class:`~repro.utils.errors.CommError`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.runtime.network import NetworkModel
from repro.utils.errors import CommError


@dataclass
class _PendingCollective:
    """State of the collective with one sequence number."""

    kind: str
    arrivals: dict[int, float] = field(default_factory=dict)
    payloads: dict[int, Any] = field(default_factory=dict)


class CollectiveState:
    """Matches collective participation across ranks and times completion."""

    def __init__(self, nranks: int, network: NetworkModel):
        self.nranks = nranks
        self.network = network
        # Sequence number of the *next* collective each rank will join.
        self._seq: list[int] = [0] * nranks
        self._pending: dict[int, _PendingCollective] = {}

    def join(self, rank: int, kind: str, arrival: float, payload: Any = None) -> int:
        """Register ``rank`` at its next collective; returns its seq number."""
        seq = self._seq[rank]
        self._seq[rank] += 1
        pend = self._pending.get(seq)
        if pend is None:
            pend = _PendingCollective(kind=kind)
            self._pending[seq] = pend
        elif pend.kind != kind:
            raise CommError(
                f"collective mismatch at sequence {seq}: rank {rank} joined "
                f"{kind!r} but earlier ranks joined {pend.kind!r}"
            )
        if rank in pend.arrivals:
            raise CommError(f"rank {rank} joined collective {seq} twice")
        pend.arrivals[rank] = arrival
        pend.payloads[rank] = payload
        return seq

    def complete(self, seq: int) -> bool:
        """True when every rank has joined collective ``seq``."""
        pend = self._pending.get(seq)
        return pend is not None and len(pend.arrivals) == self.nranks

    def finish(self, seq: int) -> tuple[float, dict[int, Any]]:
        """Resolve collective ``seq``: returns ``(completion_time, results)``.

        ``results[rank]`` is what the rank's generator is resumed with.
        """
        pend = self._pending.pop(seq)
        if len(pend.arrivals) != self.nranks:
            raise CommError(f"collective {seq} finished before all ranks joined")
        start = max(pend.arrivals.values())

        if pend.kind == "barrier":
            done = start + self.network.barrier_time(self.nranks)
            return done, {r: None for r in range(self.nranks)}

        if pend.kind == "allreduce":
            stages = math.ceil(math.log2(self.nranks)) if self.nranks > 1 else 0
            nbytes = max((p[1] for p in pend.payloads.values()), default=8)
            done = start + stages * (self.network.alpha + nbytes * self.network.beta)
            total = sum(p[0] for p in pend.payloads.values())
            return done, {r: total for r in range(self.nranks)}

        if pend.kind == "alltoallv":
            # payloads[r] = (list_of_payloads_by_dest, list_of_nbytes_by_dest)
            sent = {r: sum(pend.payloads[r][1]) - pend.payloads[r][1][r]
                    for r in range(self.nranks)}
            recv = {r: sum(pend.payloads[s][1][r]
                           for s in range(self.nranks) if s != r)
                    for r in range(self.nranks)}
            worst = max(
                self.network.alltoallv_rank_time(sent[r], recv[r], self.nranks)
                for r in range(self.nranks)
            )
            done = start + worst
            results = {
                r: [pend.payloads[s][0][r] for s in range(self.nranks)]
                for r in range(self.nranks)
            }
            return done, results

        raise CommError(f"unknown collective kind {pend.kind!r}")

    def blocked_description(self) -> str:
        """Human-readable summary of incomplete collectives (deadlock dumps)."""
        parts = []
        for seq, pend in sorted(self._pending.items()):
            missing = sorted(set(range(self.nranks)) - set(pend.arrivals))
            parts.append(f"seq {seq} ({pend.kind}): waiting for ranks {missing}")
        return "; ".join(parts) if parts else "none"
