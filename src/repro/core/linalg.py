"""Algebraic 2D kernels: masked SpGEMM over SUMMA panels.

The edge-centric 2D kernel (:mod:`repro.core.tc2d`) walks a Python loop
per rank and per SUMMA round, unpacking packed CSR blocks and running a
scipy multiply for every ``(rank, round)`` pair — exact, but it pays
``p * sqrt(p)`` interpreter round trips per query.  This module is the
linear-algebra backend ROADMAP item 4 calls for: the same masked-SpGEMM
identity

    6T = sum_{I,J} sum_K  || (A[I,K] @ A[K,J]) ∘ A[I,J] ||_1

evaluated **per round instead of per rank**.  Round ``K`` of SUMMA
multiplies the column panel ``A[:, V_K]`` by the row panel ``A[V_K, :]``
(one strip SpGEMM for the whole grid) and masks by ``A``; every rank's
per-round product nnz, masked contribution and per-vertex row sums then
fall out of two ``np.bincount`` passes over the block coordinates.  The
per-rank simulated clocks and traces are rebuilt exactly as
:mod:`repro.core.replay` rebuilds the 1D kernels': the remote block
fetches are emitted as a :class:`~repro.clampi.cache.BatchStream` per
rank (pushed through :meth:`ClampiCache.access_batch` when block caches
are attached, closed-form network costs otherwise) and every clock /
trace total is a strict left-to-right ``np.cumsum`` fold over delta
arrays laid out in the scalar loop's program order — **bit-identical**
to :func:`repro.core.tc2d.execute_tc2d`, including each float add.

Three entry points build on the shared :class:`SummaStats` tables:

* :func:`execute_tc2d_spgemm` — the ``tc2d_spgemm`` kernel, and equally
  the batched replay the cached ``tc2d`` fast path dispatches to (the
  two are the same program; only result cosmetics differ);
* :func:`execute_lcc2d` — the ``lcc2d`` kernel: per-vertex LCC on the
  same grid.  ``t_v`` is the row sum of ``(A·A)∘A`` accumulated across
  the SUMMA rounds; degrees come from row-strip bookkeeping over the
  resident blocks, and scores go through the same
  :func:`~repro.core.local.lcc_from_triplets` formula as the 1D kernel,
  so the per-vertex values are bit-identical to ``session.run("lcc")``;
* :func:`run_tc2d_spgemm` — a throwaway per-call convenience mirroring
  :func:`~repro.core.tc2d.run_distributed_tc_2d`.

Both kernels need a **square** process grid (SUMMA's inner index ranges
over one shared vertex blocking); :func:`repro.core.tc2d.require_square_grid`
raises the guard error in strict mode.
"""

from __future__ import annotations

import math

import numpy as np

from repro.clampi.cache import BatchStream
from repro.core.config import DistributedRunResult, LCCConfig
from repro.core.lcc import _merged_stats
from repro.core.lcc_fast import _get_time_vec
from repro.core.local import _to_sparse, lcc_from_triplets
from repro.core.tc2d import (
    BLOCKS_WINDOW,
    build_grid_blocks,
    pack_block,
    require_square_grid,
)
from repro.graph.csr import CSRGraph
from repro.graph.partition2d import GridPartition2D
from repro.obs.trace import span as obs_span
from repro.runtime.engine import Engine, RunOutcome
from repro.runtime.trace import RankTrace
from repro.runtime.window import Window
from repro.utils.errors import ConfigError

__all__ = [
    "SummaStats",
    "build_round_streams",
    "execute_lcc2d",
    "execute_tc2d_spgemm",
    "run_tc2d_spgemm",
    "summa_stats",
]


def _fold(deltas: np.ndarray) -> float:
    """Strict left-to-right sum — bit-identical to repeated ``+=``."""
    if deltas.shape[0] == 0:
        return 0.0
    return float(np.cumsum(deltas)[-1])


class SummaStats:
    """Per-epoch tables one SUMMA pass over the resident blocks yields.

    Everything here is a pure function of block state, so a resident
    :class:`~repro.graphstore.grid2d.GridCluster2D` computes it once per
    state epoch and replays it for every warm query:

    * ``block_nnz[rank]`` — nnz of each resident block;
    * ``prod_nnz[k, rank]`` — nnz of round ``k``'s masked partial
      product ``(A[I,k] @ A[k,J]) ∘ A[I,J]`` on rank ``(I, J)`` (the
      ``product.nnz`` term of the edge-centric flops charge);
    * ``masked_sum[k, rank]`` — that partial product's entry sum (the
      round's wedge-closure count on the rank);
    * ``tpv[v]`` — per-vertex triplet counts, the row sums of
      ``(A·A)∘A`` accumulated over all rounds (what ``lcc2d`` scores
      from).
    """

    __slots__ = ("block_nnz", "prod_nnz", "masked_sum", "tpv", "rounds")

    def __init__(self, block_nnz: np.ndarray, prod_nnz: np.ndarray,
                 masked_sum: np.ndarray, tpv: np.ndarray):
        self.block_nnz = block_nnz
        self.prod_nnz = prod_nnz
        self.masked_sum = masked_sum
        self.tpv = tpv
        self.rounds = prod_nnz.shape[0]


def summa_stats(graph: CSRGraph, grid: GridPartition2D,
                blocks: list) -> SummaStats:
    """One SUMMA sweep: per-round, per-rank masked-product tables.

    Round ``k`` multiplies the column panel ``A[:, V_k]`` by the row
    panel ``A[V_k, :]`` in one strip SpGEMM and masks elementwise by
    ``A``; restricted to block ``(I, J)`` that is exactly the partial
    product the edge-centric loop materializes per rank, so the tables
    are bit-equal to what ``p`` per-rank multiplies would produce.
    """
    require_square_grid(grid, kernel="summa_stats", strict=True)
    c, p, n = grid.cols, grid.nranks, graph.n
    block_nnz = np.array([b.nnz for b in blocks], dtype=np.int64)
    prod_nnz = np.zeros((c, p), dtype=np.int64)
    masked_sum = np.zeros((c, p), dtype=np.int64)
    tpv = np.zeros(n, dtype=np.int64)
    a = _to_sparse(graph)
    with obs_span("summa", cat="kernel", rounds=c, nranks=p,
                  graph=graph.name or "") as sp:
        for k in range(c):
            lo, hi = grid.col_range(k)
            with obs_span("summa_round", cat="kernel", k=k) as rsp:
                if lo == hi:
                    continue
                masked = (a[:, lo:hi] @ a[lo:hi, :]).multiply(a).tocoo()
                if masked.nnz:
                    edges = np.column_stack([
                        masked.row.astype(np.int64),
                        masked.col.astype(np.int64)])
                    owners = grid.owners_of_edges(edges)
                    prod_nnz[k] = np.bincount(owners, minlength=p)
                    masked_sum[k] = np.bincount(
                        owners, weights=masked.data.astype(np.float64),
                        minlength=p).astype(np.int64)
                    tpv += np.bincount(
                        masked.row.astype(np.int64),
                        weights=masked.data.astype(np.float64),
                        minlength=n).astype(np.int64)
                rsp.note(nnz=int(masked.nnz) if lo != hi else 0)
        sp.note(triplets=int(tpv.sum()))
    return SummaStats(block_nnz, prod_nnz, masked_sum, tpv)


def build_round_streams(grid: GridPartition2D, win: Window
                        ) -> list[BatchStream]:
    """One rank's remote block fetches per SUMMA round, in program order.

    Rank ``(I, J)`` fetches ``A[I, k]`` then ``A[k, J]`` for each round
    ``k`` — whole packed blocks keyed ``(owner, 0, part_len(owner))``,
    exactly the gets the edge-centric loop's ``_fetch_block`` issues
    (own-block reads are free and never enter the stream).
    """
    streams = []
    for rank in range(grid.nranks):
        row, col = grid.grid_coords(rank)
        targets: list[int] = []
        counts: list[int] = []
        for k in range(grid.cols):
            for owner in (row * grid.cols + k, k * grid.cols + col):
                if owner != rank:
                    targets.append(owner)
                    counts.append(win.part_len(owner))
        t = np.asarray(targets, dtype=np.int64)
        streams.append(BatchStream(
            t, np.zeros(t.shape[0], dtype=np.int64),
            np.asarray(counts, dtype=np.int64)))
    return streams


class _RankReplay2D:
    """One rank's replayed SUMMA pass: durations, folds, trace totals."""

    def __init__(self, engine: Engine, grid: GridPartition2D, win: Window,
                 config: LCCConfig, stats: SummaStats, stream: BatchStream,
                 rank: int):
        c = grid.cols
        cm = config.compute
        ctx = engine.contexts[rank]
        row, col = grid.grid_coords(rank)
        ks = np.arange(c, dtype=np.int64)
        left = row * c + ks
        right = ks * c + col
        left_remote = left != rank
        right_remote = right != rank

        cache = ctx.cache_for(win)
        if cache is not None:
            dur, hit = cache.access_batch(stream=stream)
        else:
            dur = _get_time_vec(config.network, stream.counts * win.itemsize)
            hit = np.zeros(stream.m, dtype=bool)

        block_nnz = stats.block_nnz
        comp_mask = ((block_nnz[left] > 0) & (block_nnz[right] > 0)
                     & (block_nnz[rank] > 0))
        flops = block_nnz[left] + block_nnz[right] + stats.prod_nnz[:, rank]
        comp_dt = cm.edge_overhead + flops * cm.c_ssi

        # Program-order slot layout, per round: [left?][right?][compute?]
        # — the exact ctx.advance sequence of the scalar loop.
        lr = left_remote.astype(np.int64)
        rr = right_remote.astype(np.int64)
        sizes = lr + rr + comp_mask.astype(np.int64)
        start = np.zeros(c + 1, dtype=np.int64)
        np.cumsum(sizes, out=start[1:])
        deltas = np.zeros(int(start[-1]), dtype=np.float64)
        get_pos = np.stack([start[:-1], start[:-1] + lr], axis=1)
        get_mask = np.stack([left_remote, right_remote], axis=1)
        deltas[get_pos[get_mask]] = dur  # row-major: k order, left first
        deltas[(start[:-1] + lr + rr)[comp_mask]] = comp_dt[comp_mask]

        self.round_deltas = deltas
        self.clock = _fold(deltas)
        self.comp_time = _fold(comp_dt[comp_mask])
        self.comm_time = _fold(dur[~hit])
        self.cache_time = _fold(dur[hit])
        nbytes = stream.counts * win.itemsize
        self.n_miss = int(np.count_nonzero(~hit))
        self.n_hit = int(stream.m - self.n_miss)
        self.bytes_remote = int(nbytes[~hit].sum())
        self.bytes_cached = int(nbytes[hit].sum())
        self.count = int(stats.masked_sum[:, rank].sum())

    def trace(self, rank: int, **extra: float) -> RankTrace:
        return RankTrace.from_totals(
            rank,
            n_remote_gets=self.n_miss,
            n_cache_hits=self.n_hit,
            bytes_remote=self.bytes_remote,
            bytes_cached=self.bytes_cached,
            comm_time=self.comm_time,
            comp_time=self.comp_time,
            cache_time=self.cache_time,
            **extra,
        )


def _block_caches(engine: Engine, win: Window) -> list:
    caches = [engine.contexts[r].cache_for(win) for r in range(engine.nranks)]
    return [c for c in caches if c is not None]


def execute_tc2d_spgemm(engine: Engine, grid: GridPartition2D, blocks: list,
                        win: Window, config: LCCConfig, graph: CSRGraph,
                        stats: SummaStats, streams: list[BatchStream], *,
                        with_cache_stats: bool = True
                        ) -> DistributedRunResult:
    """Masked-SpGEMM triangle count, replayed from the SUMMA tables.

    Bit-identical to :func:`repro.core.tc2d.execute_tc2d` on the same
    cluster state — triangle counts, per-rank clocks, trace totals and
    (with block caches attached) every CLaMPI statistic — because the
    priced program is the same; only the evaluation is vectorized.
    Epochs must be open on entry and are left open on return, exactly
    like the scalar path.  ``with_cache_stats=False`` reproduces the
    scalar result *exactly* (which never surfaces block-cache stats) —
    the mode the cached ``tc2d`` batched replay runs in.
    """
    require_square_grid(grid, kernel="tc2d_spgemm", strict=True)
    clocks: list[float] = []
    traces: list[RankTrace] = []
    results: list[int] = []
    with obs_span("tc2d_spgemm", cat="kernel", rounds=grid.cols,
                  nranks=grid.nranks) as sp:
        for rank in range(grid.nranks):
            rr = _RankReplay2D(engine, grid, win, config, stats,
                               streams[rank], rank)
            clocks.append(rr.clock)
            traces.append(rr.trace(rank))
            results.append(rr.count)
        total = int(sum(results))
        assert total % 6 == 0, f"2D triplet total {total} not divisible by 6"
        sp.note(triangles=total // 6)
    outcome = RunOutcome(time=max(clocks), clocks=clocks, traces=traces,
                         results=results)
    caches = _block_caches(engine, win) if with_cache_stats else []
    return DistributedRunResult(
        lcc=None,
        triangles_per_vertex=None,
        global_triangles=total // 6,
        outcome=outcome,
        adj_cache_stats=_merged_stats(caches),
    )


def execute_lcc2d(engine: Engine, grid: GridPartition2D, blocks: list,
                  win: Window, config: LCCConfig, graph: CSRGraph,
                  stats: SummaStats, streams: list[BatchStream]
                  ) -> DistributedRunResult:
    """Per-vertex LCC over the SUMMA grid.

    The same round structure (and the same remote block fetches) as
    :func:`execute_tc2d_spgemm`, plus the LCC-specific tail each rank
    runs after its rounds:

    * one local read of its own packed block — the row-strip degree
      bookkeeping (degrees are row sums of the resident blocks);
    * ``ceil(log2(c))`` reduction stages combining the row strip's
      per-vertex partials across the grid row (priced
      ``get_time(8 * local_rows)`` each, clock-only like the 1D tc
      reduce);
    * on the diagonal rank of each grid row, ``vertex_overhead`` per
      local row for the final score division.

    Scores are **bit-identical to the 1D ``lcc`` kernel**: ``tpv`` is
    the row sum of ``(A·A)∘A`` (equal to ``(A·Aᵀ)∘A`` on the undirected
    graphs the grid requires) and the division goes through the same
    :func:`~repro.core.local.lcc_from_triplets`.
    """
    require_square_grid(grid, kernel="lcc2d", strict=True)
    if graph.directed:
        raise ConfigError("lcc2d expects an undirected graph "
                          "((A·A)∘A only counts wedges symmetrically)")
    cm = config.compute
    memory = config.memory
    network = config.network
    c = grid.cols
    stages = int(math.ceil(math.log2(c))) if c > 1 else 0
    clocks: list[float] = []
    traces: list[RankTrace] = []
    results: list[int] = []
    with obs_span("lcc2d", cat="kernel", rounds=c,
                  nranks=grid.nranks) as sp:
        for rank in range(grid.nranks):
            row, col = grid.grid_coords(rank)
            r_lo, r_hi = grid.row_range(row)
            n_rows = r_hi - r_lo
            rr = _RankReplay2D(engine, grid, win, config, stats,
                               streams[rank], rank)
            own_nbytes = win.part_nbytes(rank)
            own_dt = float(memory.local_read_time(own_nbytes))
            reduce_dt = float(network.get_time(8 * n_rows))
            final_dt = (cm.vertex_overhead * n_rows) if row == col else 0.0
            tail = np.concatenate([
                np.full(stages, reduce_dt, dtype=np.float64),
                np.asarray([final_dt], dtype=np.float64)])
            clocks.append(_fold(np.concatenate(
                [np.asarray([own_dt]), rr.round_deltas, tail])))
            comp_tail = np.asarray([final_dt], dtype=np.float64)
            comp = _fold(np.concatenate(
                [np.asarray([own_dt]),
                 np.asarray([rr.comp_time]), comp_tail]))
            traces.append(RankTrace.from_totals(
                rank,
                n_remote_gets=rr.n_miss,
                n_cache_hits=rr.n_hit,
                n_local_reads=1,
                bytes_remote=rr.bytes_remote,
                bytes_cached=rr.bytes_cached,
                bytes_local=own_nbytes,
                comm_time=rr.comm_time,
                comp_time=comp,
                cache_time=rr.cache_time,
            ))
            results.append(rr.count)
        total = int(stats.tpv.sum())
        sp.note(triplets=total)
    tpv = stats.tpv.copy()
    lcc = lcc_from_triplets(graph, tpv)
    outcome = RunOutcome(time=max(clocks), clocks=clocks, traces=traces,
                         results=results)
    return DistributedRunResult(
        lcc=lcc,
        triangles_per_vertex=tpv,
        global_triangles=total // 6,
        outcome=outcome,
        adj_cache_stats=_merged_stats(_block_caches(engine, win)),
    )


def run_tc2d_spgemm(graph: CSRGraph, config: LCCConfig | None = None
                    ) -> DistributedRunResult:
    """Per-call convenience: masked-SpGEMM TC on a throwaway grid.

    Mirrors :func:`repro.core.tc2d.run_distributed_tc_2d` — rebuilds
    engine, grid, blocks and window each call — for tests and one-shot
    scripts; served queries should go through the resident
    ``tc2d_spgemm`` kernel instead.
    """
    if graph.directed:
        raise ConfigError("2D triangle counting expects an undirected graph")
    config = config or LCCConfig()
    engine = Engine(config.nranks, network=config.network,
                    memory=config.memory, compute=config.compute)
    grid = GridPartition2D(graph.n, config.nranks)
    require_square_grid(grid, kernel="tc2d_spgemm", strict=True)
    blocks = build_grid_blocks(graph, grid)
    win = engine.windows.add(Window(BLOCKS_WINDOW,
                                    [pack_block(b) for b in blocks]))
    for rank in range(config.nranks):
        win.lock_all(rank)
    stats = summa_stats(graph, grid, blocks)
    streams = build_round_streams(grid, win)
    return execute_tc2d_spgemm(engine, grid, blocks, win, config, graph,
                               stats, streams)
