"""The serving loop: execute a workload through a scheduler and a pool.

The engine is a single simulated server draining a query queue.  Time is
accounted on two clocks at once:

* the **simulated clock** advances by each query's simulated job time
  (:attr:`DistributedRunResult.time` — the paper's longest-rank metric),
  so queueing latency and throughput are properties of the modeled
  cluster, not of the Python interpreter;
* **wall time** is measured per query too, because the repo's batched
  replay makes warm queries cheaper *to simulate* as well — the serving
  report keeps both so speedups can be attributed.

A query's life: it arrives (workload timestamp), waits queued until the
scheduler picks it, acquires its resident session from the pool (building
or evicting if needed), runs with ``keep_cache=True``, and retires with
``latency = finish - arrival`` on the simulated clock.  Answers are
digested (SHA-1 over the result arrays, prefixed with the graph version
the query observed) so scheduler runs can be checked for bit-identical
per-query results *and* identical version observations.

**Updates** are writes against the
:class:`~repro.graphstore.store.GraphStore`, not against any one
session: an :class:`~repro.serve.request.UpdateRequest` commits its edge
batch to the store — advancing the graph's single
:class:`~repro.graphstore.store.GraphVersion` — and the resulting delta
is propagated to **every** resident session of that graph (any variant),
each resyncing surgically (touched 1D slices, touched 2D blocks,
targeted CLaMPI invalidation + rekeying).  Consecutive queued updates
for one graph are **coalesced**: each still commits its own version (so
the history is scheduler-independent), but the expensive resident resync
runs once, on the merged delta of a single
:class:`~repro.dynamic.delta.DeltaBuffer` flush — pinned equal to
sequential application.  The queue is pre-filtered through the per-graph
update fences (:func:`~repro.serve.scheduler.eligible_requests`) before
any scheduler pick, and update digests are the store's *chained* history
digests — so the identical-answers check proves every scheduler
serialized each graph's reads and writes, and its version history, the
same way.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.config import CacheSpec, LCCConfig
from repro.dynamic.delta import DeltaBuffer, UpdateBatch, apply_delta
from repro.graph.csr import CSRGraph
from repro.graphstore.store import GraphStore, graph_digest
from repro.serve.pool import SessionPool
from repro.serve.request import QueryRequest, UpdateRequest, arrival_order
from repro.serve.scheduler import (
    FIFOScheduler,
    Scheduler,
    coalescible_updates,
    eligible_requests,
)
from repro.utils.errors import ConfigError


@dataclass(frozen=True)
class ServeConfig:
    """Cluster shape + pool sizing every served query shares."""

    nranks: int = 8
    threads: int = 4
    cache_offsets_fraction: float = 0.5   # of each graph's CSR bytes
    cache_adj_fraction: float = 1.0
    pool_capacity: int = 3
    pool_policy: str = "lru"

    def __post_init__(self) -> None:
        if self.cache_offsets_fraction < 0 or self.cache_adj_fraction < 0:
            raise ConfigError("cache fractions must be >= 0")

    def session_config(self, graph: CSRGraph, overrides: dict) -> LCCConfig:
        """The LCCConfig a resident session for ``graph`` is built with."""
        cache = None
        if self.cache_offsets_fraction or self.cache_adj_fraction:
            cache = CacheSpec.relative(graph.nbytes,
                                       self.cache_offsets_fraction,
                                       self.cache_adj_fraction)
        return LCCConfig(nranks=self.nranks, threads=self.threads,
                         cache=cache, **overrides)


@dataclass
class QueryRecord:
    """One served query, on both clocks."""

    qid: int
    tenant: int
    graph: str
    kernel: str
    arrival: float        # simulated
    start: float          # simulated (>= arrival)
    finish: float         # simulated (start + service)
    service_s: float      # simulated job time of the kernel run
    wall_s: float         # real seconds spent executing the query
    warm_cache: bool      # served against carried-over CLaMPI contents
    built_session: bool   # paid a cold partition (pool miss)
    adj_hit_rate: float | None
    digest: str           # SHA-1 over (observed graph version, answers)
    version: int = 0      # store version of the graph this query observed

    @property
    def latency(self) -> float:
        """Simulated end-to-end latency (queueing + service)."""
        return self.finish - self.arrival


@dataclass
class UpdateRecord:
    """One committed update batch, on both clocks.

    When several queued updates for one graph were coalesced into a
    single resident resync, every member still gets its own record (and
    its own store version/digest); the shared resync cost is charged to
    the group head (``service_s``), the riders retire at the same finish
    with ``service_s == 0`` and ``coalesced=True``.
    """

    qid: int
    tenant: int
    graph: str
    arrival: float
    start: float
    finish: float
    service_s: float      # simulated cost of resync + invalidation
    wall_s: float
    n_inserted: int
    n_deleted: int
    n_affected: int       # vertices whose results may have changed
    invalidated_entries: int
    retained_entries: int
    rekeyed_entries: int
    digest: str           # the store's chained history digest at `version`
    version: int = 0      # store version this commit advanced the graph to
    sessions_synced: int = 0  # resident sessions the commit propagated to
    coalesced: bool = False   # rode along in another update's flush

    @property
    def latency(self) -> float:
        return self.finish - self.arrival


@dataclass
class ServeOutcome:
    """Everything one (workload, scheduler) serving run produced."""

    scheduler: str
    records: list[QueryRecord]
    pool_stats: dict
    wall_clock_s: float
    aggregates: dict = field(default_factory=dict)
    update_records: list[UpdateRecord] = field(default_factory=list)
    graph_versions: dict = field(default_factory=dict)  # name -> (v, digest)

    def digests(self) -> dict[int, str]:
        """qid -> answer/history digest (scheduler-order independent).

        Covers queries *and* updates: equal dicts prove that every query
        returned the same bits while observing the same graph version,
        and that every graph went through the same version history.
        """
        d = {r.qid: r.digest for r in self.records}
        d.update({r.qid: r.digest for r in self.update_records})
        return d


def answers_identical(a: ServeOutcome, b: ServeOutcome) -> bool:
    """Did two serving runs produce bit-identical per-query answers —
    and leave every graph with the same final version history?"""
    return (a.digests() == b.digests()
            and a.graph_versions == b.graph_versions)


def _digest(result: Any, version: int) -> str:
    h = hashlib.sha1()
    h.update(f"v{version}|".encode())
    h.update(str(int(result.global_triangles)).encode())
    for arr in (result.lcc, result.triangles_per_vertex):
        h.update(b"|")
        if arr is not None:
            h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def summarize(records: list[QueryRecord], pool_stats: dict,
              wall_clock_s: float,
              update_records: list[UpdateRecord] = (),
              updates_coalesced: int = 0) -> dict[str, Any]:
    """Aggregate one serving run into the report row the benches commit."""
    if not records and not update_records:
        raise ConfigError("cannot summarize an empty serving run")
    update_aggs: dict[str, Any] = {"n_updates": len(update_records),
                                   "updates_coalesced": updates_coalesced}
    if update_records:
        ulat = np.array([u.latency for u in update_records])
        update_aggs.update({
            "update_latency_mean_s": float(ulat.mean()),
            "update_latency_p95_s": float(np.percentile(ulat, 95)),
            "update_service_total_s": float(
                sum(u.service_s for u in update_records)),
            "edges_inserted": int(sum(u.n_inserted for u in update_records)),
            "edges_deleted": int(sum(u.n_deleted for u in update_records)),
            "invalidated_entries": int(
                sum(u.invalidated_entries for u in update_records)),
            "rekeyed_entries": int(
                sum(u.rekeyed_entries for u in update_records)),
            "retained_entries_mean": float(np.mean(
                [u.retained_entries for u in update_records])),
        })
    if not records:
        # A pure-write trace: no query aggregates, but the work done is
        # still reported rather than thrown away.
        return {
            **update_aggs,
            "n_queries": 0,
            "makespan_s": float(max(u.finish for u in update_records)),
            "session_builds": pool_stats["builds"],
            "session_evictions": pool_stats["evictions"],
            "session_reuses": pool_stats["reuses"],
            "wall_clock_s": float(wall_clock_s),
        }
    lat = np.array([r.latency for r in records])
    # Updates share the simulated server clock, so a trace ending in an
    # update really ends there — makespan covers both record kinds.
    makespan = max(r.finish for r in (*records, *update_records))
    return {
        **update_aggs,
        "n_queries": len(records),
        "makespan_s": float(makespan),
        "throughput_qps": float(len(records) / makespan),
        "total_service_s": float(sum(r.service_s for r in records)),
        "latency_mean_s": float(lat.mean()),
        "latency_p50_s": float(np.percentile(lat, 50)),
        "latency_p95_s": float(np.percentile(lat, 95)),
        "latency_max_s": float(lat.max()),
        "warm_fraction": float(np.mean([r.warm_cache for r in records])),
        "mean_adj_hit_rate": float(np.mean(
            [r.adj_hit_rate for r in records if r.adj_hit_rate is not None]
            or [0.0])),
        "session_builds": pool_stats["builds"],
        "session_evictions": pool_stats["evictions"],
        "session_reuses": pool_stats["reuses"],
        "wall_clock_s": float(wall_clock_s),
    }


class ServingEngine:
    """Drain workloads against a catalog with one scheduler and one pool."""

    def __init__(self, catalog: dict[str, CSRGraph],
                 config: ServeConfig | None = None,
                 scheduler: Scheduler | None = None,
                 store_factory=None):
        self.catalog = catalog
        self.config = config or ServeConfig()
        self.scheduler = scheduler or FIFOScheduler()
        #: ``catalog -> store``; defaults to a plain GraphStore.  A
        #: sharded serving run passes e.g. ``lambda c:
        #: ShardedGraphStore(c, nshards=4)`` — any store duck-typing the
        #: GraphStore surface (graph/apply/version/digest/names) works.
        self.store_factory = store_factory

    def _make_store(self):
        if self.store_factory is not None:
            return self.store_factory(self.catalog)
        return GraphStore(self.catalog)

    def _commit_updates(self, store: GraphStore, pool: SessionPool,
                        group: list[UpdateRequest]
                        ) -> tuple[list, Any, float]:
        """Commit a coalesced run of updates for one graph.

        Every member advances the store by its own version (the history
        is per-request, hence scheduler-independent), but the resident
        resync runs once: the group's operations merge through a single
        :class:`~repro.dynamic.delta.DeltaBuffer` flush whose last-
        writer-wins result is pinned equal to the sequential chain, and
        that one merged delta propagates to every resident session of
        the graph.  Returns ``(store updates, combined outcome fields,
        simulated service seconds)``.
        """
        name = group[0].graph
        pre_graph = store.graph(name)
        updates = []
        for req in group:
            batch = UpdateBatch.build(req.inserts, req.deletes,
                                      n=pre_graph.n,
                                      directed=pre_graph.directed)
            updates.append(store.apply(name, batch,
                                       coalesced=len(group) - 1))
        final = store.graph(name)
        if len(group) == 1:
            combined = updates[0].delta
        else:
            buffer = DeltaBuffer(pre_graph.n, pre_graph.directed)
            for req in group:
                if req.inserts is not None:
                    buffer.insert_edges(req.inserts)
                if req.deletes is not None:
                    buffer.delete_edges(req.deletes)
            combined = apply_delta(pre_graph, buffer.freeze(), strict=False)
            if graph_digest(combined.graph) != graph_digest(final):
                # Coalesced == sequential is a structural invariant (the
                # property suite pins it); serving stale resident slices
                # would be silent corruption, so fail loudly.
                raise ConfigError(
                    f"coalesced flush for {name!r} diverged from the "
                    "sequential version chain")
            # Resync resident state to the chain's own head snapshot so
            # sessions and store share one graph object.
            combined.graph = final
        outcomes = [session.sync_to(combined)
                    for _, session in pool.sessions_of(name)]
        service = max((o.time for o in outcomes), default=0.0)
        fields = {
            "n_affected": int(combined.affected.shape[0]),
            "invalidated_entries": sum(o.invalidated_entries
                                       for o in outcomes),
            "retained_entries": sum(o.retained_entries for o in outcomes),
            "rekeyed_entries": sum(o.rekeyed_entries for o in outcomes),
            "sessions_synced": len(outcomes),
        }
        return updates, fields, service

    def serve(self, requests: list[QueryRequest]) -> ServeOutcome:
        """Serve every request; returns records + aggregates.

        The graph store and pool are fresh per call (a serving run is
        self-contained), the scheduler is reset, and the loop is fully
        deterministic for a deterministic workload — wall-clock fields
        aside.
        """
        if not requests:
            raise ConfigError("cannot serve an empty workload")
        config, scheduler = self.config, self.scheduler
        scheduler.reset()
        records: list[QueryRecord] = []
        update_records: list[UpdateRecord] = []
        updates_coalesced = 0
        pending = sorted(requests, key=arrival_order)
        queue: list = []
        clock = 0.0
        last_key = None
        t_run = time.perf_counter()
        store = self._make_store()
        with SessionPool(store, config.session_config,
                         capacity=config.pool_capacity,
                         policy=config.pool_policy) as pool:
            while pending or queue:
                if not queue:               # idle server: jump to next arrival
                    clock = max(clock, pending[0].arrival)
                while pending and pending[0].arrival <= clock:
                    queue.append(pending.pop(0))
                # Per-graph update fences are enforced here, before any
                # policy runs: no scheduler can reorder a graph's reads
                # around its writes.
                req = scheduler.pick(eligible_requests(queue), last_key, pool)
                t0 = time.perf_counter()
                if req.is_update:
                    group = [req] + coalescible_updates(queue, req)
                    for member in group:
                        queue.remove(member)
                    updates_coalesced += len(group) - 1
                    updates, fields, service = self._commit_updates(
                        store, pool, group)
                    wall = time.perf_counter() - t0
                    start = max(clock, req.arrival)
                    finish = start + service
                    clock = finish
                    last_key = req.session_key
                    for i, (r, u) in enumerate(zip(group, updates)):
                        head = i == 0
                        update_records.append(UpdateRecord(
                            qid=r.qid, tenant=r.tenant, graph=r.graph,
                            arrival=r.arrival, start=start, finish=finish,
                            service_s=service if head else 0.0,
                            wall_s=wall if head else 0.0,
                            n_inserted=u.delta.n_inserted,
                            n_deleted=u.delta.n_deleted,
                            version=u.version.version,
                            digest=u.digest,
                            coalesced=not head,
                            **(fields if head else {
                                "n_affected": int(u.delta.affected.shape[0]),
                                "invalidated_entries": 0,
                                "retained_entries": 0,
                                "rekeyed_entries": 0,
                                "sessions_synced": 0,
                            })))
                    continue
                queue.remove(req)
                session, built = pool.acquire(req.session_key)
                result = session.run(req.kernel, keep_cache=True)
                wall = time.perf_counter() - t0
                service = float(result.time)
                start = max(clock, req.arrival)
                finish = start + service
                clock = finish
                last_key = req.session_key
                stats = result.adj_cache_stats
                version = store.version(req.graph).version
                records.append(QueryRecord(
                    qid=req.qid, tenant=req.tenant, graph=req.graph,
                    kernel=req.kernel, arrival=req.arrival, start=start,
                    finish=finish, service_s=service, wall_s=wall,
                    warm_cache=result.warm_cache, built_session=built,
                    adj_hit_rate=(None if stats is None
                                  else float(stats["hit_rate"])),
                    version=version,
                    digest=_digest(result, version)))
            pool_stats = pool.stats.as_dict()
        wall_clock = time.perf_counter() - t_run
        records.sort(key=lambda r: r.qid)
        update_records.sort(key=lambda r: r.qid)
        outcome = ServeOutcome(
            scheduler=scheduler.name, records=records,
            pool_stats=pool_stats, wall_clock_s=wall_clock,
            update_records=update_records,
            graph_versions={name: (store.version(name).version,
                                   store.digest(name))
                            for name in store.names()})
        outcome.aggregates = summarize(records, pool_stats, wall_clock,
                                       update_records, updates_coalesced)
        return outcome
