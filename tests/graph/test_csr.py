"""Tests for the CSR graph representation."""

import numpy as np
import pytest

from repro.graph.csr import (
    CSRGraph,
    relabel_random,
    remove_low_degree_vertices,
)
from repro.utils.errors import GraphFormatError


class TestFromEdges:
    def test_triangle(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        assert g.n == 3
        assert g.m == 3
        assert not g.directed
        np.testing.assert_array_equal(g.adj(0), [1, 2])
        np.testing.assert_array_equal(g.adj(1), [0, 2])
        np.testing.assert_array_equal(g.adj(2), [0, 1])

    def test_undirected_symmetrizes(self):
        g = CSRGraph.from_edges([(0, 1)])
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert g.num_adjacency_entries == 2

    def test_directed_keeps_direction(self):
        g = CSRGraph.from_edges([(0, 1)], directed=True)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)
        assert g.m == 1

    def test_self_loops_dropped(self):
        g = CSRGraph.from_edges([(0, 0), (0, 1), (1, 1)])
        assert g.m == 1
        assert not g.has_edge(0, 0)

    def test_duplicates_dropped(self):
        g = CSRGraph.from_edges([(0, 1), (0, 1), (1, 0)])
        assert g.m == 1

    def test_isolated_vertices_via_n(self):
        g = CSRGraph.from_edges([(0, 1)], n=5)
        assert g.n == 5
        assert g.degree(4) == 0

    def test_empty_graph(self):
        g = CSRGraph.from_edges([], n=3)
        assert g.n == 3
        assert g.m == 0

    def test_out_of_range_id_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph.from_edges([(0, 5)], n=3)

    def test_negative_id_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph.from_edges([(-1, 2)])

    def test_bad_shape_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph.from_edges(np.zeros((3, 3)))

    def test_adjacency_sorted(self):
        g = CSRGraph.from_edges([(0, 3), (0, 1), (0, 2)])
        np.testing.assert_array_equal(g.adj(0), [1, 2, 3])


class TestAccessors:
    def test_degrees(self):
        g = CSRGraph.from_edges([(0, 1), (0, 2), (0, 3)])
        np.testing.assert_array_equal(g.degrees(), [3, 1, 1, 1])
        assert g.degree(0) == 3

    def test_in_degrees_directed(self):
        g = CSRGraph.from_edges([(0, 2), (1, 2)], directed=True)
        np.testing.assert_array_equal(g.in_degrees(), [0, 0, 2])

    def test_in_degrees_undirected_equal_out(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2)])
        np.testing.assert_array_equal(g.in_degrees(), g.degrees())

    def test_nbytes(self):
        g = CSRGraph.from_edges([(0, 1)])
        assert g.nbytes == (2 + 1) * 8 + 2 * 4

    def test_edges_roundtrip(self):
        edges = [(0, 1), (1, 2), (2, 3), (0, 3)]
        g = CSRGraph.from_edges(edges)
        g2 = CSRGraph.from_edges(g.edges(), g.n)
        np.testing.assert_array_equal(g.offsets, g2.offsets)
        np.testing.assert_array_equal(g.adjacency, g2.adjacency)

    def test_has_edge(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2)])
        assert g.has_edge(1, 2)
        assert not g.has_edge(0, 2)


class TestValidation:
    def test_bad_offsets_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([1, 2]), np.array([0, 1], dtype=np.int32))

    def test_decreasing_offsets_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 1], dtype=np.int32))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 5]), np.array([0, 1], dtype=np.int32))

    def test_unsorted_adjacency_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 2]), np.array([1, 0], dtype=np.int32),
                     directed=True)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 1]), np.array([0], dtype=np.int32),
                     directed=True)

    def test_symmetry_check(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2)])
        g.check_symmetric()  # must not raise


class TestLowDegreeRemoval:
    def test_leaves_removed(self):
        # Path 0-1-2-3 plus triangle 3-4-5: leaves 0 and the path survive
        # only where degree >= 2.
        g = CSRGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (3, 5)])
        g2 = remove_low_degree_vertices(g)
        # Vertices 0 and... vertex 0 has degree 1 -> dropped; 1 had degree 2.
        assert g2.n == 5
        assert g2.m == 5  # edge (0,1) gone

    def test_noop_when_all_qualify(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        assert remove_low_degree_vertices(g) is g

    def test_triangle_counts_preserved(self):
        # Removal cannot destroy triangles (deg-1 vertices are in none).
        from repro.core.local import triangle_count_local

        g = CSRGraph.from_edges(
            [(0, 1), (1, 2), (0, 2), (2, 3), (4, 0)])  # 3, 4 are leaves
        g2 = remove_low_degree_vertices(g)
        assert triangle_count_local(g2) == triangle_count_local(g) == 1

    def test_single_pass_not_iterative(self):
        # Path 0-1-2-3-4: middle vertices have degree 2, endpoints 1.
        # A single pass removes only the endpoints (paper semantics).
        g = CSRGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])
        g2 = remove_low_degree_vertices(g)
        assert g2.n == 3


class TestRelabel:
    def test_relabel_preserves_structure(self):
        from repro.core.local import triangle_count_local

        g = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
        g2 = relabel_random(g, seed=3)
        assert g2.n == g.n
        assert g2.m == g.m
        assert triangle_count_local(g2) == triangle_count_local(g)
        np.testing.assert_array_equal(np.sort(g2.degrees()), np.sort(g.degrees()))

    def test_relabel_directed(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2)], directed=True)
        g2 = relabel_random(g, seed=3)
        assert g2.m == 2
        assert g2.directed

    def test_relabel_deterministic(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2), (1, 3)])
        a = relabel_random(g, seed=9)
        b = relabel_random(g, seed=9)
        np.testing.assert_array_equal(a.adjacency, b.adjacency)


class TestVertexDtypeOverflow:
    """Ids >= 2**31 must raise instead of silently wrapping in int32."""

    def test_id_beyond_int32_rejected(self):
        with pytest.raises(GraphFormatError, match="int32"):
            CSRGraph.from_edges([(0, 2**31)])

    def test_wrap_to_positive_id_rejected(self):
        # 2**32 + 5 wraps to +5 in int32 — the corruption the guard exists
        # for, since no downstream invariant would catch it.
        with pytest.raises(GraphFormatError, match="int32"):
            CSRGraph.from_edges([(0, 2**32 + 5)], n=2**32 + 6)

    def test_huge_n_rejected_even_with_no_edges(self):
        with pytest.raises(GraphFormatError, match="int32"):
            CSRGraph.from_edges([], n=2**31 + 1)

    def test_boundary_max_id_accepted_beyond_rejected(self):
        # n == 2**31 (max id 2**31 - 1) is the largest legal vertex
        # count; exercise the guard directly — building a real graph of
        # that size would allocate a 17 GB offsets array.
        from repro.graph.csr import _check_vertex_range

        _check_vertex_range(2**31)  # must not raise
        with pytest.raises(GraphFormatError, match="int32"):
            _check_vertex_range(2**31 + 1)

    def test_float_edges_rejected(self):
        with pytest.raises(GraphFormatError, match="integer"):
            CSRGraph.from_edges(np.array([[0.5, 1.5]]))
