"""Span tracing: nesting, activation, the no-op path, well-formedness."""

from repro.obs.trace import (
    SpanTracer,
    activate,
    active_tracer,
    check_spans,
    span,
)


def test_disabled_span_is_shared_noop():
    assert active_tracer() is None
    with span("acquire", cat="pool") as a, span("evict", cat="pool") as b:
        a.note(x=1)       # must be accepted and dropped
        a.end_at(5.0)
    assert a is b         # one shared singleton, no allocation per call


def test_activate_installs_and_restores():
    tracer = SpanTracer()
    with activate(tracer):
        assert active_tracer() is tracer
        with activate(None):
            # Nested deactivation: layers below a non-traced engine run.
            assert active_tracer() is None
        assert active_tracer() is tracer
        with span("acquire", cat="pool", graph="g"):
            pass
    assert active_tracer() is None
    assert [s.name for s in tracer.spans] == ["acquire"]
    assert tracer.spans[0].attrs["graph"] == "g"


def test_lexical_nesting_parents_children():
    tracer = SpanTracer()
    tracer.now = 2.0
    with activate(tracer):
        with span("commit", cat="task") as outer:
            with span("resync", cat="session"):
                with span("invalidate", cat="cache"):
                    pass
            outer.end_at(3.0)
    # Spans append at context exit: innermost first.
    by_name = {s.name: s for s in tracer.spans}
    commit, resync, invalidate = (by_name["commit"], by_name["resync"],
                                  by_name["invalidate"])
    assert resync.parent == commit.sid
    assert invalidate.parent == resync.sid
    assert commit.t0 == 2.0 and commit.t1 == 3.0
    assert resync.t0 == 2.0    # instants stamp at the simulated clock
    assert check_spans(tracer.spans) == []


def test_emit_explicit_intervals():
    tracer = SpanTracer()
    s = tracer.emit("run", cat="task", t0=1.0, t1=2.5, worker=3, qid=7)
    assert s.duration == 1.5
    assert s.worker == 3
    assert s.attrs["qid"] == 7
    assert check_spans(tracer.spans) == []


def test_check_spans_catches_orphans_and_inversions():
    tracer = SpanTracer()
    # emit clamps t1 to t0, so corrupt a span after the fact.
    inverted = tracer.emit("run", cat="task", t0=2.0, t1=3.0, worker=0)
    inverted.t1 = 1.0
    bad = tracer.emit("run", cat="task", t0=0.0, t1=0.5, worker=0)
    bad.parent = 999
    problems = check_spans(tracer.spans)
    assert any("ends before it starts" in p for p in problems)
    assert any("orphan parent 999" in p for p in problems)


def test_check_spans_catches_same_worker_task_overlap():
    tracer = SpanTracer()
    tracer.emit("run", cat="task", t0=0.0, t1=2.0, worker=1)
    tracer.emit("run", cat="task", t0=1.0, t1=3.0, worker=1)
    assert check_spans(tracer.spans)
    # Different workers may overlap freely.
    t2 = SpanTracer()
    t2.emit("run", cat="task", t0=0.0, t1=2.0, worker=1)
    t2.emit("run", cat="task", t0=1.0, t1=3.0, worker=2)
    assert check_spans(t2.spans) == []


def test_wall_clock_only_in_attrs():
    tracer = SpanTracer()
    with activate(tracer):
        with span("invalidate", cat="cache"):
            pass
    s = tracer.spans[0]
    assert s.t0 == s.t1 == tracer.now    # simulated instant
    assert s.attrs["wall_s"] >= 0.0      # measured wall time, attr only
