"""Integration tests: full pipelines over every dataset at tiny scale."""

import numpy as np
import pytest

from repro.analysis.reuse import remote_read_counts
from repro.baselines.tric import TricConfig, run_tric
from repro.core.config import CacheSpec, LCCConfig
from repro.core.lcc import run_distributed_lcc
from repro.core.local import lcc_local, triangle_count_local
from repro.core.tc import run_distributed_tc
from repro.graph.datasets import dataset_names, load_dataset

SMALL_SCALE = 0.12


@pytest.mark.parametrize("name", dataset_names())
def test_full_pipeline_every_dataset(name):
    g = load_dataset(name, scale=SMALL_SCALE, seed=2)
    cfg = LCCConfig(nranks=4, threads=4,
                    cache=CacheSpec.paper_split(max(4096, g.nbytes // 2), g.n))
    res = run_distributed_lcc(g, cfg)
    np.testing.assert_allclose(res.lcc, lcc_local(g), atol=1e-12)
    assert res.time > 0
    assert res.outcome.nranks == 4


@pytest.mark.parametrize("name", ["livejournal", "rmat-s21-ef16"])
def test_tc_and_tric_and_lcc_agree(name):
    g = load_dataset(name, scale=SMALL_SCALE, seed=2)
    expected = triangle_count_local(g)
    assert run_distributed_tc(g, LCCConfig(nranks=4)).global_triangles == expected
    assert run_tric(g, TricConfig(nranks=4)).global_triangles == expected
    assert run_distributed_lcc(g, LCCConfig(nranks=4)).global_triangles == expected


def test_traced_reads_match_analytic_model():
    # The analytic reuse analysis (Figures 1/4/5) must agree with the
    # reads an actual traced simulation performs.
    g = load_dataset("facebook-circles", scale=0.5, seed=2)
    nranks = 2
    cfg = LCCConfig(nranks=nranks, record_ops=True, overlap=False)
    res = run_distributed_lcc(g, cfg)
    traced = np.zeros(g.n, dtype=np.int64)
    part_starts = {}
    from repro.graph.partition import BlockPartition1D

    part = BlockPartition1D(g.n, nranks)
    for trace in res.outcome.traces:
        for op in trace.iter_remote_reads():
            if op.window != "adjacencies":
                continue
            # Map (target rank, window offset) back to the vertex id.
            lo, hi = part.range_of(op.target)
            # Reconstruct via the local offsets array of the target.
            traced_vertex = None
            # Offsets are cumulative; find the local index whose slot matches.
            # (The offsets array is available through the graph itself.)
            vs = part.local_vertices(op.target)
            local_offsets = np.zeros(vs.shape[0] + 1, dtype=np.int64)
            degs = g.offsets[vs + 1] - g.offsets[vs]
            np.cumsum(degs, out=local_offsets[1:])
            li = int(np.searchsorted(local_offsets, op.offset))
            if li < vs.shape[0] and local_offsets[li] == op.offset:
                traced_vertex = int(vs[li])
            assert traced_vertex is not None
            traced[traced_vertex] += 1
    analytic = remote_read_counts(g, nranks)
    np.testing.assert_array_equal(traced, analytic)


def test_determinism_across_runs():
    g = load_dataset("orkut", scale=SMALL_SCALE, seed=2)
    cfg = LCCConfig(nranks=8, threads=12,
                    cache=CacheSpec.paper_split(1 << 18, g.n, score="degree"))
    a = run_distributed_lcc(g, cfg)
    b = run_distributed_lcc(g, cfg)
    assert a.time == b.time
    assert a.summary() == b.summary()
    np.testing.assert_array_equal(a.lcc, b.lcc)


def test_network_presets_affect_time_not_results():
    from repro.runtime.network import NetworkModel

    g = load_dataset("skitter", scale=SMALL_SCALE, seed=2)
    fast = run_distributed_lcc(g, LCCConfig(nranks=4,
                                            network=NetworkModel.aries()))
    slow = run_distributed_lcc(g, LCCConfig(nranks=4,
                                            network=NetworkModel.ethernet()))
    np.testing.assert_array_equal(fast.lcc, slow.lcc)
    assert slow.time > fast.time
