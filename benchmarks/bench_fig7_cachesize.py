"""Bench: regenerate Figure 7 — cache behaviour vs cache size.

Acceptance shapes: miss rates decrease monotonically (modulo noise) with
capacity and floor at the compulsory rate; communication time decreases
with capacity.
"""

from conftest import run_once

from repro.analysis.experiments import exp_fig7


def test_fig7(benchmark):
    tables = run_once(benchmark, exp_fig7.run, fast=True)
    assert len(tables) >= 2
    for table in tables[:2]:
        misses = [float(row[2]) for row in table.rows]
        floors = [float(row[3]) for row in table.rows]
        savings = [float(row[5].rstrip("%")) for row in table.rows]
        # Bigger cache -> fewer misses, never below the compulsory floor.
        assert misses[-1] <= misses[0]
        for miss, floor in zip(misses, floors):
            assert miss >= floor - 1e-9
        # Bigger cache -> at least as much communication saving.
        assert savings[-1] >= savings[0]
