"""Named datasets: laptop-scale stand-ins for the paper's Table II.

The paper's graphs (SNAP Orkut/LiveJournal/Skitter, KONECT wiki-en,
UbiCrawler uk-2005, R-MAT up to scale 30) are both unavailable offline and
too large for a pure-Python per-edge simulation.  Each registry entry
therefore records the **paper's** graph properties and generates a scaled
stand-in with the same *degree-distribution class* and edge density.  The
experiment tables print both the paper size and the stand-in size so the
substitution stays visible.

Scaling factors were chosen so that the full Figure 9 sweep (6 graphs x 5
node counts x 4 algorithms) completes in minutes on one core; pass
``scale`` to :func:`load_dataset` to grow or shrink everything uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graph.csr import CSRGraph, relabel_random, remove_low_degree_vertices
from repro.graph.generators import (
    ego_circles,
    erdos_renyi,
    powerlaw_configuration,
    rmat,
)
from repro.utils.errors import ConfigError
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry: paper metadata + stand-in generator."""

    name: str
    kind: str                  # 'real' | 'rmat' | 'uniform'
    directed: bool
    paper_vertices: int
    paper_edges: int
    paper_csr: str             # the paper's Table II CSR size, verbatim
    description: str
    builder: Callable[[float, int], CSRGraph]

    def build(self, scale: float = 1.0, seed: int | None = None) -> CSRGraph:
        g = self.builder(scale, derive_seed(seed, "dataset", self.name))
        g = remove_low_degree_vertices(g)
        return CSRGraph(g.offsets, g.adjacency, g.directed, name=self.name,
                        validate=False)


def _scaled(base: int, scale: float) -> int:
    return max(16, int(round(base * scale)))


def _real(name, directed, pv, pe, csr, n0, m0, gamma, desc):
    def builder(scale: float, seed: int) -> CSRGraph:
        return powerlaw_configuration(
            _scaled(n0, scale), _scaled(m0, scale), gamma=gamma, seed=seed,
            directed=directed, name=name,
        )
    return DatasetSpec(name, "real", directed, pv, pe, csr, desc, builder)


def _rmat_spec(name, scale0, ef, pv, pe, csr, desc):
    def builder(scale: float, seed: int) -> CSRGraph:
        import math

        s = max(6, scale0 + int(round(math.log2(scale))) if scale != 1.0 else scale0)
        g = rmat(s, ef, seed=seed, name=name)
        # R-MAT ids correlate with degree (low ids are the hubs); the paper
        # randomly relabels degree-ordered inputs so 1D block partitioning
        # does not put all hubs on rank 0 (Section II-B).
        return relabel_random(g, seed=seed ^ 0xA5A5)
    return DatasetSpec(name, "rmat", False, pv, pe, csr, desc, builder)


DATASETS: dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    DATASETS[spec.name] = spec


# -- real-world stand-ins (paper Table II) --------------------------------------
_register(_real("orkut", False, 3_000_000, 117_200_000, "905.8 MiB",
                6_000, 120_000, 2.1,
                "SNAP-Orkut stand-in: dense power-law social network"))
_register(_real("livejournal", False, 4_000_000, 34_700_000, "273.8 MiB",
                8_000, 70_000, 2.4,
                "SNAP-LiveJournal stand-in: sparse power-law social network"))
_register(_real("livejournal1", True, 4_800_000, 69_000_000, "273.7 MiB",
                9_000, 130_000, 2.4,
                "SNAP-LiveJournal1 stand-in: directed power-law social network"))
_register(_real("skitter", False, 1_700_000, 11_100_000, "89.5 MiB",
                3_400, 22_000, 2.3,
                "SNAP-Skitter stand-in: internet topology"))
_register(_real("uk-2005", True, 39_500_000, 936_400_000, "3.6 GiB",
                12_000, 290_000, 2.0,
                "uk-2005 stand-in: web crawl, very skewed degrees"))
_register(_real("wiki-en", True, 13_600_000, 437_200_000, "1.7 GiB",
                8_000, 260_000, 2.1,
                "wiki-en stand-in: hyperlink graph"))

# -- R-MAT family (scaled down by 2**9 .. 2**15 in the vertex count) -------------
_register(_rmat_spec("rmat-s21-ef16", 12, 16, 2_100_000, 33_600_000,
                     "251.1 MiB", "R-MAT S21 EF16 stand-in (S12 here)"))
_register(_rmat_spec("rmat-s23-ef16", 14, 16, 8_400_000, 134_200_000,
                     "1021 MiB", "R-MAT S23 EF16 stand-in (S14 here)"))
_register(_rmat_spec("rmat-s30-ef16", 15, 16, 1_073_700_000, 17_179_900_000,
                     "130 GiB", "R-MAT S30 EF16 stand-in (S15 here)"))
_register(_rmat_spec("rmat-s20-ef8", 11, 8, 1_048_576, 8_388_608,
                     "-", "R-MAT S20 EF8 stand-in (S11 here, Table III)"))
_register(_rmat_spec("rmat-s20-ef16", 11, 16, 1_048_576, 16_777_216,
                     "-", "R-MAT S20 EF16 stand-in (S11 here, Table III/Figs 7-8)"))
_register(_rmat_spec("rmat-s20-ef32", 11, 32, 1_048_576, 33_554_432,
                     "-", "R-MAT S20 EF32 stand-in (S11 here, Table III/Fig 6)"))


def _fb_builder(scale: float, seed: int) -> CSRGraph:
    return ego_circles(n_egos=max(2, int(10 * scale)), circle_size=20,
                       n_circles_per_ego=10, seed=seed, name="facebook-circles")


_register(DatasetSpec(
    "facebook-circles", "real", False, 4_039, 88_234, "-",
    "Facebook social circles stand-in (Figures 1 and 5)", _fb_builder))


def _uniform_builder(scale: float, seed: int) -> CSRGraph:
    return erdos_renyi(_scaled(4096, scale), _scaled(65_536, scale),
                       seed=seed, name="uniform")


_register(DatasetSpec(
    "uniform", "uniform", False, 1 << 20, 1 << 24, "-",
    "Uniform-degree contrast graph (Figure 4 upper-left)", _uniform_builder))


def dataset_names() -> list[str]:
    """All registered dataset names."""
    return sorted(DATASETS)


def load_dataset(name: str, *, scale: float = 1.0,
                 seed: int | None = None) -> CSRGraph:
    """Build the stand-in graph for ``name``.

    ``scale`` multiplies the stand-in's default size (R-MAT datasets move
    by whole scale factors).  Degree-<2 vertices are already removed, as
    the paper does before distribution.
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        raise ConfigError(
            f"unknown dataset {name!r}; available: {', '.join(dataset_names())}"
        ) from None
    return spec.build(scale=scale, seed=seed)
