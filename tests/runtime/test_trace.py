"""Tests for RankTrace counters and op recording."""

import pytest

from repro.runtime.trace import OpKind, RankTrace


class TestCounters:
    def test_remote_get_accounting(self):
        tr = RankTrace(rank=0)
        tr.remote_get("adj", 1, 10, 5, 40, 1e-6, 1e-6)
        assert tr.n_remote_gets == 1
        assert tr.bytes_remote == 40
        assert tr.comm_time == pytest.approx(1e-6)
        assert tr.total_reads == 1

    def test_cache_hit_accounting(self):
        tr = RankTrace(rank=0)
        tr.cache_hit("adj", 1, 10, 5, 40, 1e-8, 1e-8)
        assert tr.n_cache_hits == 1
        assert tr.bytes_cached == 40
        assert tr.cache_time == pytest.approx(1e-8)

    def test_remote_fraction(self):
        tr = RankTrace(rank=0)
        tr.remote_get("w", 1, 0, 1, 8, 1e-6, 0)
        tr.local_read("w", 0, 1, 8, 1e-7, 0)
        tr.local_read("w", 0, 1, 8, 1e-7, 0)
        tr.cache_hit("w", 1, 0, 1, 8, 1e-8, 0)
        assert tr.remote_fraction == pytest.approx(0.25)

    def test_remote_fraction_empty(self):
        assert RankTrace(rank=0).remote_fraction == 0.0


class TestOpRecording:
    def test_ops_not_recorded_by_default(self):
        tr = RankTrace(rank=0)
        tr.remote_get("adj", 1, 0, 2, 16, 1e-6, 1e-6)
        assert tr.ops == []

    def test_ops_recorded_when_enabled(self):
        tr = RankTrace(rank=0, record_ops=True)
        tr.remote_get("adj", 1, 3, 2, 16, 1e-6, 1e-6)
        tr.local_read("adj", 0, 2, 16, 1e-7, 2e-6)
        assert len(tr.ops) == 2
        op = tr.ops[0]
        assert op.kind is OpKind.GET_REMOTE
        assert (op.window, op.target, op.offset, op.count) == ("adj", 1, 3, 2)

    def test_iter_remote_reads_filters(self):
        tr = RankTrace(rank=0, record_ops=True)
        tr.remote_get("adj", 1, 0, 1, 8, 1e-6, 0)
        tr.local_read("adj", 0, 1, 8, 1e-7, 0)
        tr.cache_hit("adj", 1, 0, 1, 8, 1e-8, 0)
        remote = list(tr.iter_remote_reads())
        assert len(remote) == 1
        assert remote[0].kind is OpKind.GET_REMOTE


class TestMerge:
    def test_merge_totals(self):
        a, b = RankTrace(rank=0), RankTrace(rank=1)
        a.remote_get("w", 1, 0, 1, 8, 1e-6, 0)
        b.remote_get("w", 0, 0, 1, 8, 2e-6, 0)
        b.compute(5e-6, 0)
        a.merge_totals(b)
        assert a.n_remote_gets == 2
        assert a.bytes_remote == 16
        assert a.comm_time == pytest.approx(3e-6)
        assert a.comp_time == pytest.approx(5e-6)
