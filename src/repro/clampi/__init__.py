"""CLaMPI — a reimplementation of the software caching layer for MPI RMA.

CLaMPI (Di Girolamo, Vella, Hoefler, IPDPS'17) transparently caches data
retrieved through RMA get operations.  The paper under reproduction extends
it with **application-defined eviction scores** and uses two caches per
rank: ``C_offsets`` (fixed-size entries: the (start, end) offset pairs of
remote adjacency lists) and ``C_adj`` (variable-size entries: the adjacency
lists themselves).

This package reimplements the system as described:

* variable-size entries in a bounded memory buffer, managed by a best-fit
  allocator whose free regions live in an **AVL tree**
  (:mod:`~repro.clampi.avl`, :mod:`~repro.clampi.allocator`);
* a **hash-table index** with bounded probing; probe-window exhaustion is a
  *conflict* and triggers eviction within the window
  (:mod:`~repro.clampi.hashtable`);
* eviction **scores** combining temporal locality (LRU) with a positional
  term that prefers evicting entries whose removal coalesces free space —
  or, in the paper's extension, an application-supplied score such as the
  vertex degree (:mod:`~repro.clampi.scores`);
* an **adaptive tuning** heuristic that resizes the hash table / buffer from
  observed misses, conflicts and evictions, flushing on each adjustment
  (:mod:`~repro.clampi.adaptive`);
* three consistency **modes**: transparent (flush at epoch close),
  always-cache (read-only data), user-defined (:class:`ConsistencyMode`).
"""

from repro.clampi.avl import AVLTree
from repro.clampi.allocator import BufferAllocator
from repro.clampi.hashtable import HashIndex
from repro.clampi.scores import DefaultScorePolicy, AppScorePolicy, ScorePolicy
from repro.clampi.scores_ext import (
    CostAwareScorePolicy,
    DensityScorePolicy,
    HybridDegreeLRUPolicy,
    LFUScorePolicy,
)
from repro.clampi.stats import CacheStats
from repro.clampi.cache import ClampiCache, ClampiConfig, ConsistencyMode
from repro.clampi.adaptive import AdaptiveTuner, AdaptiveConfig
from repro.clampi.wrapper import attach_adjacency_caches, attach_offset_caches

__all__ = [
    "AVLTree",
    "BufferAllocator",
    "HashIndex",
    "ScorePolicy",
    "DefaultScorePolicy",
    "AppScorePolicy",
    "LFUScorePolicy",
    "CostAwareScorePolicy",
    "DensityScorePolicy",
    "HybridDegreeLRUPolicy",
    "CacheStats",
    "ClampiCache",
    "ClampiConfig",
    "ConsistencyMode",
    "AdaptiveTuner",
    "AdaptiveConfig",
    "attach_adjacency_caches",
    "attach_offset_caches",
]
