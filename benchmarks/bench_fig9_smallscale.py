"""Bench: regenerate Figure 9 — small-scale strong scaling.

Acceptance shapes on the R-MAT S21 stand-in: the async implementation
scales with node count, TriC is slower at every configuration, and
TriC-Buffered is never faster than TriC.
"""

from conftest import run_once

from repro.analysis.experiments import exp_fig9


def test_fig9_rmat(benchmark):
    tables = run_once(benchmark, exp_fig9.run, fast=True)
    scaling = tables[0]
    rows = {int(r[0]): r for r in scaling.rows}
    counts = sorted(rows)
    lo, hi = rows[counts[0]], rows[counts[-1]]
    lcc_lo, lcc_hi = float(lo[1]), float(hi[1])
    # Strong scaling of the async series.
    assert lcc_hi < lcc_lo
    for p, row in rows.items():
        lcc_t, cached_t, tric_t, tric_buf_t = map(float, row[1:5])
        assert tric_t > lcc_t, f"TriC beat async LCC at {p} nodes"
        assert tric_buf_t >= tric_t * 0.95
        assert cached_t <= lcc_t * 1.05
