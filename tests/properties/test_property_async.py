"""Property tests: the cooperative engine is indistinguishable from serial.

Random small workloads (size, rate, read/write mix, arrival mode) crossed
with random cooperative interleavings (worker counts, seeded step-choice
shuffles via :class:`~repro.serve.scheduler.InterleaveScheduler`, bounded
run queues): answer digests, per-graph version histories and final store
digests always equal the serial :class:`~repro.serve.engine.ServingEngine`
oracle's — the async analogue of ``test_property_sharded.py``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.engine import (
    AsyncServeConfig,
    AsyncServingEngine,
    ServeConfig,
    ServingEngine,
    answers_identical,
)
from repro.serve.scheduler import FIFOScheduler, InterleaveScheduler
from repro.serve.workload import WorkloadSpec, default_catalog, generate_workload
from repro.shardstore import ShardedGraphStore, annotate_shard_sets

# One small catalog for every example: engines never mutate the input
# graphs (commits produce fresh heads inside each engine's own store).
CATALOG = default_catalog(scale=0.2)


@st.composite
def serve_cases(draw):
    """A random workload spec crossed with a random interleaving."""
    spec = WorkloadSpec(
        n_queries=draw(st.integers(min_value=6, max_value=24)),
        arrival_rate=draw(st.sampled_from([500.0, 2000.0, 8000.0])),
        n_tenants=draw(st.integers(min_value=2, max_value=6)),
        graphs=tuple(CATALOG),
        kernels=draw(st.sampled_from([("lcc",), ("lcc", "tc")])),
        seed=draw(st.integers(min_value=0, max_value=2**31)),
        update_mix=draw(st.sampled_from([0.0, 0.2, 0.4])))
    mode = draw(st.sampled_from(["poisson", "bursty", "flash"]))
    if mode == "bursty":
        spec = spec.bursty(factor=10.0, fraction=0.4)
    elif mode == "flash":
        spec = spec.flash_crowd()
    workers = draw(st.integers(min_value=1, max_value=4))
    interleave_seed = draw(st.integers(min_value=0, max_value=2**31))
    max_queue = draw(st.sampled_from([0, 0, 3]))  # mostly unbounded
    return spec, workers, interleave_seed, max_queue


def _outcomes(spec, workers, interleave_seed, max_queue,
              store_factory=None, annotate=False):
    requests = generate_workload(spec, CATALOG)
    if annotate:
        requests = annotate_shard_sets(requests, store_factory(CATALOG))
    serial = ServingEngine(
        CATALOG, ServeConfig(nranks=2, threads=1, pool_capacity=2),
        FIFOScheduler(), store_factory=store_factory).serve(requests)
    coop = AsyncServingEngine(
        CATALOG,
        AsyncServeConfig(nranks=2, threads=1, pool_capacity=2,
                         workers=workers, max_queue=max_queue,
                         overflow="defer"),
        InterleaveScheduler(seed=interleave_seed),
        store_factory=store_factory).serve(requests)
    return requests, serial, coop


@given(serve_cases())
@settings(max_examples=25, deadline=None)
def test_cooperative_equals_serial_oracle(case):
    requests, serial, coop = _outcomes(*case)
    # Bit-identical answers observing identical versions, and identical
    # per-graph version histories (count + chained digest).
    assert answers_identical(serial, coop)
    assert coop.graph_versions == serial.graph_versions
    # Every request retired exactly once, none invented or dropped.
    served = sorted([r.qid for r in coop.records]
                    + [u.qid for u in coop.update_records])
    assert served == sorted(r.qid for r in requests)


@given(serve_cases())
@settings(max_examples=10, deadline=None)
def test_cooperative_equals_serial_oracle_sharded(case):
    """Same law over the fenced sharded store with annotated updates."""
    spec, workers, interleave_seed, max_queue = case

    def sharded(c):
        return ShardedGraphStore(c, nshards=2, nranks=2)

    _, serial, coop = _outcomes(spec, workers, interleave_seed, max_queue,
                                store_factory=sharded, annotate=True)
    assert answers_identical(serial, coop)
    assert coop.graph_versions == serial.graph_versions
