#!/usr/bin/env python
"""Serve a multi-tenant query workload: FIFO vs cache-affinity scheduling.

The paper's caches pay off when remote-access patterns repeat.  At the
service level the same is true one layer up: queries that share a
resident cluster should run back-to-back, so one cold partition and one
compulsory-miss pass are amortized over a run of warm queries.  This
example generates Zipf-skewed Poisson traffic from a dozen tenants over
four catalog graphs, then drains it twice through a bounded pool of three
resident sessions — once in arrival order, once with the cache-affinity
scheduler — and compares throughput, latency and pool churn.  The
per-query answers are bit-identical either way; only the order (and with
it the warmth) changes.

    python examples/serving.py
"""

from repro.serve import (
    CacheAffinityScheduler,
    FIFOScheduler,
    ServeConfig,
    ServingEngine,
    WorkloadSpec,
    default_catalog,
    generate_workload,
)
from repro.serve.engine import answers_identical


def main() -> None:
    catalog = default_catalog(scale=0.5)
    spec = WorkloadSpec(n_queries=120, arrival_rate=2000.0, n_tenants=12,
                        graphs=tuple(catalog), seed=7)
    requests = generate_workload(spec)
    hot = max(set(r.tenant for r in requests),
              key=lambda t: sum(r.tenant == t for r in requests))
    print(f"workload: {len(requests)} queries, {spec.n_tenants} tenants over "
          f"{len(catalog)} graphs (Zipf-skewed; hottest tenant {hot} issues "
          f"{sum(r.tenant == hot for r in requests)} queries)")

    config = ServeConfig(nranks=8, threads=4, pool_capacity=3)
    print(f"pool: {config.pool_capacity} resident sessions for "
          f"{len(set(r.session_key for r in requests))} distinct "
          "(graph, config) keys -> contention\n")

    outcomes = {}
    for scheduler in (FIFOScheduler(), CacheAffinityScheduler()):
        engine = ServingEngine(catalog, config, scheduler)
        outcome = engine.serve(requests)
        outcomes[scheduler.name] = outcome
        agg = outcome.aggregates
        print(f"{scheduler.name:9s} throughput {agg['throughput_qps']:7.1f} "
              f"q/s  mean latency {agg['latency_mean_s'] * 1e3:6.1f} ms  "
              f"p95 {agg['latency_p95_s'] * 1e3:6.1f} ms")
        print(f"{'':9s} warm queries {agg['warm_fraction']:.0%}  "
              f"adj hit rate {agg['mean_adj_hit_rate']:.2f}  "
              f"session builds {agg['session_builds']} "
              f"(evictions {agg['session_evictions']})")

    fifo, affinity = outcomes["fifo"], outcomes["affinity"]
    ratio = (affinity.aggregates["throughput_qps"]
             / fifo.aggregates["throughput_qps"])
    print(f"\ncache-affinity scheduling: {ratio:.2f}x FIFO throughput, "
          f"answers identical: {answers_identical(fifo, affinity)}")


if __name__ == "__main__":
    main()
