"""Per-rank operation traces and counters.

Every :class:`~repro.runtime.context.SimContext` owns a :class:`RankTrace`.
Counters are always collected (they are cheap); full per-operation records
are only kept when ``record_ops=True``, which the reuse-analysis experiments
(Figures 1, 4, 5) use to reconstruct the remote-read stream.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, NamedTuple


class OpKind(enum.Enum):
    """Kinds of traced operations."""

    GET_REMOTE = "get_remote"
    GET_LOCAL = "get_local"
    CACHE_HIT = "cache_hit"
    PUT = "put"
    SEND = "send"
    RECV = "recv"
    BARRIER = "barrier"
    ALLTOALLV = "alltoallv"
    COMPUTE = "compute"


class OpRecord(NamedTuple):
    """One traced operation.

    ``window`` is the window name (or ``""`` for non-RMA ops), ``target`` the
    peer rank (or ``-1``), ``offset``/``count`` the accessed element range
    and ``t`` the rank-local completion time.
    """

    kind: OpKind
    window: str
    target: int
    offset: int
    count: int
    nbytes: int
    t: float


@dataclass
class RankTrace:
    """Counters (always on) and an optional operation log for one rank."""

    rank: int
    record_ops: bool = False

    # -- aggregate counters ---------------------------------------------------
    n_remote_gets: int = 0
    n_local_reads: int = 0
    n_cache_hits: int = 0
    n_puts: int = 0
    n_sends: int = 0
    n_recvs: int = 0
    n_barriers: int = 0
    n_alltoallv: int = 0

    bytes_remote: int = 0
    bytes_local: int = 0
    bytes_cached: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0

    comm_time: float = 0.0
    comp_time: float = 0.0
    sync_time: float = 0.0
    cache_time: float = 0.0

    ops: list[OpRecord] = field(default_factory=list)

    # -- recording helpers ------------------------------------------------------
    def record(
        self,
        kind: OpKind,
        *,
        window: str = "",
        target: int = -1,
        offset: int = 0,
        count: int = 0,
        nbytes: int = 0,
        t: float = 0.0,
    ) -> None:
        """Append a full op record when op recording is enabled."""
        if self.record_ops:
            self.ops.append(OpRecord(kind, window, target, offset, count, nbytes, t))

    def remote_get(self, window: str, target: int, offset: int, count: int,
                   nbytes: int, duration: float, t: float) -> None:
        self.n_remote_gets += 1
        self.bytes_remote += nbytes
        self.comm_time += duration
        self.record(OpKind.GET_REMOTE, window=window, target=target,
                    offset=offset, count=count, nbytes=nbytes, t=t)

    def local_read(self, window: str, offset: int, count: int, nbytes: int,
                   duration: float, t: float) -> None:
        self.n_local_reads += 1
        self.bytes_local += nbytes
        self.comp_time += duration
        self.record(OpKind.GET_LOCAL, window=window, target=self.rank,
                    offset=offset, count=count, nbytes=nbytes, t=t)

    def cache_hit(self, window: str, target: int, offset: int, count: int,
                  nbytes: int, duration: float, t: float) -> None:
        self.n_cache_hits += 1
        self.bytes_cached += nbytes
        self.cache_time += duration
        self.record(OpKind.CACHE_HIT, window=window, target=target,
                    offset=offset, count=count, nbytes=nbytes, t=t)

    def compute(self, duration: float, t: float) -> None:
        self.comp_time += duration
        self.record(OpKind.COMPUTE, nbytes=0, t=t)

    # -- derived metrics ---------------------------------------------------------
    @property
    def total_reads(self) -> int:
        """All adjacency-data reads: remote + local + cache-served."""
        return self.n_remote_gets + self.n_local_reads + self.n_cache_hits

    @property
    def remote_fraction(self) -> float:
        """Fraction of reads that left the node (cache hits count as remote
        *intent* but were served locally, so they are excluded here)."""
        total = self.total_reads
        return self.n_remote_gets / total if total else 0.0

    def iter_remote_reads(self) -> Iterator[OpRecord]:
        """Yield recorded remote-get ops (requires ``record_ops=True``)."""
        for op in self.ops:
            if op.kind is OpKind.GET_REMOTE:
                yield op

    @classmethod
    def from_totals(cls, rank: int, **totals: float) -> "RankTrace":
        """Build a trace directly from aggregate counters.

        Used by the closed-form/batched replay paths, which compute a
        rank's totals without stepping through individual operations.
        Unknown counter names are rejected so replay code cannot silently
        drop a statistic.
        """
        trace = cls(rank=rank)
        for name, value in totals.items():
            if name not in cls.__dataclass_fields__ or name in (
                    "rank", "record_ops", "ops"):
                raise ValueError(f"unknown trace counter {name!r}")
            setattr(trace, name, value)
        return trace

    def merge_totals(self, other: "RankTrace") -> None:
        """Accumulate another trace's counters into this one (reporting)."""
        for attr in (
            "n_remote_gets", "n_local_reads", "n_cache_hits", "n_puts",
            "n_sends", "n_recvs", "n_barriers", "n_alltoallv",
            "bytes_remote", "bytes_local", "bytes_cached", "bytes_sent",
            "bytes_received",
        ):
            setattr(self, attr, getattr(self, attr) + getattr(other, attr))
        for attr in ("comm_time", "comp_time", "sync_time", "cache_time"):
            setattr(self, attr, getattr(self, attr) + getattr(other, attr))
