"""Shared utilities: units, RNG handling, logging, validation, errors.

These helpers are deliberately dependency-free (NumPy only) so that every
other subpackage can import them without cycles.
"""

from repro.utils.errors import (
    ReproError,
    WindowError,
    EpochError,
    CacheError,
    PartitionError,
    ConfigError,
)
from repro.utils.units import (
    KiB,
    MiB,
    GiB,
    US,
    MS,
    NS,
    format_bytes,
    format_seconds,
)
from repro.utils.rng import make_rng, spawn_rngs, derive_seed

__all__ = [
    "ReproError",
    "WindowError",
    "EpochError",
    "CacheError",
    "PartitionError",
    "ConfigError",
    "KiB",
    "MiB",
    "GiB",
    "US",
    "MS",
    "NS",
    "format_bytes",
    "format_seconds",
    "make_rng",
    "spawn_rngs",
    "derive_seed",
]
