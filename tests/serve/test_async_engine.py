"""Cooperative engine: parity with the serial oracle, overlap, windows."""

import pytest

from repro.serve.engine import (
    AsyncServeConfig,
    AsyncServingEngine,
    ServeConfig,
    ServingEngine,
    answers_identical,
)
from repro.serve.scheduler import (
    CacheAffinityScheduler,
    FIFOScheduler,
    InterleaveScheduler,
)
from repro.serve.workload import WorkloadSpec, default_catalog, generate_workload
from repro.shardstore import ShardedGraphStore, annotate_shard_sets
from repro.utils.errors import ConfigError


@pytest.fixture(scope="module")
def catalog():
    return default_catalog(scale=0.25)


@pytest.fixture(scope="module")
def requests(catalog):
    # Saturating mixed read/write traffic: the overlap regime.
    return generate_workload(
        WorkloadSpec(n_queries=48, arrival_rate=2500.0, n_tenants=8,
                     graphs=tuple(catalog), kernels=("lcc", "tc"),
                     seed=5, update_mix=0.3), catalog)


@pytest.fixture(scope="module")
def config():
    return AsyncServeConfig(nranks=4, threads=2, pool_capacity=3,
                            workers=4)


@pytest.fixture(scope="module")
def serial_outcome(catalog, requests):
    serial_cfg = ServeConfig(nranks=4, threads=2, pool_capacity=3)
    return ServingEngine(catalog, serial_cfg,
                         FIFOScheduler()).serve(requests)


@pytest.fixture(scope="module")
def coop_outcome(catalog, requests, config):
    return AsyncServingEngine(catalog, config,
                              FIFOScheduler()).serve(requests)


class TestParity:
    def test_bit_identical_to_serial_oracle(self, serial_outcome,
                                            coop_outcome):
        """The headline invariant: overlap changes timing, never answers."""
        assert answers_identical(serial_outcome, coop_outcome)

    def test_every_request_retires_exactly_once(self, coop_outcome,
                                                requests):
        served = sorted([r.qid for r in coop_outcome.records]
                        + [u.qid for u in coop_outcome.update_records])
        assert served == sorted(r.qid for r in requests)
        assert not coop_outcome.rejected

    def test_version_histories_scheduler_independent(self, serial_outcome,
                                                     coop_outcome):
        assert coop_outcome.graph_versions == serial_outcome.graph_versions

    def test_affinity_scheduler_parity(self, catalog, requests, config,
                                       serial_outcome):
        coop = AsyncServingEngine(catalog, config,
                                  CacheAffinityScheduler()).serve(requests)
        assert answers_identical(serial_outcome, coop)

    def test_single_worker_anchor(self, catalog, requests, serial_outcome):
        """workers=1 degenerates to serial service — parity must be free."""
        cfg = AsyncServeConfig(nranks=4, threads=2, pool_capacity=3,
                               workers=1)
        coop = AsyncServingEngine(catalog, cfg,
                                  FIFOScheduler()).serve(requests)
        assert answers_identical(serial_outcome, coop)
        assert coop.aggregates["max_concurrency"] == 1

    def test_sharded_store_parity(self, catalog, requests, config,
                                  serial_outcome):
        """Shard-annotated updates over the fenced store: still identical
        to the *plain* serial oracle — and disjoint writers overlap."""

        def sharded(c):
            return ShardedGraphStore(c, nshards=2, nranks=4)

        annotated = annotate_shard_sets(requests, sharded(catalog))
        serial_cfg = ServeConfig(nranks=4, threads=2, pool_capacity=3)
        serial = ServingEngine(catalog, serial_cfg, FIFOScheduler(),
                               store_factory=sharded).serve(annotated)
        coop = AsyncServingEngine(catalog, config, FIFOScheduler(),
                                  store_factory=sharded).serve(annotated)
        assert answers_identical(serial, coop)
        # Query answers match the unsharded oracle bit for bit too.
        plain = {r.qid: r.digest for r in serial_outcome.records}
        assert {r.qid: r.digest for r in coop.records} == plain


class TestOverlap:
    def test_service_intervals_overlap(self, coop_outcome):
        """The inverse of the serial engine's sequential-server test."""
        spans = sorted((r.start, r.finish) for r in coop_outcome.records)
        overlapped = sum(
            1 for (_, prev_end), (start, _) in zip(spans, spans[1:])
            if start < prev_end - 1e-12)
        assert overlapped > 0
        assert coop_outcome.aggregates["max_concurrency"] > 1
        assert 0.0 < coop_outcome.aggregates["overlap_fraction"] <= 1.0

    def test_worker_bound_respected(self, coop_outcome, config):
        assert coop_outcome.aggregates["max_concurrency"] <= config.workers
        assert {r.worker for r in coop_outcome.records} <= set(
            range(config.workers))

    def test_tail_latency_no_worse_than_serial(self, serial_outcome,
                                               coop_outcome):
        assert (coop_outcome.aggregates["latency_p99_s"]
                <= serial_outcome.aggregates["latency_p99_s"] * 1.1)

    def test_interleave_determinism(self, catalog, requests, config):
        """Same seed, same interleaving, same records — replayable."""
        runs = [AsyncServingEngine(catalog, config,
                                   InterleaveScheduler(seed=9)
                                   ).serve(requests) for _ in range(2)]

        def key(o):
            return [(r.qid, r.start, r.finish, r.worker, r.digest)
                    for r in o.records]

        assert key(runs[0]) == key(runs[1])


class TestCoalescingWindow:
    def test_hold_never_past_deadline(self, coop_outcome, config):
        """A leader's window is bounded by arrival + slo_update_s."""
        for u in coop_outcome.update_records:
            if u.coalesced:
                continue
            deadline = u.arrival + config.slo_update_s
            assert u.held_s <= max(0.0, deadline - u.start) + 1e-12
            assert u.held_s >= 0.0

    def test_riders_accounting(self, coop_outcome):
        heads = [u for u in coop_outcome.update_records if not u.coalesced]
        riders = [u for u in coop_outcome.update_records if u.coalesced]
        assert sum(h.riders for h in heads) == len(riders)
        for r in riders:
            assert r.service_s == 0.0 and r.held_s == 0.0
        assert coop_outcome.aggregates["updates_coalesced"] == len(riders)

    def test_zero_window_disables_holding(self, catalog, requests,
                                          serial_outcome):
        cfg = AsyncServeConfig(nranks=4, threads=2, pool_capacity=3,
                               workers=4, coalesce_window_s=0.0)
        coop = AsyncServingEngine(catalog, cfg,
                                  FIFOScheduler()).serve(requests)
        assert all(u.held_s == 0.0 for u in coop.update_records)
        assert answers_identical(serial_outcome, coop)


class TestValidation:
    def test_needs_async_config(self, catalog):
        with pytest.raises(ConfigError, match="AsyncServeConfig"):
            AsyncServingEngine(catalog, ServeConfig(nranks=4))

    def test_empty_workload_rejected(self, catalog, config):
        with pytest.raises(ConfigError):
            AsyncServingEngine(catalog, config).serve([])

    @pytest.mark.parametrize("kw", [
        {"workers": 0},
        {"max_queue": -1},
        {"overflow": "drop"},
        {"coalesce_window_s": -0.1},
        {"slo_query_s": 0.0},
        {"slo_update_s": -1.0},
        {"starvation_limit": 0},
    ])
    def test_bad_knobs_rejected(self, kw):
        with pytest.raises(ConfigError):
            AsyncServeConfig(**kw)
