"""Bounded-probing hash index for cached entries.

CLaMPI indexes cached entries with a hash table whose size is a tunable
parameter (the paper spends Section III-B1 on choosing it: ~n/2 slots for
the offsets cache, a power-law-informed estimate for the adjacency cache).
We model it as open addressing with **bounded linear probing**: a lookup or
insert examines at most ``probe_limit`` slots.  An insert that finds its
whole probe window occupied by other keys is a **conflict** — in CLaMPI
this triggers eviction within the window (victim chosen by score) and is
one of the signals the adaptive tuner watches.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator

from repro.utils.errors import CacheError


class HashIndex:
    """Open-addressing hash table with a bounded probe window."""

    def __init__(self, nslots: int, probe_limit: int = 8):
        if nslots <= 0:
            raise CacheError(f"hash table needs >= 1 slot, got {nslots}")
        if probe_limit <= 0:
            raise CacheError(f"probe_limit must be >= 1, got {probe_limit}")
        self.nslots = int(nslots)
        self.probe_limit = min(int(probe_limit), self.nslots)
        self._slots: list[tuple[Hashable, Any] | None] = [None] * self.nslots
        self._count = 0
        self.conflicts = 0  # inserts that found a full probe window

    def __len__(self) -> int:
        return self._count

    @property
    def load_factor(self) -> float:
        return self._count / self.nslots

    def _probe(self, key: Hashable) -> Iterator[int]:
        start = hash(key) % self.nslots
        for i in range(self.probe_limit):
            yield (start + i) % self.nslots

    # -- operations -------------------------------------------------------------
    def lookup(self, key: Hashable) -> Any | None:
        """Return the stored value or None."""
        for idx in self._probe(key):
            slot = self._slots[idx]
            if slot is None:
                return None
            if slot[0] == key:
                return slot[1]
        return None

    def insert(self, key: Hashable, value: Any) -> bool:
        """Insert or update; False (and a conflict count) if the window is full.

        The caller is expected to react to a False return by evicting one of
        :meth:`probe_window` and retrying.
        """
        free_idx = None
        for idx in self._probe(key):
            slot = self._slots[idx]
            if slot is None:
                if free_idx is None:
                    free_idx = idx
                break  # probing stops at the first empty slot
            if slot[0] == key:
                self._slots[idx] = (key, value)
                return True
        if free_idx is None:
            self.conflicts += 1
            return False
        self._slots[free_idx] = (key, value)
        self._count += 1
        return True

    def remove(self, key: Hashable) -> Any:
        """Remove ``key`` and return its value; raises CacheError if absent.

        Removal re-inserts the tail of the probe cluster so lookups never
        break across the hole (standard open-addressing backshift).
        """
        target_idx = None
        for idx in self._probe(key):
            slot = self._slots[idx]
            if slot is None:
                break
            if slot[0] == key:
                target_idx = idx
                break
        if target_idx is None:
            raise CacheError(f"hash index: key not present: {key!r}")
        value = self._slots[target_idx][1]  # type: ignore[index]
        self._slots[target_idx] = None
        self._count -= 1
        # Backshift: rehash the contiguous cluster following the hole.
        idx = (target_idx + 1) % self.nslots
        scanned = 0
        while self._slots[idx] is not None and scanned < self.nslots:
            k, v = self._slots[idx]  # type: ignore[misc]
            self._slots[idx] = None
            self._count -= 1
            if not self.insert(k, v):
                # Cannot happen: removing freed a slot inside the window.
                raise CacheError("hash index backshift failed")  # pragma: no cover
            idx = (idx + 1) % self.nslots
            scanned += 1
        return value

    def probe_window(self, key: Hashable) -> list[tuple[Hashable, Any]]:
        """Occupied (key, value) pairs in ``key``'s probe window."""
        out = []
        for idx in self._probe(key):
            slot = self._slots[idx]
            if slot is not None:
                out.append(slot)
        return out

    def items(self) -> Iterator[tuple[Hashable, Any]]:
        for slot in self._slots:
            if slot is not None:
                yield slot

    def clear(self) -> None:
        self._slots = [None] * self.nslots
        self._count = 0
