"""The Session + kernel-registry subsystem.

Pins the PR's contract: registry registration/lookup semantics,
``Session.run`` results bit-identical to every legacy entry point, warm
CLaMPI caches across queries (the paper's reuse effect at the API level),
and sweeps amortizing one graph partitioning across variants.
"""

import numpy as np
import pytest

from repro.baselines.disttc import DistTCConfig, run_disttc
from repro.baselines.mapreduce import MapReduceConfig, run_mapreduce_tc
from repro.baselines.tric import TricConfig, run_tric
from repro.core.api import compute_lcc, count_triangles
from repro.core.config import CacheSpec, DistributedRunResult, LCCConfig
from repro.core.lcc import run_distributed_lcc
from repro.core.local import lcc_local, triangle_count_local
from repro.core.tc import run_distributed_tc
from repro.core.tc2d import run_distributed_tc_2d
from repro.graph.generators import rmat
from repro.session import (
    KernelResult,
    Session,
    get_kernel,
    kernel_names,
    register_kernel,
    run_kernel,
    unregister_kernel,
)
from repro.utils.errors import ConfigError, KernelError


@pytest.fixture(scope="module")
def graph():
    return rmat(9, 10, seed=7)


@pytest.fixture(scope="module")
def cache_spec(graph):
    return CacheSpec.paper_split(graph.nbytes, graph.n, score="degree")


def assert_identical(legacy: DistributedRunResult, res: KernelResult):
    """Bit-identical outcome: scores, counts, clocks and summaries."""
    assert isinstance(res, KernelResult)
    assert res.time == legacy.time
    assert res.outcome.clocks == legacy.outcome.clocks
    assert res.global_triangles == legacy.global_triangles
    if legacy.lcc is None:
        assert res.lcc is None
    else:
        assert np.array_equal(res.lcc, legacy.lcc)
    if legacy.triangles_per_vertex is None:
        assert res.triangles_per_vertex is None
    else:
        assert np.array_equal(res.triangles_per_vertex,
                              legacy.triangles_per_vertex)
    session_summary = res.summary()
    assert session_summary.pop("kernel") == res.kernel
    assert session_summary == legacy.summary()


class TestRegistry:
    def test_builtins_registered(self):
        for name in ("lcc", "tc", "tc2d", "tric", "disttc", "mapreduce"):
            assert name in kernel_names()

    def test_unknown_kernel_raises_with_listing(self, graph):
        with pytest.raises(KernelError, match="nope.*registered kernels"):
            Session(graph).run("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(KernelError, match="already registered"):
            @register_kernel("lcc")
            def clash(session, config, **opts):  # pragma: no cover
                return None

    def test_register_unregister_roundtrip(self, graph):
        @register_kernel("test-noop", description="noop")
        def noop(session, config, *, keep_cache=False, **opts):
            return run_distributed_lcc(session.graph, config)

        try:
            assert get_kernel("test-noop").description == "noop"
            res = Session(graph).run("test-noop")
            assert res.kernel == "test-noop"
            assert np.allclose(res.lcc, lcc_local(graph))
        finally:
            unregister_kernel("test-noop")
        assert "test-noop" not in kernel_names()
        with pytest.raises(KernelError, match="not registered"):
            unregister_kernel("test-noop")

    def test_overwrite_allowed_when_requested(self):
        @register_kernel("test-ow")
        def first(session, config, **opts):  # pragma: no cover
            return None

        try:
            @register_kernel("test-ow", overwrite=True, description="second")
            def second(session, config, **opts):  # pragma: no cover
                return None

            assert get_kernel("test-ow").description == "second"
        finally:
            unregister_kernel("test-ow")

    def test_closed_session_rejects_queries(self, graph):
        session = Session(graph)
        session.run("lcc", nranks=2)
        session.close()
        with pytest.raises(KernelError, match="closed"):
            session.run("lcc")


class TestLegacyParity:
    """`Session.run` is bit-identical to every legacy entry point."""

    def test_lcc_fast_path(self, graph):
        cfg = LCCConfig(nranks=4, threads=4)
        with Session(graph, cfg) as s:
            assert_identical(run_distributed_lcc(graph, cfg), s.run("lcc"))

    def test_lcc_loop_path(self, graph):
        cfg = LCCConfig(nranks=4, threads=4, fast_path=False)
        with Session(graph, cfg) as s:
            assert_identical(run_distributed_lcc(graph, cfg), s.run("lcc"))

    def test_lcc_cached(self, graph, cache_spec):
        cfg = LCCConfig(nranks=4, threads=4, cache=cache_spec)
        with Session(graph, cfg) as s:
            legacy = run_distributed_lcc(graph, cfg)
            res = s.run("lcc")
            assert_identical(legacy, res)
            assert res.adj_cache_stats == legacy.adj_cache_stats
            assert res.offsets_cache_stats == legacy.offsets_cache_stats

    def test_tc(self, graph):
        cfg = LCCConfig(nranks=4, threads=4)
        with Session(graph, cfg) as s:
            assert_identical(run_distributed_tc(graph, cfg), s.run("tc"))

    def test_tc2d(self, graph):
        cfg = LCCConfig(nranks=4)
        with Session(graph, cfg) as s:
            assert_identical(run_distributed_tc_2d(graph, cfg), s.run("tc2d"))

    def test_tric(self, graph):
        with Session(graph, LCCConfig(nranks=4)) as s:
            legacy = run_tric(graph, TricConfig(nranks=4))
            res = s.run("tric")
            assert_identical(legacy, res)
            assert res.peak_buffer_bytes == legacy.peak_buffer_bytes

    def test_tric_buffered(self, graph):
        with Session(graph, LCCConfig(nranks=4)) as s:
            legacy = run_tric(graph, TricConfig(nranks=4,
                                                buffer_capacity=1 << 14))
            assert_identical(legacy,
                             s.run("tric", buffer_capacity=1 << 14))

    def test_disttc(self, graph):
        with Session(graph, LCCConfig(nranks=4)) as s:
            legacy = run_disttc(graph, DistTCConfig(nranks=4))
            res = s.run("disttc")
            assert_identical(legacy, res)
            assert res.precompute_time == legacy.precompute_time

    def test_mapreduce(self, graph):
        with Session(graph, LCCConfig(nranks=4)) as s:
            legacy = run_mapreduce_tc(graph, MapReduceConfig(nranks=4))
            assert_identical(legacy, s.run("mapreduce"))

    def test_interleaved_queries_stay_identical(self, graph, cache_spec):
        """Back-to-back mixed kernels never contaminate each other."""
        cfg = LCCConfig(nranks=4, threads=4)
        with Session(graph, cfg) as s:
            first = s.run("lcc", fast_path=False)
            s.run("tc")
            s.run("lcc", cache=cache_spec)
            again = s.run("lcc", fast_path=False)
            assert_identical(first.raw, again)

    def test_directed_graph_rejected_for_tc(self):
        g = rmat(6, 4, seed=3, directed=True)
        with pytest.raises(ConfigError, match="undirected"):
            Session(g).run("tc")


class TestWrappers:
    def test_compute_lcc_signature_kept(self, graph):
        local = compute_lcc(graph)
        assert isinstance(local, np.ndarray)
        cfg = LCCConfig(nranks=4)
        dist = compute_lcc(graph, cfg)
        assert isinstance(dist, DistributedRunResult)
        assert np.allclose(dist.lcc, local)

    def test_count_triangles_signature_kept(self, graph):
        assert count_triangles(graph) == triangle_count_local(graph)
        cfg = LCCConfig(nranks=4)
        dist = count_triangles(graph, cfg)
        assert isinstance(dist, DistributedRunResult)
        assert dist.global_triangles == triangle_count_local(graph)

    def test_run_kernel_one_shot(self, graph):
        res = run_kernel("lcc", graph, LCCConfig(nranks=4))
        assert np.allclose(res.lcc, lcc_local(graph))


class TestWarmCache:
    def test_keep_cache_raises_hit_rate_and_speed(self, graph, cache_spec):
        cfg = LCCConfig(nranks=4, threads=4, cache=cache_spec)
        with Session(graph, cfg) as s:
            cold = s.run("lcc", keep_cache=True)
            warm = s.run("lcc", keep_cache=True)
            assert not cold.warm_cache
            assert warm.warm_cache
            assert (warm.adj_cache_stats["hit_rate"]
                    > cold.adj_cache_stats["hit_rate"])
            assert warm.time < cold.time
            # Warm queries keep producing correct, identical scores.
            assert np.array_equal(warm.lcc, cold.lcc)

    def test_default_is_cold_every_query(self, graph, cache_spec):
        cfg = LCCConfig(nranks=4, threads=4, cache=cache_spec)
        with Session(graph, cfg) as s:
            first = s.run("lcc")
            second = s.run("lcc")
            assert not second.warm_cache
            assert_identical(first.raw, second)

    def test_cache_spec_change_invalidates_warm_state(self, graph, cache_spec):
        cfg = LCCConfig(nranks=4, threads=4, cache=cache_spec)
        other = CacheSpec.paper_split(max(4096, graph.nbytes // 4), graph.n)
        with Session(graph, cfg) as s:
            s.run("lcc", keep_cache=True)
            switched = s.run("lcc", cache=other, keep_cache=True)
            assert not switched.warm_cache

    def test_warm_cache_matches_legacy_scores(self, graph, cache_spec):
        """Warm runs change timing, never results."""
        cfg = LCCConfig(nranks=4, threads=4, cache=cache_spec)
        legacy = run_distributed_lcc(graph, cfg)
        with Session(graph, cfg) as s:
            s.run("lcc", keep_cache=True)
            warm = s.run("lcc", keep_cache=True)
            assert np.array_equal(warm.lcc, legacy.lcc)
            assert warm.global_triangles == legacy.global_triangles


class TestSweep:
    def test_sweep_reuses_one_partitioned_graph(self, graph, cache_spec):
        """≥3 variants, one CSR split — the resident-cluster guarantee."""
        cfg = LCCConfig(nranks=4, threads=4)
        with Session(graph, cfg) as s:
            results = s.sweep({
                "plain": {},
                "cached": {"cache": cache_spec},
                "ssi": {"method": "ssi", "fast_path": False},
                "no-overlap": {"overlap": False},
            })
            assert s.partition_builds == 1
            assert set(results) == {"plain", "cached", "ssi", "no-overlap"}
            for res in results.values():
                assert np.allclose(res.lcc, lcc_local(graph))
            assert results["cached"].reused_cluster

    def test_sweep_mixes_kernels(self, graph):
        with Session(graph, LCCConfig(nranks=4)) as s:
            results = s.sweep({
                "async": {"kernel": "tc"},
                "tric": {"kernel": "tric"},
                "mapreduce": {"kernel": "mapreduce"},
            })
            counts = {r.global_triangles for r in results.values()}
            assert counts == {triangle_count_local(graph)}

    def test_nranks_change_rebuilds_cluster(self, graph):
        with Session(graph, LCCConfig(nranks=4, threads=4)) as s:
            s.run("lcc", fast_path=False)
            s.run("lcc", fast_path=False)
            assert s.partition_builds == 1
            s.run("lcc", nranks=8, fast_path=False)
            assert s.partition_builds == 2

    def test_run_kernel_variants_driver(self, graph, cache_spec):
        from repro.analysis.sweep import run_kernel_variants, series

        cells = run_kernel_variants(
            graph, [2, 4],
            {"lcc": {}, "lcc-cached": {"cache": cache_spec},
             "tric": {"kernel": "tric"}},
            config=LCCConfig(threads=4))
        assert len(cells) == 6
        pts = series(cells, "lcc")
        assert [p for p, _ in pts] == [2, 4]
        legacy = run_distributed_lcc(graph, LCCConfig(nranks=2, threads=4))
        assert pts[0][1] == legacy.time


class TestResultSurface:
    def test_summary_tagged_with_kernel(self, graph):
        res = run_kernel("tc", graph, LCCConfig(nranks=2))
        s = res.summary()
        assert s["kernel"] == "tc"
        assert "time" in s and "global_triangles" in s

    def test_summary_reports_both_compulsory_miss_rates(self, graph,
                                                        cache_spec):
        res = run_kernel("lcc", graph,
                         LCCConfig(nranks=4, cache=cache_spec))
        s = res.summary()
        assert "adj_compulsory_miss_rate" in s
        assert "offsets_compulsory_miss_rate" in s

    def test_unknown_attribute_raises(self, graph):
        res = run_kernel("lcc", graph, LCCConfig(nranks=2))
        with pytest.raises(AttributeError):
            res.does_not_exist
