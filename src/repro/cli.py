"""Command-line interface.

::

    python -m repro datasets                         # list stand-ins
    python -m repro kernels                          # list registered kernels
    python -m repro info livejournal                 # graph properties
    python -m repro lcc livejournal --nranks 16 --cache degree
    python -m repro tc --input edges.txt --nranks 8 --algorithm tric
    python -m repro run livejournal --kernel tric --nranks 16
    python -m repro lcc orkut --json                 # machine-readable
    python -m repro bench --json BENCH_kernels.json  # perf trajectory

Every algorithm execution goes through the kernel registry
(:mod:`repro.session`); ``run`` exposes any registered kernel by name,
while ``lcc``/``tc`` remain the task-oriented front ends.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.core.config import CacheSpec, LCCConfig
from repro.graph.datasets import dataset_names, load_dataset, DATASETS
from repro.graph.io import read_edge_list
from repro.graph.properties import degree_stats
from repro.session import get_kernel, kernel_names, run_kernel
from repro.utils.units import format_bytes, format_seconds


def _load_graph(args):
    if args.input:
        return read_edge_list(args.input, directed=args.directed)
    if not args.dataset:
        raise SystemExit("pass a dataset name or --input FILE")
    return load_dataset(args.dataset, scale=args.scale, seed=args.seed)


def _make_config(args) -> LCCConfig:
    cache = None
    if args.cache != "none":
        graph_hint = args._graph_nbytes
        budget = (args.cache_bytes if args.cache_bytes
                  else max(4096, 2 * graph_hint))
        cache = CacheSpec.paper_split(budget, args._graph_n, score=args.cache)
    return LCCConfig(
        nranks=args.nranks,
        threads=args.threads,
        method=args.method,
        partition=args.partition,
        overlap=not args.no_overlap,
        cache=cache,
    )


def _emit(args, payload: dict) -> None:
    if args.json:
        print(json.dumps(payload, indent=2, default=float))
        return
    for key, value in payload.items():
        if isinstance(value, float):
            print(f"{key:28s} {value:.6g}")
        else:
            print(f"{key:28s} {value}")


def cmd_datasets(args) -> int:
    for name in dataset_names():
        spec = DATASETS[name]
        print(f"{name:18s} {'D' if spec.directed else 'U'}  "
              f"paper |V|={spec.paper_vertices:>13,}  "
              f"|E|={spec.paper_edges:>14,}  {spec.description}")
    return 0


def cmd_info(args) -> int:
    g = _load_graph(args)
    stats = degree_stats(g)
    payload = {
        "name": g.name,
        "directed": g.directed,
        "vertices": g.n,
        "edges": g.m,
        "csr_bytes": g.nbytes,
        "csr_size": format_bytes(g.nbytes),
        **{f"degree_{k}": v for k, v in stats.items()},
    }
    _emit(args, payload)
    return 0


def cmd_kernels(args) -> int:
    for name in kernel_names():
        spec = get_kernel(name)
        traits = []
        if spec.resident:
            traits.append("resident")
        if spec.undirected_only:
            traits.append("undirected-only")
        if spec.square_grid_only:
            traits.append("square-grid")
        suffix = f"  [{', '.join(traits)}]" if traits else ""
        print(f"{name:12s} {spec.description}{suffix}")
    return 0


def cmd_lcc(args) -> int:
    g = _load_graph(args)
    args._graph_nbytes, args._graph_n = g.nbytes, g.n
    config = _make_config(args)
    result = run_kernel("lcc", g, config)
    payload = {
        "graph": g.name, "vertices": g.n, "edges": g.m,
        "nranks": args.nranks,
        "simulated_time_s": result.time,
        "simulated_time": format_seconds(result.time),
        "global_triangles": result.global_triangles,
        "mean_lcc": float(np.mean(result.lcc)),
        "max_lcc": float(np.max(result.lcc)) if g.n else 0.0,
        **{k: v for k, v in result.summary().items()
           if k in ("comm_time", "comp_time", "hit_rate", "remote_fraction",
                    "load_imbalance")},
    }
    if args.top:
        order = np.argsort(-result.lcc)[:args.top]
        payload["top_lcc_vertices"] = [
            {"vertex": int(v), "lcc": float(result.lcc[v])} for v in order]
    _emit(args, payload)
    if args.output:
        np.save(args.output, result.lcc)
        print(f"LCC scores written to {args.output}", file=sys.stderr)
    return 0


#: CLI algorithm names -> registered kernel names (kept for compatibility).
ALGORITHMS = {
    "async": "tc",
    "async-2d": "tc2d",
    "tric": "tric",
    "disttc": "disttc",
    "mapreduce": "mapreduce",
}


def cmd_tc(args) -> int:
    g = _load_graph(args)
    config = LCCConfig(nranks=args.nranks, threads=args.threads)
    result = run_kernel(ALGORITHMS[args.algorithm], g, config)
    payload = {
        "graph": g.name, "vertices": g.n, "edges": g.m,
        "algorithm": args.algorithm, "nranks": args.nranks,
        "triangles": result.global_triangles,
        "simulated_time_s": result.time,
        "simulated_time": format_seconds(result.time),
    }
    _emit(args, payload)
    return 0


def cmd_run(args) -> int:
    g = _load_graph(args)
    args._graph_nbytes, args._graph_n = g.nbytes, g.n
    config = _make_config(args)
    spec = get_kernel(args.kernel)
    if not spec.resident:
        ignored = [flag for flag, used in (
            ("--cache", args.cache != "none"),
            ("--cache-bytes", args.cache_bytes is not None),
            ("--method", args.method != "hybrid"),
            ("--partition", args.partition != "block"),
            ("--no-overlap", args.no_overlap),
            ("--threads", args.threads != 12),
        ) if used]
        if ignored:
            print(f"note: kernel {args.kernel!r} does not use "
                  f"{', '.join(ignored)}; it only takes --nranks "
                  "(and --buffer-capacity for tric)", file=sys.stderr)
    opts = {}
    if args.buffer_capacity is not None:
        opts["buffer_capacity"] = args.buffer_capacity
    result = run_kernel(args.kernel, g, config, **opts)
    payload = {
        "graph": g.name, "vertices": g.n, "edges": g.m,
        "kernel": args.kernel, "nranks": args.nranks,
        "triangles": result.global_triangles,
        "simulated_time_s": result.time,
        "simulated_time": format_seconds(result.time),
        **{k: v for k, v in result.summary().items()
           if k in ("comm_time", "comp_time", "hit_rate", "remote_fraction",
                    "load_imbalance")},
    }
    if result.lcc is not None:
        payload["mean_lcc"] = float(np.mean(result.lcc))
    if result.adj_cache_stats:
        payload["adj_hit_rate"] = result.adj_cache_stats["hit_rate"]
    if result.offsets_cache_stats:
        payload["offsets_hit_rate"] = result.offsets_cache_stats["hit_rate"]
    _emit(args, payload)
    return 0


def _load_baseline(path: str, kind: str | None = None) -> dict:
    """Read a ``--check`` baseline, failing with a one-line error.

    A missing or unparseable baseline is an operator mistake (wrong
    path, corrupt checkout), not a bug — surface it as a clean nonzero
    exit instead of a traceback.  ``kind`` additionally schema-checks
    the loaded report (:mod:`repro.analysis.schema`) in baseline mode —
    partial baselines stay accepted (the gates only read the sections
    they compare), but corrupt shapes and non-finite numbers fail here
    with one line instead of a ``KeyError`` inside the gate.
    """
    import json

    from repro.analysis.benchreport import load_report
    from repro.analysis.schema import validate_report

    try:
        report = load_report(path)
    except FileNotFoundError:
        raise SystemExit(
            f"--check baseline {path!r} does not exist; point it at a "
            "committed report (e.g. BENCH_shard.json)") from None
    except json.JSONDecodeError as exc:
        raise SystemExit(
            f"--check baseline {path!r} is not valid JSON ({exc}); "
            "restore it from version control") from None
    problems = validate_report(report, kind, strict=False)
    if problems:
        more = f" (+{len(problems) - 1} more)" if len(problems) > 1 else ""
        raise SystemExit(
            f"--check baseline {path!r} fails schema validation: "
            f"{problems[0]}{more}; restore it from version control")
    return report


def cmd_bench(args) -> int:
    from repro.analysis.benchreport import (
        DEFAULT_CHECK_TOLERANCE,
        append_trajectory,
        check_against_baseline,
        run_bench,
        write_report,
    )

    # Load the baseline up front: --json defaults to the committed baseline
    # path, so writing first would make --check compare the fresh report
    # against itself (and destroy the baseline before it was ever read).
    baseline = _load_baseline(args.check, "kernels") if args.check else None
    report = run_bench(quick=args.quick)
    write_report(report, args.json)
    for name, row in report["kernels"].items():
        hit = row["adj_hit_rate"]
        hit_s = f"  adj-hit {hit:.3f}" if hit is not None else ""
        print(f"{name:22s} wall {row['wall_clock_s']:8.3f}s  "
              f"simulated {row['simulated_time_s']:.6g}s{hit_s}")
    for name, row in report["cached_replay"].items():
        print(f"{name:22s} batched replay: cold {row['cold_speedup']:.1f}x, "
              f"warm {row['warm_speedup']:.1f}x vs loop  "
              f"(bit-identical: {row['bit_identical']})")
    for name, row in report.get("linalg", {}).items():
        print(f"{name:22s} algebraic replay: warm "
              f"{row['warm_speedup']:.1f}x vs loop on "
              f"{row['nranks']} ranks  "
              f"(bit-identical: {row['bit_identical']})")
    print(f"report written to {args.json}", file=sys.stderr)
    if baseline is not None:
        tolerance = (DEFAULT_CHECK_TOLERANCE if args.check_tolerance is None
                     else args.check_tolerance)
        problems = check_against_baseline(
            report, baseline, tolerance=tolerance)
        if problems:
            for problem in problems:
                print(f"bench check: {problem}", file=sys.stderr)
            print(f"bench check FAILED against baseline {args.check}",
                  file=sys.stderr)
            return 1
        print(f"bench check OK against baseline {args.check}",
              file=sys.stderr)
    # Record the trajectory row only for runs the gate accepted, so the
    # committed cross-PR history never accumulates rejected data points.
    trajectory = args.trajectory
    if trajectory is None:
        # Default: the trajectory lives next to the report it summarizes.
        import os

        trajectory = os.path.join(os.path.dirname(args.json) or ".",
                                  "BENCH_trajectory.json")
    if trajectory:
        traj_row = append_trajectory(report, trajectory)
        print(f"trajectory row ({traj_row['date']}) appended to {trajectory}",
              file=sys.stderr)
    return 0


#: One-off defaults of ``repro update``, shared between the argument
#: definitions and the ``--bench`` reject-customization guard so the two
#: cannot drift apart.
UPDATE_DEFAULTS = {"nranks": 8, "threads": 4, "edges": 16,
                   "delete_fraction": 0.25, "scale": 1.0, "seed": 0}


def cmd_update(args) -> int:
    from repro.analysis.dynamic import (
        check_dynamic_against_baseline,
        one_off_update_run,
        run_dynamic_bench,
        write_dynamic_report,
    )

    if args.bench:
        ignored = [flag for flag, is_default in (
            ("a dataset", args.dataset is None and args.input is None),
            ("--directed", not args.directed),
            ("--json", not args.json),
            *((f"--{name.replace('_', '-')}",
               getattr(args, name) == default)
              for name, default in UPDATE_DEFAULTS.items()),
        ) if not is_default]
        if ignored:
            # Same contract as serve --bench: the recorded benchmark is
            # pinned, so flags that would be silently ignored are errors.
            raise SystemExit(
                f"update --bench uses the pinned benchmark graphs/config; "
                f"{', '.join(ignored)} would be ignored — drop them (or run "
                "without --bench for a one-off configurable run)")
        baseline = _load_baseline(args.check, "dynamic") if args.check else None
        report = run_dynamic_bench(quick=args.quick)
        # With a baseline, the tolerance gate below owns the verdict (and
        # re-checks every correctness clause); the absolute gate would
        # fail a noisy runner with a traceback before it could run.
        write_dynamic_report(report, args.bench, gate=baseline is None)
        for gname, row in report["incremental"].items():
            print(f"{gname:12s} incremental {row['speedup']:6.1f}x vs full "
                  f"recompute  affected {row['n_affected']}/{row['n_vertices']}"
                  f"  (bit-identical: {row['bit_identical']})")
        for gname, row in report["invalidation"].items():
            print(f"{gname:12s} hit rate warm {row['warm_hit_rate']:.3f} -> "
                  f"post-update {row['post_update_hit_rate']:.3f} "
                  f"(cold {row['cold_hit_rate']:.3f})  "
                  f"retained warm hits {row['retained_warm_hits']}")
        srv = report["serving"]
        print(f"serving      {srv['n_updates']} updates in "
              f"{srv['n_requests']} requests  affinity/fifo "
              f"{srv['throughput_ratio']:.2f}x  "
              f"(answers identical: {srv['results_identical']})")
        print(f"dynamic report written to {args.bench}", file=sys.stderr)
        if baseline is not None:
            problems = check_dynamic_against_baseline(report, baseline)
            if problems:
                for problem in problems:
                    print(f"dynamic check: {problem}", file=sys.stderr)
                print(f"dynamic check FAILED against baseline {args.check}",
                      file=sys.stderr)
                return 1
            print(f"dynamic check OK against baseline {args.check}",
                  file=sys.stderr)
        return 0

    if args.check or args.quick:
        # A forgotten --bench must not look like a gate that passed.
        raise SystemExit(
            "--check/--quick only apply to the recorded benchmark; "
            "add --bench PATH (or drop them for a one-off run)")
    g = _load_graph(args)
    payload = one_off_update_run(
        g, nranks=args.nranks, threads=args.threads, n_edges=args.edges,
        delete_fraction=args.delete_fraction, seed=args.seed)
    _emit(args, payload)
    return 0


#: One-off defaults of ``repro store`` (same drift guard as ``update``).
STORE_DEFAULTS = {"nranks": 9, "threads": 4, "edges": 16,
                  "delete_fraction": 0.25, "scale": 1.0, "seed": 0}


def cmd_store(args) -> int:
    from repro.analysis.store import (
        check_store_against_baseline,
        one_off_store_run,
        run_store_bench,
        write_store_report,
    )

    if args.bench:
        ignored = [flag for flag, is_default in (
            ("a dataset", args.dataset is None and args.input is None),
            ("--directed", not args.directed),
            ("--json", not args.json),
            *((f"--{name.replace('_', '-')}",
               getattr(args, name) == default)
              for name, default in STORE_DEFAULTS.items()),
        ) if not is_default]
        if ignored:
            raise SystemExit(
                f"store --bench uses the pinned benchmark graphs/config; "
                f"{', '.join(ignored)} would be ignored — drop them (or run "
                "without --bench for a one-off configurable run)")
        baseline = _load_baseline(args.check, "store") if args.check else None
        report = run_store_bench(quick=args.quick)
        # With a baseline, the tolerance gate below owns the verdict (it
        # re-checks every correctness clause and the 2x warm floor).
        write_store_report(report, args.bench, gate=baseline is None)
        for gname, row in report["tc2d"].items():
            print(f"{gname:12s} resident tc2d {row['warm_speedup']:8.1f}x vs "
                  f"per-call rebuild  "
                  f"(bit-identical: {row['bit_identical']})")
        ver = report["versions"]
        print(f"versions     {ver['n_updates']} updates in "
              f"{ver['n_requests']} requests  answers identical: "
              f"{ver['results_identical']}  histories identical: "
              f"{ver['version_histories_identical']}")
        for sname, agg in ver["schedulers"].items():
            print(f"  {sname:9s} coalesced {agg['updates_coalesced']:3d}  "
                  f"rekeyed {agg['rekeyed_entries']:5d}  "
                  f"warm {agg['warm_fraction']:.2f}")
        dh = report["delete_heavy"]
        print(f"delete-heavy serving answers identical: "
              f"{dh['serving']['results_identical']}  "
              + "  ".join(f"{g}: -{row['edges_before'] - row['edges_after']} "
                          f"edges ok={row['bit_identical']}"
                          for g, row in dh.items() if g != "serving"))
        print(f"store report written to {args.bench}", file=sys.stderr)
        if baseline is not None:
            problems = check_store_against_baseline(report, baseline)
            if problems:
                for problem in problems:
                    print(f"store check: {problem}", file=sys.stderr)
                print(f"store check FAILED against baseline {args.check}",
                      file=sys.stderr)
                return 1
            print(f"store check OK against baseline {args.check}",
                  file=sys.stderr)
        return 0

    if args.check or args.quick:
        raise SystemExit(
            "--check/--quick only apply to the recorded benchmark; "
            "add --bench PATH (or drop them for a one-off run)")
    g = _load_graph(args)
    payload = one_off_store_run(
        g, nranks=args.nranks, threads=args.threads, n_edges=args.edges,
        delete_fraction=args.delete_fraction, seed=args.seed)
    _emit(args, payload)
    return 0


#: One-off defaults of ``repro shard`` (same drift guard as ``store``).
SHARD_DEFAULTS = {"nranks": 8, "nshards": 4, "replicas": 3, "edges": 16,
                  "delete_fraction": 0.25, "scale": 1.0, "seed": 0}


def cmd_shard(args) -> int:
    from repro.analysis.benchreport import append_trajectory_row
    from repro.analysis.shard import (
        check_shard_against_baseline,
        one_off_shard_run,
        run_shard_bench,
        shard_trajectory_row,
        write_shard_report,
    )

    if args.bench:
        ignored = [flag for flag, is_default in (
            ("a dataset", args.dataset is None and args.input is None),
            ("--directed", not args.directed),
            ("--json", not args.json),
            *((f"--{name.replace('_', '-')}",
               getattr(args, name) == default)
              for name, default in SHARD_DEFAULTS.items()),
        ) if not is_default]
        if ignored:
            raise SystemExit(
                f"shard --bench uses the pinned benchmark graphs/config; "
                f"{', '.join(ignored)} would be ignored — drop them (or run "
                "without --bench for a one-off configurable run)")
        baseline = _load_baseline(args.check, "shard") if args.check else None
        report = run_shard_bench(quick=args.quick)
        # With a baseline, the tolerance gate below owns the verdict (it
        # re-checks every correctness clause and the read-scaling floor).
        write_shard_report(report, args.bench, gate=baseline is None)
        for gname, row in report["bit_identity"].items():
            print(f"{gname:12s} sharded == unsharded: "
                  f"heads {row['heads_identical']}  "
                  f"kernels({row['kernels_checked']}) "
                  f"{row['kernels_identical']}  "
                  f"multi-shard commits {row['multi_shard_commits']}  "
                  f"vector ok {row['version_vector_ok']}")
        scaling = report["read_scaling"]
        print(f"reads        {scaling['read_scaling']:.2f}x throughput at "
              f"{scaling['replicas']} replicas "
              f"({scaling['throughput_1_qps']:.0f} -> "
              f"{scaling['throughput_n_qps']:.0f} q/s, answers identical: "
              f"{scaling['digests_identical']})")
        srv = report["updates"]["serving"]
        print(f"serving      {srv['n_updates']} updates "
              f"({srv['multi_shard_updates']} multi-shard) in "
              f"{srv['n_requests']} requests  schedulers identical: "
              f"{srv['results_identical']}  matches unsharded: "
              f"{srv['matches_unsharded_queries']}")
        for gname, row in report["updates"].items():
            if gname == "serving":
                continue
            print(f"{gname:12s} cross-shard commit "
                  f"{row['cross_to_single_latency']:.2f}x single-shard "
                  f"({row['cross_shards_touched_mean']:.1f} shards touched)")
        fo = report["failover"]
        print(f"failover     killed {fo['killed_replica']} at qid "
              f"{fo['kill_at_qid']}, rejoined at {fo['rejoin_at_qid']}: "
              f"digests identical {fo['digests_identical']}, "
              f"reseeds {fo['reseeds']}, converged "
              f"{fo['rejoined_converged']}")
        print(f"shard report written to {args.bench}", file=sys.stderr)
        if baseline is not None:
            problems = check_shard_against_baseline(report, baseline)
            if problems:
                for problem in problems:
                    print(f"shard check: {problem}", file=sys.stderr)
                print(f"shard check FAILED against baseline {args.check}",
                      file=sys.stderr)
                return 1
            print(f"shard check OK against baseline {args.check}",
                  file=sys.stderr)
        # Trajectory rows only for gate-accepted runs (same contract as
        # ``repro bench``): the committed history never accumulates
        # rejected data points.
        trajectory = args.trajectory
        if trajectory is None:
            import os

            trajectory = os.path.join(os.path.dirname(args.bench) or ".",
                                      "BENCH_trajectory.json")
        if trajectory:
            traj_row = append_trajectory_row(
                shard_trajectory_row(report), trajectory)
            print(f"trajectory row ({traj_row['date']}) appended to "
                  f"{trajectory}", file=sys.stderr)
        return 0

    if args.check or args.quick:
        raise SystemExit(
            "--check/--quick only apply to the recorded benchmark; "
            "add --bench PATH (or drop them for a one-off run)")
    g = _load_graph(args)
    payload = one_off_shard_run(
        g, nshards=args.nshards, nranks=args.nranks, replicas=args.replicas,
        n_edges=args.edges, delete_fraction=args.delete_fraction,
        seed=args.seed)
    _emit(args, payload)
    return 0


ASYNC_DEFAULTS = {"queries": 80, "rate": 2000.0, "tenants": 8,
                  "update_mix": 0.25, "workers": 6, "max_queue": 0,
                  "overflow": "defer", "arrival_mode": "poisson",
                  "catalog_scale": 0.3, "seed": 0}


def cmd_async_serve(args) -> int:
    from repro.analysis.async_serve import (
        async_trajectory_row,
        check_async_against_baseline,
        one_off_async_run,
        run_async_bench,
        write_async_report,
    )
    from repro.analysis.benchreport import append_trajectory_row

    if args.bench:
        ignored = [flag for flag, is_default in (
            ("--json", not args.json),
            *((f"--{name.replace('_', '-')}",
               getattr(args, name) == default)
              for name, default in ASYNC_DEFAULTS.items()),
        ) if not is_default]
        if ignored:
            raise SystemExit(
                f"async-serve --bench uses the pinned benchmark workloads; "
                f"{', '.join(ignored)} would be ignored — drop them (or run "
                "without --bench for a one-off configurable run)")
        baseline = _load_baseline(args.check, "async") if args.check else None
        report = run_async_bench(quick=args.quick)
        # With a baseline, the tolerance gate below owns the verdict (it
        # re-checks every correctness clause and both SLO gates).
        write_async_report(report, args.bench, gate=baseline is None)
        steady, burst = report["steady"], report["burst"]
        print(f"steady       p99 {steady['p99_async_s']:.4f}s async vs "
              f"{steady['p99_serial_s']:.4f}s serial "
              f"({steady['p99_ratio']:.2f}x)  answers identical: "
              f"{steady['results_identical']}")
        print(f"burst        throughput {burst['throughput_async_qps']:.0f} "
              f"vs {burst['throughput_serial_qps']:.0f} q/s "
              f"({burst['throughput_ratio']:.2f}x)  overlap "
              f"{burst['async']['overlap_fraction']:.2f}  answers "
              f"identical: {burst['results_identical']}")
        bp = report["backpressure"]
        print(f"backpressure defer identical {bp['defer_identical']}  "
              f"shed deterministic {bp['shed_deterministic']} "
              f"({bp['n_rejected']} rejected, absent from digests: "
              f"{bp['rejected_absent_from_digests']})")
        inter = report["interleavings"]
        print(f"interleaving {len(inter['seeds'])} seeds, all identical to "
              f"the serial oracle: {inter['all_identical']}")
        print(f"async report written to {args.bench}", file=sys.stderr)
        if baseline is not None:
            problems = check_async_against_baseline(report, baseline)
            if problems:
                for problem in problems:
                    print(f"async check: {problem}", file=sys.stderr)
                print(f"async check FAILED against baseline {args.check}",
                      file=sys.stderr)
                return 1
            print(f"async check OK against baseline {args.check}",
                  file=sys.stderr)
        # Trajectory rows only for gate-accepted runs (same contract as
        # ``repro bench``).
        trajectory = args.trajectory
        if trajectory is None:
            import os

            trajectory = os.path.join(os.path.dirname(args.bench) or ".",
                                      "BENCH_trajectory.json")
        if trajectory:
            traj_row = append_trajectory_row(
                async_trajectory_row(report), trajectory)
            print(f"trajectory row ({traj_row['date']}) appended to "
                  f"{trajectory}", file=sys.stderr)
        return 0

    if args.check or args.quick:
        raise SystemExit(
            "--check/--quick only apply to the recorded benchmark; "
            "add --bench PATH (or drop them for a one-off run)")
    payload = one_off_async_run(
        n_queries=args.queries, arrival_rate=args.rate,
        n_tenants=args.tenants, update_mix=args.update_mix,
        workers=args.workers, max_queue=args.max_queue,
        overflow=args.overflow, arrival_mode=args.arrival_mode,
        scale=args.catalog_scale, seed=args.seed)
    _emit(args, payload)
    return 0


def cmd_serve(args) -> int:
    from repro.analysis.serving import run_serving_bench, write_serve_report
    from repro.serve import (
        ServeConfig,
        ServingEngine,
        WorkloadSpec,
        default_catalog,
        generate_workload,
        make_scheduler,
    )
    from repro.serve.engine import answers_identical

    if args.bench:
        ignored = [flag for flag, is_default in (
            ("--queries", args.queries == 120),
            ("--rate", args.rate == 2000.0),
            ("--tenants", args.tenants == 12),
            ("--skew", args.skew == "zipf"),
            ("--scheduler", args.scheduler == "both"),
            ("--pool-capacity", args.pool_capacity == 3),
            ("--pool-policy", args.pool_policy == "lru"),
            ("--max-batch", args.max_batch == 16),
            ("--nranks", args.nranks == 8),
            ("--threads", args.threads == 4),
            ("--catalog-scale", args.catalog_scale == 0.5),
            ("--seed", args.seed == 0),
        ) if not is_default]
        if ignored:
            # The recorded benchmark is only comparable across PRs if its
            # workload/config are pinned; refuse to record a baseline the
            # flags suggest the user thinks they customized.
            raise SystemExit(
                f"serve --bench uses the pinned benchmark workload/config; "
                f"{', '.join(ignored)} would be ignored — drop them (or run "
                "without --bench for a one-off configurable run)")
        report = run_serving_bench(quick=args.quick)
        write_serve_report(report, args.bench)
        for wname, row in report["workloads"].items():
            for sname, agg in row["schedulers"].items():
                print(f"{wname:8s} {sname:9s} "
                      f"throughput {agg['throughput_qps']:9.1f} q/s  "
                      f"p95 latency {agg['latency_p95_s']:.4f}s  "
                      f"warm {agg['warm_fraction']:.2f}  "
                      f"builds {agg['session_builds']}")
            print(f"{wname:8s} affinity/fifo throughput "
                  f"{row['throughput_ratio']:.2f}x  "
                  f"(answers identical: {row['results_identical']})")
        print(f"serving report written to {args.bench}", file=sys.stderr)
        return 0

    catalog = default_catalog(scale=args.catalog_scale)
    spec = WorkloadSpec(n_queries=args.queries, arrival_rate=args.rate,
                        n_tenants=args.tenants, graphs=tuple(catalog),
                        seed=args.seed)
    if args.skew == "uniform":
        spec = spec.uniform()
    requests = generate_workload(spec)
    config = ServeConfig(nranks=args.nranks, threads=args.threads,
                         pool_capacity=args.pool_capacity,
                         pool_policy=args.pool_policy)
    names = (("fifo", "affinity") if args.scheduler == "both"
             else (args.scheduler,))
    outcomes = {}
    for name in names:
        opts = {"max_batch": args.max_batch} if name == "affinity" else {}
        engine = ServingEngine(catalog, config, make_scheduler(name, **opts))
        outcomes[name] = engine.serve(requests)
    payload = {
        "queries": spec.n_queries, "tenants": spec.n_tenants,
        "arrival_rate_qps": spec.arrival_rate, "skew": args.skew,
        "catalog": ",".join(catalog), "pool_capacity": config.pool_capacity,
        "pool_policy": config.pool_policy, "seed": spec.seed,
    }
    for name, outcome in outcomes.items():
        payload.update({f"{name}_{k}": v
                        for k, v in outcome.aggregates.items()})
    if len(outcomes) == 2:
        fifo, aff = outcomes["fifo"], outcomes["affinity"]
        payload["results_identical"] = answers_identical(fifo, aff)
        payload["throughput_ratio"] = (
            aff.aggregates["throughput_qps"]
            / fifo.aggregates["throughput_qps"])
    _emit(args, payload)
    return 0


TRACE_DEFAULTS = {"seed": None, "scheduler": "fifo",
                  "journal": None, "trace": None}


def cmd_trace(args) -> int:
    from repro.analysis.tracing import (
        DEFAULT_JOURNAL_PATH,
        DEFAULT_TRACE_PATH,
        TRACE_SEED,
        check_traced_run,
        format_check_report,
        one_off_trace_run,
    )

    seed = TRACE_SEED if args.seed is None else args.seed
    journal_path = args.journal or DEFAULT_JOURNAL_PATH
    trace_path = args.trace or DEFAULT_TRACE_PATH

    if args.check:
        ignored = [flag for flag, is_default in (
            ("--json", not args.json),
            ("--scheduler", args.scheduler == TRACE_DEFAULTS["scheduler"]),
        ) if not is_default]
        if ignored:
            raise SystemExit(
                f"trace --check runs the pinned gate workload; "
                f"{', '.join(ignored)} would be ignored — drop them (or "
                "run without --check for a one-off traced run)")
        report = check_traced_run(quick=args.quick, seed=seed)
        for line in format_check_report(report):
            print(line)
        # The gate's artifacts are what CI uploads: re-run the traced
        # workload once more, instrumented, to leave them on disk.
        one_off_trace_run(journal_path=journal_path, trace_path=trace_path,
                          quick=args.quick, seed=seed)
        print(f"journal written to {journal_path}", file=sys.stderr)
        print(f"chrome trace written to {trace_path}", file=sys.stderr)
        if not report["ok"]:
            for problem in report["problems"]:
                print(f"trace check: {problem}", file=sys.stderr)
            print("trace check FAILED", file=sys.stderr)
            return 1
        print("trace check OK", file=sys.stderr)
        return 0

    payload = one_off_trace_run(
        journal_path=journal_path, trace_path=trace_path,
        quick=args.quick, seed=seed, scheduler=args.scheduler)
    if args.json:
        print(json.dumps(payload, indent=2, default=float))
    else:
        replay = payload["replay"]
        util = payload["utilization"]
        print(f"{payload['n_requests']} requests traced "
              f"({payload['scheduler']} scheduler, seed {payload['seed']})")
        print(f"journal      {payload['n_events']} events  "
              f"digest {payload['journal_digest'][:12]}  "
              f"replay fence-legal: {replay['ok']} "
              f"({replay['n_dispatches']} dispatches, "
              f"{replay['n_commits']} commits)")
        print(f"spans        {payload['n_spans']} spans, "
              f"{len(payload['span_problems'])} problems")
        print(f"overall      mean concurrency "
              f"{util['overall']['mean_concurrency']:.2f}  overlap "
              f"{util['overall']['overlap_fraction']:.2f}  makespan "
              f"{util['makespan_s']:.4f}s")
        for key, row in util["domains"].items():
            print(f"{key:24s} {row['n_queries']:3d} queries "
                  f"{row['n_updates']:3d} updates  busy "
                  f"{row['busy_fraction']:.2f} of makespan  overlap "
                  f"{row['overlap_fraction']:.2f}")
    print(f"journal written to {payload['journal_path']}", file=sys.stderr)
    print(f"chrome trace written to {payload['trace_path']}",
          file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Asynchronous distributed TC/LCC with RMA caching "
                    "(IPDPS'22 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_graph_args(p):
        p.add_argument("dataset", nargs="?", default=None,
                       help="a registered dataset name")
        p.add_argument("--input", help="edge-list file instead of a dataset")
        p.add_argument("--directed", action="store_true",
                       help="treat --input as directed")
        p.add_argument("--scale", type=float, default=1.0)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--json", action="store_true")

    def add_cluster_args(p):
        p.add_argument("--nranks", type=int, default=8)
        p.add_argument("--threads", type=int, default=12)
        p.add_argument("--method", choices=["ssi", "binary", "hybrid"],
                       default="hybrid")
        p.add_argument("--partition", choices=["block", "cyclic"],
                       default="block")
        p.add_argument("--cache", choices=["none", "default", "degree", "lru"],
                       default="none", help="eviction-score policy, or none")
        p.add_argument("--cache-bytes", type=int, default=None,
                       help="total cache budget (default: 2x graph size)")
        p.add_argument("--no-overlap", action="store_true",
                       help="disable double buffering")

    p = sub.add_parser("datasets", help="list dataset stand-ins")
    p.set_defaults(fn=cmd_datasets)

    p = sub.add_parser("kernels", help="list registered kernels")
    p.set_defaults(fn=cmd_kernels)

    p = sub.add_parser("info", help="show graph properties")
    add_graph_args(p)
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("lcc", help="distributed LCC on the simulated cluster")
    add_graph_args(p)
    add_cluster_args(p)
    p.add_argument("--top", type=int, default=0,
                   help="print the top-K LCC vertices")
    p.add_argument("--output", help="write LCC scores to a .npy file")
    p.set_defaults(fn=cmd_lcc)

    p = sub.add_parser("tc", help="triangle counting (several algorithms)")
    add_graph_args(p)
    p.add_argument("--nranks", type=int, default=8)
    p.add_argument("--threads", type=int, default=12)
    p.add_argument("--algorithm", choices=sorted(ALGORITHMS),
                   default="async")
    p.set_defaults(fn=cmd_tc)

    p = sub.add_parser(
        "bench", help="benchmark registered kernels; write BENCH_kernels.json")
    p.add_argument("--quick", action="store_true",
                   help="small graphs (CI smoke run)")
    p.add_argument("--json", default="BENCH_kernels.json", metavar="PATH",
                   help="report output path (default: BENCH_kernels.json)")
    p.add_argument("--check", metavar="BASELINE", default=None,
                   help="regression gate: fail if the fresh run is not "
                        "bit-identical or its warm speedups drop below "
                        "tolerance x this committed baseline report")
    p.add_argument("--check-tolerance", type=float, default=None,
                   metavar="FRACTION",
                   help="fraction of the baseline's per-kernel worst warm "
                        "speedup the fresh run must retain (default: 0.25)")
    p.add_argument("--trajectory", default=None, metavar="PATH",
                   help="append a dated summary row to this perf-trajectory "
                        "file (default: BENCH_trajectory.json next to the "
                        "--json report)")
    p.add_argument("--no-trajectory", dest="trajectory",
                   action="store_const", const="",
                   help="do not record a trajectory row")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "update",
        help="dynamic-graph updates: incremental recompute + targeted "
             "cache invalidation")
    add_graph_args(p)
    p.add_argument("--nranks", type=int, default=UPDATE_DEFAULTS["nranks"])
    p.add_argument("--threads", type=int, default=UPDATE_DEFAULTS["threads"])
    p.add_argument("--edges", type=int, default=UPDATE_DEFAULTS["edges"],
                   help="edges per synthetic update batch")
    p.add_argument("--delete-fraction", type=float,
                   default=UPDATE_DEFAULTS["delete_fraction"],
                   help="fraction of the batch that deletes existing edges")
    p.add_argument("--bench", metavar="PATH", default=None,
                   help="record the dynamic-graph benchmark "
                        "(BENCH_dynamic.json) instead of a one-off run")
    p.add_argument("--quick", action="store_true",
                   help="small --bench sizes (CI smoke run)")
    p.add_argument("--check", metavar="BASELINE", default=None,
                   help="regression gate: fail if the fresh --bench run "
                        "loses bit-identity, retains no warm hits, or its "
                        "incremental speedup drops below tolerance x this "
                        "committed baseline")
    p.set_defaults(fn=cmd_update)

    p = sub.add_parser(
        "store",
        help="versioned graph store: resident 2D grids + update propagation")
    add_graph_args(p)
    p.add_argument("--nranks", type=int, default=STORE_DEFAULTS["nranks"])
    p.add_argument("--threads", type=int, default=STORE_DEFAULTS["threads"])
    p.add_argument("--edges", type=int, default=STORE_DEFAULTS["edges"],
                   help="edges per synthetic update batch")
    p.add_argument("--delete-fraction", type=float,
                   default=STORE_DEFAULTS["delete_fraction"],
                   help="fraction of the batch that deletes existing edges")
    p.add_argument("--bench", metavar="PATH", default=None,
                   help="record the graph-store benchmark "
                        "(BENCH_store.json) instead of a one-off run")
    p.add_argument("--quick", action="store_true",
                   help="small --bench sizes (CI smoke run)")
    p.add_argument("--check", metavar="BASELINE", default=None,
                   help="regression gate: fail if the fresh --bench run "
                        "loses bit-identity, scheduler/version "
                        "independence, the 2x warm-tc2d floor, or drops "
                        "below tolerance x this committed baseline")
    p.set_defaults(fn=cmd_store)

    p = sub.add_parser(
        "shard",
        help="sharded store: partition-aligned shards, consistent-hash "
             "routing, digest-verified read replicas")
    add_graph_args(p)
    p.add_argument("--nranks", type=int, default=SHARD_DEFAULTS["nranks"])
    p.add_argument("--nshards", type=int, default=SHARD_DEFAULTS["nshards"],
                   help="shards per graph (must evenly group --nranks)")
    p.add_argument("--replicas", type=int, default=SHARD_DEFAULTS["replicas"],
                   help="read replicas in the one-off convergence check")
    p.add_argument("--edges", type=int, default=SHARD_DEFAULTS["edges"],
                   help="edges per synthetic update batch")
    p.add_argument("--delete-fraction", type=float,
                   default=SHARD_DEFAULTS["delete_fraction"],
                   help="fraction of the batch that deletes existing edges")
    p.add_argument("--bench", metavar="PATH", default=None,
                   help="record the shardstore benchmark "
                        "(BENCH_shard.json) instead of a one-off run")
    p.add_argument("--quick", action="store_true",
                   help="small --bench sizes (CI smoke run)")
    p.add_argument("--check", metavar="BASELINE", default=None,
                   help="regression gate: fail if the fresh --bench run "
                        "loses sharded/unsharded bit-identity, the 1.5x "
                        "read-scaling floor, version-vector consistency, "
                        "or drops below tolerance x this committed baseline")
    p.add_argument("--trajectory", default=None, metavar="PATH",
                   help="append a dated summary row to this perf-trajectory "
                        "file (default: BENCH_trajectory.json next to the "
                        "--bench report)")
    p.add_argument("--no-trajectory", dest="trajectory",
                   action="store_const", const="",
                   help="do not record a trajectory row")
    p.set_defaults(fn=cmd_shard)

    p = sub.add_parser(
        "serve",
        help="multi-tenant query serving over a pool of resident sessions")
    p.add_argument("--queries", type=int, default=120,
                   help="number of queries in the synthetic workload")
    p.add_argument("--rate", type=float, default=2000.0,
                   help="aggregate Poisson arrival rate (simulated q/s)")
    p.add_argument("--tenants", type=int, default=12)
    p.add_argument("--skew", choices=["zipf", "uniform"], default="zipf",
                   help="tenant/graph popularity (zipf is the paper's regime)")
    p.add_argument("--scheduler", choices=["fifo", "affinity", "both"],
                   default="both")
    p.add_argument("--pool-capacity", type=int, default=3,
                   help="max resident sessions (contention knob)")
    p.add_argument("--pool-policy", choices=["lru", "lfu"], default="lru")
    p.add_argument("--max-batch", type=int, default=16,
                   help="affinity anti-starvation: max consecutive "
                        "same-session queries")
    p.add_argument("--nranks", type=int, default=8)
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--catalog-scale", type=float, default=0.5,
                   help="shrink/grow the serving graph catalog")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true")
    p.add_argument("--bench", metavar="PATH", default=None,
                   help="record the FIFO-vs-affinity serving benchmark "
                        "(BENCH_serve.json) instead of a one-off run")
    p.add_argument("--quick", action="store_true",
                   help="small --bench sizes (CI smoke run)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "async-serve",
        help="cooperative async serving: overlap, coalescing windows, "
             "backpressure — parity-proved against the serial engine")
    p.add_argument("--queries", type=int, default=ASYNC_DEFAULTS["queries"],
                   help="number of requests in the synthetic workload")
    p.add_argument("--rate", type=float, default=ASYNC_DEFAULTS["rate"],
                   help="aggregate arrival rate (simulated req/s)")
    p.add_argument("--tenants", type=int, default=ASYNC_DEFAULTS["tenants"])
    p.add_argument("--update-mix", type=float,
                   default=ASYNC_DEFAULTS["update_mix"],
                   help="fraction of requests that are graph updates")
    p.add_argument("--workers", type=int, default=ASYNC_DEFAULTS["workers"],
                   help="cooperative worker slots (overlap ceiling)")
    p.add_argument("--max-queue", type=int,
                   default=ASYNC_DEFAULTS["max_queue"],
                   help="admission bound on the run queue (0 = unbounded)")
    p.add_argument("--overflow", choices=["defer", "shed"],
                   default=ASYNC_DEFAULTS["overflow"],
                   help="full-queue policy: defer keeps arrival-order "
                        "latency accounting, shed rejects deterministically")
    p.add_argument("--arrival-mode", choices=["poisson", "bursty", "flash"],
                   default=ASYNC_DEFAULTS["arrival_mode"])
    p.add_argument("--catalog-scale", type=float,
                   default=ASYNC_DEFAULTS["catalog_scale"],
                   help="shrink/grow the serving graph catalog")
    p.add_argument("--seed", type=int, default=ASYNC_DEFAULTS["seed"])
    p.add_argument("--json", action="store_true")
    p.add_argument("--bench", metavar="PATH", default=None,
                   help="record the async-vs-serial benchmark "
                        "(BENCH_async.json) instead of a one-off run")
    p.add_argument("--quick", action="store_true",
                   help="small --bench sizes (CI smoke run)")
    p.add_argument("--check", metavar="BASELINE", default=None,
                   help="regression gate: fail if the fresh --bench run "
                        "loses answer bit-identity, the steady p99 "
                        "ceiling, the burst throughput floor, or drops "
                        "below tolerance x this committed baseline")
    p.add_argument("--trajectory", default=None, metavar="PATH",
                   help="append a dated summary row to this perf-trajectory "
                        "file (default: BENCH_trajectory.json next to the "
                        "--bench report)")
    p.add_argument("--no-trajectory", dest="trajectory",
                   action="store_const", const="",
                   help="do not record a trajectory row")
    p.set_defaults(fn=cmd_async_serve)

    p = sub.add_parser(
        "trace",
        help="traced cooperative serving: decision journal + Chrome "
             "trace + replay-verified fences")
    p.add_argument("--quick", action="store_true",
                   help="small workload (CI smoke run)")
    p.add_argument("--seed", type=int, default=TRACE_DEFAULTS["seed"],
                   help="workload seed (default: the pinned trace seed)")
    p.add_argument("--scheduler", choices=["fifo", "affinity", "interleave"],
                   default=TRACE_DEFAULTS["scheduler"],
                   help="dispatch policy for the one-off traced run")
    p.add_argument("--journal", metavar="PATH",
                   default=TRACE_DEFAULTS["journal"],
                   help="decision-journal output "
                        "(default: TRACE_journal.jsonl)")
    p.add_argument("--trace", metavar="PATH",
                   default=TRACE_DEFAULTS["trace"],
                   help="Chrome trace_event output "
                        "(default: TRACE_events.json)")
    p.add_argument("--json", action="store_true")
    p.add_argument("--check", action="store_true",
                   help="observability gate: traced/untraced parity, "
                        "deterministic journal, fence-legal replay, "
                        "well-formed spans, <=5%% overhead, and schema-"
                        "valid committed BENCH_*.json artifacts")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("run", help="run any registered kernel by name")
    add_graph_args(p)
    add_cluster_args(p)
    p.add_argument("--kernel", choices=kernel_names(), default="lcc",
                   help="a kernel from the registry (see 'repro kernels')")
    p.add_argument("--buffer-capacity", type=int, default=None,
                   help="TriC-Buffered per-destination cap in bytes")
    p.set_defaults(fn=cmd_run)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
