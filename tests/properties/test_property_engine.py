"""Property-based tests for the discrete-event engine.

Random communication programs are generated and executed; the engine must
deliver every message exactly once, in FIFO order per channel, with
monotone clocks, regardless of the schedule.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.engine import Engine


@st.composite
def message_patterns(draw):
    """A random bipartite send plan: sender rank 0 -> receivers 1..p-1."""
    nranks = draw(st.integers(min_value=2, max_value=5))
    n_msgs = draw(st.integers(min_value=0, max_value=30))
    dests = draw(st.lists(st.integers(min_value=1, max_value=nranks - 1),
                          min_size=n_msgs, max_size=n_msgs))
    sizes = draw(st.lists(st.integers(min_value=1, max_value=1 << 16),
                          min_size=n_msgs, max_size=n_msgs))
    return nranks, dests, sizes


@given(message_patterns())
@settings(max_examples=80, deadline=None)
def test_every_message_delivered_in_order(pattern):
    nranks, dests, sizes = pattern
    expected = {r: [i for i, d in enumerate(dests) if d == r]
                for r in range(1, nranks)}

    def fn(ctx):
        if ctx.rank == 0:
            for i, (d, s) in enumerate(zip(dests, sizes)):
                yield ctx.send(d, i, s)
            return None
        got = []
        for _ in expected[ctx.rank]:
            got.append((yield ctx.recv(0)))
        return got

    eng = Engine(nranks)
    out = eng.run(fn)
    for r in range(1, nranks):
        assert out.results[r] == expected[r]
    # Clock sanity: everyone finished at a non-negative time; the sender
    # accumulated injection overhead for every message.
    assert all(c >= 0 for c in out.clocks)
    if dests:
        assert out.traces[0].n_sends == len(dests)
        assert sum(t.n_recvs for t in out.traces) == len(dests)


@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=1, max_value=8),
       st.lists(st.floats(min_value=0, max_value=1e-3,
                          allow_nan=False), min_size=6, max_size=6))
@settings(max_examples=60, deadline=None)
def test_barriers_always_align_clocks(nranks, n_barriers, workloads):
    def fn(ctx):
        for b in range(n_barriers):
            ctx.compute(workloads[(ctx.rank + b) % len(workloads)])
            yield ctx.barrier()
        return ctx.now

    out = Engine(nranks).run(fn)
    assert len(set(out.results)) == 1
    assert out.results[0] >= max(workloads[:nranks] or [0])


@given(st.integers(min_value=2, max_value=5),
       st.integers(min_value=1, max_value=5))
@settings(max_examples=40, deadline=None)
def test_alltoallv_permutation_identity(nranks, rounds):
    # After an exchange, rank r holds exactly what each source addressed
    # to it; a second exchange sending data back must restore the originals.
    def fn(ctx):
        data = [f"{ctx.rank}:{d}" for d in range(nranks)]
        for _ in range(rounds):
            received = yield ctx.alltoallv(data, [8] * nranks)
            # Send everything back where it came from.
            back = [received[src] for src in range(nranks)]
            returned = yield ctx.alltoallv(back, [8] * nranks)
            data = returned
        return data

    out = Engine(nranks).run(fn)
    for r, data in enumerate(out.results):
        assert data == [f"{r}:{d}" for d in range(nranks)]
