#!/usr/bin/env python
"""Quickstart: count triangles and compute LCC, locally and distributed.

Runs in a few seconds::

    python examples/quickstart.py
"""

import numpy as np

from repro.core import CacheSpec, LCCConfig, compute_lcc, count_triangles
from repro.graph import load_dataset


def main() -> None:
    # A scaled-down stand-in for SNAP-LiveJournal (power-law social graph).
    graph = load_dataset("livejournal", scale=0.25)
    print(f"graph: {graph.name}  |V|={graph.n:,}  |E|={graph.m:,}  "
          f"CSR={graph.nbytes / 1024:.0f} KiB")

    # --- single node ------------------------------------------------------
    triangles = count_triangles(graph)
    scores = compute_lcc(graph)
    print(f"\nlocal: {triangles:,} triangles, "
          f"mean LCC {scores.mean():.4f}, max LCC {scores.max():.4f}")

    # --- simulated 8-node cluster, no caching ------------------------------
    cfg = LCCConfig(nranks=8, threads=12)
    plain = compute_lcc(graph, cfg)
    print(f"\n8 ranks, non-cached: {plain.time * 1e3:.1f} ms simulated "
          f"({plain.outcome.summary()['remote_fraction']:.0%} of reads remote)")

    # --- same cluster with the paper's CLaMPI caches ------------------------
    cached_cfg = cfg.replace(
        cache=CacheSpec.paper_split(2 * graph.nbytes, graph.n,
                                    score="degree"))
    cached = compute_lcc(graph, cached_cfg)
    print(f"8 ranks, cached:     {cached.time * 1e3:.1f} ms simulated "
          f"(C_adj hit rate {cached.adj_cache_stats['hit_rate']:.0%}) "
          f"-> {(1 - cached.time / plain.time):.0%} faster")

    # Results are identical regardless of caching or distribution.
    assert np.allclose(plain.lcc, scores)
    assert np.array_equal(plain.lcc, cached.lcc)
    assert plain.global_triangles == triangles
    print("\ndistributed == cached == local results: OK")


if __name__ == "__main__":
    main()
