"""Serving the algebraic kernels: resident panels under the pool.

``tc2d_spgemm`` and ``lcc2d`` are resident kernels, so serving engines
can route workloads at them directly.  The fencing story is unchanged —
both are pure reads over the resident grid — and answers must be
scheduler-independent exactly as for the 1D kernels.
"""

import pytest

from repro.serve.engine import ServeConfig, ServingEngine, answers_identical
from repro.serve.records import result_digest
from repro.serve.scheduler import CacheAffinityScheduler, FIFOScheduler
from repro.serve.workload import WorkloadSpec, default_catalog, generate_workload
from repro.session import run_kernel


@pytest.fixture(scope="module")
def catalog():
    return default_catalog(scale=0.2)


@pytest.fixture(scope="module")
def requests(catalog):
    # nranks=4 below is a square 2x2 grid, so the SUMMA kernels serve.
    return generate_workload(
        WorkloadSpec(n_queries=24, arrival_rate=2000.0, n_tenants=4,
                     graphs=tuple(catalog),
                     kernels=("tc2d_spgemm", "lcc2d"), seed=3))


@pytest.fixture(scope="module")
def config():
    return ServeConfig(nranks=4, threads=2, pool_capacity=2)


def test_workload_accepts_algebraic_kernels(requests):
    assert {r.kernel for r in requests} == {"tc2d_spgemm", "lcc2d"}


def test_served_answers_match_direct_runs(catalog, requests, config):
    outcome = ServingEngine(catalog, config, FIFOScheduler()).serve(requests)
    for record in outcome.records:
        req = next(r for r in requests if r.qid == record.qid)
        graph = catalog[req.graph]
        direct = run_kernel(req.kernel, graph,
                            config.session_config(graph, {}))
        assert record.digest == result_digest(direct.raw, record.version)


def test_scheduler_independent_answers(catalog, requests, config):
    fifo = ServingEngine(catalog, config, FIFOScheduler()).serve(requests)
    affinity = ServingEngine(catalog, config,
                             CacheAffinityScheduler()).serve(requests)
    assert answers_identical(fifo, affinity)


def test_mixed_with_edge_centric_kernels(catalog, config):
    requests = generate_workload(
        WorkloadSpec(n_queries=24, arrival_rate=2000.0, n_tenants=4,
                     graphs=tuple(catalog),
                     kernels=("lcc", "tc2d", "tc2d_spgemm", "lcc2d"),
                     seed=9))
    outcome = ServingEngine(catalog, config, FIFOScheduler()).serve(requests)
    assert len(outcome.records) == len(requests)
