"""Property tests: sustained deletion-heavy shrinkage stays exact.

The insert-dominated property suite (test_property_dynamic.py) covers
single mixed batches; this one stresses the regime the bench's
``delete_mix`` scenario models: round after round of batches that are
mostly deletes, shrinking the graph until degrees collapse below the
min-degree-2 preprocessing threshold (vertices that can no longer be in
any triangle), with the incremental fold pinned bit-identical to a full
recompute at *every* round — not just at the end.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.local import triangles_min_vertex, triangles_per_vertex_batched
from repro.dynamic import IncrementalState, UpdateBatch, apply_delta
from repro.graph.csr import CSRGraph, remove_low_degree_vertices


@st.composite
def shrinkage_cases(draw):
    """A random graph plus a schedule of delete-dominated batches."""
    n = draw(st.integers(min_value=4, max_value=36))
    m = draw(st.integers(min_value=8, max_value=140))
    rounds = draw(st.integers(min_value=2, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    graph = CSRGraph.from_edges(rng.integers(0, n, size=(m, 2)), n)
    return graph, rounds, rng


def delete_heavy_batch(graph, rng, delete_fraction=0.8, size=12):
    """A batch that is >= 75% deletes of existing edges (plus a trickle
    of random inserts, as real churn has)."""
    n_del = max(1, int(round(size * delete_fraction)))
    n_ins = size - n_del
    edges = graph.edges()
    edges = edges[edges[:, 0] < edges[:, 1]]
    deletes = np.empty((0, 2), dtype=np.int64)
    if edges.shape[0]:
        idx = rng.choice(edges.shape[0], size=min(n_del, edges.shape[0]),
                         replace=False)
        deletes = edges[np.sort(idx)]
    inserts = (rng.integers(0, graph.n, size=(n_ins, 2))
               if n_ins else np.empty((0, 2), dtype=np.int64))
    if inserts.size and deletes.size:
        ik = (np.minimum(inserts[:, 0], inserts[:, 1]) * graph.n
              + np.maximum(inserts[:, 0], inserts[:, 1]))
        dk = deletes[:, 0] * graph.n + deletes[:, 1]
        deletes = deletes[~np.isin(dk, ik)]
    return UpdateBatch.build(inserts, deletes, n=graph.n)


@given(shrinkage_cases())
@settings(max_examples=40, deadline=None)
def test_incremental_equals_full_under_sustained_shrinkage(case):
    graph, rounds, rng = case
    state = IncrementalState.from_graph(graph)
    for _ in range(rounds):
        batch = delete_heavy_batch(state.graph, rng)
        state.apply(batch)
        np.testing.assert_array_equal(
            state.tpv, triangles_per_vertex_batched(state.graph))
        np.testing.assert_array_equal(
            state.tmin, triangles_min_vertex(state.graph))
    state.verify()


@given(shrinkage_cases())
@settings(max_examples=40, deadline=None)
def test_delta_chain_equals_rebuild_under_shrinkage(case):
    """Chained delete-heavy apply_delta == from-scratch rebuild."""
    graph, rounds, rng = case
    current = graph
    for _ in range(rounds):
        batch = delete_heavy_batch(current, rng)
        res = apply_delta(current, batch, strict=False)
        res.graph.check_invariants()
        res.graph.check_symmetric()
        kept = set(map(tuple, current.edges()))
        ins = {(int(u), int(v)) for u, v in batch.insert_edges()}
        dels = {(int(u), int(v)) for u, v in batch.delete_edges()}
        expect = (kept | ins | {(v, u) for u, v in ins}) \
            - dels - {(v, u) for u, v in dels}
        assert set(map(tuple, res.graph.edges())) == expect
        current = res.graph


@given(shrinkage_cases())
@settings(max_examples=25, deadline=None)
def test_degree_collapse_below_min_degree_preprocessing(case):
    """Deleting every edge of some vertices must collapse them below the
    min-degree-2 preprocessing threshold without breaking the fold."""
    graph, _, rng = case
    degs = graph.degrees()
    victims = np.flatnonzero(degs > 0)[:3]
    if victims.size == 0:
        return
    rows = []
    for v in victims:
        for u in graph.adj(int(v)):
            rows.append((int(v), int(u)))
    batch = UpdateBatch.build(None, np.array(rows, dtype=np.int64),
                              n=graph.n)
    state = IncrementalState.from_graph(graph)
    state.apply(batch)
    assert (state.graph.degrees()[victims] == 0).all()
    np.testing.assert_array_equal(
        state.tpv, triangles_per_vertex_batched(state.graph))
    # The preprocessing pass still composes with the shrunken graph.
    pruned = remove_low_degree_vertices(state.graph, min_degree=2)
    assert pruned.n <= state.graph.n
