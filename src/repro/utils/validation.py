"""Small argument-validation helpers used across the library.

They raise :class:`repro.utils.errors.ConfigError` with a uniform message
format, keeping validation one-liners at public API boundaries.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.utils.errors import ConfigError


def require_positive(name: str, value: float) -> float:
    """Validate ``value > 0``."""
    if not value > 0:
        raise ConfigError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(name: str, value: float) -> float:
    """Validate ``value >= 0``."""
    if value < 0:
        raise ConfigError(f"{name} must be >= 0, got {value!r}")
    return value


def require_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Validate ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ConfigError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value


def require_power_of_two(name: str, value: int) -> int:
    """Validate that ``value`` is a positive power of two.

    The paper assumes the number of processes is a power of two (§II-A);
    we enforce it only where the paper's partitioning arithmetic needs it.
    """
    if value <= 0 or (value & (value - 1)) != 0:
        raise ConfigError(f"{name} must be a positive power of two, got {value!r}")
    return value


def require_type(name: str, value: Any, typ: type) -> Any:
    """Validate ``isinstance(value, typ)``."""
    if not isinstance(value, typ):
        raise ConfigError(
            f"{name} must be {typ.__name__}, got {type(value).__name__}"
        )
    return value


def as_int_array(name: str, values: Any, dtype: np.dtype | type = np.int64) -> np.ndarray:
    """Coerce to a 1-D integer ndarray, rejecting floats with fractional part."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ConfigError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.dtype.kind == "f":
        if not np.all(arr == np.floor(arr)):
            raise ConfigError(f"{name} must contain integers")
        arr = arr.astype(dtype)
    elif arr.dtype.kind not in ("i", "u"):
        raise ConfigError(f"{name} must be integer-typed, got {arr.dtype}")
    return np.ascontiguousarray(arr, dtype=dtype)
