"""Smoke tests: the example scripts run end-to-end.

Each example is executed in-process (``runpy``) with stdout captured; we
assert on the domain output so a silent breakage cannot pass.
"""

import runpy
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv: list[str] | None = None) -> None:
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "triangles" in out
    assert "distributed == cached == local results: OK" in out


def test_social_network_analysis(capsys):
    run_example("social_network_analysis.py")
    out = capsys.readouterr().out
    assert "community core" in out
    assert "top-degree vertices" in out


def test_scaling_study_custom_args(capsys):
    run_example("scaling_study.py", ["skitter", "--nodes", "4", "16",
                                     "--scale", "0.3"])
    out = capsys.readouterr().out
    assert "speedup 4 -> 16" in out
    assert "tric" in out


def test_link_recommendation(capsys):
    run_example("link_recommendation.py")
    out = capsys.readouterr().out
    assert "recommendations for vertex" in out
    assert "shared friends" in out


def test_session_queries(capsys):
    run_example("session_queries.py")
    out = capsys.readouterr().out
    assert "per-vertex triangle queries" in out
    assert "1 partitioning" in out


def test_cache_tuning(capsys):
    run_example("cache_tuning.py")
    out = capsys.readouterr().out
    assert "no cache:" in out
    assert "runs amortized one partitioning" in out


def test_serving(capsys):
    run_example("serving.py")
    out = capsys.readouterr().out
    assert "cache-affinity scheduling" in out
    assert "answers identical: True" in out


def test_dynamic_graph(capsys):
    run_example("dynamic_graph.py")
    out = capsys.readouterr().out
    assert "mode = transparent" in out
    assert "all epochs correct: True" in out


def test_dynamic_updates(capsys):
    run_example("dynamic_updates.py")
    out = capsys.readouterr().out
    assert "incremental fold exact: True" in out
    assert "retained" in out
    assert "incremental state recomputed" in out


def test_graph_versions(capsys):
    run_example("graph_versions.py")
    out = capsys.readouterr().out
    assert "@v3" in out
    assert "rekeyed" in out
    assert "blocks" in out
    assert "replica replay: digests agree" in out
