"""Observability must never perturb the simulation: traced == untraced."""

import pytest

from repro.obs import Observation
from repro.obs.trace import active_tracer, check_spans
from repro.serve.engine import (
    AsyncServeConfig,
    AsyncServingEngine,
    answers_identical,
)
from repro.serve.scheduler import FIFOScheduler, InterleaveScheduler
from repro.serve.workload import WorkloadSpec, default_catalog, generate_workload
from repro.shardstore import ShardedGraphStore, annotate_shard_sets


@pytest.fixture(scope="module")
def catalog():
    return default_catalog(scale=0.2)


@pytest.fixture(scope="module")
def requests(catalog):
    return generate_workload(
        WorkloadSpec(n_queries=32, arrival_rate=2500.0, n_tenants=6,
                     graphs=tuple(catalog), kernels=("lcc", "tc"),
                     seed=13, update_mix=0.3), catalog)


def _config():
    return AsyncServeConfig(nranks=4, threads=2, pool_capacity=3, workers=4)


def _serve(catalog, requests, observation=None, scheduler=None,
           store_factory=None):
    return AsyncServingEngine(
        catalog, _config(), scheduler=scheduler or FIFOScheduler(),
        store_factory=store_factory, observation=observation
    ).serve(requests)


def test_traced_run_bit_identical_to_untraced(catalog, requests):
    plain = _serve(catalog, requests)
    obs = Observation.enabled()
    traced = _serve(catalog, requests, observation=obs)
    assert answers_identical(plain, traced)
    assert plain.digests() == traced.digests()
    assert plain.metrics == traced.metrics
    assert len(obs.tracer.spans) > 0
    assert len(obs.journal) > 0


def test_traced_parity_under_interleavings(catalog, requests):
    for seed in (1, 4):
        plain = _serve(catalog, requests,
                       scheduler=InterleaveScheduler(seed))
        obs = Observation.enabled()
        traced = _serve(catalog, requests, observation=obs,
                        scheduler=InterleaveScheduler(seed))
        assert answers_identical(plain, traced)


def test_traced_parity_over_sharded_store(catalog, requests):
    def sharded(c):
        return ShardedGraphStore(c, nshards=4, nranks=4)

    annotated = annotate_shard_sets(requests, sharded(catalog))
    plain = _serve(catalog, annotated, store_factory=sharded)
    obs = Observation.enabled()
    traced = _serve(catalog, annotated, observation=obs,
                    store_factory=sharded)
    assert answers_identical(plain, traced)
    names = {s.name for s in obs.tracer.spans}
    # The sharded path contributes its own taxonomy entries.
    assert "barrier" in names
    assert check_spans(obs.tracer.spans) == []


def test_span_tree_well_formed_and_taxonomy(catalog, requests):
    obs = Observation.enabled()
    _serve(catalog, requests, observation=obs)
    assert check_spans(obs.tracer.spans) == []
    names = {s.name for s in obs.tracer.spans}
    for expected in ("run", "hold", "commit", "acquire", "resync"):
        assert expected in names, expected


def test_tracer_deactivated_after_serve(catalog, requests):
    obs = Observation.enabled()
    _serve(catalog, requests, observation=obs)
    # The engine's activation is scoped to serve(); nothing leaks.
    assert active_tracer() is None


def test_outcome_metrics_registry_backed(catalog, requests):
    outcome = _serve(catalog, requests)
    assert outcome.decisions == outcome.metrics["engine.decisions"]
    assert outcome.queue_steps == outcome.metrics["engine.queue_steps"]
    assert outcome.metrics["engine.admitted"] == len(requests)
    held = outcome.metrics["engine.window_held_s"]
    assert held["count"] == outcome.metrics["engine.commits"]
