"""Resident clusters: partitioned, cached views of one stored graph.

A *resident cluster* is a simulated cluster (engine + partitioned data +
CLaMPI caches) kept alive across queries.  :class:`~repro.session.Session`
used to hard-code exactly one — the 1D block/cyclic partition the paper's
LCC/TC kernels run on — which left the 2D grid path rebuilding its world
on every call.  This module extracts the contract both share:

* :meth:`ResidentCluster.acquire` — build lazily on first use, reuse
  while the cluster-shaping knobs are unchanged, reset per-query clocks
  and traces, optionally keep cache *contents* warm;
* :meth:`ResidentCluster.resync` — fold a committed
  :class:`~repro.dynamic.delta.DeltaResult` into the resident state by
  rebuilding only the touched slices and surgically invalidating (or
  rekeying) exactly the cache entries the update made stale;
* :meth:`ResidentCluster.close` — tear down (idempotent).

:class:`Cluster1D` is the extracted 1D implementation;
:class:`~repro.graphstore.grid2d.GridCluster2D` is the 2D analogue that
lets ``tc2d`` stop re-splitting edges per call.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Optional

from repro.clampi.stats import CacheStats
from repro.core.config import CacheSpec, LCCConfig
from repro.core.lcc import attach_caches, make_partition
from repro.dynamic.delta import DeltaResult
from repro.dynamic.invalidate import resync_distributed
from repro.graph.csr import CSRGraph
from repro.graph.distributed import DistributedCSR
from repro.runtime.engine import Engine
from repro.runtime.trace import RankTrace

__all__ = ["Cluster1D", "ClusterResync", "ResidentCluster"]


@dataclass
class ClusterResync:
    """What folding one delta into one resident cluster did.

    ``touched`` names the rebuilt units — rank ids for the 1D partition,
    ``(row, col)`` grid coordinates for the 2D one.  ``time`` is the
    simulated cost: slice rebuild priced at the cluster's memory model
    plus the caches' own invalidation/rekey management time, max over
    ranks like any job.
    """

    kind: str
    touched: tuple = ()
    rebuilt_bytes: int = 0
    invalidated_offsets_entries: int = 0
    invalidated_adj_entries: int = 0
    invalidated_bytes: int = 0
    rekeyed_entries: int = 0
    rekeyed_bytes: int = 0
    retained_entries: int = 0
    time: float = 0.0

    @property
    def invalidated_entries(self) -> int:
        return self.invalidated_offsets_entries + self.invalidated_adj_entries


class ResidentCluster(abc.ABC):
    """The contract every resident cluster implementation satisfies."""

    #: Registry name ("1d", "2d", ...) — also the tag on resync outcomes.
    kind: str = "?"

    #: The graph the resident state currently reflects (None until built).
    graph: Optional[CSRGraph] = None

    @property
    @abc.abstractmethod
    def resident(self) -> bool:
        """Is there live cluster state to reuse (or to resync)?"""

    @abc.abstractmethod
    def resync(self, result: DeltaResult, *, rekey: bool = True
               ) -> ClusterResync:
        """Fold a committed delta into the resident state, surgically."""

    @abc.abstractmethod
    def close(self) -> None:
        """Tear down the resident state (idempotent)."""


class Cluster1D(ResidentCluster):
    """The paper's 1D-partitioned resident cluster (engine + CSR + caches).

    Extracted verbatim from the pre-GraphStore ``Session`` internals:
    the engine and partitioned CSR are built lazily on the first acquire
    and reused while the cluster-shaping knobs (``nranks``, ``partition``
    and the network/memory/compute models) stay unchanged;
    ``partition_builds`` counts how often the CSR was split, which sweeps
    assert stays at 1.
    """

    kind = "1d"

    def __init__(self) -> None:
        self.graph: Optional[CSRGraph] = None
        self.partition_builds = 0
        self.last_reused = False
        self.last_warm = False
        self._engine: Optional[Engine] = None
        self._dist: Optional[DistributedCSR] = None
        self._cluster_key: Any = None
        self._off_caches: list = []
        self._adj_caches: list = []
        self._cache_spec: Optional[CacheSpec] = None

    @property
    def resident(self) -> bool:
        return self._engine is not None

    @property
    def caches(self) -> list:
        return self._off_caches + self._adj_caches

    # -- acquisition ---------------------------------------------------------
    def acquire(self, graph: CSRGraph, config: LCCConfig,
                keep_cache: bool = False, need_epochs: bool = True
                ) -> tuple[Engine, DistributedCSR, list, list]:
        """Build or reuse the engine + partitioned CSR for ``config``.

        Returns ``(engine, dist, offsets_caches, adj_caches)``.  Per-rank
        clocks and traces are always reset so every query starts cold
        (simulated times match a standalone run), while the CSR split —
        and, with ``keep_cache=True``, the CLaMPI cache contents — are
        reused while the cluster shape is unchanged.  Epochs are
        (re)opened unless ``need_epochs=False``.
        """
        key = (config.nranks, config.partition, config.network,
               config.memory, config.compute, config.record_ops)
        rebuilt = self._engine is None or key != self._cluster_key
        if rebuilt:
            if self._dist is not None:
                self._dist.close_epochs()
            self._drop_caches()
            engine = Engine(config.nranks, network=config.network,
                            memory=config.memory, compute=config.compute,
                            record_ops=config.record_ops)
            self._dist = DistributedCSR(
                graph, make_partition(config, graph.n), engine)
            self._engine = engine
            self._cluster_key = key
            self.graph = graph
            self.partition_builds += 1
        engine, dist = self._engine, self._dist
        for ctx in engine.contexts:
            ctx.now = 0.0
            ctx.trace = RankTrace(rank=ctx.rank, record_ops=config.record_ops)
        if need_epochs:
            # execute_lcc/execute_tc close epochs after each query.
            for rank in range(engine.nranks):
                for win in (dist.w_offsets, dist.w_adj):
                    if not win.epoch_open(rank):
                        win.lock_all(rank)
        self._configure_caches(config, keep_cache, rebuilt)
        self.last_reused = not rebuilt
        return engine, dist, self._off_caches, self._adj_caches

    def _configure_caches(self, config: LCCConfig, keep_cache: bool,
                          rebuilt: bool) -> None:
        spec = config.cache
        if spec is None:
            self._drop_caches()
            return
        warm = (keep_cache and not rebuilt and spec == self._cache_spec
                and bool(self._off_caches or self._adj_caches))
        if warm:
            # Contents stay resident; statistics are per-query.
            for cache in self.caches:
                cache.stats = CacheStats()
        else:
            self._drop_caches()
            self._off_caches, self._adj_caches = attach_caches(
                self._engine, self._dist, spec, self.graph.n)
        self._cache_spec = spec
        self.last_warm = warm

    def _drop_caches(self) -> None:
        if self._engine is not None and self._dist is not None:
            for ctx in self._engine.contexts:
                ctx.detach_cache(self._dist.w_offsets)
                ctx.detach_cache(self._dist.w_adj)
        self._off_caches = []
        self._adj_caches = []
        self._cache_spec = None

    # -- dynamic updates -----------------------------------------------------
    def resync(self, result: DeltaResult, *, rekey: bool = True
               ) -> ClusterResync:
        """Swap in the post-update graph, rebuilding only touched ranks.

        Cache entries whose bytes changed are invalidated; entries whose
        adjacency list merely *moved* are rekeyed to their new offsets
        (``rekey=False`` forces the pre-rekey drop-everything-shifted
        behavior, kept for the retention comparison benchmarks).
        """
        outcome = ClusterResync(kind=self.kind)
        self.graph = result.graph
        if self._dist is None or not result.changed:
            if self._dist is not None:
                # Nothing changed structurally; keep windows and memos.
                self._dist.graph = result.graph
            outcome.retained_entries = sum(len(c) for c in self.caches)
            return outcome

        dist, engine = self._dist, self._engine
        dist.close_epochs()
        plan = resync_distributed(dist, result.graph, result.endpoints)
        dist.rebind_graph(result.graph)
        outcome.touched = plan.touched_ranks
        outcome.rebuilt_bytes = plan.rebuilt_bytes

        inval_dt = [0.0] * engine.nranks
        rekeys = plan.adjacency_rekeys if rekey else []
        stale_adj = (plan.adjacency_keys if rekey else
                     plan.adjacency_keys + [old for old, _ in
                                            plan.adjacency_rekeys])
        for caches, keys, counter in (
                (self._off_caches, plan.offsets_keys,
                 "invalidated_offsets_entries"),
                (self._adj_caches, stale_adj,
                 "invalidated_adj_entries")):
            for cache in caches:
                mgmt_before = cache.stats.mgmt_time
                dropped, dropped_bytes = cache.invalidate(keys)
                # The cache prices its own invalidations (mgmt_time);
                # charge exactly that, whatever its cost model is.
                inval_dt[cache.rank] += cache.stats.mgmt_time - mgmt_before
                setattr(outcome, counter, getattr(outcome, counter) + dropped)
                outcome.invalidated_bytes += dropped_bytes
        if rekeys:
            for cache in self._adj_caches:
                mgmt_before = cache.stats.mgmt_time
                inval_before = cache.stats.invalidations
                bytes_before = cache.stats.invalidated_bytes
                moved, moved_bytes = cache.rekey(rekeys)
                inval_dt[cache.rank] += cache.stats.mgmt_time - mgmt_before
                outcome.rekeyed_entries += moved
                outcome.rekeyed_bytes += moved_bytes
                # A rekey whose new slot was taken (or probe window full)
                # degrades to a drop; the cache already counted it.
                outcome.invalidated_adj_entries += (
                    cache.stats.invalidations - inval_before)
                outcome.invalidated_bytes += (
                    cache.stats.invalidated_bytes - bytes_before)
        outcome.retained_entries = sum(len(c) for c in self.caches)

        # Price the rebuild with the model the resident cluster was
        # actually built under (a per-run override config may differ
        # from the session default).
        memory = engine.contexts[0].memory
        rebuilt = plan.rebuilt_bytes_by_rank
        outcome.time = max(
            ((memory.local_read_time(rebuilt[r]) if r in rebuilt else 0.0)
             + inval_dt[r]) for r in range(engine.nranks))
        return outcome

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        if self._dist is not None:
            self._dist.close_epochs()
        self._drop_caches()
        self._engine = None
        self._dist = None
        self._cluster_key = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "resident" if self.resident else "idle"
        return f"Cluster1D({state}, partition_builds={self.partition_builds})"
