"""Targeted invalidation on the CLaMPI cache."""

import numpy as np
import pytest

from repro.clampi.cache import ClampiCache, ClampiConfig
from repro.runtime.window import Window
from repro.utils.errors import CacheError


def make_cache(capacity=4096, nslots=64):
    parts = [np.arange(64, dtype=np.int64) + 100 * r for r in range(3)]
    win = Window("w", parts)
    for r in range(3):
        win.lock_all(r)
    cache = ClampiCache(win, 0, ClampiConfig(capacity_bytes=capacity,
                                             nslots=nslots))
    return cache, win


class TestInvalidate:
    def test_drops_exactly_the_named_keys(self):
        cache, _ = make_cache()
        for off in range(0, 16, 4):
            cache.access(1, off, 4)
        assert len(cache) == 4
        dropped, dropped_bytes = cache.invalidate([(1, 0, 4), (1, 8, 4)])
        assert dropped == 2
        assert dropped_bytes == 2 * 4 * 8
        assert len(cache) == 2
        cache.check_invariants()
        # Survivors still hit; dropped keys miss again.
        assert cache.access(1, 4, 4)[2] is True
        assert cache.access(1, 0, 4)[2] is False

    def test_unknown_keys_ignored(self):
        cache, _ = make_cache()
        cache.access(1, 0, 4)
        dropped, dropped_bytes = cache.invalidate([(2, 0, 4), (1, 32, 8)])
        assert dropped == 0 and dropped_bytes == 0
        assert len(cache) == 1

    def test_stats_counters(self):
        cache, _ = make_cache()
        cache.access(1, 0, 4)
        cache.access(1, 8, 4)
        cache.invalidate([(1, 0, 4)])
        assert cache.stats.invalidations == 1
        assert cache.stats.invalidated_bytes == 4 * 8
        snap = cache.stats.snapshot()
        assert snap["invalidations"] == 1
        assert snap["invalidated_bytes"] == 32
        # Invalidation is priced like an eviction, not counted as one.
        assert cache.stats.evictions == 0
        assert cache.stats.mgmt_time > 0

    def test_merge_carries_invalidations(self):
        from repro.clampi.stats import CacheStats

        a, b = CacheStats(invalidations=2, invalidated_bytes=64), CacheStats(
            invalidations=3, invalidated_bytes=32)
        a.merge(b)
        assert a.invalidations == 5
        assert a.invalidated_bytes == 96

    def test_refetch_after_invalidate_sees_new_data(self):
        cache, win = make_cache()
        data, _, _ = cache.access(1, 0, 4)
        np.testing.assert_array_equal(data, [100, 101, 102, 103])
        win.local_part(1)[:4] = [7, 8, 9, 10]
        # Stale until invalidated (always-cache semantics)...
        stale, _, hit = cache.access(1, 0, 4)
        assert hit and stale[0] == 100
        cache.invalidate([(1, 0, 4)])
        fresh, _, hit = cache.access(1, 0, 4)
        assert not hit
        np.testing.assert_array_equal(fresh, [7, 8, 9, 10])

    def test_refetch_is_not_compulsory_miss(self):
        cache, _ = make_cache()
        cache.access(1, 0, 4)
        cache.invalidate([(1, 0, 4)])
        before = cache.stats.compulsory_misses
        cache.access(1, 0, 4)
        assert cache.stats.compulsory_misses == before  # a coherence miss

    def test_rejected_during_batch(self):
        cache, _ = make_cache()
        cache._batch_events = []  # simulate an armed batch replay
        with pytest.raises(CacheError):
            cache.invalidate([(1, 0, 4)])
        cache._batch_events = None

    def test_freed_space_is_reusable(self):
        cache, _ = make_cache(capacity=8 * 8)  # room for one 8-element entry
        cache.access(1, 0, 8)
        assert cache.used_bytes == 64
        cache.invalidate([(1, 0, 8)])
        assert cache.used_bytes == 0
        _, _, hit = cache.access(1, 8, 8)
        assert not hit and len(cache) == 1
        cache.check_invariants()

    def test_batch_replay_after_invalidate_matches_scalar(self):
        """The state-epoch bump must force batch memo revalidation."""
        from repro.clampi.cache import BatchStream

        cache, _ = make_cache()
        targets = np.array([1, 1, 2, 1], dtype=np.int64)
        offsets = np.array([0, 8, 0, 0], dtype=np.int64)
        counts = np.array([4, 4, 4, 4], dtype=np.int64)
        stream = BatchStream(targets, offsets, counts)
        cache.access_batch(stream=stream)
        _, hits_warm = cache.access_batch(stream=stream)
        assert hits_warm.all()
        cache.invalidate([(1, 0, 4)])
        _, hits_post = cache.access_batch(stream=stream)
        assert not hits_post[0]          # first touch refetches
        assert hits_post[1] and hits_post[2] and hits_post[3]
