"""Sweep driver: run algorithm variants over node counts and collect rows.

Used by the Figure 9/10 experiments, which compare four series (LCC
non-cached, LCC cached, TriC, TriC-Buffered) over a range of node counts.

Two drivers coexist:

* :func:`run_kernel_variants` — the Session-backed path: variants are
  kernel names plus config overrides, and one resident
  :class:`~repro.session.Session` amortizes graph partitioning across
  every variant sharing a cluster shape;
* :func:`run_variants` — the legacy callable-based path, kept for ad-hoc
  sweeps over arbitrary runner functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.core.config import LCCConfig
from repro.graph.csr import CSRGraph
from repro.utils.log import get_logger

logger = get_logger("analysis.sweep")

#: A variant maps (graph, nranks) to an object with a ``.time`` attribute.
Variant = Callable[[CSRGraph, int], Any]

#: A kernel variant: options for ``Session.run`` (plus optional "kernel").
KernelVariant = Mapping[str, Any]


@dataclass
class SweepCell:
    """One (variant, node count) measurement."""

    variant: str
    nranks: int
    time: float
    result: Any


def run_variants(
    graph: CSRGraph,
    node_counts: Sequence[int],
    variants: Mapping[str, Variant],
) -> list[SweepCell]:
    """Run every variant at every node count (deterministic order)."""
    cells: list[SweepCell] = []
    for nranks in node_counts:
        for name, fn in variants.items():
            logger.info("running %s on %s with %d ranks",
                        name, graph.name or "graph", nranks)
            result = fn(graph, nranks)
            cells.append(SweepCell(variant=name, nranks=nranks,
                                   time=result.time, result=result))
    return cells


def run_kernel_variants(
    graph: CSRGraph,
    node_counts: Sequence[int],
    variants: Mapping[str, KernelVariant],
    *,
    config: LCCConfig | None = None,
    kernel: str = "lcc",
) -> list[SweepCell]:
    """Session-backed sweep: every variant at every node count.

    Each variant is an option dict for :meth:`repro.session.Session.run`
    (an optional ``"kernel"`` key selects the kernel, default ``kernel``).
    One session serves the whole sweep, so variants that share a cluster
    shape reuse a single partitioned CSR instead of re-splitting per run.
    """
    # Imported here: repro.session pulls in the kernel modules, one of which
    # (lcc_fast) uses repro.analysis.throughput — a top-level import would
    # make this module circular.
    from repro.session import Session

    cells: list[SweepCell] = []
    with Session(graph, config) as session:
        for nranks in node_counts:
            for name, options in variants.items():
                opts = dict(options)
                k = opts.pop("kernel", kernel)
                logger.info("running %s (kernel %s) on %s with %d ranks",
                            name, k, graph.name or "graph", nranks)
                result = session.run(k, nranks=nranks, **opts)
                cells.append(SweepCell(variant=name, nranks=nranks,
                                       time=result.time, result=result))
    return cells


def series(cells: Sequence[SweepCell], variant: str) -> list[tuple[int, float]]:
    """(nranks, time) pairs of one variant, ordered by nranks."""
    pts = [(c.nranks, c.time) for c in cells if c.variant == variant]
    return sorted(pts)


def speedup(cells: Sequence[SweepCell], variant: str) -> float:
    """time(smallest config) / time(largest config) — the paper's figure
    annotations (e.g. '14.0x' on LiveJournal1)."""
    pts = series(cells, variant)
    if len(pts) < 2 or pts[-1][1] == 0:
        return 1.0
    return pts[0][1] / pts[-1][1]
