"""Figure 8: application-defined (degree-centrality) eviction scores.

``C_adj`` is fixed at 25% of each rank's non-local partition size to force
evictions; original CLaMPI scores (LRU + positional) are compared against
degree-centrality scores over 4-64 nodes.  The paper measures 14.4%-35.6%
better caching performance (average remote-read time) with degree scores;
the compulsory-miss floor is reported alongside (the grey band).
"""

from __future__ import annotations


from repro.analysis.tables import Table
from repro.core.config import LCCConfig
from repro.core.lcc import run_distributed_lcc
from repro.graph.datasets import load_dataset

NODE_COUNTS = [4, 8, 16, 32, 64]


def _run_with_adj_cache(graph, nranks: int, score: str, seed: int):
    """LCC run with only C_adj enabled at 25% of the non-local partition.

    CLaMPI's adaptive hash-table tuning is enabled, as in the paper
    (Section III-B1): the alpha=2 initial slot estimate under-provisions
    at laptop scale and the adaptive strategy corrects it at the cost of
    a few flushes.
    """
    from repro.clampi.adaptive import AdaptiveConfig
    from repro.core.config import CacheSpec

    # Size from the 1D block split: non-local bytes are ~ (p-1)/p of total.
    total_adj = graph.adjacency.nbytes
    cap = max(1024, int(0.25 * total_adj * (nranks - 1) / nranks))
    adaptive = AdaptiveConfig(check_interval=512, conflict_threshold=0.02,
                              max_resizes=12)
    cfg = LCCConfig(nranks=nranks, threads=12,
                    cache=CacheSpec(offsets_bytes=0, adj_bytes=cap,
                                    score=score, adaptive=adaptive))
    return run_distributed_lcc(graph, cfg)


def avg_remote_read_time(result) -> float:
    """Average time to satisfy one remote-read intent (hit or miss)."""
    out = result.outcome
    intents = out.total("n_remote_gets") + out.total("n_cache_hits")
    if intents == 0:
        return 0.0
    return (out.total("comm_time") + out.total("cache_time")) / intents


def run(scale: float = 1.0, seed: int = 0, fast: bool = False) -> list[Table]:
    g = load_dataset("rmat-s20-ef16", scale=scale, seed=seed)
    counts = [4, 16] if fast else NODE_COUNTS
    t = Table(
        ["nodes", "avg read (us, LRU+pos)", "avg read (us, degree)",
         "improvement", "miss rate (LRU+pos)", "miss rate (degree)",
         "compulsory floor"],
        title=(f"Figure 8: original vs degree-centrality scores on {g.name} "
               "(C_adj = 25% of non-local partition)"),
    )
    for p in counts:
        base = _run_with_adj_cache(g, p, "default", seed)
        deg = _run_with_adj_cache(g, p, "degree", seed)
        a, b = avg_remote_read_time(base), avg_remote_read_time(deg)
        mr_a = base.adj_cache_stats["miss_rate"]
        mr_b = deg.adj_cache_stats["miss_rate"]
        comp = deg.adj_cache_stats["compulsory_miss_rate"]
        t.add_row(
            p,
            round(a * 1e6, 2),
            round(b * 1e6, 2),
            f"{(1 - b / a):.1%}" if a > 0 else "-",
            f"{mr_a:.3f}",
            f"{mr_b:.3f}",
            f"{comp:.3f}",
        )
    note = Table(["note"], title="")
    note.add_row(
        "paper: degree scores improve caching performance 14.4%-35.6%; at "
        "laptop scale the avoidable-miss pool is granularity-limited (few "
        "hub lists fit), compressing the gain — the direction holds at "
        "every node count.")
    return [t, note]


def main() -> None:
    for table in run():
        print(table.render())
        print()


if __name__ == "__main__":
    main()
