"""Tests for distributed global triangle counting."""

import pytest

from repro.core.api import count_triangles
from repro.core.config import CacheSpec, LCCConfig
from repro.core.local import triangle_count_local
from repro.core.tc import run_distributed_tc
from repro.graph.csr import CSRGraph
from repro.graph.generators import powerlaw_configuration, rmat
from repro.utils.errors import ConfigError

from tests.helpers import make_graph_suite


class TestCorrectness:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 8])
    def test_matches_local(self, nranks):
        g = rmat(7, 8, seed=4)
        res = run_distributed_tc(g, LCCConfig(nranks=nranks))
        assert res.global_triangles == triangle_count_local(g)

    @pytest.mark.parametrize("idx", range(6))
    def test_all_graphs(self, idx):
        g = make_graph_suite()[idx]
        res = run_distributed_tc(g, LCCConfig(nranks=4))
        assert res.global_triangles == triangle_count_local(g)

    @pytest.mark.parametrize("method", ["ssi", "binary", "hybrid"])
    def test_methods_agree(self, method):
        g = rmat(7, 8, seed=4)
        res = run_distributed_tc(g, LCCConfig(nranks=4, method=method))
        assert res.global_triangles == triangle_count_local(g)

    def test_cached_agrees(self):
        g = powerlaw_configuration(256, 2048, seed=6)
        res = run_distributed_tc(g, LCCConfig(
            nranks=4, cache=CacheSpec.paper_split(1 << 18, g.n)))
        assert res.global_triangles == triangle_count_local(g)

    def test_overlap_agrees(self):
        g = rmat(7, 8, seed=4)
        a = run_distributed_tc(g, LCCConfig(nranks=4, overlap=True))
        b = run_distributed_tc(g, LCCConfig(nranks=4, overlap=False))
        assert a.global_triangles == b.global_triangles

    def test_directed_rejected(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2)], directed=True)
        with pytest.raises(ConfigError):
            run_distributed_tc(g, LCCConfig(nranks=2))

    def test_cyclic_partition_agrees(self):
        g = rmat(7, 8, seed=4)
        res = run_distributed_tc(g, LCCConfig(nranks=4, partition="cyclic"))
        assert res.global_triangles == triangle_count_local(g)


class TestEfficiency:
    def test_tc_cheaper_than_lcc(self):
        # Upper-triangle processing roughly halves the fetch volume.
        from repro.core.lcc import run_distributed_lcc

        g = rmat(8, 8, seed=4)
        cfg = LCCConfig(nranks=4)
        tc = run_distributed_tc(g, cfg)
        lcc = run_distributed_lcc(g, cfg)
        assert (tc.outcome.total("n_remote_gets")
                < lcc.outcome.total("n_remote_gets"))

    def test_api_paths(self):
        g = rmat(7, 8, seed=4)
        assert count_triangles(g) == triangle_count_local(g)
        res = count_triangles(g, LCCConfig(nranks=2))
        assert res.global_triangles == triangle_count_local(g)
