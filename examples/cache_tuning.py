#!/usr/bin/env python
"""Tune the CLaMPI caches for a workload (a Figure 7/8-style study).

Sweeps cache capacity and compares eviction-score policies on a scale-free
graph, printing the communication-time / hit-rate trade-off so a user can
size the caches for their own memory budget.  The whole sweep runs inside
one :class:`repro.Session`, so the graph is partitioned exactly once and
only the caches change between runs.

    python examples/cache_tuning.py
"""

from repro import Session
from repro.core import CacheSpec, LCCConfig
from repro.graph import load_dataset
from repro.utils.units import format_bytes


def main() -> None:
    graph = load_dataset("rmat-s20-ef16")
    print(f"graph: {graph.name}  |V|={graph.n:,}  |E|={graph.m:,}  "
          f"CSR={format_bytes(graph.nbytes)}\n")

    session = Session(graph, LCCConfig(nranks=8, threads=12))
    baseline = session.run("lcc")
    print(f"no cache: {baseline.time * 1e3:7.1f} ms "
          f"(comm busy {baseline.comm_time * 1e3:.0f} ms across ranks)\n")

    print(f"{'budget':>10} {'policy':>8} {'time':>9} {'vs none':>8} "
          f"{'adj hit':>8} {'off hit':>8}")
    for fraction in (0.05, 0.25, 1.0, 2.0):
        budget = max(4096, int(fraction * graph.nbytes))
        variants = {
            score: {"cache": CacheSpec.paper_split(budget, graph.n,
                                                   score=score)}
            for score in ("lru", "default", "degree")
        }
        for score, res in session.sweep(variants).items():
            gain = 1 - res.time / baseline.time
            print(f"{format_bytes(budget):>10} {score:>8} "
                  f"{res.time * 1e3:7.1f}ms {gain:8.1%} "
                  f"{res.adj_cache_stats['hit_rate']:8.1%} "
                  f"{res.offsets_cache_stats['hit_rate']:8.1%}")
        print()

    session.close()
    assert session.partition_builds == 1, "the sweep must not re-partition"
    print("reading the table: 'degree' is the paper's application-defined "
          "score extension;\nits advantage appears once the budget forces "
          "evictions (small budgets),\nand disappears when everything fits. "
          f"({session.queries_run} runs amortized one partitioning)")


if __name__ == "__main__":
    main()
