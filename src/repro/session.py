"""Resident-cluster sessions: one simulated cluster, many queries.

The paper frames LCC/TC as repeated analytics over a graph that stays
resident in a distributed cluster — the CLaMPI caches are valuable
precisely because accesses repeat (the Figure 4 reuse study).  The legacy
entry points (:func:`repro.core.lcc.run_distributed_lcc` and friends)
rebuild the engine, the partitioned CSR and the caches on every call,
discarding all warm state.  A :class:`Session` builds that cluster once
and serves any number of queries against it::

    from repro import Session
    from repro.core import CacheSpec, LCCConfig
    from repro.graph import load_dataset

    g = load_dataset("livejournal")
    cfg = LCCConfig(nranks=16, threads=12,
                    cache=CacheSpec.paper_split(2 * g.nbytes, g.n))
    with Session(g, cfg) as session:
        first = session.run("lcc", keep_cache=True)   # cold caches
        again = session.run("lcc", keep_cache=True)   # warm: higher hit rate
        tc = session.run("tc")                        # same resident CSR
        cells = session.sweep({                       # one partition, 3 runs
            "ssi": {"method": "ssi"},
            "binary": {"method": "binary"},
            "hybrid": {"method": "hybrid"},
        })

Kernels are registered by name (``@register_kernel``); the built-ins are
``lcc``, ``tc``, ``tc2d``, ``tc2d_spgemm``, ``lcc2d``, ``tric``,
``disttc`` and ``mapreduce``, and each produces results **bit-identical**
to its legacy entry point or oracle (pinned by tests).  The SUMMA-family
kernels (``tc2d_spgemm``, ``lcc2d``) additionally require ``nranks`` to
be a perfect square.  New workloads — per-vertex triangle queries, top-k LCC, anything
expressible over the simulated cluster — plug in the same way::

    @register_kernel("top5-lcc", description="five most clustered vertices")
    def _top5(session, config, **opts):
        res = session.run("lcc", config=config).raw
        ...

Every query starts with fresh virtual clocks and traces (a query's
simulated time never includes a previous query's), but the partitioned CSR
is shared, and with ``keep_cache=True`` the CLaMPI cache *contents* carry
over so the second query onward benefits from the paper's reuse effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from repro.baselines.disttc import DistTCConfig, run_disttc
from repro.baselines.mapreduce import MapReduceConfig, run_mapreduce_tc
from repro.baselines.tric import TricConfig, run_tric
from repro.core.config import DistributedRunResult, LCCConfig
from repro.core.lcc import execute_lcc
from repro.dynamic.delta import DeltaResult, UpdateBatch, apply_delta
from repro.core.lcc_fast import run_distributed_lcc_fast
from repro.core.tc import execute_tc, require_undirected
from repro.graph.csr import CSRGraph
from repro.graph.distributed import DistributedCSR
from repro.graphstore.grid2d import GridCluster2D
from repro.graphstore.resident import Cluster1D, ClusterResync, ResidentCluster
from repro.obs.trace import span as obs_span
from repro.runtime.engine import Engine
from repro.utils.errors import ConfigError, KernelError

__all__ = [
    "KernelResult",
    "KernelSpec",
    "Session",
    "UpdateOutcome",
    "get_kernel",
    "kernel_names",
    "register_kernel",
    "run_kernel",
    "unregister_kernel",
]


# ---------------------------------------------------------------------------
# Kernel registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class KernelSpec:
    """One registered kernel: a name, a runner and its traits.

    ``resident`` kernels execute on one of the session's resident
    clusters — the 1D partition (``lcc``/``tc``) or the 2D grid
    (``tc2d``/``tc2d_spgemm``/``lcc2d``) — built once and reused across
    queries; the others own their run's cluster shape (TriC's
    edge-balanced split, ...) and build it per call, exactly like their
    legacy entry points.  ``square_grid_only`` marks the SUMMA-family
    kernels that require a square process grid (``nranks`` a perfect
    square); they raise a :class:`~repro.utils.errors.ConfigError`
    otherwise instead of silently falling back.
    """

    name: str
    fn: Callable[..., DistributedRunResult]
    description: str = ""
    resident: bool = False
    undirected_only: bool = False
    square_grid_only: bool = False


_KERNELS: dict[str, KernelSpec] = {}


def register_kernel(name: str, *, description: str = "",
                    resident: bool = False, undirected_only: bool = False,
                    square_grid_only: bool = False,
                    overwrite: bool = False) -> Callable:
    """Class-of-service decorator: make a function a named, runnable kernel.

    The decorated function receives ``(session, config, **opts)`` and must
    return a :class:`~repro.core.config.DistributedRunResult` (or any
    object exposing the same surface).  Re-registering an existing name
    raises unless ``overwrite=True``.
    """
    def decorator(fn: Callable) -> Callable:
        if name in _KERNELS and not overwrite:
            raise KernelError(
                f"kernel {name!r} is already registered; pass overwrite=True "
                "to replace it")
        _KERNELS[name] = KernelSpec(name=name, fn=fn, description=description,
                                    resident=resident,
                                    undirected_only=undirected_only,
                                    square_grid_only=square_grid_only)
        return fn
    return decorator


def unregister_kernel(name: str) -> None:
    """Remove a registered kernel (plugin teardown / tests)."""
    if name not in _KERNELS:
        raise KernelError(f"kernel {name!r} is not registered")
    del _KERNELS[name]


def get_kernel(name: str) -> KernelSpec:
    """Look up a kernel by name; raises :class:`KernelError` when unknown."""
    try:
        return _KERNELS[name]
    except KeyError:
        raise KernelError(
            f"unknown kernel {name!r}; registered kernels: "
            f"{', '.join(kernel_names())}") from None


def kernel_names() -> list[str]:
    """Sorted names of every registered kernel."""
    return sorted(_KERNELS)


# ---------------------------------------------------------------------------
# Uniform result type
# ---------------------------------------------------------------------------

@dataclass
class KernelResult:
    """Uniform wrapper every ``Session.run`` returns.

    ``raw`` is the kernel's native result (a
    :class:`~repro.core.config.DistributedRunResult` for the built-ins);
    every attribute of it — ``lcc``, ``time``, ``global_triangles``,
    ``adj_cache_stats``, baseline extras like ``peak_buffer_bytes`` — is
    reachable directly on this wrapper.
    """

    kernel: str
    config: LCCConfig
    raw: Any
    reused_cluster: bool = False
    warm_cache: bool = False

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_") or name == "raw":
            raise AttributeError(name)
        return getattr(self.raw, name)

    def summary(self) -> dict[str, Any]:
        """The underlying run summary, tagged with the kernel name."""
        s = self.raw.summary()
        s["kernel"] = self.kernel
        return s


@dataclass
class UpdateOutcome:
    """What one :meth:`Session.apply_updates` / :meth:`Session.sync_to` did.

    ``delta`` carries the graph-level outcome (new graph, affected set,
    applied/skipped edge counts); the remaining fields describe the
    resident-cluster resyncs, summed over every resident cluster of the
    session (the 1D partition and, when ``tc2d`` ran, the 2D grid):
    which ranks' slices / grid blocks were rebuilt, how many warm CLaMPI
    entries were invalidated vs rekeyed vs retained, and the simulated
    cost (``time``) of the whole update — slice rebuild plus cache
    maintenance priced at the caches' eviction overhead, max over ranks
    and clusters like any job.
    """

    delta: DeltaResult
    touched_ranks: tuple[int, ...] = ()
    touched_blocks: tuple[tuple[int, int], ...] = ()
    rebuilt_bytes: int = 0
    invalidated_offsets_entries: int = 0
    invalidated_adj_entries: int = 0
    invalidated_bytes: int = 0
    rekeyed_entries: int = 0
    rekeyed_bytes: int = 0
    retained_entries: int = 0
    time: float = 0.0
    resyncs: list[ClusterResync] = field(default_factory=list)

    @property
    def graph(self):
        return self.delta.graph

    @property
    def affected(self):
        return self.delta.affected

    @property
    def invalidated_entries(self) -> int:
        return self.invalidated_offsets_entries + self.invalidated_adj_entries

    def fold(self, resync: ClusterResync) -> None:
        """Accumulate one resident cluster's resync into this outcome."""
        self.resyncs.append(resync)
        if resync.kind == "2d":
            self.touched_blocks += tuple(resync.touched)
        else:
            self.touched_ranks += tuple(resync.touched)
        self.rebuilt_bytes += resync.rebuilt_bytes
        self.invalidated_offsets_entries += resync.invalidated_offsets_entries
        self.invalidated_adj_entries += resync.invalidated_adj_entries
        self.invalidated_bytes += resync.invalidated_bytes
        self.rekeyed_entries += resync.rekeyed_entries
        self.rekeyed_bytes += resync.rekeyed_bytes
        self.retained_entries += resync.retained_entries
        # Clusters are independent simulated resources; like ranks within
        # one job, the update completes when the slowest resync does.
        self.time = max(self.time, resync.time)


# ---------------------------------------------------------------------------
# The session
# ---------------------------------------------------------------------------

class Session:
    """A simulated cluster held resident across queries.

    Parameters
    ----------
    graph:
        The graph to serve queries over.
    config:
        Default :class:`~repro.core.config.LCCConfig` for every query;
        per-query overrides go through ``run(..., nranks=..., cache=...)``.

    The engine and partitioned CSR are built lazily on the first resident
    query and reused while the cluster-shaping knobs (``nranks``,
    ``partition`` and the network/memory/compute models) stay unchanged;
    ``partition_builds`` counts how often the CSR was split, which sweeps
    assert stays at 1.
    """

    def __init__(self, graph: CSRGraph, config: LCCConfig | None = None):
        self.graph = graph
        self.config = config or LCCConfig()
        self.queries_run = 0
        self.updates_applied = 0
        self._c1d: Optional[Cluster1D] = None
        self._c2d: Optional[GridCluster2D] = None
        self._last_reused = False
        self._last_warm = False
        self._closed = False

    # -- lifecycle ----------------------------------------------------------
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Tear down every resident cluster (idempotent)."""
        for cluster in self.clusters():
            cluster.close()
        self._closed = True

    # -- resident-cluster inventory ------------------------------------------
    def clusters(self) -> list[ResidentCluster]:
        """Every resident cluster this session has materialized."""
        return [c for c in (self._c1d, self._c2d) if c is not None]

    @property
    def partition_builds(self) -> int:
        """How often the 1D CSR was split (sweeps assert this stays at 1)."""
        return self._c1d.partition_builds if self._c1d is not None else 0

    @property
    def grid_builds(self) -> int:
        """How often the 2D grid blocks were built from scratch."""
        return self._c2d.grid_builds if self._c2d is not None else 0

    # Backwards-compatible views of the 1D cluster internals (tests and
    # downstream code predating the graphstore extraction read these).
    @property
    def _engine(self) -> Optional[Engine]:
        return self._c1d._engine if self._c1d is not None else None

    @property
    def _dist(self) -> Optional[DistributedCSR]:
        return self._c1d._dist if self._c1d is not None else None

    @property
    def _off_caches(self) -> list:
        return self._c1d._off_caches if self._c1d is not None else []

    @property
    def _adj_caches(self) -> list:
        return self._c1d._adj_caches if self._c1d is not None else []

    # -- queries ------------------------------------------------------------
    def run(self, kernel: str, *, config: LCCConfig | None = None,
            keep_cache: bool = False, **opts: Any) -> KernelResult:
        """Execute one registered kernel against the session's cluster.

        ``opts`` naming :class:`LCCConfig` fields (``nranks``, ``cache``,
        ``method``, ...) override the session config for this query; the
        rest are forwarded to the kernel (e.g. TriC's ``buffer_capacity``).
        ``keep_cache=True`` preserves CLaMPI cache contents from the
        previous query, reproducing the paper's reuse effect; statistics
        are still per-query.  Cached lcc/tc queries run through the batched
        cache replay (:mod:`repro.core.replay`) unless ``fast_path=False``
        or ``record_ops=True`` forces the per-edge loop.
        """
        if self._closed:
            raise KernelError("session is closed")
        spec = get_kernel(kernel)
        cfg = config or self.config
        overrides = {k: opts.pop(k) for k in list(opts)
                     if k in LCCConfig.__dataclass_fields__}
        if overrides:
            cfg = cfg.replace(**overrides)
        self._last_reused = False
        self._last_warm = False
        raw = spec.fn(self, cfg, keep_cache=keep_cache, **opts)
        self.queries_run += 1
        return KernelResult(kernel=kernel, config=cfg, raw=raw,
                            reused_cluster=self._last_reused,
                            warm_cache=self._last_warm)

    def sweep(self, variants: Mapping[str, Mapping[str, Any]], *,
              kernel: str = "lcc", keep_cache: bool = False
              ) -> dict[str, KernelResult]:
        """Run many config variants, amortizing setup across all of them.

        ``variants`` maps a variant name to its option dict (the same
        options ``run`` accepts; a ``"kernel"`` key selects a kernel other
        than the default).  Variants sharing a cluster shape reuse one
        partitioned graph — ``partition_builds`` does not grow per variant.
        """
        results: dict[str, KernelResult] = {}
        for name, options in variants.items():
            opts = dict(options)
            k = opts.pop("kernel", kernel)
            kc = opts.pop("keep_cache", keep_cache)
            results[name] = self.run(k, keep_cache=kc, **opts)
        return results

    # -- updates -------------------------------------------------------------
    def apply_updates(self, batch: UpdateBatch, *, strict: bool = False,
                      rekey: bool = True) -> UpdateOutcome:
        """Apply an edge-update batch to the resident graph.

        The session's graph is replaced by the post-update CSR; every
        resident cluster (the 1D partition and, when ``tc2d`` has run,
        the 2D grid) has only its touched slices / blocks rebuilt, and
        the per-rank CLaMPI caches are maintained **targeted**: entries
        whose cached bytes the update made stale are evicted, entries
        whose adjacency list merely shifted are rekeyed to their new
        offsets (``rekey=False`` disables the remap), so a following
        ``run(..., keep_cache=True)`` stays warm for everything else.
        Any open epochs are closed first (an update is an epoch boundary,
        so transparent-mode caches flush as they would on a real window).

        ``strict=True`` raises on inserting an existing edge or deleting
        an absent one; the default skips them (idempotent semantics, what
        serving traffic wants).
        """
        if self._closed:
            raise KernelError("session is closed")
        res = apply_delta(self.graph, batch, strict=strict)
        return self.sync_to(res, rekey=rekey)

    def sync_to(self, res: DeltaResult, *, rekey: bool = True
                ) -> UpdateOutcome:
        """Fold an already-applied delta into this session.

        The propagation half of :meth:`apply_updates`, split out so a
        :class:`~repro.graphstore.store.GraphStore` commit — one version
        advance for the graph — can be pushed into *every* resident
        session of that graph without re-running the CSR merge per
        session.  ``res.graph`` becomes the session's graph and each
        resident cluster resyncs surgically.
        """
        if self._closed:
            raise KernelError("session is closed")
        self.graph = res.graph
        self.updates_applied += 1
        outcome = UpdateOutcome(delta=res)
        with obs_span("resync", cat="session",
                      graph=getattr(res.graph, "name", None) or "",
                      n_affected=int(res.affected.shape[0])) as sp:
            for cluster in self.clusters():
                outcome.fold(cluster.resync(res, rekey=rekey))
            sp.note(invalidated=outcome.invalidated_entries,
                    rekeyed=outcome.rekeyed_entries)
        return outcome

    # -- resident clusters ---------------------------------------------------
    def resident_cluster(self, config: LCCConfig | None = None,
                         keep_cache: bool = False, need_epochs: bool = True
                         ) -> tuple[Engine, DistributedCSR, list, list]:
        """Build or reuse the 1D engine + partitioned CSR for ``config``.

        Returns ``(engine, dist, offsets_caches, adj_caches)``.  This is
        the hook custom resident kernels use: per-rank clocks and traces
        are always reset so every query starts cold (simulated times match
        a standalone run), while the CSR split — and, with
        ``keep_cache=True``, the CLaMPI cache contents — are reused while
        the cluster shape is unchanged.  Epochs are (re)opened unless
        ``need_epochs=False``; kernels that issue RMA should call
        ``dist.close_epochs()`` when done, as the built-ins do.
        """
        if self._c1d is None:
            self._c1d = Cluster1D()
        cluster = self._c1d
        out = cluster.acquire(self.graph, config or self.config,
                              keep_cache=keep_cache, need_epochs=need_epochs)
        self._last_reused = cluster.last_reused
        self._last_warm = cluster.last_warm
        return out

    def resident_grid(self, config: LCCConfig | None = None,
                      keep_cache: bool = False):
        """Build or reuse the resident 2D grid cluster for ``config``.

        Returns ``(engine, grid, blocks, window, caches)`` — the
        :class:`~repro.graphstore.grid2d.GridCluster2D` acquisition the
        ``tc2d`` kernel runs on.  The grid blocks are built once and kept
        resident across queries (``grid_builds`` stays at 1 while the
        cluster shape is unchanged), which is what deletes the per-call
        edge re-split the legacy path pays.
        """
        if self.graph.directed:
            raise ConfigError(
                "2D triangle counting expects an undirected graph")
        if self._c2d is None:
            self._c2d = GridCluster2D()
        cluster = self._c2d
        out = cluster.acquire(self.graph, config or self.config,
                              keep_cache=keep_cache)
        self._last_reused = cluster.last_reused
        self._last_warm = cluster.last_warm
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self._closed else (
            "resident" if self.clusters() else "idle")
        return (f"Session(graph={self.graph.name or '?'}, {state}, "
                f"queries={self.queries_run}, "
                f"partition_builds={self.partition_builds})")


def run_kernel(kernel: str, graph: CSRGraph,
               config: LCCConfig | None = None, **opts: Any) -> KernelResult:
    """One-shot convenience: run a single kernel on a throwaway session."""
    with Session(graph, config) as session:
        return session.run(kernel, **opts)


# ---------------------------------------------------------------------------
# Built-in kernels
# ---------------------------------------------------------------------------

@register_kernel("lcc", resident=True,
                 description="asynchronous per-vertex LCC (Algorithm 3)")
def _kernel_lcc(session: Session, config: LCCConfig, *,
                keep_cache: bool = False, **_: Any) -> DistributedRunResult:
    if config.fast_path and config.cache is None and not config.record_ops:
        _, dist, _, _ = session.resident_cluster(config, keep_cache,
                                                 need_epochs=False)
        return run_distributed_lcc_fast(session.graph, config, dist=dist)
    engine, dist, off, adj = session.resident_cluster(config, keep_cache)
    return execute_lcc(engine, dist, config, off, adj)


@register_kernel("tc", resident=True, undirected_only=True,
                 description="asynchronous global triangle count")
def _kernel_tc(session: Session, config: LCCConfig, *,
               keep_cache: bool = False, **_: Any) -> DistributedRunResult:
    require_undirected(session.graph)
    engine, dist, off, adj = session.resident_cluster(config, keep_cache)
    return execute_tc(engine, dist, config, off, adj)


@register_kernel("tc2d", resident=True, undirected_only=True,
                 description="asynchronous 2D-grid triangle count")
def _kernel_tc2d(session: Session, config: LCCConfig, *,
                 keep_cache: bool = False, **_: Any) -> DistributedRunResult:
    """Edge-centric 2D triangle count on the resident grid.

    Runs on any grid shape (rectangular grids use the strip-fetch
    fallback).  With block caches and ``fast_path`` on (the default),
    warm square-grid queries take the batched ``access_batch`` replay —
    bit-identical to the scalar loop, which ``fast_path=False`` keeps
    as the oracle.
    """
    session.resident_grid(config, keep_cache)
    return session._c2d.execute(config)


@register_kernel("tc2d_spgemm", resident=True, undirected_only=True,
                 square_grid_only=True,
                 description="2D triangle count as masked SpGEMM "
                             "(SUMMA panels)")
def _kernel_tc2d_spgemm(session: Session, config: LCCConfig, *,
                        keep_cache: bool = False, **_: Any
                        ) -> DistributedRunResult:
    """Algebraic triangle count: ``(A·A)∘A`` over block-cyclic SUMMA rounds.

    Requires a **square** process grid (``nranks`` a perfect square);
    rectangular grids raise a :class:`ConfigError` (see
    :func:`repro.core.tc2d.require_square_grid`).  Counts, per-rank
    clocks and traces are bit-identical to the edge-centric ``tc2d``
    oracle; warm queries replay the resident SUMMA panel tables instead
    of re-running the per-rank multiply loop.
    """
    session.resident_grid(config, keep_cache)
    return session._c2d.execute_spgemm(config)


@register_kernel("lcc2d", resident=True, undirected_only=True,
                 square_grid_only=True,
                 description="per-vertex LCC over the SUMMA grid "
                             "(row-strip bookkeeping)")
def _kernel_lcc2d(session: Session, config: LCCConfig, *,
                  keep_cache: bool = False, **_: Any) -> DistributedRunResult:
    """Per-vertex LCC on the 2D grid — the first 2D LCC formulation.

    Requires a **square** process grid, like ``tc2d_spgemm`` (same
    SUMMA rounds, same resident panels).  Scores and per-vertex triplet
    counts are bit-identical to the 1D ``lcc`` kernel; the simulated
    cost adds row-strip degree bookkeeping and a per-grid-row reduction
    on top of the shared block fetches.
    """
    session.resident_grid(config, keep_cache)
    return session._c2d.execute_lcc2d(config)


@register_kernel("tric",
                 description="TriC baseline (blocking query/response rounds)")
def _kernel_tric(session: Session, config: LCCConfig, *,
                 keep_cache: bool = False, buffer_capacity: int | None = None,
                 balanced: bool = True, **_: Any) -> DistributedRunResult:
    return run_tric(session.graph, TricConfig(
        nranks=config.nranks, buffer_capacity=buffer_capacity,
        balanced=balanced, network=config.network, memory=config.memory,
        compute=config.compute))


@register_kernel("disttc", undirected_only=True,
                 description="DistTC baseline (shadow-edge replication)")
def _kernel_disttc(session: Session, config: LCCConfig, *,
                   keep_cache: bool = False, **_: Any) -> DistributedRunResult:
    return run_disttc(session.graph, DistTCConfig(
        nranks=config.nranks, network=config.network, memory=config.memory,
        compute=config.compute))


@register_kernel("mapreduce", undirected_only=True,
                 description="MapReduce wedge-check baseline")
def _kernel_mapreduce(session: Session, config: LCCConfig, *,
                      keep_cache: bool = False, **_: Any
                      ) -> DistributedRunResult:
    return run_mapreduce_tc(session.graph, MapReduceConfig(
        nranks=config.nranks, network=config.network, memory=config.memory,
        compute=config.compute))
