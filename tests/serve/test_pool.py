"""Session pool: residency bound, eviction policies, lifecycle."""

import pytest

from repro.core.config import LCCConfig
from repro.graph.generators import complete_graph, ring_of_cliques
from repro.serve.pool import SessionPool
from repro.utils.errors import ConfigError

CATALOG = {
    "k6": complete_graph(6, name="k6"),
    "k7": complete_graph(7, name="k7"),
    "ring": ring_of_cliques(3, 4, name="ring"),
}


def _config_for(graph, overrides):
    return LCCConfig(nranks=2, **overrides)


def make_pool(capacity=2, policy="lru"):
    return SessionPool(CATALOG, _config_for, capacity=capacity, policy=policy)


def key(graph, **overrides):
    return (graph, tuple(sorted(overrides.items())))


class TestBounds:
    def test_capacity_never_exceeded(self):
        with make_pool(capacity=2) as pool:
            for graph in ("k6", "k7", "ring", "k6", "ring", "k7"):
                pool.acquire(key(graph))
                assert len(pool) <= 2

    def test_reuse_returns_same_session(self):
        with make_pool() as pool:
            first, built_first = pool.acquire(key("k6"))
            again, built_again = pool.acquire(key("k6"))
            assert first is again
            assert built_first and not built_again
            assert pool.stats.builds == 1
            assert pool.stats.reuses == 1

    def test_distinct_overrides_distinct_sessions(self):
        with make_pool() as pool:
            a, _ = pool.acquire(key("k6"))
            b, _ = pool.acquire(key("k6", method="ssi"))
            assert a is not b
            assert len(pool) == 2

    def test_unknown_graph_rejected(self):
        with make_pool() as pool:
            with pytest.raises(ConfigError, match="not in the serving"):
                pool.acquire(key("nope"))

    def test_unknown_graph_does_not_evict(self):
        """A bad key must never cost a warm resident session."""
        with make_pool(capacity=1) as pool:
            resident, _ = pool.acquire(key("k6"))
            with pytest.raises(ConfigError):
                pool.acquire(key("nope"))
            assert not resident._closed
            assert key("k6") in pool
            assert pool.stats.evictions == 0

    def test_invalid_construction_rejected(self):
        with pytest.raises(ConfigError, match="capacity"):
            make_pool(capacity=0)
        with pytest.raises(ConfigError, match="policy"):
            make_pool(policy="fifo")


class TestEviction:
    def test_lru_evicts_least_recently_used(self):
        with make_pool(capacity=2, policy="lru") as pool:
            pool.acquire(key("k6"))
            pool.acquire(key("k7"))
            pool.acquire(key("k6"))        # refresh k6: k7 is now LRU
            pool.acquire(key("ring"))      # evicts k7
            assert key("k6") in pool
            assert key("ring") in pool
            assert key("k7") not in pool
            assert pool.stats.evictions == 1

    def test_lfu_evicts_least_used(self):
        with make_pool(capacity=2, policy="lfu") as pool:
            for _ in range(3):
                pool.acquire(key("k6"))    # 3 uses
            pool.acquire(key("k7"))        # 1 use
            pool.acquire(key("ring"))      # evicts k7 (fewest uses)
            assert key("k6") in pool
            assert key("k7") not in pool

    def test_eviction_closes_the_session(self):
        with make_pool(capacity=1) as pool:
            victim, _ = pool.acquire(key("k6"))
            pool.acquire(key("k7"))
            assert victim._closed

    def test_evicted_key_rebuilds_cold(self):
        with make_pool(capacity=1) as pool:
            pool.acquire(key("k6"))
            pool.acquire(key("k7"))
            _, built = pool.acquire(key("k6"))
            assert built
            assert pool.stats.builds == 3

    def test_resident_keys_in_lru_order(self):
        with make_pool(capacity=3) as pool:
            pool.acquire(key("k6"))
            pool.acquire(key("k7"))
            pool.acquire(key("k6"))
            assert pool.resident_keys() == [key("k7"), key("k6")]


class TestLifecycle:
    def test_close_closes_all_sessions(self):
        pool = make_pool(capacity=3)
        a, _ = pool.acquire(key("k6"))
        b, _ = pool.acquire(key("k7"))
        pool.close()
        assert a._closed and b._closed
        assert len(pool) == 0

    def test_queries_counted_per_key(self):
        with make_pool(capacity=3) as pool:
            pool.acquire(key("k6"))
            pool.acquire(key("k6"))
            pool.acquire(key("k7"))
            assert pool.stats.queries[key("k6")] == 2
            assert pool.stats.queries[key("k7")] == 1

    def test_sessions_actually_serve_queries(self):
        with make_pool() as pool:
            session, _ = pool.acquire(key("k6"))
            result = session.run("tc")
            assert result.global_triangles == 20  # C(6,3)
