"""Table III: intersection-method comparison at 16 threads.

The paper reports edges processed per microsecond for hybrid / SSI /
binary search on five graphs, with the hybrid always winning.  We evaluate
the same metric under the OpenMP cost model (the counting kernels are
exercised for correctness elsewhere; throughput at 16 OpenMP threads is a
property of the machine being modelled).
"""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.analysis.throughput import edges_per_microsecond
from repro.graph.datasets import load_dataset

#: (dataset, paper hybrid, paper ssi, paper binary) — Table III rows.
PAPER_ROWS = [
    ("rmat-s20-ef8", 0.540, 0.508, 0.449),
    ("rmat-s20-ef16", 0.425, 0.403, 0.340),
    ("rmat-s20-ef32", 0.325, 0.311, 0.250),
    ("livejournal", 1.084, 1.018, 0.984),
    ("orkut", 0.596, 0.552, 0.503),
]


def run(scale: float = 1.0, seed: int = 0, fast: bool = False) -> list[Table]:
    rows = PAPER_ROWS[:2] if fast else PAPER_ROWS
    table = Table(
        ["graph", "hybrid", "ssi", "binary",
         "paper hybrid", "paper ssi", "paper binary", "hybrid wins?"],
        title="Table III: edges/us per intersection method (16 threads)",
    )
    for name, p_h, p_s, p_b in rows:
        g = load_dataset(name, scale=scale, seed=seed)
        h = edges_per_microsecond(g, "hybrid", threads=16)
        s = edges_per_microsecond(g, "ssi", threads=16)
        b = edges_per_microsecond(g, "binary", threads=16)
        table.add_row(name, round(h, 3), round(s, 3), round(b, 3),
                      p_h, p_s, p_b,
                      "yes" if h >= max(s, b) * 0.999 else "NO")
    return [table]


def main() -> None:
    for table in run():
        print(table.render())
        print()


if __name__ == "__main__":
    main()
