"""Property tests: delta merge == from-scratch rebuild, incremental == full."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.local import triangles_min_vertex, triangles_per_vertex_batched
from repro.dynamic import IncrementalState, UpdateBatch, apply_delta
from repro.graph.csr import CSRGraph


@st.composite
def update_cases(draw):
    """A random graph plus a random insert/delete batch over it."""
    n = draw(st.integers(min_value=2, max_value=40))
    m = draw(st.integers(min_value=0, max_value=120))
    k_ins = draw(st.integers(min_value=0, max_value=20))
    k_del = draw(st.integers(min_value=0, max_value=20))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    base = rng.integers(0, n, size=(m, 2))
    graph = CSRGraph.from_edges(base, n)
    inserts = rng.integers(0, n, size=(k_ins, 2))
    edges = graph.edges()
    edges = edges[edges[:, 0] < edges[:, 1]]
    if k_del and edges.shape[0]:
        deletes = edges[rng.choice(edges.shape[0],
                                   size=min(k_del, edges.shape[0]),
                                   replace=False)]
    else:
        deletes = np.empty((0, 2), dtype=np.int64)
    # Drop deletes that collide with an insert (ambiguous batches are
    # rejected by design; the generators never produce them).
    if inserts.size and deletes.size:
        ik = (np.minimum(inserts[:, 0], inserts[:, 1]) * n
              + np.maximum(inserts[:, 0], inserts[:, 1]))
        dk = deletes[:, 0] * n + deletes[:, 1]
        deletes = deletes[~np.isin(dk, ik)]
    return graph, inserts, deletes


@given(update_cases())
@settings(max_examples=60, deadline=None)
def test_apply_delta_equals_rebuild(case):
    graph, inserts, deletes = case
    batch = UpdateBatch.build(inserts, deletes, n=graph.n)
    res = apply_delta(graph, batch, strict=False)
    res.graph.check_invariants()
    res.graph.check_symmetric()

    old = set(map(tuple, graph.edges()))
    ins = {(int(u), int(v)) for u, v in batch.insert_edges()}
    ins |= {(v, u) for (u, v) in ins}
    dels = {(int(u), int(v)) for u, v in batch.delete_edges()}
    dels |= {(v, u) for (u, v) in dels}
    expect_edges = sorted((old | ins) - dels)
    if expect_edges:
        e = np.array(expect_edges)
        expect = CSRGraph.from_edges(e[e[:, 0] < e[:, 1]], graph.n)
    else:
        expect = CSRGraph.from_edges([], n=graph.n)
    np.testing.assert_array_equal(res.graph.offsets, expect.offsets)
    np.testing.assert_array_equal(res.graph.adjacency, expect.adjacency)


@given(update_cases())
@settings(max_examples=40, deadline=None)
def test_incremental_equals_full_recompute(case):
    graph, inserts, deletes = case
    batch = UpdateBatch.build(inserts, deletes, n=graph.n)
    state = IncrementalState.from_graph(graph)
    state.apply(batch)
    np.testing.assert_array_equal(
        state.tpv, triangles_per_vertex_batched(state.graph))
    np.testing.assert_array_equal(
        state.tmin, triangles_min_vertex(state.graph))


@given(update_cases())
@settings(max_examples=25, deadline=None)
def test_affected_set_covers_every_change(case):
    """Vertices outside the affected set keep their exact counts."""
    graph, inserts, deletes = case
    batch = UpdateBatch.build(inserts, deletes, n=graph.n)
    before = triangles_per_vertex_batched(graph)
    res = apply_delta(graph, batch, strict=False)
    after = triangles_per_vertex_batched(res.graph)
    unaffected = np.setdiff1d(np.arange(graph.n), res.affected)
    np.testing.assert_array_equal(before[unaffected], after[unaffected])
