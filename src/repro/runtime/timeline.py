"""Timeline export and rendering for traced runs.

With ``record_ops=True`` every context keeps an operation log; this module
turns those logs into analyzable/exportable forms:

* :func:`to_rows` / :func:`write_csv` — flat records for external tools;
* :func:`comm_comp_profile` — time-bucketed communication/computation
  occupancy per rank (how the paper's "communication dominates" claims
  are visualized);
* :func:`render_ascii_gantt` — a terminal Gantt chart of rank activity,
  used by the debugging workflow and the docs.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.runtime.engine import RunOutcome
from repro.runtime.trace import OpKind, RankTrace

#: Op kinds regarded as communication for occupancy profiles.
COMM_KINDS = {OpKind.GET_REMOTE, OpKind.PUT, OpKind.SEND, OpKind.RECV,
              OpKind.ALLTOALLV}


def to_rows(outcome: RunOutcome) -> list[dict]:
    """Flatten every recorded op into dict rows (rank, kind, window, ...)."""
    rows = []
    for trace in outcome.traces:
        for op in trace.ops:
            rows.append({
                "rank": trace.rank,
                "kind": op.kind.value,
                "window": op.window,
                "target": op.target,
                "offset": op.offset,
                "count": op.count,
                "nbytes": op.nbytes,
                "t": op.t,
            })
    rows.sort(key=lambda r: (r["t"], r["rank"]))
    return rows


def write_csv(outcome: RunOutcome, path: str | Path) -> int:
    """Write the op log to CSV; returns the number of rows written."""
    rows = to_rows(outcome)
    fields = ["rank", "kind", "window", "target", "offset", "count",
              "nbytes", "t"]
    with Path(path).open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields)
        writer.writeheader()
        writer.writerows(rows)
    return len(rows)


def comm_comp_profile(outcome: RunOutcome, buckets: int = 20
                      ) -> dict[int, np.ndarray]:
    """Per-rank communication occupancy over ``buckets`` time slices.

    Returns ``{rank: fraction_of_ops_that_were_comm per bucket}``; ops are
    attributed to the bucket containing their completion time.
    """
    if buckets < 1:
        raise ValueError("need at least one bucket")
    horizon = max(outcome.time, 1e-30)
    profile: dict[int, np.ndarray] = {}
    for trace in outcome.traces:
        comm = np.zeros(buckets)
        total = np.zeros(buckets)
        for op in trace.ops:
            b = min(buckets - 1, int(op.t / horizon * buckets))
            total[b] += 1
            if op.kind in COMM_KINDS:
                comm[b] += 1
        with np.errstate(invalid="ignore", divide="ignore"):
            frac = np.where(total > 0, comm / np.maximum(total, 1), 0.0)
        profile[trace.rank] = frac
    return profile


def render_ascii_gantt(outcome: RunOutcome, width: int = 60) -> str:
    """A terminal Gantt chart: one row per rank, '#' comm / '.' compute.

    Each column is a time slice; the dominant activity in the slice picks
    the glyph ('#'=communication, '.'=computation/local, ' '=idle).
    """
    if width < 1:
        raise ValueError("width must be positive")
    horizon = max(outcome.time, 1e-30)
    lines = [f"time 0 .. {horizon:.3e} s  ('#' comm, '.' compute, ' ' idle)"]
    for trace in outcome.traces:
        comm = np.zeros(width)
        comp = np.zeros(width)
        for op in trace.ops:
            b = min(width - 1, int(op.t / horizon * width))
            if op.kind in COMM_KINDS:
                comm[b] += 1
            else:
                comp[b] += 1
        glyphs = []
        for b in range(width):
            if comm[b] == 0 and comp[b] == 0:
                glyphs.append(" ")
            elif comm[b] >= comp[b]:
                glyphs.append("#")
            else:
                glyphs.append(".")
        lines.append(f"rank {trace.rank:3d} |{''.join(glyphs)}|")
    return "\n".join(lines)


def summarize_ops(trace: RankTrace) -> dict[str, int]:
    """Count recorded ops by kind for one rank."""
    counts: dict[str, int] = {}
    for op in trace.ops:
        counts[op.kind.value] = counts.get(op.kind.value, 0) + 1
    return counts
