"""Sweep driver: run algorithm variants over node counts and collect rows.

Used by the Figure 9/10 experiments, which compare four series (LCC
non-cached, LCC cached, TriC, TriC-Buffered) over a range of node counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.graph.csr import CSRGraph
from repro.utils.log import get_logger

logger = get_logger("analysis.sweep")

#: A variant maps (graph, nranks) to an object with a ``.time`` attribute.
Variant = Callable[[CSRGraph, int], Any]


@dataclass
class SweepCell:
    """One (variant, node count) measurement."""

    variant: str
    nranks: int
    time: float
    result: Any


def run_variants(
    graph: CSRGraph,
    node_counts: Sequence[int],
    variants: Mapping[str, Variant],
) -> list[SweepCell]:
    """Run every variant at every node count (deterministic order)."""
    cells: list[SweepCell] = []
    for nranks in node_counts:
        for name, fn in variants.items():
            logger.info("running %s on %s with %d ranks",
                        name, graph.name or "graph", nranks)
            result = fn(graph, nranks)
            cells.append(SweepCell(variant=name, nranks=nranks,
                                   time=result.time, result=result))
    return cells


def series(cells: Sequence[SweepCell], variant: str) -> list[tuple[int, float]]:
    """(nranks, time) pairs of one variant, ordered by nranks."""
    pts = [(c.nranks, c.time) for c in cells if c.variant == variant]
    return sorted(pts)


def speedup(cells: Sequence[SweepCell], variant: str) -> float:
    """time(smallest config) / time(largest config) — the paper's figure
    annotations (e.g. '14.0x' on LiveJournal1)."""
    pts = series(cells, variant)
    if len(pts) < 2 or pts[-1][1] == 0:
        return 1.0
    return pts[0][1] / pts[-1][1]
