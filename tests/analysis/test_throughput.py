"""Tests pinning the vectorized throughput formulas to the scalar model."""

import numpy as np
import pytest

from repro.analysis.throughput import (
    edge_length_pairs,
    edges_per_microsecond,
    kernel_times_vectorized,
)
from repro.core.threading import OpenMPModel
from repro.graph.generators import rmat


class TestVectorizedMatchesScalar:
    @pytest.mark.parametrize("threads", [1, 4, 16])
    @pytest.mark.parametrize("method", ["ssi", "binary", "hybrid"])
    def test_agreement(self, threads, method):
        rng = np.random.default_rng(4)
        la = rng.integers(0, 300, 200)
        lb = rng.integers(0, 300, 200)
        model = OpenMPModel(threads=threads)
        vec = kernel_times_vectorized(model, method, la, lb)
        for i in range(la.shape[0]):
            scalar = model.kernel_time(method, int(la[i]), int(lb[i]))
            assert vec[i] == pytest.approx(scalar, rel=1e-9), (
                f"mismatch at ({la[i]}, {lb[i]})")

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            kernel_times_vectorized(OpenMPModel(), "nope",
                                    np.array([1.0]), np.array([1.0]))


class TestEdgePairs:
    def test_pairs_shape_and_values(self):
        g = rmat(6, 4, seed=1)
        la, lb = edge_length_pairs(g)
        assert la.shape[0] == g.num_adjacency_entries
        # Spot check the first vertex's edges.
        deg = g.degrees()
        first_deg = int(deg[np.argmax(deg > 0)])
        v0 = int(np.argmax(deg > 0))
        start = int(g.offsets[v0])
        assert la[start] == deg[v0]
        assert lb[start] == deg[int(g.adjacency[start])]


class TestEdgesPerMicrosecond:
    def test_positive_and_method_ordering(self):
        g = rmat(8, 8, seed=1)
        h = edges_per_microsecond(g, "hybrid")
        s = edges_per_microsecond(g, "ssi")
        b = edges_per_microsecond(g, "binary")
        assert h > 0 and s > 0 and b > 0
        assert h >= max(s, b) * 0.999  # hybrid is per-pair minimum

    def test_empty_graph(self):
        from repro.graph.csr import CSRGraph

        g = CSRGraph.from_edges([], n=3)
        assert edges_per_microsecond(g, "hybrid") == 0.0
