"""Fairness under flash crowds: bounded waits, deadline-bounded holds."""

import pytest

from repro.serve.engine import (
    AsyncServeConfig,
    AsyncServingEngine,
    ServeConfig,
    ServingEngine,
    answers_identical,
)
from repro.serve.request import arrival_order
from repro.serve.scheduler import Scheduler
from repro.serve.workload import WorkloadSpec, default_catalog, generate_workload


class NewestFirstScheduler(Scheduler):
    """Adversarial policy: always picks the *youngest* runnable request.

    Left unchecked this starves the oldest queued requests behind a
    sustained flash crowd; the engine's ``starvation_limit`` override
    must bound every admitted request's wait anyway.
    """

    name = "newest-first"

    def pick(self, queued, last_key, pool):
        if not queued:
            raise ValueError("empty queue")
        return max(queued, key=arrival_order)


@pytest.fixture(scope="module")
def catalog():
    return default_catalog(scale=0.2)


@pytest.fixture(scope="module")
def flash_requests(catalog):
    # Sustained stampede on one session key (flash retargets the
    # burst window onto the hottest tenant's graph).
    return generate_workload(
        WorkloadSpec(n_queries=48, arrival_rate=6000.0, n_tenants=6,
                     graphs=tuple(catalog), kernels=("lcc",), seed=3,
                     update_mix=0.25).flash_crowd(factor=80.0,
                                                  fraction=0.5),
        catalog)


LIMIT = 6


@pytest.fixture(scope="module")
def adversarial_outcome(catalog, flash_requests):
    cfg = AsyncServeConfig(nranks=4, threads=2, pool_capacity=3,
                           workers=2, starvation_limit=LIMIT)
    return AsyncServingEngine(catalog, cfg,
                              NewestFirstScheduler()).serve(flash_requests)


class TestStarvation:
    def test_every_request_retires(self, adversarial_outcome,
                                   flash_requests):
        served = ({r.qid for r in adversarial_outcome.records}
                  | {u.qid for u in adversarial_outcome.update_records})
        assert served == {r.qid for r in flash_requests}

    def test_wait_bounded_in_scheduler_steps(self, adversarial_outcome):
        """Once a request hits the limit it dispatches next; it can sit
        at the limit only while non-runnable (fence/lock-blocked), and
        each dispatch decision bumps passed-over runnable requests by
        one — so queue_steps stays within one overshoot of the limit."""
        worst = max(
            [r.queue_steps for r in adversarial_outcome.records]
            + [u.queue_steps for u in adversarial_outcome.update_records])
        assert worst <= LIMIT + 1
        # The adversary actually pushed someone to the override.
        assert worst >= LIMIT

    def test_adversary_still_bit_identical(self, catalog, flash_requests,
                                           adversarial_outcome):
        """Even a hostile policy cannot change answers, only timing."""
        serial = ServingEngine(
            catalog, ServeConfig(nranks=4, threads=2, pool_capacity=3),
            NewestFirstScheduler()).serve(flash_requests)
        assert answers_identical(serial, adversarial_outcome)


class TestWindowDeadline:
    def test_hold_never_extends_past_deadline(self, catalog,
                                              flash_requests):
        """Under the crowd, no coalescing hold outlives the update SLO."""
        cfg = AsyncServeConfig(nranks=4, threads=2, pool_capacity=3,
                               workers=3, coalesce_window_s=0.5,
                               slo_update_s=0.02)
        outcome = AsyncServingEngine(catalog, cfg).serve(flash_requests)
        heads = [u for u in outcome.update_records if not u.coalesced]
        assert heads
        for u in heads:
            # The window only ever shrinks toward the deadline: a leader
            # dispatched with time to spare holds at most until
            # arrival + slo; one dispatched late (queueing ate the
            # budget) commits immediately — the hold adds nothing.
            deadline = u.arrival + cfg.slo_update_s
            assert u.held_s <= max(0.0, deadline - u.start) + 1e-12
