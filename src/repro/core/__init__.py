"""The paper's primary contribution: asynchronous distributed TC and LCC.

* :mod:`~repro.core.intersect` — binary-search and sorted-set-intersection
  counting kernels and the hybrid decision rule (paper Eq. 3);
* :mod:`~repro.core.threading` — the OpenMP edge-level parallelisation cost
  model (Section III-C);
* :mod:`~repro.core.lcc` / :mod:`~repro.core.tc` — Algorithm 3 over the
  simulated RMA runtime, with optional CLaMPI caching and double-buffering
  overlap;
* :mod:`~repro.core.local` — single-node reference implementations used as
  ground truth;
* :mod:`~repro.core.api` — the stable public entry points.
"""

from repro.core.config import CacheSpec, LCCConfig, DistributedRunResult
from repro.core.intersect import (
    binary_search_count,
    count_common,
    count_common_above,
    hybrid_count,
    ssi_count,
)
from repro.core.threading import OpenMPModel
from repro.core.local import lcc_local, triangle_count_local, triangles_per_vertex_local
from repro.core.api import (
    compute_lcc,
    count_triangles,
    run_distributed_lcc,
    run_distributed_tc,
)
from repro.core.tc2d import run_distributed_tc_2d

__all__ = [
    "CacheSpec",
    "LCCConfig",
    "DistributedRunResult",
    "ssi_count",
    "binary_search_count",
    "hybrid_count",
    "count_common",
    "count_common_above",
    "OpenMPModel",
    "lcc_local",
    "triangle_count_local",
    "triangles_per_vertex_local",
    "compute_lcc",
    "count_triangles",
    "run_distributed_lcc",
    "run_distributed_tc",
    "run_distributed_tc_2d",
]
