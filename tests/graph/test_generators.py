"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    complete_graph,
    ego_circles,
    erdos_renyi,
    path_graph,
    powerlaw_configuration,
    ring_of_cliques,
    rmat,
    star_graph,
)
from repro.graph.properties import gini, top_degree_share
from repro.utils.errors import ConfigError


class TestRMAT:
    def test_size(self):
        g = rmat(8, 8, seed=1)
        assert g.n <= 256
        assert 0 < g.m <= 8 * 256

    def test_deterministic(self):
        a = rmat(8, 8, seed=5)
        b = rmat(8, 8, seed=5)
        np.testing.assert_array_equal(a.adjacency, b.adjacency)

    def test_seed_changes_graph(self):
        a = rmat(8, 8, seed=5)
        b = rmat(8, 8, seed=6)
        assert a.m != b.m or not np.array_equal(a.adjacency, b.adjacency)

    def test_skewed_degrees(self):
        g = rmat(10, 16, seed=1)
        assert gini(g.degrees().astype(float)) > 0.3

    def test_graph500_params_validated(self):
        with pytest.raises(ConfigError):
            rmat(8, 8, a=0.9, b=0.2, c=0.2, d=0.2)
        with pytest.raises(ConfigError):
            rmat(0, 8)

    def test_undirected_by_default(self):
        g = rmat(7, 4, seed=1)
        assert not g.directed
        g.check_symmetric()


class TestErdosRenyi:
    def test_flat_degrees(self):
        g = erdos_renyi(1024, 8192, seed=2)
        assert gini(g.degrees().astype(float)) < 0.3

    def test_uniform_vs_powerlaw_contrast(self):
        # The Figure 4 premise: top-10% share differs strongly.
        uni = erdos_renyi(1024, 8192, seed=2)
        pl = powerlaw_configuration(1024, 8192, seed=2)
        assert top_degree_share(pl) > top_degree_share(uni) + 0.15

    def test_n_validation(self):
        with pytest.raises(ConfigError):
            erdos_renyi(1, 10)


class TestPowerlaw:
    def test_edge_count_near_target(self):
        g = powerlaw_configuration(2048, 16384, seed=3)
        assert g.m == pytest.approx(16384, rel=0.25)

    def test_skew_increases_with_lower_gamma(self):
        heavy = powerlaw_configuration(2048, 16384, gamma=2.0, seed=3)
        light = powerlaw_configuration(2048, 16384, gamma=3.0, seed=3)
        assert (gini(heavy.degrees().astype(float))
                > gini(light.degrees().astype(float)))

    def test_gamma_validated(self):
        with pytest.raises(ConfigError):
            powerlaw_configuration(100, 500, gamma=0.9)

    def test_directed_variant(self):
        g = powerlaw_configuration(512, 4096, seed=3, directed=True)
        assert g.directed


class TestEgoCircles:
    def test_high_clustering(self):
        from repro.core.local import lcc_local

        g = ego_circles(n_egos=2, circle_size=10, n_circles_per_ego=3, seed=4)
        scores = lcc_local(g)
        assert scores.mean() > 0.2  # dense circles -> high clustering

    def test_hubs_exist(self):
        g = ego_circles(n_egos=2, circle_size=10, n_circles_per_ego=3, seed=4)
        deg = g.degrees()
        assert deg.max() > 3 * np.median(deg[deg > 0])


class TestDeterministicShapes:
    def test_complete_graph_triangles(self):
        from repro.core.local import triangle_count_local

        g = complete_graph(6)
        assert triangle_count_local(g) == 20  # C(6,3)

    def test_ring_of_cliques_triangles(self):
        from repro.core.local import triangle_count_local

        g = ring_of_cliques(5, 4)
        assert triangle_count_local(g) == 5 * 4  # 5 * C(4,3)

    def test_star_no_triangles(self):
        from repro.core.local import triangle_count_local

        assert triangle_count_local(star_graph(10)) == 0

    def test_path_no_triangles(self):
        from repro.core.local import triangle_count_local

        assert triangle_count_local(path_graph(10)) == 0

    def test_clique_size_validated(self):
        with pytest.raises(ConfigError):
            ring_of_cliques(3, 1)
