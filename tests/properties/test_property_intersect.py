"""Property-based tests for the intersection kernels."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core.intersect import (
    binary_search_count,
    count_common_above,
    hybrid_count,
    ssi_count,
)

sorted_unique_list = st.lists(
    st.integers(min_value=0, max_value=500), max_size=80
).map(lambda xs: np.array(sorted(set(xs)), dtype=np.int32))


@given(sorted_unique_list, sorted_unique_list)
def test_kernels_match_set_semantics(a, b):
    expected = len(set(a.tolist()) & set(b.tolist()))
    assert ssi_count(a, b) == expected
    assert binary_search_count(a, b) == expected
    assert hybrid_count(a, b) == expected


@given(sorted_unique_list, sorted_unique_list)
def test_kernels_symmetric(a, b):
    assert ssi_count(a, b) == ssi_count(b, a)
    assert binary_search_count(a, b) == binary_search_count(b, a)
    assert hybrid_count(a, b) == hybrid_count(b, a)


@given(sorted_unique_list)
def test_self_intersection_is_identity(a):
    assert ssi_count(a, a) == a.shape[0]
    assert binary_search_count(a, a) == a.shape[0]


@given(sorted_unique_list, sorted_unique_list)
def test_intersection_bounded(a, b):
    c = hybrid_count(a, b)
    assert 0 <= c <= min(a.shape[0], b.shape[0])


@given(sorted_unique_list, sorted_unique_list,
       st.integers(min_value=-1, max_value=501))
def test_count_above_matches_filtered_set(a, b, threshold):
    expected = len({x for x in set(a.tolist()) & set(b.tolist())
                    if x > threshold})
    for method in ("ssi", "binary", "hybrid"):
        assert count_common_above(a, b, threshold, method) == expected


@given(sorted_unique_list, sorted_unique_list,
       st.integers(min_value=0, max_value=500))
def test_count_above_monotone_in_threshold(a, b, threshold):
    assert (count_common_above(a, b, threshold)
            <= count_common_above(a, b, threshold - 1))
