"""The CLaMPI cache proper.

One :class:`ClampiCache` instance sits between one initiating rank and one
RMA window (Figure 3 of the paper: MPI_Gets are intercepted, looked up in
the cache, and only on a miss does the remote access happen, after which
the retrieved data is stored).

Keyed by ``(target_rank, offset, count)``, entries hold the fetched bytes;
the index is a bounded-probing hash table and the data lives in a bounded
buffer managed by a best-fit allocator (AVL free list).  Evictions are
driven by a :class:`~repro.clampi.scores.ScorePolicy`; victim candidates
are drawn with deterministic sampling (a standard approximation of
global-minimum-score selection that keeps eviction O(sample) — exact
selection is used inside hash probe windows, where the candidate set is
already small).

The cache also *prices* itself: every lookup/insert/eviction charges
management overhead, which is how the paper's "CLaMPI's overhead leads to
worse performance than the non-cached version" regime (high compulsory
misses, Section IV-D2 scenario 2) emerges in our simulation.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

import numpy as np

import heapq

from repro.clampi.allocator import BufferAllocator
from repro.clampi.hashtable import HashIndex
from repro.clampi.scores import DefaultScorePolicy, ScorePolicy
from repro.clampi.stats import CacheStats
from repro.obs.trace import span as obs_span
from repro.runtime.network import MemoryModel, NetworkModel
from repro.runtime.window import Window
from repro.utils.errors import CacheError
from repro.utils.rng import derive_seed
from repro.utils.units import NS

#: Sentinel appended to the batch event log when the whole cache was
#: emptied mid-batch (flush / adaptive resize), as opposed to a single
#: eviction, whose event is the evicted key itself.
_CLEARED = object()


class ConsistencyMode(enum.Enum):
    """CLaMPI's three consistency modes (paper Section II-F)."""

    TRANSPARENT = "transparent"    # flush at every epoch closure
    ALWAYS_CACHE = "always_cache"  # data is read-only; never flush
    USER_DEFINED = "user_defined"  # application calls flush() explicitly


#: Application-score callback: ``(target, offset, count, data) -> score``.
AppScoreFn = Callable[[int, int, int, np.ndarray], float]


@dataclass
class ClampiConfig:
    """Tuning knobs of one cache instance.

    ``capacity_bytes`` and ``nslots`` are the two parameters the paper's
    Section III-B1 is about; ``score_policy`` switches between stock CLaMPI
    and the degree-centrality extension; the ``*_overhead`` constants price
    cache management (they are what makes caching non-free).
    """

    capacity_bytes: int
    nslots: int = 1024
    probe_limit: int = 8
    mode: ConsistencyMode = ConsistencyMode.ALWAYS_CACHE
    score_policy: ScorePolicy = field(default_factory=DefaultScorePolicy)
    app_score_fn: Optional[AppScoreFn] = None
    eviction_sample: int = 16
    max_evictions_per_insert: int = 64
    lookup_overhead: float = 150 * NS
    insert_overhead: float = 250 * NS
    eviction_overhead: float = 200 * NS
    seed: int = 0x5EED
    adaptive: "AdaptiveConfig | None" = None  # resolved lazily to avoid cycle

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise CacheError(f"capacity_bytes must be > 0, got {self.capacity_bytes}")
        if self.nslots <= 0:
            raise CacheError(f"nslots must be > 0, got {self.nslots}")
        if self.eviction_sample <= 0:
            raise CacheError("eviction_sample must be > 0")
        if self.score_policy.uses_app_score and self.app_score_fn is None:
            raise CacheError(
                "an application-score policy needs app_score_fn to supply scores"
            )


class BatchStream:
    """A precomputed access stream for :meth:`ClampiCache.access_batch`.

    Bundles the ``(targets, offsets, counts)`` arrays with their
    deduplicated key table, inverse mapping and (lazily built) occurrence
    index, so replay engines that push the same stream through a cache
    query after query — a resident :class:`~repro.session.Session` cluster
    — pay the ``O(m log m)`` preprocessing once.  Streams are immutable
    and cache-agnostic: the same instance may be replayed through any
    number of caches.
    """

    __slots__ = ("targets", "offsets", "counts", "m", "uniq", "inv",
                 "_occ", "_key2uid")

    def __init__(self, targets: np.ndarray, offsets: np.ndarray,
                 counts: np.ndarray):
        self.targets = np.ascontiguousarray(targets, dtype=np.int64)
        self.offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        self.counts = np.ascontiguousarray(counts, dtype=np.int64)
        if not (self.targets.shape == self.offsets.shape == self.counts.shape
                and self.targets.ndim == 1):
            raise CacheError("a batch stream needs three equal-length "
                             "1-D arrays")
        self.m = self.targets.shape[0]
        if self.m:
            keys3 = np.stack([self.targets, self.offsets, self.counts],
                             axis=1)
            self.uniq, inv = np.unique(keys3, axis=0, return_inverse=True)
            self.inv = inv.reshape(-1)
        else:
            self.uniq = np.zeros((0, 3), dtype=np.int64)
            self.inv = np.zeros(0, dtype=np.int64)
        self._occ = None
        self._key2uid = None

    def occurrence_index(self) -> tuple[np.ndarray, np.ndarray]:
        """``(order, starts)``: positions grouped by unique key."""
        if self._occ is None:
            order = np.argsort(self.inv, kind="stable")
            starts = np.searchsorted(self.inv[order],
                                     np.arange(self.uniq.shape[0] + 1))
            self._occ = (order, starts)
        return self._occ

    def key_to_uid(self) -> dict[tuple, int]:
        """Key tuple -> row in :attr:`uniq` (built on first use)."""
        if self._key2uid is None:
            self._key2uid = {
                (int(r[0]), int(r[1]), int(r[2])): i
                for i, r in enumerate(self.uniq)
            }
        return self._key2uid


class CacheEntry:
    """One cached get result."""

    __slots__ = ("key", "data", "buffer_offset", "nbytes", "last_access",
                 "n_accesses", "app_score")

    def __init__(self, key: tuple, data: np.ndarray, buffer_offset: int,
                 nbytes: int, clock: int, app_score: float | None):
        self.key = key
        self.data = data
        self.buffer_offset = buffer_offset
        self.nbytes = nbytes
        self.last_access = clock
        self.n_accesses = 1
        self.app_score = app_score


class ClampiCache:
    """Per-(rank, window) RMA cache implementing the CLaMPI design."""

    def __init__(
        self,
        window: Window,
        rank: int,
        config: ClampiConfig,
        *,
        network: NetworkModel | None = None,
        memory: MemoryModel | None = None,
    ):
        self.window = window
        self.rank = rank
        self.config = config
        self.network = network or NetworkModel.aries()
        self.memory = memory or MemoryModel()
        self.stats = CacheStats()
        self._clock = 0  # logical access clock (drives recency)
        self._seen: set[tuple] = set()  # for compulsory-miss classification
        # Victim sampling gets a private, reproducibly-derived stream so
        # identical configs evict identically across process runs.
        self._rng = random.Random(derive_seed(config.seed, "clampi-evict", rank))
        self._keys: list[tuple] = []       # sampling support:
        self._key_pos: dict[tuple, int] = {}  # key -> index in _keys
        # NumPy mirror of _keys (rows of (target, offset, count)) kept in
        # lock-step by insert/evict; access_batch resolves membership of
        # whole access streams against it without per-key Python lookups.
        self._mirror = np.zeros((64, 3), dtype=np.int64)
        self._batch_events: list | None = None  # armed during access_batch
        # Batch-replay memo: per-stream membership + entry handles, valid
        # while no insert/evict/flush changed the key set (_state_epoch).
        self._state_epoch = 0
        self._batch_memo: dict[int, tuple] = {}
        self.allocator = BufferAllocator(config.capacity_bytes)
        self.index = HashIndex(config.nslots, config.probe_limit)
        self._tuner = None
        if config.adaptive is not None:
            from repro.clampi.adaptive import AdaptiveTuner

            self._tuner = AdaptiveTuner(config.adaptive)

    # -- CacheProtocol -----------------------------------------------------------
    def access(self, target: int, offset: int, count: int
               ) -> tuple[np.ndarray, float, bool]:
        """Serve a get through the cache.

        Returns ``(data, duration_seconds, hit)``.  Exact-match semantics:
        a cached ``(target, offset, count)`` triple only serves an identical
        request, as in CLaMPI (no partial-range reuse).
        """
        self._clock += 1
        cfg = self.config
        duration = cfg.lookup_overhead
        self.stats.mgmt_time += cfg.lookup_overhead
        key = (target, offset, count)
        entry: CacheEntry | None = self.index.lookup(key)

        if entry is not None:
            entry.last_access = self._clock
            entry.n_accesses += 1
            duration += self.memory.cache_service_time(entry.nbytes)
            self.stats.hits += 1
            self.stats.bytes_served_from_cache += entry.nbytes
            return entry.data, duration, True

        # Miss: fetch over the network.
        self.stats.misses += 1
        if key not in self._seen:
            self.stats.compulsory_misses += 1
            self._seen.add(key)
        data = self.window.read(self.rank, target, offset, count)
        nbytes = data.nbytes
        duration += self.network.get_time(nbytes)
        self.stats.bytes_fetched += nbytes

        duration += self._try_insert(key, data, target, offset, count, nbytes)

        if self._tuner is not None:
            duration += self._tuner.observe(self)

        return data, duration, False

    def on_epoch_close(self) -> None:
        """Epoch-closure hook: transparent mode flushes (paper Section II-F)."""
        if self.config.mode is ConsistencyMode.TRANSPARENT:
            self.flush()

    # -- batched access ------------------------------------------------------------
    def access_batch(self, targets: np.ndarray | None = None,
                     offsets: np.ndarray | None = None,
                     counts: np.ndarray | None = None, *,
                     stream: BatchStream | None = None
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Serve a whole get stream; returns ``(durations, hits)`` arrays.

        Semantically identical to calling :meth:`access` once per element —
        every hit/miss verdict, duration, statistic, eviction decision and
        entry-metadata update comes out bit-identical — but runs of
        consecutive hits are resolved with NumPy lookups against the
        mirrored array-backed key index; only state-changing events (each
        miss, with its insert/evict/resize side effects) fall back to the
        scalar path.  The cached payloads are not materialized: replay
        callers only need timing and verdicts, the data stays in the cache.

        Runs of hits are safe to vectorize because a hit never changes
        cache *membership*: between two misses the key set is frozen, so
        one membership query decides every access in the run.  Each scalar
        miss logs the evictions/flushes it caused and the predictions for
        the remaining stream are patched incrementally.

        Pass a prebuilt :class:`BatchStream` via ``stream`` to amortize
        the stream preprocessing across repeated replays of the same
        access pattern (how warm resident-session queries run).
        """
        if stream is None:
            stream = BatchStream(targets, offsets, counts)
        m = stream.m
        targets, offsets, counts = stream.targets, stream.offsets, stream.counts
        durations = np.empty(m, dtype=np.float64)
        hits = np.zeros(m, dtype=bool)
        if m == 0:
            return durations, hits
        if self._batch_events is not None:
            raise CacheError("access_batch is not reentrant")

        uniq, inv = stream.uniq, stream.inv
        # Membership and entry handles survive across replays of the same
        # stream while the key set is unchanged (warm resident queries).
        memo = self._batch_memo.get(id(stream))
        if (memo is not None and memo[0] == self._state_epoch
                and memo[1] is stream.uniq):
            member = memo[2].copy()
            entries = memo[3]
        else:
            member = self._member_mask(uniq)
            # Entry objects by unique key, filled lazily and dropped when
            # the entry is evicted or the cache cleared.
            entries = [None] * uniq.shape[0]

        # Per-position hit costs, precomputed once: a hit's duration and
        # byte volume depend only on the key, never on cache state.
        mem = self.memory
        nbytes_all = counts * self.window.itemsize
        service = mem.cache_hit_latency + nbytes_all / mem.cache_bandwidth
        hit_dur = self.config.lookup_overhead + service
        nbytes_pref = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(nbytes_all, out=nbytes_pref[1:])

        # Candidate miss positions: the initially-predicted ones (sorted)
        # plus positions re-flagged after evictions, merged via a heap.
        init_miss = np.flatnonzero(~member[inv])
        ptr = 0
        heap: list[int] = []
        key2uid: dict[tuple, int] | None = None
        cur = 0

        def pop_candidate() -> int | None:
            nonlocal ptr
            while True:
                a = int(init_miss[ptr]) if ptr < init_miss.shape[0] else None
                b = heap[0] if heap else None
                if a is None and b is None:
                    return None
                if b is None or (a is not None and a <= b):
                    ptr += 1
                    c = a
                else:
                    c = heapq.heappop(heap)
                if c >= cur:
                    return c

        def push_next(uid: int, after: int) -> None:
            """Queue the next occurrence of ``uid`` past ``after`` as a miss."""
            occ_order, occ_starts = stream.occurrence_index()
            lo, hi = int(occ_starts[uid]), int(occ_starts[uid + 1])
            positions = occ_order[lo:hi]
            j = int(np.searchsorted(positions, after, side="right"))
            if j < positions.shape[0]:
                heapq.heappush(heap, int(positions[j]))

        events: list = []
        self._batch_events = events
        try:
            while True:
                p = pop_candidate()
                while p is not None and member[inv[p]]:
                    p = pop_candidate()  # key reinserted since prediction
                stop = m if p is None else p
                if stop > cur:
                    self._apply_hit_run(uniq, inv, entries, cur, stop,
                                        durations, hit_dur, nbytes_pref)
                    hits[cur:stop] = True
                if p is None:
                    # Prune memos stale epochs made useless (they would
                    # never validate again) and bound the table so a
                    # cache replaying many one-off streams cannot pin
                    # evicted entries or grow without limit.
                    epoch = self._state_epoch
                    stale = [k for k, v in self._batch_memo.items()
                             if v[0] != epoch]
                    for k in stale:
                        del self._batch_memo[k]
                    if len(self._batch_memo) >= 16:
                        self._batch_memo.clear()
                    self._batch_memo[id(stream)] = (epoch, stream.uniq,
                                                    member, entries)
                    return durations, hits
                key = (int(targets[p]), int(offsets[p]), int(counts[p]))
                _, dt, was_hit = self.access(*key)
                if was_hit:  # pragma: no cover - mirror invariant
                    raise CacheError("access_batch: key index mirror diverged")
                durations[p] = dt
                if events:
                    for ev in events:
                        if ev is _CLEARED:
                            # Flush/resize: every later access is a
                            # candidate miss again.
                            member[:] = False
                            entries = [None] * uniq.shape[0]
                            init_miss = np.arange(p + 1, m, dtype=np.int64)
                            ptr = 0
                            heap.clear()
                        else:
                            if key2uid is None:
                                key2uid = stream.key_to_uid()
                            uid = key2uid.get(ev)
                            if uid is not None:
                                entries[uid] = None
                                if member[uid]:
                                    member[uid] = False
                                    push_next(uid, p)
                    events.clear()
                u = int(inv[p])
                entries[u] = None  # a fresh entry replaced any cached one
                member[u] = key in self._key_pos
                if not member[u]:
                    push_next(u, p)  # insert failed: later uses still miss
                cur = p + 1
        finally:
            self._batch_events = None

    def _member_mask(self, uniq: np.ndarray) -> np.ndarray:
        """Vectorized membership of unique key rows against the mirror."""
        n_live = len(self._keys)
        if n_live == 0:
            return np.zeros(uniq.shape[0], dtype=bool)
        stacked = np.concatenate([uniq, self._mirror[:n_live]])
        _, inv2, cnt = np.unique(stacked, axis=0, return_inverse=True,
                                 return_counts=True)
        inv2 = inv2.reshape(-1)
        # Both inputs are duplicate-free, so count 2 == present in both.
        return cnt[inv2[:uniq.shape[0]]] > 1

    #: Hit runs at most this long update entry metadata with a plain loop;
    #: longer runs amortize the vectorized group-by machinery.
    _SMALL_RUN = 32

    def _lookup_uid(self, uniq: np.ndarray, entries: list, uid: int):
        entry = entries[uid]
        if entry is None:
            row = uniq[uid]
            entry = self.index.lookup((int(row[0]), int(row[1]), int(row[2])))
            entries[uid] = entry
        return entry

    def _apply_hit_run(self, uniq: np.ndarray, inv: np.ndarray, entries: list,
                       start: int, stop: int, durations: np.ndarray,
                       hit_dur: np.ndarray, nbytes_pref: np.ndarray) -> None:
        """Apply ``stop - start`` consecutive hits in one vectorized step."""
        k = stop - start
        cfg = self.config
        durations[start:stop] = hit_dur[start:stop]
        self.stats.hits += k
        self.stats.bytes_served_from_cache += int(nbytes_pref[stop]
                                                  - nbytes_pref[start])
        c0 = self._clock
        self._clock = c0 + k
        if k <= self._SMALL_RUN:
            # mgmt_time: k sequential `+= lookup_overhead` additions.
            mgmt = self.stats.mgmt_time
            overhead = cfg.lookup_overhead
            clock = c0
            for i in range(start, stop):
                mgmt += overhead
                clock += 1
                entry = self._lookup_uid(uniq, entries, inv[i])
                entry.n_accesses += 1
                entry.last_access = clock
            self.stats.mgmt_time = mgmt
            return
        # cumsum is a strict left-to-right fold, so this reproduces the
        # scalar `+=` sequence bit-identically.
        fold = np.empty(k + 1, dtype=np.float64)
        fold[0] = self.stats.mgmt_time
        fold[1:] = cfg.lookup_overhead
        self.stats.mgmt_time = float(np.cumsum(fold)[-1])
        sub = inv[start:stop]
        uids, run_inv = np.unique(sub, return_inverse=True)
        n_acc = np.bincount(run_inv)
        last_rel = np.full(uids.shape[0], -1, dtype=np.int64)
        np.maximum.at(last_rel, run_inv, np.arange(k, dtype=np.int64))
        for i in range(uids.shape[0]):
            entry = self._lookup_uid(uniq, entries, int(uids[i]))
            entry.n_accesses += int(n_acc[i])
            entry.last_access = c0 + 1 + int(last_rel[i])

    # -- insertion & eviction ------------------------------------------------------
    def _prospective_score(self, key: tuple, app_score: float | None) -> float:
        """Score the candidate entry *as if* freshly inserted (for guards)."""
        probe = CacheEntry(key, np.empty(0), 0, 0, self._clock, app_score)
        return self.config.score_policy.victim_score(probe, self.allocator,
                                                     self._clock)

    def _try_insert(self, key: tuple, data: np.ndarray, target: int,
                    offset: int, count: int, nbytes: int) -> float:
        """Attempt to cache a fetched entry; returns management time spent."""
        cfg = self.config
        t = cfg.insert_overhead
        self.stats.mgmt_time += cfg.insert_overhead
        if nbytes <= 0 or nbytes > cfg.capacity_bytes:
            self.stats.insert_failures += 1
            return t

        app_score: float | None = None
        if cfg.app_score_fn is not None:
            app_score = float(cfg.app_score_fn(target, offset, count, data))
        guard = cfg.score_policy.uses_app_score
        new_score = self._prospective_score(key, app_score) if guard else None

        # 1. Buffer space (capacity evictions).
        buf_off = self.allocator.alloc(nbytes)
        evictions = 0
        while buf_off is None:
            if evictions >= cfg.max_evictions_per_insert:
                self.stats.insert_failures += 1
                return t
            victim = self._sample_victim()
            if victim is None:
                self.stats.insert_failures += 1
                return t
            if guard and self.config.score_policy.victim_score(
                victim, self.allocator, self._clock
            ) > new_score:
                # Everything sampled is more valuable than the newcomer:
                # do not cache (protects high-degree entries, paper III-B2).
                self.stats.insert_failures += 1
                return t
            self._evict(victim, conflict=False)
            t += cfg.eviction_overhead
            self.stats.mgmt_time += cfg.eviction_overhead
            evictions += 1
            buf_off = self.allocator.alloc(nbytes)

        entry = CacheEntry(key, data, buf_off, nbytes, self._clock, app_score)

        # 2. Hash slot (conflict evictions inside the probe window).
        if not self.index.insert(key, entry):
            self.stats.hash_conflicts += 1
            window_entries = [e for _, e in self.index.probe_window(key)]
            if not window_entries:
                # Pathological (probe window empty yet insert failed).
                self.allocator.free(buf_off)
                self.stats.insert_failures += 1
                return t  # pragma: no cover - defensive
            victim = min(
                window_entries,
                key=lambda e: cfg.score_policy.victim_score(
                    e, self.allocator, self._clock),
            )
            if guard and cfg.score_policy.victim_score(
                victim, self.allocator, self._clock
            ) > new_score:
                self.allocator.free(buf_off)
                self.stats.insert_failures += 1
                return t
            self._evict(victim, conflict=True)
            t += cfg.eviction_overhead
            self.stats.mgmt_time += cfg.eviction_overhead
            if not self.index.insert(key, entry):  # pragma: no cover - defensive
                self.allocator.free(buf_off)
                self.stats.insert_failures += 1
                return t

        pos = len(self._keys)
        if pos >= self._mirror.shape[0]:
            grown = np.zeros((2 * self._mirror.shape[0], 3), dtype=np.int64)
            grown[:pos] = self._mirror[:pos]
            self._mirror = grown
        self._mirror[pos, 0] = target
        self._mirror[pos, 1] = offset
        self._mirror[pos, 2] = count
        self._key_pos[key] = pos
        self._keys.append(key)
        self._state_epoch += 1
        return t

    def _sample_victim(self) -> CacheEntry | None:
        """Pick the lowest-score entry among a deterministic random sample."""
        n = len(self._keys)
        if n == 0:
            return None
        sample_size = min(self.config.eviction_sample, n)
        if sample_size == n:
            candidates = list(self._keys)
        else:
            candidates = [self._keys[self._rng.randrange(n)]
                          for _ in range(sample_size)]
        policy = self.config.score_policy
        best_key = min(
            candidates,
            key=lambda k: policy.victim_score(
                self.index.lookup(k), self.allocator, self._clock),
        )
        return self.index.lookup(best_key)

    def _remove_entry(self, entry: CacheEntry) -> None:
        """Remove an entry from index, buffer and sampling list (no stats)."""
        self.index.remove(entry.key)
        self.allocator.free(entry.buffer_offset)
        pos = self._key_pos.pop(entry.key)
        last = self._keys.pop()
        if pos < len(self._keys):
            self._keys[pos] = last
            self._key_pos[last] = pos
            self._mirror[pos] = self._mirror[len(self._keys)]
        self._state_epoch += 1
        if self._batch_events is not None:
            self._batch_events.append(entry.key)

    def _evict(self, entry: CacheEntry, *, conflict: bool) -> None:
        """Remove an entry, counting it as a score-driven eviction."""
        self._remove_entry(entry)
        if conflict:
            self.stats.conflict_evictions += 1
        else:
            self.stats.capacity_evictions += 1

    # -- invalidation ---------------------------------------------------------------
    def invalidate(self, keys: "Iterable[tuple]") -> tuple[int, int]:
        """Targeted eviction: drop exactly the entries matching ``keys``.

        The dynamic-graph subsystem calls this after an edge-update batch
        with the ``(target, offset, count)`` triples whose remote data
        changed, so stale entries are gone while the rest of the warm
        cache stays resident (unlike :meth:`flush`, which drops
        everything).  Keys not present are ignored.  Each dropped entry is
        priced like an eviction (``eviction_overhead``) and counted in
        ``stats.invalidations``.  Returns ``(entries_dropped,
        bytes_dropped)``.
        """
        if self._batch_events is not None:
            raise CacheError("invalidate() is not allowed during access_batch")
        with obs_span("invalidate", cat="cache") as sp:
            dropped = 0
            dropped_bytes = 0
            for key in keys:
                entry = self.index.lookup(tuple(key))
                if entry is None:
                    continue
                self._remove_entry(entry)
                dropped += 1
                dropped_bytes += entry.nbytes
                self.stats.mgmt_time += self.config.eviction_overhead
            self.stats.invalidations += dropped
            self.stats.invalidated_bytes += dropped_bytes
            sp.note(dropped=dropped, bytes=dropped_bytes)
        return dropped, dropped_bytes

    def rekey(self, pairs: "Iterable[tuple[tuple, tuple]]") -> tuple[int, int]:
        """Remap entries whose cached bytes merely *moved* in the window.

        ``pairs`` is an iterable of ``(old_key, new_key)`` tuples — the
        dynamic-graph resync computes them for adjacency lists that an
        update shifted without changing their content.  Each present
        ``old_key`` entry is re-registered under ``new_key``, keeping its
        buffer, data and score metadata, so the warmth survives where
        plain invalidation would drop it.

        The remap is two-phase (detach everything, then reinsert) because
        a new key may equal *another* pair's old key when rows slide past
        each other.  An entry whose new slot is already occupied — only
        possible by a positionally-retained entry serving identical bytes
        — or whose probe window is full is dropped and counted as an
        invalidation instead.  Each processed pair is priced like an
        eviction.  Returns ``(entries_rekeyed, bytes_rekeyed)``.
        """
        if self._batch_events is not None:
            raise CacheError("rekey() is not allowed during access_batch")
        with obs_span("rekey", cat="cache") as sp:
            moved, moved_bytes = self._rekey(pairs)
            sp.note(moved=moved, bytes=moved_bytes)
        return moved, moved_bytes

    def _rekey(self, pairs: "Iterable[tuple[tuple, tuple]]"
               ) -> tuple[int, int]:
        detached: list[tuple[CacheEntry, tuple]] = []
        for old_key, new_key in pairs:
            old_key, new_key = tuple(old_key), tuple(new_key)
            entry = self.index.lookup(old_key)
            if entry is None or old_key == new_key:
                continue
            self.index.remove(old_key)
            pos = self._key_pos.pop(old_key)
            last = self._keys.pop()
            if pos < len(self._keys):
                self._keys[pos] = last
                self._key_pos[last] = pos
                self._mirror[pos] = self._mirror[len(self._keys)]
            detached.append((entry, new_key))
        moved = 0
        moved_bytes = 0
        for entry, new_key in detached:
            self.stats.mgmt_time += self.config.eviction_overhead
            entry.key = new_key
            if (self.index.lookup(new_key) is None
                    and self.index.insert(new_key, entry)):
                pos = len(self._keys)
                if pos >= self._mirror.shape[0]:
                    grown = np.zeros((2 * self._mirror.shape[0], 3),
                                     dtype=np.int64)
                    grown[:pos] = self._mirror[:pos]
                    self._mirror = grown
                self._mirror[pos] = new_key
                self._key_pos[new_key] = pos
                self._keys.append(new_key)
                moved += 1
                moved_bytes += entry.nbytes
            else:
                self.allocator.free(entry.buffer_offset)
                self.stats.invalidations += 1
                self.stats.invalidated_bytes += entry.nbytes
        if detached:
            self._state_epoch += 1
        self.stats.rekeys += moved
        self.stats.rekeyed_bytes += moved_bytes
        return moved, moved_bytes

    # -- maintenance ---------------------------------------------------------------
    def flush(self) -> None:
        """Drop every entry (compulsory-miss history is preserved)."""
        with obs_span("flush", cat="cache", entries=len(self._keys)):
            self.index.clear()
            self.allocator = BufferAllocator(self.config.capacity_bytes)
            self._keys.clear()
            self._key_pos.clear()
            self._state_epoch += 1
            if self._batch_events is not None:
                self._batch_events.append(_CLEARED)
            self.stats.flushes += 1

    def resize(self, *, nslots: int | None = None,
               capacity_bytes: int | None = None) -> None:
        """Adaptive-tuning hook: change geometry, flushing as CLaMPI does."""
        if nslots is not None:
            if nslots <= 0:
                raise CacheError(f"nslots must be > 0, got {nslots}")
            self.config.nslots = int(nslots)
        if capacity_bytes is not None:
            if capacity_bytes <= 0:
                raise CacheError(f"capacity must be > 0, got {capacity_bytes}")
            self.config.capacity_bytes = int(capacity_bytes)
        self.index = HashIndex(self.config.nslots, self.config.probe_limit)
        self.allocator = BufferAllocator(self.config.capacity_bytes)
        self._keys.clear()
        self._key_pos.clear()
        self._state_epoch += 1
        if self._batch_events is not None:
            self._batch_events.append(_CLEARED)
        self.stats.flushes += 1
        self.stats.adaptive_resizes += 1

    # -- inspection -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._keys)

    @property
    def used_bytes(self) -> int:
        return self.allocator.used_bytes

    def entries(self) -> list[CacheEntry]:
        """Snapshot of live entries (reporting / tests)."""
        return [self.index.lookup(k) for k in self._keys]

    def check_invariants(self) -> None:
        """Cross-structure consistency (exercised by property tests)."""
        self.allocator.check_invariants()
        assert len(self._keys) == len(self._key_pos) == len(self.index)
        total = 0
        for key in self._keys:
            entry = self.index.lookup(key)
            assert entry is not None, f"indexed key missing: {key}"
            assert self.allocator.block_size(entry.buffer_offset) == entry.nbytes
            total += entry.nbytes
        assert total == self.allocator.used_bytes
