"""Tests for the compute cost model and the hybrid decision rule."""

import math

import pytest

from repro.runtime.compute import ComputeModel, prefer_ssi


class TestPreferSSI:
    def test_equal_lengths_prefer_ssi(self):
        # |B|/|A| = 1 <= log2(|B|) - 1 for |B| >= 4.
        assert prefer_ssi(100, 100)
        assert prefer_ssi(8, 8)

    def test_highly_skewed_prefers_binary(self):
        # |B|/|A| = 1000 > log2(10000) - 1 ~ 12.3.
        assert not prefer_ssi(10, 10_000)

    def test_rule_boundary(self):
        # At |B| = 1024: rule is |B|/|A| <= 9; |A| = 128 gives ratio 8 (SSI),
        # |A| = 64 gives ratio 16 (binary).
        assert prefer_ssi(128, 1024)
        assert not prefer_ssi(64, 1024)

    def test_symmetric_in_arguments(self):
        assert prefer_ssi(10, 1000) == prefer_ssi(1000, 10)

    def test_degenerate_sizes_default_to_ssi(self):
        assert prefer_ssi(0, 100)
        assert prefer_ssi(1, 2)


class TestComputeModel:
    def test_ssi_linear_in_total_length(self):
        cm = ComputeModel()
        base = cm.ssi_time(0, 0)
        assert cm.ssi_time(100, 100) - base == pytest.approx(200 * cm.c_ssi)

    def test_binary_uses_shorter_as_keys(self):
        cm = ComputeModel()
        assert cm.binary_search_time(10, 1000) == cm.binary_search_time(1000, 10)
        expected = cm.edge_overhead + 10 * math.log2(1000) * cm.c_bs
        assert cm.binary_search_time(10, 1000) == pytest.approx(expected)

    def test_binary_beats_ssi_on_skewed_pairs(self):
        cm = ComputeModel()
        assert cm.binary_search_time(10, 100_000) < cm.ssi_time(10, 100_000)

    def test_ssi_beats_binary_on_equal_pairs(self):
        cm = ComputeModel()
        assert cm.ssi_time(1000, 1000) < cm.binary_search_time(1000, 1000)

    def test_hybrid_picks_winner(self):
        cm = ComputeModel()
        # Equal lists: hybrid == ssi.
        assert cm.hybrid_time(500, 500) == cm.ssi_time(500, 500)
        # Skewed: hybrid == binary.
        assert cm.hybrid_time(10, 100_000) == cm.binary_search_time(10, 100_000)

    def test_kernel_time_dispatch(self):
        cm = ComputeModel()
        assert cm.kernel_time("ssi", 5, 7) == cm.ssi_time(5, 7)
        assert cm.kernel_time("binary", 5, 7) == cm.binary_search_time(5, 7)
        assert cm.kernel_time("hybrid", 5, 7) == cm.hybrid_time(5, 7)
        with pytest.raises(ValueError):
            cm.kernel_time("quantum", 5, 7)

    def test_bs_cost_per_comparison_higher(self):
        # Random access must be pricier than streaming (Section IV-C).
        cm = ComputeModel()
        assert cm.c_bs > cm.c_ssi
