"""Tests for the network and memory cost models."""


import pytest

from repro.runtime.network import MemoryModel, NetworkModel
from repro.utils.errors import ConfigError
from repro.utils.units import GiB, KiB, MiB


class TestNetworkModel:
    def test_get_time_affine_in_size(self):
        net = NetworkModel.aries()
        t0 = net.get_time(0)
        t1 = net.get_time(1000)
        t2 = net.get_time(2000)
        assert t0 == pytest.approx(net.alpha)
        assert t2 - t1 == pytest.approx(t1 - t0)

    def test_get_time_monotone(self):
        net = NetworkModel.aries()
        times = [net.get_time(s) for s in (0, 64, 4096, MiB, 32 * MiB)]
        assert times == sorted(times)

    def test_rendezvous_penalty_above_threshold(self):
        net = NetworkModel.aries()
        below = net.get_time(net.rendezvous_threshold)
        above = net.get_time(net.rendezvous_threshold + 1)
        assert above - below > net.rendezvous_penalty * 0.99

    def test_put_matches_get(self):
        net = NetworkModel.aries()
        assert net.put_time(12345) == net.get_time(12345)

    def test_message_time_adds_matching_overhead(self):
        net = NetworkModel.aries()
        assert net.message_time(100) == pytest.approx(
            net.get_time(100) + net.match_overhead
        )

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel.aries().get_time(-1)

    def test_barrier_zero_for_single_rank(self):
        assert NetworkModel.aries().barrier_time(1) == 0.0

    def test_barrier_log_scaling(self):
        net = NetworkModel.aries()
        assert net.barrier_time(8) == pytest.approx(3 * net.barrier_alpha)
        assert net.barrier_time(64) == pytest.approx(6 * net.barrier_alpha)
        assert net.barrier_time(5) == pytest.approx(3 * net.barrier_alpha)

    def test_alltoallv_zero_for_single_rank(self):
        assert NetworkModel.aries().alltoallv_rank_time(100, 100, 1) == 0.0

    def test_alltoallv_scales_with_bytes(self):
        net = NetworkModel.aries()
        small = net.alltoallv_rank_time(KiB, KiB, 8)
        big = net.alltoallv_rank_time(MiB, MiB, 8)
        assert big > small

    def test_alltoallv_latency_grows_with_ranks(self):
        net = NetworkModel.aries()
        assert (net.alltoallv_rank_time(0, 0, 64)
                > net.alltoallv_rank_time(0, 0, 4))

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            NetworkModel(alpha=0)
        with pytest.raises(ConfigError):
            NetworkModel(beta=-1)

    def test_presets_distinct(self):
        aries = NetworkModel.aries()
        eth = NetworkModel.ethernet()
        assert eth.alpha > aries.alpha
        assert eth.beta > aries.beta

    def test_zero_latency_preset_is_cheap(self):
        z = NetworkModel.zero_latency()
        assert z.get_time(0) < 1e-9


class TestMemoryModel:
    def test_local_read_affine(self):
        mem = MemoryModel()
        assert mem.local_read_time(0) == pytest.approx(mem.dram_latency)
        assert mem.local_read_time(GiB) > mem.local_read_time(MiB)

    def test_cache_service_cheaper_than_dram(self):
        mem = MemoryModel()
        assert mem.cache_service_time(256) < mem.local_read_time(256)

    def test_cache_hit_far_cheaper_than_network(self):
        # The whole point of CLaMPI: a hit is orders of magnitude cheaper.
        mem, net = MemoryModel(), NetworkModel.aries()
        assert mem.cache_service_time(1024) * 20 < net.get_time(1024)

    def test_negative_sizes_rejected(self):
        mem = MemoryModel()
        with pytest.raises(ValueError):
            mem.local_read_time(-5)
        with pytest.raises(ValueError):
            mem.cache_service_time(-5)
