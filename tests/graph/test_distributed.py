"""Tests for DistributedCSR and the two-get remote-read protocol."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.distributed import DistributedCSR, distribute
from repro.graph.generators import rmat
from repro.graph.partition import BlockPartition1D, CyclicPartition1D
from repro.runtime.engine import Engine
from repro.utils.errors import PartitionError


@pytest.fixture
def dist4():
    g = rmat(7, 8, seed=2)
    eng = Engine(4)
    d = distribute(g, eng)
    d.open_epochs()
    return g, eng, d


class TestConstruction:
    def test_windows_registered(self, dist4):
        g, eng, d = dist4
        assert "offsets" in eng.windows
        assert "adjacencies" in eng.windows

    def test_rank_mismatch_rejected(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        eng = Engine(2)
        with pytest.raises(PartitionError):
            DistributedCSR(g, BlockPartition1D(g.n, 4), eng)

    def test_vertex_mismatch_rejected(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        eng = Engine(2)
        with pytest.raises(PartitionError):
            DistributedCSR(g, BlockPartition1D(99, 2), eng)

    def test_csr_nbytes_matches_graph(self, dist4):
        g, eng, d = dist4
        # Window offsets carry one extra slot per rank (n_local + 1 each).
        assert d.w_adj.total_nbytes() == g.adjacency.nbytes


class TestLocalAccess:
    def test_local_adj_matches_graph(self, dist4):
        g, eng, d = dist4
        for rank in range(4):
            for v in d.local_vertices(rank)[:5]:
                np.testing.assert_array_equal(d.local_adj(rank, int(v)),
                                              g.adj(int(v)))


class TestRemoteRead:
    @pytest.mark.parametrize("partition_cls", [BlockPartition1D,
                                               CyclicPartition1D])
    def test_read_adjacency_matches_graph(self, partition_cls):
        g = rmat(7, 8, seed=2)
        eng = Engine(4)
        d = DistributedCSR(g, partition_cls(g.n, 4), eng)
        d.open_epochs()
        ctx = eng.contexts[0]
        for v in range(0, g.n, 7):
            np.testing.assert_array_equal(d.read_adjacency(ctx, v),
                                          g.adj(v), err_msg=f"vertex {v}")

    def test_remote_read_issues_two_gets(self, dist4):
        g, eng, d = dist4
        ctx = eng.contexts[0]
        remote_v = int(d.local_vertices(3)[0])
        before = ctx.trace.n_remote_gets
        d.read_adjacency(ctx, remote_v)
        assert ctx.trace.n_remote_gets == before + 2

    def test_local_read_issues_no_gets(self, dist4):
        g, eng, d = dist4
        ctx = eng.contexts[0]
        local_v = int(d.local_vertices(0)[0])
        d.read_adjacency(ctx, local_v)
        assert ctx.trace.n_remote_gets == 0

    def test_timed_variant_leaves_clock(self, dist4):
        g, eng, d = dist4
        ctx = eng.contexts[1]
        remote_v = int(d.local_vertices(2)[0])
        data, dt = d.read_adjacency_timed(ctx, remote_v)
        np.testing.assert_array_equal(data, g.adj(remote_v))
        assert dt > 0
        assert ctx.now == 0.0

    def test_nonlocal_nbytes(self, dist4):
        g, eng, d = dist4
        for r in range(4):
            assert (d.nonlocal_adjacency_nbytes(r)
                    == d.w_adj.total_nbytes() - d.w_adj.part_nbytes(r))


class TestEpochs:
    def test_close_epochs_fires_cache_hooks(self):
        g = rmat(6, 4, seed=1)
        eng = Engine(2)
        d = distribute(g, eng)
        d.open_epochs()

        fired = []

        class Hook:
            def access(self, *a):
                raise AssertionError

            def on_epoch_close(self):
                fired.append(True)

        eng.contexts[0].attach_cache(d.w_adj, Hook())
        d.close_epochs()
        assert fired == [True]
