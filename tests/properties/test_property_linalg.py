"""Property tests: masked SpGEMM == edge-centric oracle, exactly.

Random catalogs × square grid shapes × cached/uncached × cold/warm: the
algebraic ``tc2d_spgemm`` replay must reproduce the edge-centric
``tc2d`` oracle's triangle counts and virtual clocks with exact float
equality, and ``lcc2d`` must reproduce the 1D ``lcc`` scores bit for
bit.  Also the packed-CSR wire format: ``pack_block`` round-trips
through ``_unpack_block`` for arbitrary sparse blocks.
"""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CacheSpec, LCCConfig
from repro.core.linalg import run_tc2d_spgemm
from repro.core.local import triangle_count_local
from repro.core.tc2d import _unpack_block, pack_block, run_distributed_tc_2d
from repro.graph.csr import CSRGraph
from repro.session import Session, run_kernel
from repro.utils.errors import ConfigError


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=3, max_value=48))
    m = draw(st.integers(min_value=0, max_value=140))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(m, 2))
    return CSRGraph.from_edges(edges, n)


square_nranks = st.sampled_from([1, 4, 9, 16])


@given(random_graphs(), square_nranks)
@settings(max_examples=50, deadline=None)
def test_spgemm_matches_oracle_uncached(graph, nranks):
    cfg = LCCConfig(nranks=nranks)
    oracle = run_distributed_tc_2d(graph, cfg)
    res = run_tc2d_spgemm(graph, cfg)
    assert res.global_triangles == oracle.global_triangles
    assert res.global_triangles == triangle_count_local(graph)
    assert res.outcome.clocks == oracle.outcome.clocks
    assert res.outcome.results == oracle.outcome.results


@given(random_graphs(), st.sampled_from([4, 9]),
       st.integers(min_value=256, max_value=1 << 14))
@settings(max_examples=25, deadline=None)
def test_spgemm_matches_oracle_cached_cold_and_warm(graph, nranks,
                                                    cache_bytes):
    spec = CacheSpec(offsets_bytes=0, adj_bytes=cache_bytes)
    kw = dict(nranks=nranks, cache=spec)
    with Session(graph, LCCConfig(fast_path=True, **kw)) as fast, \
            Session(graph, LCCConfig(fast_path=False, **kw)) as loop:
        for _ in range(2):  # cold, then warm reuse
            rf = fast.run("tc2d_spgemm", keep_cache=True)
            rl = loop.run("tc2d_spgemm", keep_cache=True)
            assert rf.global_triangles == rl.global_triangles
            assert rf.outcome.clocks == rl.outcome.clocks
            assert [c.stats.snapshot() for c in fast._c2d.caches] == \
                [c.stats.snapshot() for c in loop._c2d.caches]


@given(random_graphs(), st.sampled_from([4, 9]),
       st.integers(min_value=256, max_value=1 << 14))
@settings(max_examples=25, deadline=None)
def test_cached_tc2d_batched_replay_matches_loop(graph, nranks, cache_bytes):
    spec = CacheSpec(offsets_bytes=0, adj_bytes=cache_bytes)
    kw = dict(nranks=nranks, cache=spec)
    with Session(graph, LCCConfig(fast_path=True, **kw)) as fast, \
            Session(graph, LCCConfig(fast_path=False, **kw)) as loop:
        for _ in range(2):
            rf = fast.run("tc2d", keep_cache=True)
            rl = loop.run("tc2d", keep_cache=True)
            assert rf.global_triangles == rl.global_triangles
            assert rf.outcome.clocks == rl.outcome.clocks


@given(random_graphs(), square_nranks)
@settings(max_examples=40, deadline=None)
def test_lcc2d_matches_1d_scores(graph, nranks):
    cfg = LCCConfig(nranks=nranks)
    r2 = run_kernel("lcc2d", graph, cfg)
    r1 = run_kernel("lcc", graph, cfg)
    np.testing.assert_array_equal(r2.raw.lcc, r1.raw.lcc)
    np.testing.assert_array_equal(r2.raw.triangles_per_vertex,
                                  r1.raw.triangles_per_vertex)
    assert r2.global_triangles == r1.global_triangles


@given(random_graphs(), st.sampled_from([2, 6, 8, 12]),
       st.sampled_from(["tc2d_spgemm", "lcc2d"]))
@settings(max_examples=20, deadline=None)
def test_rectangular_grids_always_rejected(graph, nranks, kernel):
    try:
        run_kernel(kernel, graph, LCCConfig(nranks=nranks))
    except ConfigError as exc:
        assert "square process grid" in str(exc)
    else:
        raise AssertionError("rectangular grid must raise ConfigError")


@st.composite
def sparse_blocks(draw):
    n_rows = draw(st.integers(min_value=0, max_value=24))
    n_cols = draw(st.integers(min_value=1, max_value=24))
    nnz = draw(st.integers(min_value=0, max_value=80))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    if n_rows == 0 or nnz == 0:
        return sp.csr_matrix((n_rows, n_cols), dtype=np.int64)
    rows = rng.integers(0, n_rows, nnz)
    cols = rng.integers(0, n_cols, nnz)
    data = np.ones(nnz, dtype=np.int64)
    block = sp.csr_matrix((data, (rows, cols)), shape=(n_rows, n_cols))
    block.data[:] = 1  # binary adjacency: duplicates collapse to 1
    return block


@given(sparse_blocks())
@settings(max_examples=120, deadline=None)
def test_pack_unpack_round_trip(block):
    packed = pack_block(block)
    out = _unpack_block(packed, block.shape[1])
    assert out.shape == block.shape
    assert out.nnz == block.nnz
    assert (out != block).nnz == 0  # elementwise identical
    assert out.data.dtype == np.int64
    # The wire format is self-describing: header + indptr + indices.
    assert packed.shape[0] == 2 + (block.shape[0] + 1) + block.nnz
