"""Stable public entry points.

Quickstart::

    from repro.core import compute_lcc, count_triangles, LCCConfig, CacheSpec
    from repro.graph import load_dataset

    g = load_dataset("livejournal")

    # Single node:
    scores = compute_lcc(g)

    # Simulated cluster of 16 nodes with the paper's cached configuration:
    cfg = LCCConfig(nranks=16, cache=CacheSpec.paper_split(2**24, g.n,
                                                           score="degree"))
    result = compute_lcc(g, cfg)
    print(result.time, result.summary())
"""

from __future__ import annotations

from typing import overload

import numpy as np

from repro.core.config import DistributedRunResult, LCCConfig
from repro.core.lcc import run_distributed_lcc
from repro.core.local import lcc_local, triangle_count_local
from repro.core.tc import run_distributed_tc
from repro.graph.csr import CSRGraph

__all__ = [
    "compute_lcc",
    "count_triangles",
    "run_distributed_lcc",
    "run_distributed_tc",
]


def compute_lcc(graph: CSRGraph, config: LCCConfig | None = None
                ) -> np.ndarray | DistributedRunResult:
    """Local clustering coefficient of every vertex.

    Without a config this computes locally and returns the score array;
    with a config it runs the distributed algorithm on the simulated
    cluster and returns the full :class:`DistributedRunResult` (whose
    ``.lcc`` attribute holds the same array, bit-identical to the local
    computation).
    """
    if config is None:
        return lcc_local(graph)
    return run_distributed_lcc(graph, config)


def count_triangles(graph: CSRGraph, config: LCCConfig | None = None
                    ) -> int | DistributedRunResult:
    """Global triangle count (undirected) / transitive triads (directed).

    Without a config: a local count, returned as an int.  With a config:
    the distributed edge-centric count with upper-triangle deduplication,
    returned as a :class:`DistributedRunResult`.
    """
    if config is None:
        return triangle_count_local(graph)
    return run_distributed_tc(graph, config)
