"""Dynamic-graph benchmark: incremental recompute + cache invalidation.

``repro update --bench`` (and :func:`run_dynamic_bench`) records the
dynamic subsystem's trajectory point, ``BENCH_dynamic.json``:

* **incremental** — applying an update batch through
  :class:`~repro.dynamic.incremental.IncrementalState` versus a full
  from-scratch recompute on the post-update graph, with the full path
  kept as the bit-identity oracle;
* **invalidation** — a warm resident session takes the same batch
  through :meth:`~repro.session.Session.apply_updates`; the report
  records how much of the warm CLaMPI cache survived the targeted
  invalidation (``retained_warm_hits`` counts post-update hits beyond
  what an equally-configured *cold* session gets on the same graph —
  warmth that only exists because invalidation was surgical), and pins
  the post-update cached run bit-identical to a cold full run;
* **serving** — a mixed read/write workload through FIFO and
  cache-affinity scheduling, proving per-query answers and per-key graph
  histories identical between schedulers.

The committed report must show >= 2x incremental-vs-full speedup and
nonzero retained warm hits (:func:`check_dynamic_report`); CI re-runs
``--quick`` sizes and gates them against the committed baseline with
:func:`check_dynamic_against_baseline`.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

import numpy as np

from repro.analysis.benchreport import (
    BENCH_NRANKS,
    BENCH_THREADS,
    bench_graphs,
    write_report,
)
from repro.core.config import CacheSpec, LCCConfig
from repro.core.local import triangles_min_vertex, triangles_per_vertex_batched
from repro.dynamic import IncrementalState, random_update_batch
from repro.graph.csr import CSRGraph
from repro.serve.engine import ServeConfig, ServingEngine, answers_identical
from repro.serve.scheduler import make_scheduler
from repro.serve.workload import WorkloadSpec, default_catalog, generate_workload
from repro.session import Session
from repro.utils.rng import derive_seed

DYNAMIC_SCHEMA_VERSION = 1

#: Keys every dynamic report carries (pinned by tests and the CLI).
DYNAMIC_REPORT_KEYS = ("schema_version", "quick", "nranks", "threads",
                       "graphs", "incremental", "invalidation", "serving")

#: Update-batch shape the recorded benchmark applies.
BENCH_UPDATE_EDGES = 12
BENCH_DELETE_FRACTION = 0.25
BENCH_SEED = 7


def _bench_cache_config(graph: CSRGraph) -> LCCConfig:
    return LCCConfig(nranks=BENCH_NRANKS, threads=BENCH_THREADS,
                     cache=CacheSpec.relative(graph.nbytes, 0.5, 1.0))


def bench_incremental(graph: CSRGraph, *, n_edges: int = BENCH_UPDATE_EDGES,
                      seed: int = BENCH_SEED) -> dict[str, Any]:
    """Incremental fold vs full recompute for one update batch."""
    state = IncrementalState.from_graph(graph)
    batch = random_update_batch(graph, n_edges, BENCH_DELETE_FRACTION,
                                seed=derive_seed(seed, "dyn-inc", graph.name))
    t0 = time.perf_counter()
    res = state.apply(batch)
    incr_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    full_tpv = triangles_per_vertex_batched(state.graph)
    full_tmin = triangles_min_vertex(state.graph)
    full_wall = time.perf_counter() - t0

    identical = (np.array_equal(full_tpv, state.tpv)
                 and np.array_equal(full_tmin, state.tmin))
    return {
        "incremental_wall_s": incr_wall,
        "full_wall_s": full_wall,
        "speedup": full_wall / incr_wall,
        "bit_identical": bool(identical),
        "n_affected": int(res.affected.shape[0]),
        "n_vertices": graph.n,
        "edges_inserted": res.n_inserted,
        "edges_deleted": res.n_deleted,
    }


def bench_invalidation(graph: CSRGraph, *, n_edges: int = BENCH_UPDATE_EDGES,
                       seed: int = BENCH_SEED) -> dict[str, Any]:
    """Warm-cache retention through one update on a resident session.

    ``retained_warm_hits`` is exact and deterministic: post-update hits
    minus the hits an identically-configured cold session scores on the
    same (updated) graph — i.e. hits served by entries that survived the
    invalidation.  ``post_update_bit_identical`` pins correctness: the
    cached post-update answer equals the cold fresh one, bit for bit.

    The update is applied twice on twin sessions — with rekeying of
    shifted-but-unchanged adjacency entries (the default) and without —
    so the report shows the warmth the remap retains on top of plain
    positional invalidation (``retained_by_rekey_hits``, and the two
    post-update hit rates).
    """
    config = _bench_cache_config(graph)
    batch = random_update_batch(graph, n_edges, BENCH_DELETE_FRACTION,
                                seed=derive_seed(seed, "dyn-inv", graph.name))

    def run(rekey: bool):
        with Session(graph, config) as session:
            session.run("lcc", keep_cache=True)
            warm = session.run("lcc", keep_cache=True)
            outcome = session.apply_updates(batch, rekey=rekey)
            post = session.run("lcc", keep_cache=True)
        return warm, outcome, post

    warm, outcome, post = run(rekey=True)
    _, outcome_nr, post_nr = run(rekey=False)
    with Session(outcome.graph, config) as fresh:
        cold = fresh.run("lcc", keep_cache=True)

    warm_stats, post_stats, cold_stats = (
        warm.adj_cache_stats, post.adj_cache_stats, cold.adj_cache_stats)
    identical = (np.array_equal(post.lcc, cold.lcc)
                 and np.array_equal(post.triangles_per_vertex,
                                    cold.triangles_per_vertex)
                 and int(post.global_triangles) == int(cold.global_triangles))
    return {
        "warm_hit_rate": float(warm_stats["hit_rate"]),
        "post_update_hit_rate": float(post_stats["hit_rate"]),
        "post_update_hit_rate_no_rekey": float(
            post_nr.adj_cache_stats["hit_rate"]),
        "cold_hit_rate": float(cold_stats["hit_rate"]),
        "retained_warm_hits": int(post_stats["hits"]) - int(cold_stats["hits"]),
        "retained_by_rekey_hits": int(post_stats["hits"])
                                  - int(post_nr.adj_cache_stats["hits"]),
        "invalidated_entries": outcome.invalidated_entries,
        "invalidated_entries_no_rekey": outcome_nr.invalidated_entries,
        "rekeyed_entries": outcome.rekeyed_entries,
        "retained_entries": outcome.retained_entries,
        "touched_ranks": len(outcome.touched_ranks),
        "update_time_s": outcome.time,
        "post_update_bit_identical": bool(identical),
    }


def bench_mixed_serving(quick: bool = False) -> dict[str, Any]:
    """FIFO vs affinity on an update-mixed workload (barrier validation)."""
    catalog = default_catalog(scale=0.3 if quick else 0.5)
    spec = WorkloadSpec(
        n_queries=48 if quick else 150, arrival_rate=2000.0,
        n_tenants=8 if quick else 12, graphs=tuple(catalog),
        seed=BENCH_SEED, update_mix=0.25, update_edges=8)
    requests = generate_workload(spec, catalog)
    config = ServeConfig(nranks=BENCH_NRANKS, threads=BENCH_THREADS,
                         pool_capacity=3)
    outcomes = {}
    for name in ("fifo", "affinity"):
        engine = ServingEngine(catalog, config, make_scheduler(name))
        outcomes[name] = engine.serve(requests)
    fifo, aff = outcomes["fifo"], outcomes["affinity"]
    return {
        "n_requests": len(requests),
        "n_updates": fifo.aggregates["n_updates"],
        "update_mix": spec.update_mix,
        "results_identical": answers_identical(fifo, aff),
        "throughput_ratio": (aff.aggregates["throughput_qps"]
                             / fifo.aggregates["throughput_qps"]),
        "schedulers": {name: {
            "throughput_qps": o.aggregates["throughput_qps"],
            "warm_fraction": o.aggregates["warm_fraction"],
            "update_latency_mean_s": o.aggregates.get(
                "update_latency_mean_s", 0.0),
            "invalidated_entries": o.aggregates.get("invalidated_entries", 0),
            "retained_entries_mean": o.aggregates.get(
                "retained_entries_mean", 0.0),
        } for name, o in outcomes.items()},
    }


def run_dynamic_bench(quick: bool = False,
                      graphs: Mapping[str, CSRGraph] | None = None
                      ) -> dict[str, Any]:
    """Produce the full dynamic report dict (see module docstring)."""
    graphs = dict(graphs) if graphs is not None else bench_graphs(quick)
    report: dict[str, Any] = {
        "schema_version": DYNAMIC_SCHEMA_VERSION,
        "quick": quick,
        "nranks": BENCH_NRANKS,
        "threads": BENCH_THREADS,
        "update_edges": BENCH_UPDATE_EDGES,
        "graphs": {name: {"vertices": g.n, "edges": g.m}
                   for name, g in graphs.items()},
        "incremental": {},
        "invalidation": {},
        "serving": bench_mixed_serving(quick),
    }
    for gname, graph in graphs.items():
        report["incremental"][gname] = bench_incremental(graph)
        report["invalidation"][gname] = bench_invalidation(graph)
    return report


def check_dynamic_report(report: Mapping[str, Any], *,
                         min_speedup: float | None = None) -> list[str]:
    """The absolute gate a dynamic report must pass to be recorded.

    Returns human-readable problems (empty list = pass): every
    incremental row bit-identical with speedup above the floor (2x for
    the committed full-size report; quick runs only require beating the
    full recompute), every invalidation row correct after the update with
    retained warm hits, and the mixed-serving run scheduler-independent.
    """
    problems = []
    for key in DYNAMIC_REPORT_KEYS:
        if key not in report:
            problems.append(f"dynamic report missing key {key!r}")
    if min_speedup is None:
        min_speedup = 1.0 if report.get("quick") else 2.0
    for gname, row in report.get("incremental", {}).items():
        if not row.get("bit_identical", False):
            problems.append(
                f"incremental:{gname}: folded results are not bit-identical "
                "to the full recompute")
        if float(row.get("speedup", 0.0)) < min_speedup:
            problems.append(
                f"incremental:{gname}: speedup {row.get('speedup', 0.0):.2f}x "
                f"below the {min_speedup:.2f}x floor")
    for gname, row in report.get("invalidation", {}).items():
        if not row.get("post_update_bit_identical", False):
            problems.append(
                f"invalidation:{gname}: post-update cached answer differs "
                "from a cold full recompute")
        if int(row.get("retained_warm_hits", 0)) <= 0:
            problems.append(
                f"invalidation:{gname}: no warm hits retained after "
                "invalidation (cache effectively flushed)")
        if int(row.get("invalidated_entries", 0)) <= 0:
            problems.append(
                f"invalidation:{gname}: update invalidated nothing "
                "(stale entries would serve wrong data)")
        if "rekeyed_entries" in row and int(row["rekeyed_entries"]) <= 0:
            problems.append(
                f"invalidation:{gname}: update rekeyed nothing (shifted "
                "adjacency entries should have been remapped)")
        if ("post_update_hit_rate_no_rekey" in row
                and float(row["post_update_hit_rate"])
                < float(row["post_update_hit_rate_no_rekey"])):
            problems.append(
                f"invalidation:{gname}: rekeying lowered the post-update "
                "hit rate "
                f"({row['post_update_hit_rate']:.3f} < "
                f"{row['post_update_hit_rate_no_rekey']:.3f})")
    serving = report.get("serving", {})
    if serving.get("results_identical") is not True:
        problems.append(
            "serving: mixed read/write answers are not proven identical "
            "between schedulers (update barrier broken?)")
    return problems


def check_dynamic_against_baseline(report: Mapping[str, Any],
                                   baseline: Mapping[str, Any], *,
                                   tolerance: float = 0.25) -> list[str]:
    """CI gate: a fresh (quick) report versus the committed baseline.

    Correctness clauses are absolute (bit-identity, retained hits,
    scheduler independence); the speedup clause is relative — the fresh
    worst-case incremental speedup must stay above ``tolerance`` times
    the baseline's, mirroring ``repro bench --check`` (graph names are
    deliberately not matched: CI runs quick sizes against the full-size
    baseline).
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be > 0, got {tolerance}")
    problems = check_dynamic_report(report, min_speedup=0.0)

    def min_speedup(rep) -> float:
        rows = rep.get("incremental", {})
        return min((float(r.get("speedup", 0.0)) for r in rows.values()),
                   default=0.0)

    if not baseline.get("incremental"):
        problems.append(
            "baseline has no incremental section (is --check pointed at a "
            "BENCH_dynamic.json?)")
        return problems
    floor = tolerance * min_speedup(baseline)
    fresh = min_speedup(report)
    if fresh < floor:
        problems.append(
            f"incremental speedup {fresh:.2f}x fell below {floor:.2f}x "
            f"({tolerance:.0%} of the baseline's {min_speedup(baseline):.2f}x)")
    return problems


def write_dynamic_report(report: Mapping[str, Any], path: str, *,
                         gate: bool = True) -> None:
    """Gate-check (optionally), schema-check and write the dynamic report.

    ``gate=False`` skips the absolute gate and only schema-checks — for
    CI runs whose pass/fail verdict comes from
    :func:`check_dynamic_against_baseline` instead (the measured report
    should land on disk as an artifact either way).
    """
    if gate:
        problems = check_dynamic_report(report)
        if problems:
            raise ValueError("; ".join(problems))
    write_report(report, path, required_keys=DYNAMIC_REPORT_KEYS)


# ---------------------------------------------------------------------------
# One-off CLI runs (``repro update`` without --bench)
# ---------------------------------------------------------------------------

def one_off_update_run(graph: CSRGraph, *, nranks: int = 8, threads: int = 4,
                       n_edges: int = 16, delete_fraction: float = 0.25,
                       seed: int = 0) -> dict[str, Any]:
    """Apply one random batch to a warm resident session; report everything."""
    config = LCCConfig(nranks=nranks, threads=threads,
                       cache=CacheSpec.relative(graph.nbytes, 0.5, 1.0))
    batch = random_update_batch(graph, n_edges, delete_fraction, seed=seed)
    state = IncrementalState.from_graph(graph)
    with Session(graph, config) as session:
        session.run("lcc", keep_cache=True)
        warm = session.run("lcc", keep_cache=True)
        t0 = time.perf_counter()
        outcome = session.apply_updates(batch)
        t0_inc = time.perf_counter()
        state.apply(batch)
        incr_wall = time.perf_counter() - t0_inc
        post = session.run("lcc", keep_cache=True)
        apply_wall = t0_inc - t0
    identical = (np.array_equal(post.lcc, state.lcc)
                 and int(post.global_triangles) == state.global_triangles)
    return {
        "graph": graph.name, "vertices": graph.n, "edges": graph.m,
        "nranks": nranks,
        "edges_inserted": outcome.delta.n_inserted,
        "edges_deleted": outcome.delta.n_deleted,
        "affected_vertices": int(outcome.affected.shape[0]),
        "touched_ranks": len(outcome.touched_ranks),
        "update_simulated_time_s": outcome.time,
        "update_wall_s": apply_wall,
        "incremental_wall_s": incr_wall,
        "invalidated_entries": outcome.invalidated_entries,
        "retained_entries": outcome.retained_entries,
        "warm_hit_rate": float(warm.adj_cache_stats["hit_rate"]),
        "post_update_hit_rate": float(post.adj_cache_stats["hit_rate"]),
        "incremental_matches_query": bool(identical),
        "global_triangles": int(post.global_triangles),
    }
