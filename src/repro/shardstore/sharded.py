"""One logical graph, many shards: the distributed version of GraphStore.

A :class:`ShardedGraphStore` partitions every registered graph by a
:class:`~repro.shardstore.plan.ShardPlan` and keeps each shard in its own
independent :class:`~repro.graphstore.store.GraphStore` with its own
version chain and chained history digest.  The logical store's surface
duck-types the subset of ``GraphStore`` the serving layer uses
(``graph`` / ``apply`` / ``version`` / ``digest`` / ``names`` /
``__contains__``), so the :class:`~repro.serve.pool.SessionPool` and
:class:`~repro.serve.engine.ServingEngine` run over it unchanged.

**Commit protocol** (:meth:`apply`): a batch touching ``k`` shards
commits as *one* logical version —

1. the logical truth is computed first (``apply_delta`` against the
   logical head), yielding the exact :class:`~repro.dynamic.delta
   .DeltaResult` resident sessions resync from;
2. the batch is split into per-shard sub-batches by the source vertex of
   each stored-form key and applied to each touched shard's store,
   advancing that shard's chain by exactly one;
3. a **barrier** fences readers for the duration: ``graph`` / ``digest``
   / ``version`` on a mid-commit graph raise, so no reader can observe
   the store with only some of the ``k`` shards advanced;
4. the commit is **digest-proved**: the shard slices are reassembled and
   their bytes compared against the logical head — a sharded store can
   never silently diverge from what a single ``GraphStore`` would hold.

**Version vector**: per graph, the tuple of shard-chain versions.  The
logical version is the commit count; each commit advances exactly the
touched shards, and :meth:`check_version_vector` re-derives the vector
from the commit log to prove they agree.

**Digests under shard fencing**: updates with *disjoint* shard sets may
be served in different orders by different schedulers (that is the
concurrency the per-(graph, shard-set) fence unlocks), so a per-request
digest over the global commit counter would be scheduler-dependent.
Instead, an update's digest covers only its **touched shards'** chain
states — invariant under reordering of disjoint commits — and the
store-level :meth:`digest` folds every shard's chain digest in shard
order, which is deterministic because each shard's own chain is.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.dynamic.delta import DeltaResult, UpdateBatch, apply_delta
from repro.graph.csr import CSRGraph
from repro.graphstore.store import GraphStore, GraphVersion, graph_digest
from repro.obs.trace import span as obs_span
from repro.shardstore.plan import ShardPlan
from repro.utils.errors import ConfigError

__all__ = ["ShardSnapshot", "ShardedGraphStore", "ShardedUpdate",
           "annotate_shard_sets"]


@dataclass(frozen=True)
class ShardedUpdate:
    """What one logical commit did to a sharded store.

    Duck-types :class:`~repro.graphstore.store.StoreUpdate` for the
    serving engine (``version`` / ``delta`` / ``digest`` / ``graph`` /
    ``changed`` / ``coalesced``), plus the shard-level outcome.
    """

    version: GraphVersion             # logical commit count after this commit
    delta: DeltaResult                # logical outcome (new graph, affected)
    digest: str                       # over the touched shards' chain states
    shards: frozenset                 # shard ids this commit advanced
    shard_versions: tuple             # ((shard, version after commit), ...)
    coalesced: int = 0

    @property
    def graph(self) -> CSRGraph:
        return self.delta.graph

    @property
    def changed(self) -> bool:
        return self.delta.changed


@dataclass(frozen=True)
class ShardSnapshot:
    """A consistent copy of one graph's sharded state (replica reseed)."""

    name: str
    version: int                      # logical commit count
    log: tuple                        # touched frozenset per commit
    head: CSRGraph = field(repr=False)
    shards: tuple = field(repr=False)  # (version, digest, slice) per shard


class ShardedGraphStore:
    """Partition-aligned shards over a catalog of named graphs.

    ``nshards`` shards per graph, with boundaries grouping the
    ``nranks``-rank 1D block partition (``nranks`` defaults to
    ``nshards``; it must be a multiple so the plan aligns — see
    :meth:`ShardPlan.align_1d`).  ``plan_for`` overrides the geometry
    per graph (e.g. :meth:`ShardPlan.align_2d` for ``tc2d``-heavy
    catalogs).
    """

    def __init__(self, catalog: Mapping[str, CSRGraph] | None = None, *,
                 nshards: int = 2, nranks: int | None = None,
                 plan_for: Callable[[CSRGraph], ShardPlan] | None = None):
        if nshards < 1:
            raise ConfigError(f"need >= 1 shard, got {nshards}")
        self.nshards = int(nshards)
        self.nranks = int(nranks) if nranks is not None else self.nshards
        self._plan_for = plan_for
        self._plans: dict[str, ShardPlan] = {}
        self._shards: dict[str, list[GraphStore]] = {}
        self._heads: dict[str, CSRGraph] = {}
        self._counts: dict[str, int] = {}
        self._log: dict[str, list[frozenset]] = {}
        self._fenced: set[str] = set()
        if catalog:
            for name, graph in catalog.items():
                self.add(name, graph)

    # -- registration --------------------------------------------------------
    def add(self, name: str, graph: CSRGraph, *,
            overwrite: bool = False) -> GraphVersion:
        """Register ``graph``: slice it into shards, each at version 0."""
        if not name:
            raise ConfigError("a stored graph needs a non-empty name")
        if name in self._plans and not overwrite:
            raise ConfigError(
                f"graph {name!r} is already stored; pass overwrite=True to "
                "restart its history")
        plan = (self._plan_for(graph) if self._plan_for is not None
                else ShardPlan.align_1d(graph.n, self.nranks, self.nshards))
        self._plans[name] = plan
        self._shards[name] = [
            GraphStore({name: plan.slice_shard(graph, s)})
            for s in range(plan.nshards)]
        self._heads[name] = graph
        self._counts[name] = 0
        self._log[name] = []
        self._fenced.discard(name)
        return GraphVersion(name, 0)

    # -- introspection -------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._plans

    def __len__(self) -> int:
        return len(self._plans)

    def names(self) -> list[str]:
        return sorted(self._plans)

    def plan(self, name: str) -> ShardPlan:
        self._check_name(name)
        return self._plans[name]

    def _check_name(self, name: str) -> None:
        if name not in self._plans:
            raise ConfigError(
                f"graph {name!r} is not in the store "
                f"({', '.join(self.names()) or 'empty'})")

    def _check_fence(self, name: str) -> None:
        if name in self._fenced:
            raise ConfigError(
                f"graph {name!r} is mid-commit: the cross-shard barrier "
                "fences readers until every touched shard has landed")

    def fenced(self, name: str) -> bool:
        """Is ``name`` mid-commit right now (readers fenced)?

        The non-blocking probe: a cooperative reader can ask instead of
        catching the fence's :class:`~repro.utils.errors.ConfigError`,
        and fall back to a :meth:`graph` ``stable=True`` read.
        """
        self._check_name(name)
        return name in self._fenced

    def version(self, name: str, *, stable: bool = False) -> GraphVersion:
        """The logical version: how many commits ``name`` has taken.

        With ``stable=True`` the read never blocks on the commit
        barrier: the logical count only advances *after* the barrier
        drops, so mid-commit it is exactly the latest committed
        version — the one a ``stable`` graph read serves.
        """
        self._check_name(name)
        if not stable:
            self._check_fence(name)
        return GraphVersion(name, self._counts[name])

    def version_vector(self, name: str) -> tuple[int, ...]:
        """Per-shard chain versions, in shard order."""
        self._check_name(name)
        self._check_fence(name)
        return tuple(store.version(name).version
                     for store in self._shards[name])

    def graph(self, name: str, version: int | None = None, *,
              stable: bool = False) -> CSRGraph:
        """The logical snapshot: the head, or any retained ``version``.

        Historical versions are **assembled from the shard chains**: the
        commit log says which shard version corresponds to logical
        version ``v`` (the number of commits among the first ``v`` that
        touched the shard), so the sharded store time-travels without
        retaining any logical snapshot but the head.

        ``stable=True`` makes the head read **non-blocking**: mid-commit
        it returns the last *committed* head instead of raising — the
        head reference is only swapped after the cross-shard barrier
        drops, so what a fenced reader sees is a consistent pre-commit
        snapshot (never a half-applied mix of shards).  Historical reads
        assemble from the shard chains, which *are* mid-mutation during
        a commit, so they always honor the fence.
        """
        self._check_name(name)
        if version is None and stable:
            return self._heads[name]
        self._check_fence(name)
        count = self._counts[name]
        if version is None or version == count:
            return self._heads[name]
        if not (0 <= version <= count):
            raise ConfigError(
                f"graph {name!r} has versions 0..{count}, not {version}")
        plan, head = self._plans[name], self._heads[name]
        log = self._log[name][:version]
        slices = [
            store.graph(name, sum(1 for touched in log if s in touched))
            for s, store in enumerate(self._shards[name])]
        return plan.assemble(slices, directed=head.directed, name=head.name)

    def shard_digest(self, name: str, shard: int) -> str:
        """One shard's chained history digest."""
        self._check_name(name)
        self._check_fence(name)
        return self._shards[name][shard].digest(name)

    def digest(self, name: str) -> str:
        """The store-level digest: every shard's chain digest, folded.

        Shard order is deterministic and each shard's chain is
        scheduler-independent (conflicting commits are fenced into
        arrival order; disjoint commits touch disjoint chains), so this
        value is too — it is what ``graph_versions`` comparisons between
        serving runs check.
        """
        self._check_name(name)
        self._check_fence(name)
        h = hashlib.sha1()
        for s, store in enumerate(self._shards[name]):
            h.update(f"{s}:{store.digest(name)}|".encode())
        return h.hexdigest()

    def digests(self) -> dict[str, str]:
        return {name: self.digest(name) for name in self.names()}

    # -- the commit path -----------------------------------------------------
    def apply(self, name: str, batch: UpdateBatch, *, strict: bool = False,
              coalesced: int = 0,
              _on_subcommit: Callable | None = None) -> ShardedUpdate:
        """Commit one batch across every shard it touches, atomically.

        See the module docstring for the protocol.  ``_on_subcommit`` is
        a test hook invoked after each shard sub-commit, while the
        barrier still fences readers.  A batch that touches nothing
        still advances the logical version (history records the write),
        without advancing any shard chain.
        """
        self._check_name(name)
        self._check_fence(name)
        head = self._heads[name]
        res = apply_delta(head, batch, strict=strict)
        plan = self._plans[name]
        sub = plan.split_batch(batch)
        self._fenced.add(name)
        try:
            with obs_span("barrier", cat="shard", graph=name,
                          shards=sorted(sub)) as sp:
                pieces = []
                for s in sorted(sub):
                    pieces.append((s, self._shards[name][s].apply(
                        name, sub[s], strict=strict)))
                    if _on_subcommit is not None:
                        _on_subcommit(name, s)
                assembled = plan.assemble(
                    [store.graph(name) for store in self._shards[name]],
                    directed=head.directed, name=head.name)
                if graph_digest(assembled) != graph_digest(res.graph):
                    # Per-shard application == whole-batch application
                    # is a structural invariant (the property suite pins
                    # it); serving from diverged shards would be silent
                    # corruption, so fail loudly mid-barrier.
                    raise ConfigError(
                        f"sharded commit for {name!r} diverged from the "
                        "unsharded application (assembly digest mismatch)")
                sp.note(subcommits=len(pieces))
        finally:
            self._fenced.discard(name)
        self._heads[name] = res.graph
        self._counts[name] += 1
        touched = frozenset(sub)
        self._log[name].append(touched)
        h = hashlib.sha1()
        shard_versions = []
        for s, upd in pieces:
            shard_versions.append((s, upd.version.version))
            h.update(f"{s}:{upd.version.version}:{upd.digest}|".encode())
        return ShardedUpdate(
            version=GraphVersion(name, self._counts[name]), delta=res,
            digest=h.hexdigest(), shards=touched,
            shard_versions=tuple(shard_versions), coalesced=coalesced)

    def touched_by(self, name: str, inserts=None, deletes=None) -> frozenset:
        """Which shards a raw edge-array update for ``name`` would touch.

        Batch content is a pure function of the arrays (mirroring how the
        engine builds them), so the answer is service-order independent —
        it is what workload annotation stamps on requests for the
        per-(graph, shard-set) fence.
        """
        self._check_name(name)
        head = self._heads[name]
        batch = UpdateBatch.build(inserts, deletes, n=head.n,
                                  directed=head.directed)
        return self._plans[name].touched_shards(batch)

    # -- consistency proofs --------------------------------------------------
    def check_version_vector(self, name: str) -> list[str]:
        """Re-derive the version vector from the commit log; return problems.

        Each shard's chain version must equal the number of logical
        commits that touched it, and the logical version must equal the
        log length — the cross-shard barrier's "all k land as one
        logical version" contract, checked after the fact.
        """
        self._check_name(name)
        self._check_fence(name)
        problems = []
        log = self._log[name]
        if self._counts[name] != len(log):
            problems.append(
                f"{name}: logical version {self._counts[name]} != "
                f"{len(log)} logged commits")
        for s, actual in enumerate(self.version_vector(name)):
            expected = sum(1 for touched in log if s in touched)
            if actual != expected:
                problems.append(
                    f"{name}: shard {s} at version {actual}, but "
                    f"{expected} commits touched it")
        return problems

    # -- replica snapshot / reseed -------------------------------------------
    def snapshot(self, name: str) -> ShardSnapshot:
        """A consistent copy of ``name``'s sharded state (for reseeding)."""
        self._check_name(name)
        self._check_fence(name)
        shards = tuple(
            (store.version(name).version, store.digest(name),
             store.graph(name))
            for store in self._shards[name])
        return ShardSnapshot(name=name, version=self._counts[name],
                             log=tuple(self._log[name]),
                             head=self._heads[name], shards=shards)

    def seed(self, name: str, snap: ShardSnapshot, *,
             overwrite: bool = True) -> GraphVersion:
        """Adopt a primary's :meth:`snapshot` wholesale.

        Every shard chain restarts at the snapshot's (version, digest)
        via :meth:`GraphStore.seed` — adopting the primary's chained
        digests is what lets a re-seeded replica prove convergence with
        the primary on the very next commit.  The snapshot's geometry
        must match this store's plan for the graph (same boundaries).
        """
        if snap.name != name:
            raise ConfigError(
                f"snapshot is of {snap.name!r}, not {name!r}")
        self._check_name(name)
        plan = self._plans[name]
        if len(snap.shards) != plan.nshards:
            raise ConfigError(
                f"snapshot has {len(snap.shards)} shards, plan expects "
                f"{plan.nshards}")
        with obs_span("reseed", cat="shard", graph=name,
                      version=snap.version, nshards=len(snap.shards)):
            for s, (version, digest, piece) in enumerate(snap.shards):
                store = GraphStore()
                store.seed(name, piece, version=version, digest=digest)
                self._shards[name][s] = store
            self._heads[name] = snap.head
            self._counts[name] = snap.version
            self._log[name] = list(snap.log)
        if overwrite:  # signature symmetry with add(); seed always replaces
            self._fenced.discard(name)
        return GraphVersion(name, snap.version)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = ", ".join(
            f"{name}@v{self._counts[name]}x{self._plans[name].nshards}"
            for name in self.names())
        return f"ShardedGraphStore({parts})"


def annotate_shard_sets(requests: Iterable, store: ShardedGraphStore) -> list:
    """Stamp each update request with the shard set its batch touches.

    Returns a new request list: updates carry ``shards=frozenset(...)``
    (empty sets conservatively stay ``None`` — fence everything), queries
    keep ``shards=None`` because a kernel reads the whole graph and must
    conflict with every update on it.  Annotation is a pure function of
    request content, so the per-(graph, shard-set) fence stays
    scheduler-independent.
    """
    out = []
    for req in requests:
        if req.is_update and req.graph in store:
            touched = store.touched_by(req.graph, req.inserts, req.deletes)
            out.append(req.with_shards(touched))
        else:
            out.append(req)
    return out
