"""Tests for the best-fit buffer allocator."""

import numpy as np
import pytest

from repro.clampi.allocator import BufferAllocator
from repro.utils.errors import AllocationError


class TestBasicAllocation:
    def test_simple_alloc_free(self):
        a = BufferAllocator(100)
        off = a.alloc(40)
        assert off == 0
        assert a.used_bytes == 40
        assert a.free(off) == 40
        assert a.used_bytes == 0
        a.check_invariants()

    def test_full_allocation(self):
        a = BufferAllocator(64)
        assert a.alloc(64) == 0
        assert a.alloc(1) is None
        assert a.free_bytes == 0

    def test_alloc_returns_none_when_no_fit(self):
        a = BufferAllocator(100)
        a.alloc(60)
        assert a.alloc(50) is None

    def test_zero_size_rejected(self):
        a = BufferAllocator(10)
        with pytest.raises(AllocationError):
            a.alloc(0)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(AllocationError):
            BufferAllocator(0)

    def test_double_free_rejected(self):
        a = BufferAllocator(10)
        off = a.alloc(5)
        a.free(off)
        with pytest.raises(AllocationError):
            a.free(off)

    def test_free_unknown_offset_rejected(self):
        a = BufferAllocator(10)
        with pytest.raises(AllocationError):
            a.free(3)


class TestBestFit:
    def test_best_fit_prefers_smallest_hole(self):
        a = BufferAllocator(100)
        o1 = a.alloc(30)   # [0, 30)
        o2 = a.alloc(10)   # [30, 40)
        o3 = a.alloc(30)   # [40, 70)
        a.free(o2)         # 10-byte hole at 30, 30-byte tail at 70
        # A 10-byte request must take the 10-byte hole, not the tail.
        assert a.alloc(10) == 30

    def test_split_leaves_remainder(self):
        a = BufferAllocator(100)
        o1 = a.alloc(100)
        a.free(o1)
        a.alloc(60)
        assert a.largest_free_block() == 40


class TestCoalescing:
    def test_adjacent_frees_merge(self):
        a = BufferAllocator(100)
        offs = [a.alloc(25) for _ in range(4)]
        a.free(offs[1])
        a.free(offs[2])
        # The two interior blocks must have merged into one 50-byte region.
        assert a.largest_free_block() == 50
        assert a.n_free_regions() == 1
        a.check_invariants()

    def test_merge_both_sides(self):
        a = BufferAllocator(90)
        o1, o2, o3 = a.alloc(30), a.alloc(30), a.alloc(30)
        a.free(o1)
        a.free(o3)
        a.free(o2)  # merges with both neighbours
        assert a.n_free_regions() == 1
        assert a.largest_free_block() == 90
        a.check_invariants()

    def test_fragmentation_metric(self):
        a = BufferAllocator(100)
        offs = [a.alloc(20) for _ in range(5)]
        a.free(offs[0])
        a.free(offs[2])
        a.free(offs[4])
        # Three separate 20-byte regions: largest 20 of 60 free.
        assert a.external_fragmentation() == pytest.approx(1 - 20 / 60)
        assert a.n_free_regions() == 3

    def test_no_fragmentation_when_contiguous(self):
        a = BufferAllocator(100)
        a.alloc(50)
        assert a.external_fragmentation() == 0.0


class TestAdjacentFree:
    def test_adjacent_free_measures_neighbours(self):
        a = BufferAllocator(100)
        o1, o2, o3 = a.alloc(30), a.alloc(30), a.alloc(30)  # 10 free at tail
        assert a.adjacent_free(o2) == 0
        a.free(o1)
        assert a.adjacent_free(o2) == 30
        a.free(o3)
        assert a.adjacent_free(o2) == 70  # 30 before + 30 + 10 after

    def test_adjacent_free_unknown_block_rejected(self):
        a = BufferAllocator(10)
        with pytest.raises(AllocationError):
            a.adjacent_free(0)


class TestChurn:
    def test_random_churn_conserves_bytes(self):
        rng = np.random.default_rng(11)
        a = BufferAllocator(1 << 14)
        live: dict[int, int] = {}
        for _ in range(3000):
            if live and rng.random() < 0.45:
                off = int(rng.choice(list(live)))
                del live[off]
                a.free(off)
            else:
                size = int(rng.integers(1, 600))
                off = a.alloc(size)
                if off is not None:
                    live[off] = size
        a.check_invariants()
        assert a.used_bytes == sum(live.values())
