"""Tests for the MapReduce wedge-check baseline."""

import pytest

from repro.baselines.mapreduce import MapReduceConfig, run_mapreduce_tc
from repro.core.config import LCCConfig
from repro.core.lcc import run_distributed_lcc
from repro.core.local import triangle_count_local
from repro.graph.csr import CSRGraph, relabel_random
from repro.graph.generators import powerlaw_configuration, rmat
from repro.utils.errors import ConfigError

from tests.helpers import make_graph_suite


class TestCorrectness:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 8])
    def test_matches_local(self, nranks):
        g = rmat(7, 8, seed=8)
        res = run_mapreduce_tc(g, MapReduceConfig(nranks=nranks))
        assert res.global_triangles == triangle_count_local(g)

    @pytest.mark.parametrize("idx", range(6))
    def test_all_graphs(self, idx):
        g = make_graph_suite()[idx]
        res = run_mapreduce_tc(g, MapReduceConfig(nranks=4))
        assert res.global_triangles == triangle_count_local(g)

    def test_directed_rejected(self):
        g = CSRGraph.from_edges([(0, 1)], directed=True)
        with pytest.raises(ConfigError):
            run_mapreduce_tc(g)

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            MapReduceConfig(nranks=0)


class TestVolume:
    def test_shuffle_volume_quadratic_in_wedges(self):
        # Shuffle bytes ~ 16 B per wedge emitted to a remote owner.
        g = rmat(7, 8, seed=8)
        res = run_mapreduce_tc(g, MapReduceConfig(nranks=4))
        deg = g.degrees()
        total_wedges = int((deg * (deg - 1) // 2).sum())
        assert 0 < res.shuffle_bytes <= 16 * total_wedges

    def test_async_beats_mapreduce_on_scale_free(self):
        # The shuffle volume (quadratic in hub degree) sinks MapReduce.
        g = relabel_random(
            powerlaw_configuration(1024, 8192, seed=8, gamma=1.9,
                                   max_degree=256), seed=1)
        mr = run_mapreduce_tc(g, MapReduceConfig(nranks=16))
        a = run_distributed_lcc(g, LCCConfig(nranks=16, threads=12))
        assert a.time < mr.time

    def test_synchronization_present(self):
        g = rmat(7, 8, seed=8)
        res = run_mapreduce_tc(g, MapReduceConfig(nranks=4))
        assert res.outcome.total("n_alltoallv") == 4
