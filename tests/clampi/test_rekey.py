"""ClampiCache.rekey: remapping shifted-but-unchanged entries."""

import numpy as np
import pytest

from repro.clampi.cache import BatchStream, ClampiCache, ClampiConfig
from repro.runtime.window import Window
from repro.utils.errors import CacheError


def make_cache(capacity=4096, nslots=64, probe_limit=8):
    parts = [np.arange(64, dtype=np.int64) + 100 * r for r in range(3)]
    win = Window("w", parts)
    for r in range(3):
        win.lock_all(r)
    cache = ClampiCache(win, 0, ClampiConfig(capacity_bytes=capacity,
                                             nslots=nslots,
                                             probe_limit=probe_limit))
    return cache, win


class TestRekey:
    def test_entry_moves_and_serves_under_new_key(self):
        cache, win = make_cache()
        data, _, _ = cache.access(1, 0, 4)
        np.testing.assert_array_equal(data, [100, 101, 102, 103])
        # The window content slides right by 2; same bytes at offset 2.
        win.local_part(1)[2:6] = [100, 101, 102, 103]
        moved, moved_bytes = cache.rekey([((1, 0, 4), (1, 2, 4))])
        assert moved == 1 and moved_bytes == 32
        fresh, _, hit = cache.access(1, 2, 4)
        assert hit
        np.testing.assert_array_equal(fresh, [100, 101, 102, 103])
        # The old key no longer serves.
        _, _, hit = cache.access(1, 0, 4)
        assert not hit
        cache.check_invariants()

    def test_stats_counters(self):
        cache, _ = make_cache()
        cache.access(1, 0, 4)
        cache.rekey([((1, 0, 4), (1, 8, 4))])
        assert cache.stats.rekeys == 1
        assert cache.stats.rekeyed_bytes == 32
        assert cache.stats.invalidations == 0
        assert cache.stats.mgmt_time > 0
        snap = cache.stats.snapshot()
        assert snap["rekeys"] == 1 and snap["rekeyed_bytes"] == 32

    def test_merge_carries_rekeys(self):
        from repro.clampi.stats import CacheStats

        a = CacheStats(rekeys=2, rekeyed_bytes=64)
        a.merge(CacheStats(rekeys=1, rekeyed_bytes=16))
        assert a.rekeys == 3 and a.rekeyed_bytes == 80

    def test_absent_old_key_ignored(self):
        cache, _ = make_cache()
        moved, moved_bytes = cache.rekey([((1, 0, 4), (1, 8, 4))])
        assert moved == 0 and moved_bytes == 0
        assert len(cache) == 0

    def test_occupied_new_slot_drops_the_mover(self):
        cache, _ = make_cache()
        cache.access(1, 0, 4)
        cache.access(1, 8, 4)   # occupies the rekey target
        moved, _ = cache.rekey([((1, 0, 4), (1, 8, 4))])
        assert moved == 0
        assert cache.stats.invalidations == 1
        assert len(cache) == 1
        cache.check_invariants()

    def test_sliding_chain_does_not_cannibalize(self):
        """A's new key equals B's old key: the two-phase remap must move
        both entries, not drop A as 'occupied' by the not-yet-moved B."""
        cache, win = make_cache()
        a, _, _ = cache.access(1, 0, 4)
        b, _, _ = cache.access(1, 4, 4)
        win.local_part(1)[4:8] = a
        win.local_part(1)[8:12] = b
        moved, _ = cache.rekey([((1, 0, 4), (1, 4, 4)),
                                ((1, 4, 4), (1, 8, 4))])
        assert moved == 2
        got_a, _, hit_a = cache.access(1, 4, 4)
        got_b, _, hit_b = cache.access(1, 8, 4)
        assert hit_a and hit_b
        np.testing.assert_array_equal(got_a, a)
        np.testing.assert_array_equal(got_b, b)
        cache.check_invariants()

    def test_rejected_during_batch(self):
        cache, _ = make_cache()
        cache._batch_events = []
        with pytest.raises(CacheError):
            cache.rekey([((1, 0, 4), (1, 8, 4))])
        cache._batch_events = None

    def test_batch_memo_revalidated_after_rekey(self):
        cache, win = make_cache()
        stream_old = BatchStream(np.array([1]), np.array([0]), np.array([4]))
        stream_new = BatchStream(np.array([1]), np.array([2]), np.array([4]))
        cache.access_batch(stream=stream_old)
        _, hits = cache.access_batch(stream=stream_old)
        assert hits.all()
        win.local_part(1)[2:6] = win.local_part(1)[0:4].copy()
        cache.rekey([((1, 0, 4), (1, 2, 4))])
        _, hits_old = cache.access_batch(stream=stream_old)
        assert not hits_old[0]          # old key refetches
        _, hits_new = cache.access_batch(stream=stream_new)
        assert hits_new[0]              # new key is warm

    def test_metadata_survives_the_move(self):
        cache, _ = make_cache()
        cache.access(1, 0, 4)
        cache.access(1, 0, 4)
        entry_before = cache.index.lookup((1, 0, 4))
        n_acc = entry_before.n_accesses
        cache.rekey([((1, 0, 4), (1, 16, 4))])
        entry = cache.index.lookup((1, 16, 4))
        assert entry is entry_before
        assert entry.n_accesses == n_acc
        assert entry.key == (1, 16, 4)
