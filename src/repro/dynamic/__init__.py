"""Dynamic graphs: batched edge updates over the resident cluster.

The write path of the system.  Three layers:

* :mod:`repro.dynamic.delta` — validated insert/delete batches
  (:class:`UpdateBatch`, :class:`DeltaBuffer`) and the vectorized CSR
  merge :func:`apply_delta`, which also derives the affected-vertex set;
* :mod:`repro.dynamic.incremental` — :class:`IncrementalState`, folding
  batches into resident per-vertex LCC/TC results by recomputing only
  affected vertices (bit-identical to a full recompute);
* :mod:`repro.dynamic.invalidate` — exact CLaMPI invalidation: which
  ``(target, offset, count)`` cache keys went stale when a rank's CSR
  slice was rebuilt, keeping the rest of the warm cache alive.

:meth:`repro.session.Session.apply_updates` ties them to the resident
cluster; :mod:`repro.serve` adds update traffic to the serving workload.

Quickstart::

    from repro import Session
    from repro.dynamic import UpdateBatch, random_update_batch

    with Session(graph, config) as session:
        warm = session.run("lcc", keep_cache=True)
        outcome = session.apply_updates(
            UpdateBatch.build(inserts=[(0, 7), (3, 9)], n=graph.n))
        fresh = session.run("lcc", keep_cache=True)   # warm where unaffected
"""

from repro.dynamic.delta import (
    DeltaBuffer,
    DeltaResult,
    UpdateBatch,
    apply_delta,
    random_update_arrays,
    random_update_batch,
)
from repro.dynamic.incremental import (
    IncrementalState,
    triangles_min_vertex_subset,
    triangles_per_vertex_subset,
)
from repro.dynamic.invalidate import (
    ResyncPlan,
    resync_distributed,
    stale_part_keys,
)

__all__ = [
    "DeltaBuffer",
    "DeltaResult",
    "IncrementalState",
    "ResyncPlan",
    "UpdateBatch",
    "apply_delta",
    "random_update_arrays",
    "random_update_batch",
    "resync_distributed",
    "stale_part_keys",
    "triangles_min_vertex_subset",
    "triangles_per_vertex_subset",
]
