"""Tests for update batches and the vectorized CSR delta merge."""

import numpy as np
import pytest

from repro.dynamic.delta import (
    DeltaBuffer,
    UpdateBatch,
    apply_delta,
    random_update_arrays,
    random_update_batch,
)
from repro.graph.csr import CSRGraph
from repro.graph.generators import powerlaw_configuration
from repro.utils.errors import GraphFormatError


def triangle_graph(n=4):
    return CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)], n=n)


class TestUpdateBatch:
    def test_symmetrize_and_dedup(self):
        b = UpdateBatch.build([(0, 1), (1, 0), (0, 1)], n=4)
        assert b.num_insert_edges == 1
        assert b.insert_keys.shape[0] == 2  # both stored directions

    def test_self_loops_dropped(self):
        b = UpdateBatch.build([(2, 2)], n=4)
        assert b.num_insert_edges == 0

    def test_directed_keeps_one_direction(self):
        b = UpdateBatch.build([(0, 1)], n=4, directed=True)
        assert b.insert_keys.shape[0] == 1
        np.testing.assert_array_equal(b.insert_edges(), [[0, 1]])

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphFormatError):
            UpdateBatch.build([(0, 9)], n=4)
        with pytest.raises(GraphFormatError):
            UpdateBatch.build([(-1, 2)], n=4)

    def test_bad_shape_rejected(self):
        with pytest.raises(GraphFormatError):
            UpdateBatch.build(np.zeros((2, 3), dtype=np.int64), n=4)

    def test_float_edges_rejected(self):
        with pytest.raises(GraphFormatError):
            UpdateBatch.build(np.zeros((2, 2)), n=4)

    def test_insert_delete_overlap_rejected(self):
        with pytest.raises(GraphFormatError, match="ambiguous"):
            UpdateBatch.build([(0, 1)], [(1, 0)], n=4)

    def test_int32_overflow_rejected(self):
        with pytest.raises(GraphFormatError, match="int32"):
            UpdateBatch.build([(0, 1)], n=2**31 + 1)

    def test_endpoints(self):
        b = UpdateBatch.build([(0, 3)], [(1, 2)], n=5)
        np.testing.assert_array_equal(b.endpoints(), [0, 1, 2, 3])

    def test_len(self):
        b = UpdateBatch.build([(0, 1), (2, 3)], [(1, 2)], n=5)
        assert len(b) == 3


class TestDeltaBuffer:
    def test_accumulate_then_freeze(self):
        buf = DeltaBuffer(n=5)
        buf.insert(0, 3)
        buf.delete_edges([(1, 2)])
        batch = buf.freeze()
        assert batch.num_insert_edges == 1
        assert batch.num_delete_edges == 1

    def test_last_writer_wins(self):
        buf = DeltaBuffer(n=5)
        buf.insert(0, 3)
        buf.delete(3, 0)  # same undirected edge: delete supersedes
        batch = buf.freeze()
        assert batch.num_insert_edges == 0
        assert batch.num_delete_edges == 1

    def test_clear_and_len(self):
        buf = DeltaBuffer(n=5)
        buf.insert(0, 1)
        assert len(buf) == 1
        buf.clear()
        assert len(buf) == 0
        assert len(buf.freeze()) == 0

    def test_eager_validation(self):
        buf = DeltaBuffer(n=3)
        with pytest.raises(GraphFormatError):
            buf.insert(0, 7)


class TestApplyDelta:
    def test_insert_creates_triangle(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2)], n=3)
        res = apply_delta(g, UpdateBatch.build([(0, 2)], n=3))
        assert res.graph.has_edge(0, 2) and res.graph.has_edge(2, 0)
        assert res.n_inserted == 1
        np.testing.assert_array_equal(res.endpoints, [0, 2])
        # vertex 1 is the common neighbor: its count changes too
        np.testing.assert_array_equal(res.affected, [0, 1, 2])

    def test_delete_removes_both_directions(self):
        g = triangle_graph()
        res = apply_delta(g, UpdateBatch.build(deletes=[(1, 2)], n=4))
        assert not res.graph.has_edge(1, 2) and not res.graph.has_edge(2, 1)
        assert res.n_deleted == 1
        res.graph.check_invariants()

    def test_strict_rejects_existing_insert(self):
        with pytest.raises(GraphFormatError, match="existing"):
            apply_delta(triangle_graph(), UpdateBatch.build([(0, 1)], n=4))

    def test_strict_rejects_absent_delete(self):
        with pytest.raises(GraphFormatError, match="absent"):
            apply_delta(triangle_graph(),
                        UpdateBatch.build(deletes=[(0, 3)], n=4))

    def test_non_strict_skips_and_counts(self):
        g = triangle_graph()
        res = apply_delta(g, UpdateBatch.build([(0, 1)], [(0, 3)], n=4),
                          strict=False)
        assert res.n_inserted == 0 and res.n_skipped_inserts == 1
        assert res.n_deleted == 0 and res.n_skipped_deletes == 1
        assert not res.changed
        np.testing.assert_array_equal(res.graph.adjacency, g.adjacency)

    def test_mismatched_n_rejected(self):
        with pytest.raises(GraphFormatError):
            apply_delta(triangle_graph(4), UpdateBatch.build([(0, 1)], n=5))

    def test_mismatched_directedness_rejected(self):
        g = CSRGraph.from_edges([(0, 1)], n=3, directed=True)
        with pytest.raises(GraphFormatError):
            apply_delta(g, UpdateBatch.build([(1, 2)], n=3))

    def test_empty_batch_is_noop(self):
        g = triangle_graph()
        res = apply_delta(g, UpdateBatch.build(n=4))
        assert not res.changed
        assert res.affected.size == 0
        np.testing.assert_array_equal(res.graph.offsets, g.offsets)

    def test_matches_rebuild(self):
        g = powerlaw_configuration(200, 1200, seed=1)
        batch = random_update_batch(g, 30, 0.4, seed=2)
        res = apply_delta(g, batch, strict=False)
        old = set(map(tuple, g.edges()))
        ins = {(int(u), int(v)) for u, v in batch.insert_edges()}
        ins |= {(v, u) for u, v in ins}
        dels = {(int(u), int(v)) for u, v in batch.delete_edges()}
        dels |= {(v, u) for u, v in dels}
        e = np.array(sorted((old | ins) - dels))
        expect = CSRGraph.from_edges(e[e[:, 0] < e[:, 1]], g.n)
        np.testing.assert_array_equal(res.graph.offsets, expect.offsets)
        np.testing.assert_array_equal(res.graph.adjacency, expect.adjacency)

    def test_directed_delta(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2)], n=3, directed=True)
        batch = UpdateBatch.build([(0, 2)], [(1, 2)], n=3, directed=True)
        res = apply_delta(g, batch)
        assert res.graph.has_edge(0, 2)
        assert not res.graph.has_edge(1, 2)
        assert res.n_inserted == 1 and res.n_deleted == 1


class TestRandomBatches:
    def test_deterministic(self):
        g = powerlaw_configuration(100, 500, seed=3)
        a1, d1 = random_update_arrays(g, 12, 0.25, seed=9)
        a2, d2 = random_update_arrays(g, 12, 0.25, seed=9)
        np.testing.assert_array_equal(a1, a2)
        np.testing.assert_array_equal(d1, d2)

    def test_no_ambiguous_overlap(self):
        g = powerlaw_configuration(60, 300, seed=4)
        for seed in range(10):
            random_update_batch(g, 20, 0.5, seed=seed)  # must not raise

    def test_delete_fraction_bounds(self):
        g = triangle_graph()
        with pytest.raises(GraphFormatError):
            random_update_arrays(g, 4, 1.5)
        ins, dels = random_update_arrays(g, 4, 1.0, seed=0)
        assert ins.shape[0] == 0
        assert dels.shape[0] <= 3
