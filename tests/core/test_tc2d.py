"""Tests for 2D grid triangle counting."""

import pytest

from repro.core.config import LCCConfig
from repro.core.local import triangle_count_local
from repro.core.tc import run_distributed_tc
from repro.core.tc2d import run_distributed_tc_2d
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat
from repro.utils.errors import ConfigError

from tests.helpers import make_graph_suite


class TestCorrectness:
    @pytest.mark.parametrize("nranks", [1, 4, 9, 16])
    def test_square_grids(self, nranks):
        g = rmat(7, 8, seed=7)
        res = run_distributed_tc_2d(g, LCCConfig(nranks=nranks))
        assert res.global_triangles == triangle_count_local(g)

    @pytest.mark.parametrize("nranks", [2, 6, 8, 12])
    def test_rectangular_grids(self, nranks):
        g = rmat(7, 8, seed=7)
        res = run_distributed_tc_2d(g, LCCConfig(nranks=nranks))
        assert res.global_triangles == triangle_count_local(g)

    @pytest.mark.parametrize("idx", range(6))
    def test_all_graphs(self, idx):
        g = make_graph_suite()[idx]
        res = run_distributed_tc_2d(g, LCCConfig(nranks=4))
        assert res.global_triangles == triangle_count_local(g)

    def test_directed_rejected(self):
        g = CSRGraph.from_edges([(0, 1)], directed=True)
        with pytest.raises(ConfigError):
            run_distributed_tc_2d(g)


class TestCommunicationScope:
    def test_fewer_peers_than_1d(self):
        # Each 2D rank contacts only its grid row + column.
        g = rmat(9, 8, seed=7)
        p = 16
        res2d = run_distributed_tc_2d(g, LCCConfig(nranks=p))
        res1d = run_distributed_tc(g, LCCConfig(nranks=p))
        gets_2d = res2d.outcome.total("n_remote_gets")
        gets_1d = res1d.outcome.total("n_remote_gets")
        # 2D fetches O(sqrt(p)) blocks per rank: p * 2(sqrt(p)-1) gets total,
        # versus one get pair per remote edge under 1D.
        assert gets_2d == p * 2 * (4 - 1) * 1  # 16 ranks -> 4x4 grid
        assert gets_2d < gets_1d

    def test_fully_asynchronous(self):
        g = rmat(8, 8, seed=7)
        res = run_distributed_tc_2d(g, LCCConfig(nranks=16))
        assert res.outcome.total("sync_time") == 0.0
        assert res.outcome.total("n_barriers") == 0
