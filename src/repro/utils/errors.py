"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with one ``except`` clause while
still being able to discriminate failure domains.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class WindowError(ReproError):
    """Illegal access to an RMA window (bounds, wrong dtype, bad rank)."""


class EpochError(ReproError):
    """RMA epoch misuse (access outside lock_all/unlock_all, double lock)."""


class CommError(ReproError):
    """Point-to-point or collective communication misuse (e.g. deadlock)."""


class CacheError(ReproError):
    """CLaMPI cache misuse or internal invariant violation."""


class AllocationError(CacheError):
    """The cache memory buffer could not satisfy an allocation request."""


class PartitionError(ReproError):
    """Graph partitioning error (vertex out of range, empty partition...)."""


class KernelError(ReproError):
    """Kernel-registry misuse (unknown name, duplicate registration...)."""


class GraphFormatError(ReproError):
    """Malformed graph input (unsorted adjacency, duplicate edges...)."""


class SimulationError(ReproError):
    """Discrete-event engine invariant violation (time going backwards...)."""
