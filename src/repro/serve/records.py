"""Serving records, outcomes and aggregation — shared by both engines.

The serial :class:`~repro.serve.engine.ServingEngine` and the
cooperative :class:`~repro.serve.engine.AsyncServingEngine` retire the
same record types, digest answers the same way, and summarize into the
same report rows — that shared vocabulary is what makes the async
engine's bit-identity claim *checkable*: two outcomes compare through
:func:`answers_identical` regardless of which engine produced them.

A query digest is SHA-1 over the result arrays prefixed with the graph
version the query observed; an update digest is the store's *chained*
history digest at the version the commit advanced the graph to.  Equal
digest dicts therefore prove every query returned the same bits while
observing the same version, and every graph went through the same
version history — the repo's signature invariant, extended to
concurrency.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.utils.errors import ConfigError


@dataclass
class QueryRecord:
    """One served query, on both clocks."""

    qid: int
    tenant: int
    graph: str
    kernel: str
    arrival: float        # simulated
    start: float          # simulated (>= arrival)
    finish: float         # simulated (start + service)
    service_s: float      # simulated job time of the kernel run
    wall_s: float         # real seconds spent executing the query
    warm_cache: bool      # served against carried-over CLaMPI contents
    built_session: bool   # paid a cold partition (pool miss)
    adj_hit_rate: float | None
    digest: str           # SHA-1 over (observed graph version, answers)
    version: int = 0      # store version of the graph this query observed
    worker: int = 0       # logical worker that ran it (0 on the serial engine)
    deferred: bool = False    # waited out a full run queue before admission
    queue_steps: int = 0  # dispatch decisions it sat runnable before picked

    @property
    def latency(self) -> float:
        """Simulated end-to-end latency (queueing + service)."""
        return self.finish - self.arrival


@dataclass
class UpdateRecord:
    """One committed update batch, on both clocks.

    When several queued updates for one graph were coalesced into a
    single resident resync, every member still gets its own record (and
    its own store version/digest); the shared resync cost is charged to
    the group head (``service_s``), the riders retire at the same finish
    with ``service_s == 0`` and ``coalesced=True``.  On the cooperative
    engine a head may additionally have *held* for a coalescing window
    before committing (``held_s``), never past its deadline.
    """

    qid: int
    tenant: int
    graph: str
    arrival: float
    start: float
    finish: float
    service_s: float      # simulated cost of resync + invalidation
    wall_s: float
    n_inserted: int
    n_deleted: int
    n_affected: int       # vertices whose results may have changed
    invalidated_entries: int
    retained_entries: int
    rekeyed_entries: int
    digest: str           # the store's chained history digest at `version`
    version: int = 0      # store version this commit advanced the graph to
    sessions_synced: int = 0  # resident sessions the commit propagated to
    coalesced: bool = False   # rode along in another update's flush
    worker: int = 0
    deferred: bool = False
    queue_steps: int = 0
    held_s: float = 0.0   # coalescing-window hold before the commit started
    riders: int = 0       # updates this head absorbed during its hold

    @property
    def latency(self) -> float:
        return self.finish - self.arrival


@dataclass
class RejectRecord:
    """A request shed by admission control — never served, never digested.

    Only the cooperative engine in ``overflow="shed"`` mode produces
    these; a rejected request leaves no answer, no version and no digest,
    which the backpressure tests pin (shed qids are absent from
    :meth:`ServeOutcome.digests`).
    """

    qid: int
    tenant: int
    graph: str
    arrival: float        # simulated rejection time == arrival time
    is_update: bool
    queue_depth: int      # run-queue occupancy that triggered the shed


@dataclass
class ServeOutcome:
    """Everything one (workload, scheduler) serving run produced."""

    scheduler: str
    records: list[QueryRecord]
    pool_stats: dict
    wall_clock_s: float
    aggregates: dict = field(default_factory=dict)
    update_records: list[UpdateRecord] = field(default_factory=list)
    graph_versions: dict = field(default_factory=dict)  # name -> (v, digest)

    def digests(self) -> dict[int, str]:
        """qid -> answer/history digest (scheduler-order independent).

        Covers queries *and* updates: equal dicts prove that every query
        returned the same bits while observing the same graph version,
        and that every graph went through the same version history.
        """
        d = {r.qid: r.digest for r in self.records}
        d.update({r.qid: r.digest for r in self.update_records})
        return d


@dataclass
class AsyncServeOutcome(ServeOutcome):
    """A cooperative serving run: adds shed records and overlap metrics.

    ``metrics`` is the engine's :class:`~repro.obs.metrics
    .MetricsRegistry` snapshot — every event-loop counter under one
    roof.  The historical ad-hoc counters (``decisions``,
    ``queue_steps``) remain available as properties reading that
    snapshot, so nothing downstream changed shape when they moved into
    the registry.
    """

    rejected: list[RejectRecord] = field(default_factory=list)
    workers: int = 1
    metrics: dict = field(default_factory=dict)

    @property
    def decisions(self) -> int:
        """Dispatch decisions the event loop made (registry-backed)."""
        return int(self.metrics.get("engine.decisions", 0))

    @property
    def queue_steps(self) -> int:
        """Total times runnable tasks were passed over (registry-backed)."""
        return int(self.metrics.get("engine.queue_steps", 0))

    def rejected_qids(self) -> set[int]:
        return {r.qid for r in self.rejected}


def answers_identical(a: ServeOutcome, b: ServeOutcome) -> bool:
    """Did two serving runs produce bit-identical per-query answers —
    and leave every graph with the same final version history?"""
    return (a.digests() == b.digests()
            and a.graph_versions == b.graph_versions)


def result_digest(result: Any, version: int) -> str:
    """SHA-1 over a kernel result, prefixed with the observed version."""
    h = hashlib.sha1()
    h.update(f"v{version}|".encode())
    h.update(str(int(result.global_triangles)).encode())
    for arr in (result.lcc, result.triangles_per_vertex):
        h.update(b"|")
        if arr is not None:
            h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def concurrency_profile(records: list[QueryRecord],
                        update_records: list[UpdateRecord] = ()
                        ) -> dict[str, float]:
    """How overlapped a run was, from its retired records alone.

    Sweeps the simulated busy intervals (a query's ``[start, finish]``;
    an update head's commit ``[start + held_s, finish]`` — the hold is a
    wait, not work) and reports the time-weighted mean/max number of
    concurrently-executing tasks plus the fraction of busy time with two
    or more in flight.  The serial engine always profiles to
    ``max_concurrency == 1`` / ``overlap_fraction == 0`` — the
    cooperative engine's overlap tests assert the opposite.
    """
    intervals = [(r.start, r.finish) for r in records if r.finish > r.start]
    intervals += [(u.start + u.held_s, u.finish) for u in update_records
                  if not u.coalesced and u.finish > u.start + u.held_s]
    if not intervals:
        return {"mean_concurrency": 0.0, "max_concurrency": 0.0,
                "overlap_fraction": 0.0}
    events = sorted([(t0, 1) for t0, _ in intervals]
                    + [(t1, -1) for _, t1 in intervals])
    busy = overlapped = weighted = 0.0
    depth, prev = 0, events[0][0]
    for t, delta in events:
        span = t - prev
        if depth > 0:
            busy += span
            weighted += depth * span
            if depth > 1:
                overlapped += span
        depth += delta
        prev = t
    return {
        "mean_concurrency": float(weighted / busy) if busy else 0.0,
        "max_concurrency": float(max(np.cumsum([d for _, d in events]))),
        "overlap_fraction": float(overlapped / busy) if busy else 0.0,
    }


def summarize(records: list[QueryRecord], pool_stats: dict,
              wall_clock_s: float,
              update_records: list[UpdateRecord] = (),
              updates_coalesced: int = 0) -> dict[str, Any]:
    """Aggregate one serving run into the report row the benches commit."""
    if not records and not update_records:
        raise ConfigError("cannot summarize an empty serving run")
    update_aggs: dict[str, Any] = {"n_updates": len(update_records),
                                   "updates_coalesced": updates_coalesced}
    if update_records:
        ulat = np.array([u.latency for u in update_records])
        update_aggs.update({
            "update_latency_mean_s": float(ulat.mean()),
            "update_latency_p95_s": float(np.percentile(ulat, 95)),
            "update_service_total_s": float(
                sum(u.service_s for u in update_records)),
            "edges_inserted": int(sum(u.n_inserted for u in update_records)),
            "edges_deleted": int(sum(u.n_deleted for u in update_records)),
            "invalidated_entries": int(
                sum(u.invalidated_entries for u in update_records)),
            "rekeyed_entries": int(
                sum(u.rekeyed_entries for u in update_records)),
            "retained_entries_mean": float(np.mean(
                [u.retained_entries for u in update_records])),
        })
    if not records:
        # A pure-write trace: no query aggregates, but the work done is
        # still reported rather than thrown away.
        return {
            **update_aggs,
            "n_queries": 0,
            "makespan_s": float(max(u.finish for u in update_records)),
            "session_builds": pool_stats["builds"],
            "session_evictions": pool_stats["evictions"],
            "session_reuses": pool_stats["reuses"],
            "wall_clock_s": float(wall_clock_s),
        }
    lat = np.array([r.latency for r in records])
    # Updates share the simulated server clock, so a trace ending in an
    # update really ends there — makespan covers both record kinds.
    makespan = max(r.finish for r in (*records, *update_records))
    return {
        **update_aggs,
        "n_queries": len(records),
        "makespan_s": float(makespan),
        "throughput_qps": float(len(records) / makespan),
        "total_service_s": float(sum(r.service_s for r in records)),
        "latency_mean_s": float(lat.mean()),
        "latency_p50_s": float(np.percentile(lat, 50)),
        "latency_p95_s": float(np.percentile(lat, 95)),
        "latency_p99_s": float(np.percentile(lat, 99)),
        "latency_max_s": float(lat.max()),
        "warm_fraction": float(np.mean([r.warm_cache for r in records])),
        "mean_adj_hit_rate": float(np.mean(
            [r.adj_hit_rate for r in records if r.adj_hit_rate is not None]
            or [0.0])),
        "session_builds": pool_stats["builds"],
        "session_evictions": pool_stats["evictions"],
        "session_reuses": pool_stats["reuses"],
        "wall_clock_s": float(wall_clock_s),
    }
