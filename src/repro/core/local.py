"""Single-node reference implementations (ground truth).

Two independent paths:

* a **kernel path** that walks edges and calls the same intersection
  kernels the distributed algorithm uses (useful to test the kernels and
  as the shared-memory performance subject of Table III / Figure 6);
* a **matrix path** using the algebraic formulation the paper's related
  -work section describes (``C = A A ∘ A``): with scipy.sparse this is
  vectorized end-to-end and serves as an independent cross-check.

For a vertex ``i`` with out-adjacency A, the per-vertex triplet count is
``t_i = sum_j |adj(i) ∩ adj(j)|`` over ``j in adj(i)``.  Undirected: each
triangle through ``i`` contributes 2 to ``t_i``, so triangles-through-i is
``t_i / 2``, the global count is ``sum_i t_i / 6``, and
``LCC(i) = t_i / (deg_i (deg_i - 1))`` — which matches both Eq. 1
(directed) and Eq. 2 (undirected) of the paper.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.intersect import count_common
from repro.graph.csr import CSRGraph


def _to_sparse(graph: CSRGraph) -> sp.csr_matrix:
    """CSR graph -> scipy CSR 0/1 adjacency matrix."""
    n = graph.n
    data = np.ones(graph.adjacency.shape[0], dtype=np.int64)
    return sp.csr_matrix(
        (data, graph.adjacency.astype(np.int64), graph.offsets.astype(np.int64)),
        shape=(n, n),
    )


def triangles_per_vertex_matrix(graph: CSRGraph) -> np.ndarray:
    """``t_i = sum_j A_ij (A A^T)_ij`` — the algebraic formulation.

    ``(A A^T)_ij = |adj(i) ∩ adj(j)|`` for sorted 0/1 rows, so this equals
    the kernel path exactly, for directed and undirected graphs alike.
    """
    if graph.n == 0:
        return np.zeros(0, dtype=np.int64)
    a = _to_sparse(graph)
    prod = (a @ a.T).multiply(a)
    return np.asarray(prod.sum(axis=1)).ravel().astype(np.int64)


def triangles_per_vertex_batched(graph: CSRGraph) -> np.ndarray:
    """Per-vertex triplet counts, one vectorized pass per vertex.

    Same result as the matrix path but without materializing ``A A^T``
    (whose fill-in explodes on hub-heavy graphs): for each vertex the
    neighbours' adjacency lists are gathered into one array and counted
    against the vertex's own sorted list with a single ``searchsorted``.
    Runs in O(sum_over_edges deg(j) * log deg(v)) with ~2 NumPy calls per
    vertex.
    """
    n = graph.n
    offsets = graph.offsets
    adjacency = graph.adjacency
    degrees = np.diff(offsets)
    t = np.zeros(n, dtype=np.int64)
    for v in range(n):
        a = adjacency[offsets[v]:offsets[v + 1]]
        if a.shape[0] == 0:
            continue
        starts = offsets[a]
        lens = degrees[a]
        total = int(lens.sum())
        if total == 0:
            continue
        local_offsets = np.zeros(a.shape[0] + 1, dtype=np.int64)
        np.cumsum(lens, out=local_offsets[1:])
        gather = (np.arange(total, dtype=np.int64)
                  - np.repeat(local_offsets[:-1], lens)
                  + np.repeat(starts, lens))
        candidates = adjacency[gather]
        idx = np.searchsorted(a, candidates)
        idx[idx == a.shape[0]] = 0  # clip; mismatch check below handles it
        t[v] = int(np.count_nonzero(a[idx] == candidates))
    return t


def triangles_min_vertex(graph: CSRGraph) -> np.ndarray:
    """Triangles counted at their smallest-id vertex (undirected graphs).

    ``t[i] = |{(j, k) : i < j < k, all three edges present}|`` — exactly
    the per-vertex contribution of the distributed TC kernel's
    double-counting elimination (each triangle counted once, at the owner
    of its minimum vertex).  With ``U`` the strictly-upper adjacency,
    ``t = ((U U) ∘ U) · 1``: ``(U U)_ik`` counts paths ``i < j < k`` and
    the Hadamard product keeps the closed ones.
    """
    if graph.n == 0:
        return np.zeros(0, dtype=np.int64)
    u = sp.triu(_to_sparse(graph), k=1, format="csr")
    prod = (u @ u).multiply(u)
    return np.asarray(prod.sum(axis=1)).ravel().astype(np.int64)


def triangles_per_vertex_local(graph: CSRGraph, method: str = "hybrid"
                               ) -> np.ndarray:
    """Kernel path: per-vertex triplet counts via explicit intersections."""
    n = graph.n
    t = np.zeros(n, dtype=np.int64)
    for v in range(n):
        a = graph.adj(v)
        total = 0
        for j in a:
            total += count_common(a, graph.adj(int(j)), method)
        t[v] = total
    return t


def lcc_from_triplets(graph: CSRGraph, triplets: np.ndarray) -> np.ndarray:
    """``LCC(i) = t_i / (deg_i (deg_i - 1))`` with 0 for degree < 2."""
    deg = graph.degrees().astype(np.float64)
    denom = deg * (deg - 1.0)
    lcc = np.zeros(graph.n, dtype=np.float64)
    mask = denom > 0
    lcc[mask] = triplets[mask] / denom[mask]
    return lcc


def lcc_local(graph: CSRGraph, method: str = "matrix") -> np.ndarray:
    """Local clustering coefficient of every vertex.

    ``method='matrix'`` uses the sparse-algebra path (fast); any kernel
    name ('ssi' | 'binary' | 'hybrid') uses the intersection path.
    """
    if method == "matrix":
        t = triangles_per_vertex_matrix(graph)
    else:
        t = triangles_per_vertex_local(graph, method)
    return lcc_from_triplets(graph, t)


def triangle_count_local(graph: CSRGraph, method: str = "matrix") -> int:
    """Global triangle count.

    Undirected: closed triangles, each counted once.  Directed: the number
    of *transitive triads* (i -> j, i -> k, j -> k), the quantity the
    paper's directed LCC numerator aggregates.
    """
    if method == "matrix":
        t = triangles_per_vertex_matrix(graph)
    else:
        t = triangles_per_vertex_local(graph, method)
    total = int(t.sum())
    if graph.directed:
        return total
    assert total % 6 == 0, f"undirected triplet total {total} not divisible by 6"
    return total // 6
