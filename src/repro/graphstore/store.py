"""The versioned graph store: one graph, many configs, many partitionings.

Before this layer, every consumer of a graph owned its own copy of the
truth: each ``(graph, variant)`` serving session carried a private
post-update graph, ``tc2d`` re-derived its grid blocks per call, and two
variants of the same catalog graph could silently diverge.  The
:class:`GraphStore` makes the graph itself the unit of state:

* every named graph has a **monotonic version** — ``name@v0`` is the
  graph as registered, and each committed :class:`~repro.dynamic.delta
  .UpdateBatch` advances it by exactly one;
* the store keeps the **delta chain**: per version, the batch that
  produced it, the resulting snapshot and its
  :class:`~repro.dynamic.delta.DeltaResult` (affected set, changed edge
  keys) — everything a resident cluster needs to resync *surgically*
  instead of rebuilding;
* a **chained digest** (``h_v = sha1(h_{v-1} | graph bytes)``) summarizes
  the entire version history in one hash, so two serving runs proving
  equal digests have provably observed the same per-graph history — the
  scheduler-independence check of :mod:`repro.serve` builds on this;
* **staging** (:meth:`stage` / :meth:`commit`) coalesces many pending
  edge operations into a single flush through a
  :class:`~repro.dynamic.delta.DeltaBuffer` with last-writer-wins
  semantics — what the serving scheduler uses to merge consecutive
  queued updates for one graph.

The store never mutates a graph in place; snapshots are immutable
``CSRGraph`` objects, so readers holding an old version stay correct.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional

import numpy as np

from repro.dynamic.delta import (
    DeltaBuffer,
    DeltaResult,
    UpdateBatch,
    apply_delta,
)
from repro.graph.csr import CSRGraph
from repro.obs.trace import span as obs_span
from repro.utils.errors import ConfigError

__all__ = [
    "GraphStore",
    "GraphVersion",
    "StoreUpdate",
    "VersionRecord",
    "graph_digest",
]


def graph_digest(graph: CSRGraph) -> str:
    """SHA-1 over a graph's CSR bytes (offsets | adjacency)."""
    h = hashlib.sha1()
    h.update(np.ascontiguousarray(graph.offsets).tobytes())
    h.update(b"|")
    h.update(np.ascontiguousarray(graph.adjacency).tobytes())
    return h.hexdigest()


@dataclass(frozen=True, order=True)
class GraphVersion:
    """A point in one graph's history: ``(name, monotonic version)``."""

    name: str
    version: int

    def __str__(self) -> str:
        return f"{self.name}@v{self.version}"


@dataclass(frozen=True)
class VersionRecord:
    """One link of a graph's delta chain.

    ``digest`` is the *chained* history digest up to this version, not
    just this snapshot's bytes: equal digests imply equal full histories.
    ``batch``/``delta`` are ``None`` only for version 0 (registration).
    """

    version: GraphVersion
    graph: CSRGraph = field(repr=False)
    digest: str
    batch: Optional[UpdateBatch] = field(default=None, repr=False)
    delta: Optional[DeltaResult] = field(default=None, repr=False)


@dataclass(frozen=True)
class StoreUpdate:
    """What one committed batch did to the store."""

    version: GraphVersion         # the version the commit advanced to
    delta: DeltaResult            # graph-level outcome (new graph, affected)
    digest: str                   # chained history digest at this version
    coalesced: int = 0            # staged op-groups folded into this flush

    @property
    def graph(self) -> CSRGraph:
        return self.delta.graph

    @property
    def changed(self) -> bool:
        return self.delta.changed


class GraphStore:
    """Versioned snapshots of a catalog of named graphs."""

    def __init__(self, catalog: Mapping[str, CSRGraph] | None = None):
        self._chains: dict[str, list[VersionRecord]] = {}
        self._staged: dict[str, tuple[DeltaBuffer, int]] = {}
        if catalog:
            for name, graph in catalog.items():
                self.add(name, graph)

    # -- registration --------------------------------------------------------
    def add(self, name: str, graph: CSRGraph, *,
            overwrite: bool = False) -> GraphVersion:
        """Register ``graph`` under ``name`` at version 0."""
        if not name:
            raise ConfigError("a stored graph needs a non-empty name")
        if name in self._chains and not overwrite:
            raise ConfigError(
                f"graph {name!r} is already stored; pass overwrite=True to "
                "restart its history")
        version = GraphVersion(name, 0)
        record = VersionRecord(version=version, graph=graph,
                               digest=graph_digest(graph))
        self._chains[name] = [record]
        self._staged.pop(name, None)
        return version

    def seed(self, name: str, graph: CSRGraph, *, version: int,
             digest: str, overwrite: bool = False) -> GraphVersion:
        """Register ``graph`` mid-history, at a given version and digest.

        The re-seeding path of the replica layer: a replica rebuilt from
        a primary snapshot must **adopt** the primary's chained history
        digest, or its chain could never converge with the primary's
        again (the chain digest covers the whole path, and the replica no
        longer has the path's snapshots).  The chain starts at
        ``version`` — :meth:`record` already resolves chains whose first
        retained version is non-zero, exactly as after :meth:`prune`.
        """
        if not name:
            raise ConfigError("a stored graph needs a non-empty name")
        if version < 0:
            raise ConfigError(f"seed version must be >= 0, got {version}")
        if not digest:
            raise ConfigError("seed needs the chained history digest to adopt")
        if name in self._chains and not overwrite:
            raise ConfigError(
                f"graph {name!r} is already stored; pass overwrite=True to "
                "re-seed its history")
        record = VersionRecord(version=GraphVersion(name, version),
                               graph=graph, digest=digest)
        self._chains[name] = [record]
        self._staged.pop(name, None)
        return record.version

    # -- introspection -------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._chains

    def __len__(self) -> int:
        return len(self._chains)

    def names(self) -> list[str]:
        return sorted(self._chains)

    def _chain(self, name: str) -> list[VersionRecord]:
        try:
            return self._chains[name]
        except KeyError:
            raise ConfigError(
                f"graph {name!r} is not in the store "
                f"({', '.join(self.names()) or 'empty'})") from None

    def version(self, name: str) -> GraphVersion:
        """The latest version of ``name``."""
        return self._chain(name)[-1].version

    def graph(self, name: str, version: int | None = None) -> CSRGraph:
        """A snapshot: the latest one, or any retained ``version``."""
        return self.record(name, version).graph

    def record(self, name: str, version: int | None = None) -> VersionRecord:
        """The chain link at ``version`` (default: latest).

        Pruned snapshots are gone for good: only the retained window
        ``[first kept, latest]`` resolves.
        """
        chain = self._chain(name)
        if version is None:
            return chain[-1]
        first = chain[0].version.version
        idx = version - first
        if not (0 <= idx < len(chain)):
            raise ConfigError(
                f"graph {name!r} retains versions {first}.."
                f"{chain[-1].version.version}, not {version}")
        return chain[idx]

    def history(self, name: str) -> Iterator[VersionRecord]:
        """The delta chain, oldest first."""
        return iter(tuple(self._chain(name)))

    def digest(self, name: str, version: int | None = None) -> str:
        """The chained history digest at ``version`` (default: latest).

        ``sha1`` folded left-to-right over every snapshot's bytes, so two
        stores agreeing on this value agree on the graph's entire
        version-by-version history, not just its current bytes.
        """
        return self.record(name, version).digest

    def digests(self) -> dict[str, str]:
        """Latest history digest per stored graph."""
        return {name: self._chains[name][-1].digest for name in self._chains}

    # -- updates -------------------------------------------------------------
    def apply(self, name: str, batch: UpdateBatch, *,
              strict: bool = False, coalesced: int = 0) -> StoreUpdate:
        """Commit one batch: advance ``name`` by exactly one version.

        The batch is applied to the latest snapshot through the vectorized
        CSR merge; the resulting :class:`StoreUpdate` carries everything a
        resident cluster needs to resync.  A batch that changes nothing
        (all ops skipped under ``strict=False``) still advances the
        version — the history records that the write happened.
        """
        chain = self._chain(name)
        head = chain[-1]
        with obs_span("commit", cat="store", graph=name) as sp:
            res = apply_delta(head.graph, batch, strict=strict)
            version = GraphVersion(name, head.version.version + 1)
            h = hashlib.sha1()
            h.update(head.digest.encode())
            h.update(b"|")
            h.update(graph_digest(res.graph).encode())
            record = VersionRecord(version=version, graph=res.graph,
                                   digest=h.hexdigest(), batch=batch,
                                   delta=res)
            chain.append(record)
            sp.note(version=version.version, coalesced=coalesced,
                    changed=bool(res.changed))
        return StoreUpdate(version=version, delta=res, digest=record.digest,
                           coalesced=coalesced)

    # -- staging (coalescing) ------------------------------------------------
    def stage(self, name: str, inserts=None, deletes=None) -> int:
        """Queue edge operations for ``name`` without committing a version.

        Consecutive stagings accumulate in one
        :class:`~repro.dynamic.delta.DeltaBuffer` with last-writer-wins
        semantics; :meth:`commit` flushes them as a *single* batch — one
        version advance, one resync, however many stagings were folded.
        Returns the number of op-groups now pending.
        """
        graph = self.graph(name)
        buffer, pending = self._staged.get(
            name, (DeltaBuffer(graph.n, graph.directed), 0))
        if inserts is not None:
            buffer.insert_edges(inserts)
        if deletes is not None:
            buffer.delete_edges(deletes)
        pending += 1
        self._staged[name] = (buffer, pending)
        return pending

    def pending(self, name: str) -> int:
        """Op-groups staged for ``name`` and not yet committed."""
        return self._staged.get(name, (None, 0))[1]

    def commit(self, name: str, *, strict: bool = False
               ) -> StoreUpdate | None:
        """Flush ``name``'s staged operations as one coalesced batch.

        Returns ``None`` when nothing is staged.  ``coalesced`` on the
        returned update counts the op-groups beyond the first that rode
        along in this flush.
        """
        staged = self._staged.pop(name, None)
        if staged is None:
            return None
        buffer, pending = staged
        return self.apply(name, buffer.freeze(), strict=strict,
                          coalesced=max(0, pending - 1))

    # -- maintenance ---------------------------------------------------------
    def prune(self, name: str, keep: int = 1) -> int:
        """Drop the oldest snapshots, keeping the last ``keep`` records.

        Version numbers (and the chained digest) are preserved — only the
        retained window of snapshot objects shrinks.  Returns how many
        records were dropped.
        """
        if keep < 1:
            raise ConfigError(f"must keep >= 1 record, got {keep}")
        chain = self._chain(name)
        drop = max(0, len(chain) - keep)
        if drop:
            del chain[:drop]
        return drop

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = ", ".join(str(self._chains[n][-1].version)
                          for n in self.names())
        return f"GraphStore({parts})"
