"""Tests for the DistTC-style shadow-edge baseline."""

import pytest

from repro.baselines.disttc import DistTCConfig, run_disttc
from repro.core.local import triangle_count_local
from repro.graph.csr import CSRGraph
from repro.graph.generators import powerlaw_configuration, rmat
from repro.utils.errors import ConfigError

from tests.helpers import make_graph_suite


class TestCorrectness:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 8])
    def test_matches_local(self, nranks):
        g = rmat(7, 8, seed=6)
        res = run_disttc(g, DistTCConfig(nranks=nranks))
        assert res.global_triangles == triangle_count_local(g)

    @pytest.mark.parametrize("idx", range(6))
    def test_all_graphs(self, idx):
        g = make_graph_suite()[idx]
        res = run_disttc(g, DistTCConfig(nranks=4))
        assert res.global_triangles == triangle_count_local(g)

    def test_directed_rejected(self):
        g = CSRGraph.from_edges([(0, 1)], directed=True)
        with pytest.raises(ConfigError):
            run_disttc(g)


class TestPhaseStructure:
    def test_precompute_is_substantial(self):
        # The paper's criticism: total time dominated by the precompute.
        # At laptop scale the shadow volume is modest, so we assert the
        # weaker direction-preserving form: precompute is a significant
        # fraction of the job, and it grows with rank count (more cut
        # edges -> more shadows) while the count phase shrinks.
        g = powerlaw_configuration(512, 4096, seed=7)
        r8 = run_disttc(g, DistTCConfig(nranks=8))
        assert r8.precompute_time > 0
        assert r8.count_time > 0
        assert r8.precompute_time > 0.15 * r8.count_time
        r2 = run_disttc(g, DistTCConfig(nranks=2))
        assert (r8.precompute_time / r8.time) > (r2.precompute_time / r2.time) * 0.8

    def test_phase_times_sum_to_total(self):
        g = rmat(7, 8, seed=6)
        res = run_disttc(g, DistTCConfig(nranks=4))
        assert res.precompute_time + res.count_time <= res.time * 1.05
