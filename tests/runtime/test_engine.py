"""Tests for the discrete-event engine: scheduling, matching, deadlocks."""

import pytest

from repro.runtime.engine import Engine
from repro.utils.errors import CommError


class TestPlainFunctions:
    def test_run_plain_function(self):
        eng = Engine(4)

        def fn(ctx):
            ctx.compute(1e-6 * (ctx.rank + 1))
            return ctx.rank * 10

        out = eng.run(fn)
        assert out.results == [0, 10, 20, 30]
        assert out.time == pytest.approx(4e-6)
        assert out.clocks == pytest.approx([1e-6, 2e-6, 3e-6, 4e-6])
        assert out.slowest_rank == 3

    def test_single_rank(self):
        eng = Engine(1)
        out = eng.run(lambda ctx: ctx.rank)
        assert out.results == [0]

    def test_invalid_rank_count(self):
        with pytest.raises(CommError):
            Engine(0)


class TestSendRecv:
    def test_message_delivery(self):
        eng = Engine(2)

        def fn(ctx):
            if ctx.rank == 0:
                yield ctx.send(1, {"k": 42}, 128)
                return "sent"
            msg = yield ctx.recv(0)
            return msg["k"]

        out = eng.run(fn)
        assert out.results == ["sent", 42]

    def test_receiver_waits_for_arrival(self):
        eng = Engine(2)

        def fn(ctx):
            if ctx.rank == 0:
                ctx.compute(1e-3)  # sender is late
                yield ctx.send(1, "x", 64)
                return None
            msg = yield ctx.recv(0)
            return ctx.now

        out = eng.run(fn)
        # Receiver resumed only after send completion + wire time.
        assert out.results[1] > 1e-3
        assert out.traces[1].sync_time > 0

    def test_fifo_per_channel(self):
        eng = Engine(2)

        def fn(ctx):
            if ctx.rank == 0:
                for i in range(5):
                    yield ctx.send(1, i, 8)
                return None
            got = []
            for _ in range(5):
                got.append((yield ctx.recv(0)))
            return got

        out = eng.run(fn)
        assert out.results[1] == [0, 1, 2, 3, 4]

    def test_tags_separate_channels(self):
        eng = Engine(2)

        def fn(ctx):
            if ctx.rank == 0:
                yield ctx.send(1, "a", 8, tag=1)
                yield ctx.send(1, "b", 8, tag=2)
                return None
            second = yield ctx.recv(0, tag=2)
            first = yield ctx.recv(0, tag=1)
            return (first, second)

        out = eng.run(fn)
        assert out.results[1] == ("a", "b")

    def test_deadlock_detected(self):
        eng = Engine(2)

        def fn(ctx):
            msg = yield ctx.recv(1 - ctx.rank)  # both wait, nobody sends
            return msg

        with pytest.raises(CommError, match="deadlock"):
            eng.run(fn)


class TestBarrier:
    def test_barrier_aligns_clocks(self):
        eng = Engine(3)

        def fn(ctx):
            ctx.compute(1e-6 * (ctx.rank + 1))
            yield ctx.barrier()
            return ctx.now

        out = eng.run(fn)
        assert out.results[0] == out.results[1] == out.results[2]
        assert out.results[0] >= 3e-6  # slowest rank gates everyone

    def test_multiple_barriers(self):
        eng = Engine(2)

        def fn(ctx):
            times = []
            for _ in range(3):
                yield ctx.barrier()
                times.append(ctx.now)
            return times

        out = eng.run(fn)
        assert out.results[0] == out.results[1]
        assert out.results[0] == sorted(out.results[0])


class TestAlltoallv:
    def test_exchange_delivers_by_source(self):
        eng = Engine(3)

        def fn(ctx):
            payloads = [f"{ctx.rank}->{d}" for d in range(3)]
            got = yield ctx.alltoallv(payloads, [16] * 3)
            return got

        out = eng.run(fn)
        assert out.results[1] == ["0->1", "1->1", "2->1"]

    def test_completion_gated_by_slowest(self):
        eng = Engine(2)

        def fn(ctx):
            if ctx.rank == 0:
                ctx.compute(5e-3)
            yield ctx.alltoallv([None, None], [0, 0])
            return ctx.now

        out = eng.run(fn)
        assert out.results[0] == out.results[1]
        assert out.results[1] >= 5e-3
        assert out.traces[1].sync_time >= 5e-3 * 0.99

    def test_mismatched_collectives_rejected(self):
        eng = Engine(2)

        def fn(ctx):
            if ctx.rank == 0:
                yield ctx.barrier()
            else:
                yield ctx.alltoallv([None, None], [0, 0])

        with pytest.raises(CommError, match="mismatch"):
            eng.run(fn)


class TestAllreduce:
    def test_sum(self):
        eng = Engine(4)

        def fn(ctx):
            total = yield ctx.allreduce(float(ctx.rank + 1))
            return total

        out = eng.run(fn)
        assert out.results == [10.0] * 4


class TestOutcome:
    def test_summary_keys(self):
        eng = Engine(2)
        out = eng.run(lambda ctx: ctx.compute(1e-6))
        s = out.summary()
        for key in ("time", "comm_time", "comp_time", "hit_rate",
                    "load_imbalance"):
            assert key in s

    def test_load_imbalance(self):
        eng = Engine(2)

        def fn(ctx):
            ctx.compute(1e-6 if ctx.rank == 0 else 3e-6)

        out = eng.run(fn)
        assert out.load_imbalance == pytest.approx(0.5)
