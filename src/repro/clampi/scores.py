"""Eviction-score policies.

CLaMPI's default victim selection is "LRU weighted on a positional score to
limit external fragmentation" (paper Section III-B2).  The paper's extension
replaces the score with an **application-defined** value — for LCC, the
degree of the cached vertex, because degree predicts future reuse
(Observation 3.1) — at the cost of losing the anti-fragmentation spatial
term (explicitly noted in the paper).

A policy maps a cache entry to a scalar; the entry with the **lowest**
score is evicted first.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.clampi.allocator import BufferAllocator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.clampi.cache import CacheEntry


class ScorePolicy(abc.ABC):
    """Strategy object computing eviction scores (lower = evict first)."""

    @abc.abstractmethod
    def victim_score(self, entry: "CacheEntry", allocator: BufferAllocator,
                     clock: int) -> float:
        """Score ``entry`` given the allocator state and the logical clock."""

    @property
    def uses_app_score(self) -> bool:
        """Whether the policy consumes application-supplied scores."""
        return False


class DefaultScorePolicy(ScorePolicy):
    """CLaMPI's stock policy: temporal locality + positional placement.

    ``score = w_recency * recency - w_positional * coalescing_relief``

    * *recency* is the entry's last access normalized by the logical clock,
      in [0, 1] — plain LRU when ``w_positional == 0``.
    * *coalescing_relief* is the free space adjacent to the entry divided by
      (adjacent + own size): an entry surrounded by free space scores lower
      and is evicted earlier, even with high temporal locality, exactly the
      behaviour the paper describes.
    """

    def __init__(self, w_recency: float = 1.0, w_positional: float = 0.5):
        if w_recency < 0 or w_positional < 0:
            raise ValueError("score weights must be non-negative")
        self.w_recency = w_recency
        self.w_positional = w_positional

    def victim_score(self, entry: "CacheEntry", allocator: BufferAllocator,
                     clock: int) -> float:
        recency = entry.last_access / clock if clock > 0 else 0.0
        relief = 0.0
        if self.w_positional > 0.0:
            adjacent = allocator.adjacent_free(entry.buffer_offset)
            denom = adjacent + entry.nbytes
            relief = adjacent / denom if denom > 0 else 0.0
        return self.w_recency * recency - self.w_positional * relief


class AppScorePolicy(ScorePolicy):
    """The paper's extension: user-supplied scores drive victim selection.

    For the adjacency cache the application passes the out-degree of the
    fetched vertex ("after completing the get targeting the offsets window,
    we know the out-degree of the non-local vertex"), so low-degree — i.e.
    unlikely-to-be-reused — entries are evicted first.  A small recency term
    breaks ties among equal scores.  The positional (anti-fragmentation)
    term is deliberately absent, as in the paper.
    """

    def __init__(self, recency_tiebreak: float = 1e-6):
        if recency_tiebreak < 0:
            raise ValueError("recency_tiebreak must be non-negative")
        self.recency_tiebreak = recency_tiebreak

    @property
    def uses_app_score(self) -> bool:
        return True

    def victim_score(self, entry: "CacheEntry", allocator: BufferAllocator,
                     clock: int) -> float:
        app = entry.app_score if entry.app_score is not None else 0.0
        recency = entry.last_access / clock if clock > 0 else 0.0
        return app + self.recency_tiebreak * recency


class LRUScorePolicy(ScorePolicy):
    """Pure LRU (positional weight zero) — used by ablation benchmarks."""

    def victim_score(self, entry: "CacheEntry", allocator: BufferAllocator,
                     clock: int) -> float:
        return entry.last_access / clock if clock > 0 else 0.0
