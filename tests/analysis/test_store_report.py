"""The graph-store bench report and its regression gates."""

import copy

import pytest

from repro.analysis.store import (
    MIN_WARM_SPEEDUP,
    STORE_REPORT_KEYS,
    check_store_against_baseline,
    check_store_report,
    one_off_store_run,
    run_store_bench,
    write_store_report,
)
from repro.graph.generators import powerlaw_configuration


@pytest.fixture(scope="module")
def quick_report():
    return run_store_bench(quick=True)


class TestQuickRun:
    def test_schema_and_gates(self, quick_report):
        for key in STORE_REPORT_KEYS:
            assert key in quick_report
        assert check_store_report(quick_report) == []

    def test_tc2d_rows(self, quick_report):
        assert quick_report["tc2d"]
        for row in quick_report["tc2d"].values():
            assert row["bit_identical"] is True
            assert row["warm_speedup"] >= MIN_WARM_SPEEDUP
            assert row["grid_builds"] == 1

    def test_versions_row(self, quick_report):
        ver = quick_report["versions"]
        assert ver["results_identical"] is True
        assert ver["version_histories_identical"] is True
        assert ver["n_updates"] > 0
        assert set(ver["schedulers"]) == {"fifo", "affinity"}
        # Versions advanced: some graph must be past v0.
        assert any(v > 0 for v in ver["final_versions"].values())

    def test_delete_heavy_rows(self, quick_report):
        dh = quick_report["delete_heavy"]
        assert dh["serving"]["results_identical"] is True
        for gname, row in dh.items():
            if gname == "serving":
                continue
            assert row["bit_identical"] is True
            assert row["edges_after"] < row["edges_before"]
            assert row["delete_fraction"] >= 0.75

    def test_write_round_trip(self, quick_report, tmp_path):
        from repro.analysis.benchreport import load_report

        path = tmp_path / "store.json"
        write_store_report(quick_report, str(path))
        loaded = load_report(str(path))
        assert set(loaded) >= set(STORE_REPORT_KEYS)
        for gname, row in quick_report["tc2d"].items():
            assert loaded["tc2d"][gname]["warm_speedup"] == pytest.approx(
                row["warm_speedup"])
            assert loaded["tc2d"][gname]["bit_identical"] is True

    def test_passes_against_committed_baseline(self, quick_report):
        problems = check_store_against_baseline(quick_report, quick_report)
        assert problems == []


class TestGates:
    def test_bit_identity_is_non_negotiable(self, quick_report):
        bad = copy.deepcopy(quick_report)
        gname = next(iter(bad["tc2d"]))
        bad["tc2d"][gname]["bit_identical"] = False
        assert any("differ" in p for p in check_store_report(bad))

    def test_warm_speedup_floor(self, quick_report):
        bad = copy.deepcopy(quick_report)
        gname = next(iter(bad["tc2d"]))
        bad["tc2d"][gname]["warm_speedup"] = 1.5
        assert any("below the 2.0x floor" in p for p in
                   check_store_report(bad))

    def test_grid_must_build_once(self, quick_report):
        bad = copy.deepcopy(quick_report)
        gname = next(iter(bad["tc2d"]))
        bad["tc2d"][gname]["grid_builds"] = 3
        assert any("must build once" in p for p in check_store_report(bad))

    def test_version_history_independence_required(self, quick_report):
        bad = copy.deepcopy(quick_report)
        bad["versions"]["version_histories_identical"] = False
        assert any("version histories" in p for p in check_store_report(bad))

    def test_delete_heavy_parity_required(self, quick_report):
        bad = copy.deepcopy(quick_report)
        for gname, row in bad["delete_heavy"].items():
            if gname != "serving":
                row["bit_identical"] = False
                break
        assert any("shrinkage" in p for p in check_store_report(bad))

    def test_baseline_relative_speedup(self, quick_report):
        inflated = copy.deepcopy(quick_report)
        for row in inflated["tc2d"].values():
            row["warm_speedup"] = row["warm_speedup"] * 1000
        problems = check_store_against_baseline(quick_report, inflated)
        assert any("fell below" in p for p in problems)

    def test_missing_baseline_section_flagged(self, quick_report):
        problems = check_store_against_baseline(quick_report, {"tc2d": {}})
        assert any("baseline has no tc2d" in p for p in problems)

    def test_bad_tolerance_rejected(self, quick_report):
        with pytest.raises(ValueError):
            check_store_against_baseline(quick_report, quick_report,
                                         tolerance=0.0)

    def test_write_refuses_failing_report(self, quick_report, tmp_path):
        bad = copy.deepcopy(quick_report)
        bad["versions"]["results_identical"] = False
        with pytest.raises(ValueError):
            write_store_report(bad, str(tmp_path / "bad.json"))
        write_store_report(bad, str(tmp_path / "ungated.json"), gate=False)


class TestOneOff:
    def test_one_off_run_fields(self):
        g = powerlaw_configuration(160, 900, seed=6, name="oneoff")
        payload = one_off_store_run(g, nranks=9, n_edges=10, seed=1)
        assert payload["post_update_matches_rebuild"] is True
        assert payload["warm_matches_cold"] is True
        assert payload["version"] == "oneoff@v1"
        assert payload["touched_blocks"] >= 0
        assert payload["warm_speedup"] > 1.0
