"""Tests for the adaptive tuner."""

import numpy as np
import pytest

from repro.clampi.adaptive import AdaptiveConfig
from repro.clampi.cache import ClampiCache, ClampiConfig
from repro.runtime.window import Window


def make_cached_window(n=4096, **adaptive_kw):
    win = Window("adj", [np.arange(n, dtype=np.int64),
                         np.arange(n, dtype=np.int64)])
    win.lock_all(0)
    cfg = ClampiConfig(
        capacity_bytes=1 << 16,
        nslots=8,
        adaptive=AdaptiveConfig(**adaptive_kw),
    )
    return ClampiCache(win, 0, cfg), win


class TestAdaptiveConfig:
    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(check_interval=0)

    def test_bad_growth_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(hash_growth=1.0)


class TestHashGrowth:
    def test_conflicts_trigger_hash_resize(self):
        cache, _ = make_cached_window(check_interval=64,
                                      conflict_threshold=0.01)
        start_slots = cache.config.nslots
        # 8 slots + many distinct keys -> constant probe-window conflicts.
        for off in range(0, 600):
            cache.access(1, off, 1)
        assert cache.config.nslots > start_slots
        assert cache.stats.adaptive_resizes >= 1

    def test_resize_respects_max(self):
        cache, _ = make_cached_window(check_interval=32,
                                      conflict_threshold=0.01,
                                      max_nslots=16)
        for off in range(0, 900):
            cache.access(1, off, 1)
        assert cache.config.nslots <= 16

    def test_max_resizes_bounds_churn(self):
        cache, _ = make_cached_window(check_interval=32,
                                      conflict_threshold=0.0001,
                                      max_resizes=2)
        for off in range(0, 1200):
            cache.access(1, off, 1)
        assert cache.stats.adaptive_resizes <= 2


class TestBufferGrowth:
    def test_evictions_trigger_buffer_growth(self):
        win = Window("adj", [np.arange(8192, dtype=np.int64)] * 2)
        win.lock_all(0)
        cfg = ClampiConfig(
            capacity_bytes=256,  # tiny: constant capacity evictions
            nslots=1 << 14,
            adaptive=AdaptiveConfig(
                check_interval=64,
                conflict_threshold=2.0,    # never grow the hash table
                eviction_threshold=0.05,
                min_miss_rate=0.05,
                max_capacity_bytes=1 << 14,
            ),
        )
        cache = ClampiCache(win, 0, cfg)
        rng = np.random.default_rng(0)
        for _ in range(800):
            off = int(rng.integers(0, 512))
            cache.access(1, off, 4)
        assert cache.config.capacity_bytes > 256

    def test_no_growth_without_max_capacity(self):
        cache, _ = make_cached_window(check_interval=64,
                                      conflict_threshold=2.0,
                                      eviction_threshold=0.0001)
        for off in range(0, 500):
            cache.access(1, off, 1)
        assert cache.config.capacity_bytes == 1 << 16


class TestObserveTiming:
    def test_resize_charges_time(self):
        cache, _ = make_cached_window(check_interval=16,
                                      conflict_threshold=0.01)
        charged = 0.0
        for off in range(0, 200):
            _, dt, _ = cache.access(1, off, 1)
            charged += dt
        # At least one resize cost must be embedded in the charged time.
        assert cache.stats.adaptive_resizes >= 1
        assert charged > cache.stats.adaptive_resizes * 1e-9
