"""Synthetic multi-tenant query workloads (Poisson arrivals, Zipf skew).

The paper's Figure 4 observation is that remote reads over scale-free
graphs concentrate on a small hot set — the property CLaMPI caching
monetizes.  Serving traffic has the same shape one level up: a few hot
tenants and hot graphs attract most queries.  This module generates that
traffic deterministically:

* **arrivals** are Poisson — exponential inter-arrival gaps at a chosen
  aggregate rate (simulated queries/second);
* **tenants** are drawn Zipf(``tenant_skew``), so a handful of tenants
  dominate;
* each tenant is pinned to a home ``(graph, config-variant)`` pair, with
  graphs assigned Zipf(``graph_skew``) across the catalog, so hot tenants
  pile onto hot resident clusters — the paper-motivated serving regime;
* ``tenant_skew=0`` / ``graph_skew=0`` produce the uniform contrast.

Note what the contrast shows: cache-affinity scheduling wins in *both*
regimes, because its win is driven by contention for the bounded session
pool.  Uniform popularity spreads queries over more distinct resident
clusters, so FIFO thrashes the pool even harder and the affinity ratio
can be *larger* than under skew (skewed FIFO traffic is already partially
self-affine) — the ratio is not monotone in skew.

Everything is seeded through :func:`repro.utils.rng.derive_seed`, so a
:class:`WorkloadSpec` maps to exactly one request trace, bit-for-bit,
across runs and machines.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.dynamic.delta import random_update_arrays
from repro.graph.csr import CSRGraph
from repro.graph.generators import erdos_renyi, powerlaw_configuration, rmat
from repro.serve.request import QueryRequest, UpdateRequest, freeze_overrides
from repro.session import get_kernel
from repro.utils.errors import ConfigError
from repro.utils.rng import derive_seed, make_rng

#: Config-variant pool tenants are assigned from (all result-preserving:
#: intersection method and overlap change timing, never answers).
DEFAULT_VARIANTS: tuple[tuple[tuple, ...], ...] = (
    (),
    (("method", "ssi"),),
)


def default_catalog(scale: float = 1.0) -> dict[str, CSRGraph]:
    """The standard serving catalog: small named graphs, skew and uniform.

    ``scale`` shrinks vertex/edge counts for smoke tests; graphs stay
    undirected so every resident kernel (lcc *and* tc) can serve them.
    """
    if scale <= 0:
        raise ConfigError(f"catalog scale must be > 0, got {scale}")

    def s(x: int) -> int:
        return max(16, int(x * scale))

    return {
        "social-a": powerlaw_configuration(s(768), s(4800), seed=11,
                                           name="social-a"),
        "social-b": powerlaw_configuration(s(512), s(2800), seed=12,
                                           name="social-b"),
        "web-a": rmat(max(5, int(np.log2(s(512)))), 6, seed=13, name="web-a"),
        "mesh-a": erdos_renyi(s(512), s(2400), seed=14, name="mesh-a"),
    }


def zipf_weights(n: int, skew: float) -> np.ndarray:
    """Normalized Zipf(``skew``) weights over ranks ``1..n``.

    ``skew=0`` is the uniform distribution; larger values concentrate mass
    on the first ranks (rank k gets weight proportional to ``k**-skew``).
    """
    if n < 1:
        raise ConfigError(f"zipf_weights needs n >= 1, got {n}")
    if skew < 0:
        raise ConfigError(f"zipf skew must be >= 0, got {skew}")
    w = np.arange(1, n + 1, dtype=np.float64) ** (-skew)
    return w / w.sum()


def _choice(rng: np.random.Generator, weights: np.ndarray,
            size: int) -> np.ndarray:
    """Inverse-CDF sampling (stable across NumPy versions for fixed draws)."""
    cdf = np.cumsum(weights)
    cdf[-1] = 1.0
    return np.searchsorted(cdf, rng.random(size), side="right")


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything one synthetic workload depends on (hashable, seedable)."""

    n_queries: int = 100
    arrival_rate: float = 100.0         # aggregate simulated queries/second
    n_tenants: int = 8
    graphs: tuple[str, ...] = ("social-a", "social-b", "web-a", "mesh-a")
    kernels: tuple[str, ...] = ("lcc", "tc")
    variants: tuple = DEFAULT_VARIANTS
    tenant_skew: float = 1.1            # Zipf exponent over tenants
    graph_skew: float = 0.9             # Zipf exponent over catalog graphs
    update_mix: float = 0.0             # fraction of requests that are updates
    update_edges: int = 8               # edges per update batch
    update_delete_fraction: float = 0.25  # of each batch, deletes vs inserts
    #: Arrival process: "poisson" (the default, exponential gaps),
    #: "bursty" (Poisson gaps with randomly-placed episodes compressed
    #: ``burst_factor``-fold — the tail-latency regime the async bench
    #: gates on), or "flash" (one contiguous flash crowd: a
    #: ``burst_fraction`` block of the trace arrives ``burst_factor``×
    #: faster *and* is re-aimed at the hottest tenant's home, the
    #: one-session-key stampede the fairness tests need).
    arrival_mode: str = "poisson"
    burst_factor: float = 8.0           # gap compression inside an episode
    burst_fraction: float = 0.3         # of requests inside episodes
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_queries < 1:
            raise ConfigError(f"n_queries must be >= 1, got {self.n_queries}")
        if self.arrival_rate <= 0:
            raise ConfigError(
                f"arrival_rate must be > 0, got {self.arrival_rate}")
        if self.n_tenants < 1:
            raise ConfigError(f"n_tenants must be >= 1, got {self.n_tenants}")
        if not self.graphs:
            raise ConfigError("workload needs at least one graph")
        if not self.kernels:
            raise ConfigError("workload needs at least one kernel")
        if not 0.0 <= self.update_mix <= 0.9:
            # Aggregate metrics (throughput, latency percentiles) need
            # queries to measure; a pure-write workload has none.
            raise ConfigError(
                f"update_mix must be in [0, 0.9], got {self.update_mix}")
        if self.update_edges < 1:
            raise ConfigError(
                f"update_edges must be >= 1, got {self.update_edges}")
        if not 0.0 <= self.update_delete_fraction <= 1.0:
            raise ConfigError(
                "update_delete_fraction must be in [0, 1], got "
                f"{self.update_delete_fraction}")
        if self.arrival_mode not in ("poisson", "bursty", "flash"):
            raise ConfigError(
                f"unknown arrival_mode {self.arrival_mode!r}; expected "
                "'poisson', 'bursty' or 'flash'")
        if self.burst_factor <= 1.0:
            raise ConfigError(
                f"burst_factor must be > 1, got {self.burst_factor}")
        if not 0.0 < self.burst_fraction < 1.0:
            raise ConfigError(
                f"burst_fraction must be in (0, 1), got "
                f"{self.burst_fraction}")

    def uniform(self) -> "WorkloadSpec":
        """The same workload with popularity skew removed (the contrast)."""
        return replace(self, tenant_skew=0.0, graph_skew=0.0)

    def bursty(self, factor: float = 8.0,
               fraction: float = 0.3) -> "WorkloadSpec":
        """The same workload under episodic arrival bursts.

        Mean load is unchanged outside the episodes; inside them the
        inter-arrival gaps shrink ``factor``-fold, which is what drives
        a queue — and therefore p99 — without touching what is asked.
        """
        return replace(self, arrival_mode="bursty", burst_factor=factor,
                       burst_fraction=fraction)

    def flash_crowd(self, factor: float = 50.0,
                    fraction: float = 0.4) -> "WorkloadSpec":
        """One contiguous stampede onto the hottest tenant's session key."""
        return replace(self, arrival_mode="flash", burst_factor=factor,
                       burst_fraction=fraction)

    def delete_heavy(self, delete_fraction: float = 0.8) -> "WorkloadSpec":
        """A deletion-dominated variant: sustained shrinkage traffic.

        ``delete_fraction`` must be >= 0.75 (the scenario exists to
        stress tombstone-style churn — degrees collapsing below the
        min-degree preprocessing threshold, offsets sliding left rank by
        rank — not to be a mild remix of the insert-dominated default).
        """
        if delete_fraction < 0.75:
            raise ConfigError(
                "a delete-heavy workload deletes >= 75% of each batch, "
                f"got {delete_fraction}")
        return replace(self, update_delete_fraction=delete_fraction)


def generate_workload(spec: WorkloadSpec,
                      catalog: dict[str, CSRGraph] | None = None
                      ) -> list[QueryRequest]:
    """Deterministically expand a spec into its arrival-ordered requests.

    With ``update_mix > 0`` the trace interleaves
    :class:`~repro.serve.request.UpdateRequest`s whose edge batches are
    materialized here, against the catalog's base graphs — batch content
    is then a pure function of the spec, independent of service order.
    Update randomness lives on a separate derived stream, so a spec with
    ``update_mix=0`` produces exactly the trace it always did.
    """
    for kernel in spec.kernels:
        if not get_kernel(kernel).resident:
            raise ConfigError(
                f"serving kernels must be resident, got {kernel!r}")
    if spec.update_mix > 0:
        if catalog is None:
            raise ConfigError(
                "update_mix > 0 needs the graph catalog to synthesize "
                "update batches (pass generate_workload(spec, catalog))")
        missing = [g for g in spec.graphs if g not in catalog]
        if missing:
            raise ConfigError(
                f"workload graphs missing from catalog: {missing}")
    rng = make_rng(derive_seed(spec.seed, "serve-workload"))
    n = spec.n_queries

    # Tenant homes: graph by Zipf over the catalog, variant round-robin
    # (so hot graphs are served under more than one resident config).
    graph_ranks = _choice(rng, zipf_weights(len(spec.graphs),
                                            spec.graph_skew), spec.n_tenants)
    homes = [(spec.graphs[int(g)],
              freeze_overrides(dict(spec.variants[t % len(spec.variants)])))
             for t, g in enumerate(graph_ranks)]

    arrivals = np.cumsum(rng.exponential(1.0 / spec.arrival_rate, size=n))
    tenants = _choice(rng, zipf_weights(spec.n_tenants, spec.tenant_skew), n)
    kernel_ids = _choice(rng, zipf_weights(len(spec.kernels), 0.0), n)

    # Non-Poisson arrival modes reshape the *gaps* after the base draws,
    # on a separate derived stream — a "poisson" spec therefore produces
    # exactly the trace it always did, bit for bit.
    if spec.arrival_mode != "poisson":
        burst_rng = make_rng(derive_seed(spec.seed, "serve-bursts"))
        gaps = np.diff(arrivals, prepend=0.0)
        if spec.arrival_mode == "bursty":
            in_burst = burst_rng.random(n) < spec.burst_fraction
        else:  # flash: one contiguous stampede, re-aimed at one key
            k = max(1, int(round(spec.burst_fraction * n)))
            i0 = int(burst_rng.integers(0, n - k + 1))
            in_burst = np.zeros(n, dtype=bool)
            in_burst[i0:i0 + k] = True
            tenants = tenants.copy()
            tenants[in_burst] = 0  # Zipf rank 0 — the hottest tenant
        gaps[in_burst] /= spec.burst_factor
        arrivals = np.cumsum(gaps)

    is_update = np.zeros(n, dtype=bool)
    upd_rng = None
    if spec.update_mix > 0:
        upd_rng = make_rng(derive_seed(spec.seed, "serve-updates"))
        is_update = upd_rng.random(n) < spec.update_mix
        is_update[0] = False  # keep at least one query in every trace

    requests: list = []
    for qid in range(n):
        tenant = int(tenants[qid])
        graph, overrides = homes[tenant]
        if is_update[qid]:
            inserts, deletes = random_update_arrays(
                catalog[graph], spec.update_edges,
                spec.update_delete_fraction, seed=upd_rng)
            requests.append(UpdateRequest(
                arrival=float(arrivals[qid]), qid=qid, tenant=tenant,
                graph=graph, overrides=overrides,
                inserts=inserts, deletes=deletes))
        else:
            requests.append(QueryRequest(
                arrival=float(arrivals[qid]), qid=qid, tenant=tenant,
                graph=graph, kernel=spec.kernels[int(kernel_ids[qid])],
                overrides=overrides))
    return requests
