"""Async-serving benchmark: overlap, tail latency, and the parity proof.

``repro async-serve --bench`` (and :func:`run_async_bench`) records the
cooperative runtime's trajectory point, ``BENCH_async.json``:

* **steady** — the same steady Zipf+Poisson read/write mix served by the
  serial :class:`~repro.serve.engine.ServingEngine` and the cooperative
  :class:`~repro.serve.engine.AsyncServingEngine`; the committed gate
  requires bit-identical answers/version histories *and* an async p99
  no worse than :data:`ASYNC_P99_TOLERANCE` × the serial p99 — the
  cooperative runtime must never buy throughput with tail latency on
  well-behaved traffic;
* **burst** — a bursty, update-heavy mix over the sharded store with
  shard-set-annotated updates (the disjoint-update regime the fence was
  built for): overlapped update application + queries must reach
  ≥ :data:`MIN_ASYNC_SPEEDUP` × the serial engine's throughput, with
  answers still bit-identical and real overlap measured
  (``overlap_fraction`` > 0);
* **backpressure** — admission control on the simulated clock: shedding
  is deterministic run-to-run, shed qids never appear in the digests,
  and the ``defer`` policy (bounded run queue, nothing dropped) keeps
  full parity with the unbounded run;
* **interleavings** — the headline proof, benched: one workload driven
  through :data:`ASYNC_SEEDS` seeded random cooperative interleavings
  (:class:`~repro.serve.scheduler.InterleaveScheduler`), every one
  pinned bit-identical to the serial oracle.

:func:`check_async_report` is the absolute gate; CI re-runs ``--quick``
sizes and gates against the committed baseline with
:func:`check_async_against_baseline`.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.analysis.benchreport import BENCH_THREADS, write_report
from repro.serve.engine import (
    AsyncServeConfig,
    AsyncServingEngine,
    ServeConfig,
    ServingEngine,
    answers_identical,
)
from repro.serve.scheduler import FIFOScheduler, InterleaveScheduler
from repro.serve.workload import WorkloadSpec, default_catalog, generate_workload
from repro.shardstore import ShardedGraphStore, annotate_shard_sets

ASYNC_SCHEMA_VERSION = 1

#: Keys every async report carries (pinned by tests and the CLI).
ASYNC_REPORT_KEYS = ("schema_version", "quick", "nranks", "threads",
                     "workers", "steady", "burst", "backpressure",
                     "interleavings")

ASYNC_NRANKS = 8
ASYNC_WORKERS = 6

#: Async p99 on steady traffic may exceed the serial p99 by at most this.
ASYNC_P99_TOLERANCE = 1.1

#: Overlapped throughput on the disjoint burst mix must beat serial by this.
MIN_ASYNC_SPEEDUP = 1.3

#: Interleaving seeds the parity scenario drives (quick uses a prefix).
ASYNC_SEEDS = tuple(range(8))

ASYNC_SEED = 17

#: Shard geometry for the disjoint-update burst (updates annotated with
#: their touched shard sets so disjoint writers overlap).
ASYNC_NSHARDS = 4


def _serial_config(pool_capacity: int = 4) -> ServeConfig:
    return ServeConfig(nranks=ASYNC_NRANKS, threads=BENCH_THREADS,
                       pool_capacity=pool_capacity)


def _async_config(pool_capacity: int = 4, **kw) -> AsyncServeConfig:
    return AsyncServeConfig(nranks=ASYNC_NRANKS, threads=BENCH_THREADS,
                            pool_capacity=pool_capacity,
                            workers=kw.pop("workers", ASYNC_WORKERS), **kw)


def _pick(aggs: Mapping[str, Any], *keys: str) -> dict[str, Any]:
    return {k: aggs[k] for k in keys if k in aggs}


_AGG_KEYS = ("throughput_qps", "makespan_s", "latency_p50_s",
             "latency_p95_s", "latency_p99_s", "latency_mean_s",
             "warm_fraction", "updates_coalesced", "mean_concurrency",
             "max_concurrency", "overlap_fraction", "n_deferred",
             "n_rejected", "query_slo_attainment")


def bench_steady(quick: bool = False) -> dict[str, Any]:
    """Serial vs cooperative on a steady Zipf+Poisson read/write mix."""
    catalog = default_catalog(scale=0.25 if quick else 0.4)
    spec = WorkloadSpec(
        n_queries=48 if quick else 160, arrival_rate=1500.0,
        n_tenants=8, graphs=tuple(catalog), kernels=("lcc", "tc"),
        seed=ASYNC_SEED, update_mix=0.2)
    requests = generate_workload(spec, catalog)
    serial = ServingEngine(catalog, _serial_config(),
                           scheduler=FIFOScheduler()).serve(requests)
    coop = AsyncServingEngine(catalog, _async_config(),
                              scheduler=FIFOScheduler()).serve(requests)
    p99_serial = serial.aggregates["latency_p99_s"]
    p99_async = coop.aggregates["latency_p99_s"]
    return {
        "n_requests": len(requests),
        "results_identical": answers_identical(serial, coop),
        "p99_serial_s": p99_serial,
        "p99_async_s": p99_async,
        "p99_ratio": p99_async / p99_serial if p99_serial else 0.0,
        "serial": _pick(serial.aggregates, *_AGG_KEYS),
        "async": _pick(coop.aggregates, *_AGG_KEYS),
    }


def bench_burst(quick: bool = False) -> dict[str, Any]:
    """The disjoint-update burst mix: overlapped writers vs the fence.

    Bursty arrivals pile a deep queue; updates carry their touched-shard
    sets against a :class:`~repro.shardstore.sharded.ShardedGraphStore`,
    so disjoint writers — and queries on *other* graphs — overlap
    instead of serializing.  Throughput is the gate; bit-identity stays
    mandatory.
    """
    catalog = default_catalog(scale=0.25 if quick else 0.4)
    spec = WorkloadSpec(
        n_queries=48 if quick else 160, arrival_rate=2500.0,
        n_tenants=10, graphs=tuple(catalog), kernels=("lcc", "tc"),
        seed=ASYNC_SEED, update_mix=0.35, update_edges=8,
        ).bursty(factor=8.0, fraction=0.5)
    requests = generate_workload(spec, catalog)

    def sharded(c):
        return ShardedGraphStore(c, nshards=ASYNC_NSHARDS,
                                 nranks=ASYNC_NRANKS)

    annotated = annotate_shard_sets(requests, sharded(catalog))
    serial = ServingEngine(catalog, _serial_config(), FIFOScheduler(),
                           store_factory=sharded).serve(annotated)
    coop = AsyncServingEngine(catalog, _async_config(), FIFOScheduler(),
                              store_factory=sharded).serve(annotated)
    t_serial = serial.aggregates["throughput_qps"]
    t_async = coop.aggregates["throughput_qps"]
    return {
        "n_requests": len(requests),
        "disjoint_updates": sum(1 for r in annotated
                                if r.is_update and r.shards is not None),
        "results_identical": answers_identical(serial, coop),
        "throughput_serial_qps": t_serial,
        "throughput_async_qps": t_async,
        "throughput_ratio": t_async / t_serial if t_serial else 0.0,
        "p99_serial_s": serial.aggregates["latency_p99_s"],
        "p99_async_s": coop.aggregates["latency_p99_s"],
        "serial": _pick(serial.aggregates, *_AGG_KEYS),
        "async": _pick(coop.aggregates, *_AGG_KEYS),
    }


def bench_backpressure(quick: bool = False) -> dict[str, Any]:
    """Admission control on the simulated clock, pinned three ways."""
    catalog = default_catalog(scale=0.2 if quick else 0.3)
    spec = WorkloadSpec(
        n_queries=40 if quick else 100, arrival_rate=4000.0,
        n_tenants=8, graphs=tuple(catalog), kernels=("lcc",),
        seed=ASYNC_SEED, update_mix=0.2).flash_crowd()
    requests = generate_workload(spec, catalog)
    unbounded = AsyncServingEngine(catalog, _async_config()).serve(requests)
    deferred = AsyncServingEngine(catalog, _async_config(
        max_queue=6, overflow="defer")).serve(requests)
    shed_a = AsyncServingEngine(catalog, _async_config(
        workers=2, max_queue=4, overflow="shed")).serve(requests)
    shed_b = AsyncServingEngine(catalog, _async_config(
        workers=2, max_queue=4, overflow="shed")).serve(requests)
    served_arrival_latency_ok = all(
        abs((r.finish - r.arrival) - r.latency) < 1e-12 and r.start >= r.arrival
        for r in deferred.records)
    return {
        "n_requests": len(requests),
        "defer_identical": answers_identical(unbounded, deferred),
        "n_deferred": deferred.aggregates["n_deferred"],
        "shed_deterministic": (shed_a.rejected_qids() == shed_b.rejected_qids()
                               and shed_a.digests() == shed_b.digests()),
        "n_rejected": len(shed_a.rejected),
        "rejected_absent_from_digests": not (
            shed_a.rejected_qids() & set(shed_a.digests())),
        "deferred_keep_arrival_accounting": bool(served_arrival_latency_ok),
        "defer": _pick(deferred.aggregates, *_AGG_KEYS),
        "shed": _pick(shed_a.aggregates, *_AGG_KEYS),
    }


def bench_interleavings(quick: bool = False) -> dict[str, Any]:
    """The parity battery, benched: seeded interleavings vs the oracle."""
    catalog = default_catalog(scale=0.2 if quick else 0.3)
    spec = WorkloadSpec(
        n_queries=32 if quick else 80, arrival_rate=3000.0,
        n_tenants=6, graphs=tuple(catalog), kernels=("lcc", "tc"),
        seed=ASYNC_SEED, update_mix=0.3)
    requests = generate_workload(spec, catalog)
    serial = ServingEngine(catalog, _serial_config(),
                           scheduler=FIFOScheduler()).serve(requests)
    seeds = ASYNC_SEEDS[:4] if quick else ASYNC_SEEDS
    identical = {}
    overlap = []
    for seed in seeds:
        coop = AsyncServingEngine(
            catalog, _async_config(),
            scheduler=InterleaveScheduler(seed)).serve(requests)
        identical[str(seed)] = answers_identical(serial, coop)
        overlap.append(coop.aggregates["overlap_fraction"])
    return {
        "n_requests": len(requests),
        "seeds": list(seeds),
        "identical": identical,
        "all_identical": all(identical.values()),
        "overlap_fraction_min": min(overlap),
    }


def run_async_bench(quick: bool = False) -> dict[str, Any]:
    """Produce the full async report dict (see module docstring)."""
    return {
        "schema_version": ASYNC_SCHEMA_VERSION,
        "quick": quick,
        "nranks": ASYNC_NRANKS,
        "threads": BENCH_THREADS,
        "workers": ASYNC_WORKERS,
        "steady": bench_steady(quick),
        "burst": bench_burst(quick),
        "backpressure": bench_backpressure(quick),
        "interleavings": bench_interleavings(quick),
    }


def check_async_report(report: Mapping[str, Any], *,
                       p99_tolerance: float = ASYNC_P99_TOLERANCE,
                       min_speedup: float = MIN_ASYNC_SPEEDUP) -> list[str]:
    """The absolute gate an async report must pass to be recorded.

    Returns human-readable problems (empty list = pass): bit-identity in
    every scenario, the steady-traffic p99 ceiling, the burst-throughput
    floor with measured overlap, deterministic backpressure, and a
    clean interleaving battery.
    """
    problems = []
    for key in ASYNC_REPORT_KEYS:
        if key not in report:
            problems.append(f"async report missing key {key!r}")
    steady = report.get("steady", {})
    if steady.get("results_identical") is not True:
        problems.append(
            "steady: cooperative answers diverged from the serial oracle")
    ratio = float(steady.get("p99_ratio", float("inf")))
    if ratio > p99_tolerance:
        problems.append(
            f"steady: async p99 is {ratio:.2f}x serial, above the "
            f"{p99_tolerance:.2f}x ceiling (tail latency bought with "
            "concurrency)")
    burst = report.get("burst", {})
    if burst.get("results_identical") is not True:
        problems.append(
            "burst: cooperative answers diverged from the serial oracle")
    speedup = float(burst.get("throughput_ratio", 0.0))
    if speedup < min_speedup:
        problems.append(
            f"burst: overlapped throughput is {speedup:.2f}x serial, "
            f"below the {min_speedup:.1f}x floor")
    if float(burst.get("async", {}).get("overlap_fraction", 0.0)) <= 0.0:
        problems.append(
            "burst: no overlap was measured (the cooperative engine "
            "served serially)")
    bp = report.get("backpressure", {})
    for field in ("defer_identical", "shed_deterministic",
                  "rejected_absent_from_digests",
                  "deferred_keep_arrival_accounting"):
        if bp.get(field) is not True:
            problems.append(f"backpressure: {field} is false")
    inter = report.get("interleavings", {})
    if inter.get("all_identical") is not True:
        bad = [s for s, ok in inter.get("identical", {}).items() if not ok]
        problems.append(
            f"interleavings: seeds {bad or '?'} diverged from the oracle")
    if len(inter.get("seeds", ())) < 2:
        problems.append(
            "interleavings: fewer than 2 seeds exercised (no battery)")
    return problems


def check_async_against_baseline(report: Mapping[str, Any],
                                 baseline: Mapping[str, Any], *,
                                 tolerance: float = 0.25) -> list[str]:
    """CI gate: a fresh (quick) report versus the committed baseline.

    Correctness clauses are absolute (bit-identity everywhere, the p99
    ceiling, deterministic backpressure) and the
    :data:`MIN_ASYNC_SPEEDUP` floor always applies; on top, the fresh
    burst speedup must stay above ``tolerance`` times the baseline's,
    mirroring ``repro bench --check``.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be > 0, got {tolerance}")
    problems = check_async_report(report)
    base_burst = baseline.get("burst", {})
    if not base_burst:
        problems.append(
            "baseline has no burst section (is --check pointed at a "
            "BENCH_async.json?)")
        return problems
    floor = tolerance * float(base_burst.get("throughput_ratio", 0.0))
    fresh = float(report.get("burst", {}).get("throughput_ratio", 0.0))
    if fresh < floor:
        problems.append(
            f"burst speedup {fresh:.2f}x fell below {floor:.2f}x "
            f"({tolerance:.0%} of the baseline's "
            f"{float(base_burst.get('throughput_ratio', 0.0)):.2f}x)")
    return problems


def write_async_report(report: Mapping[str, Any], path: str, *,
                       gate: bool = True) -> None:
    """Gate-check (optionally), schema-check and write the async report.

    ``gate=False`` skips the absolute gate and only schema-checks — for
    CI runs whose verdict comes from
    :func:`check_async_against_baseline` instead.
    """
    if gate:
        problems = check_async_report(report)
        if problems:
            raise ValueError("; ".join(problems))
    write_report(report, path, required_keys=ASYNC_REPORT_KEYS)


def async_trajectory_row(report: Mapping[str, Any], *,
                         date: str | None = None) -> dict[str, Any]:
    """Condense one async report into a dated trajectory line."""
    import datetime

    return {
        "date": date or datetime.date.today().isoformat(),
        "kind": "async",
        "quick": bool(report.get("quick", False)),
        "burst_speedup": float(
            report.get("burst", {}).get("throughput_ratio", 0.0)),
        "steady_p99_ratio": float(
            report.get("steady", {}).get("p99_ratio", 0.0)),
        "overlap_fraction": float(
            report.get("burst", {}).get("async", {})
            .get("overlap_fraction", 0.0)),
        "interleavings_identical": bool(
            report.get("interleavings", {}).get("all_identical", False)),
    }


# ---------------------------------------------------------------------------
# One-off CLI runs (``repro async-serve`` without --bench)
# ---------------------------------------------------------------------------

def one_off_async_run(*, n_queries: int = 80, arrival_rate: float = 2000.0,
                      n_tenants: int = 8, update_mix: float = 0.25,
                      workers: int = ASYNC_WORKERS, max_queue: int = 0,
                      overflow: str = "defer", arrival_mode: str = "poisson",
                      scale: float = 0.3, seed: int = 0) -> dict[str, Any]:
    """Serve one workload cooperatively and compare to the serial oracle."""
    catalog = default_catalog(scale=scale)
    spec = WorkloadSpec(
        n_queries=n_queries, arrival_rate=arrival_rate, n_tenants=n_tenants,
        graphs=tuple(catalog), kernels=("lcc", "tc"), seed=seed,
        update_mix=update_mix)
    if arrival_mode == "bursty":
        spec = spec.bursty()
    elif arrival_mode == "flash":
        spec = spec.flash_crowd()
    requests = generate_workload(spec, catalog)
    serial = ServingEngine(catalog, _serial_config(),
                           scheduler=FIFOScheduler()).serve(requests)
    coop = AsyncServingEngine(
        catalog, _async_config(workers=workers, max_queue=max_queue,
                               overflow=overflow),
        scheduler=FIFOScheduler()).serve(requests)
    return {
        "n_requests": len(requests),
        "workers": workers,
        "arrival_mode": arrival_mode,
        "results_identical": (answers_identical(serial, coop)
                              if not coop.rejected else None),
        "n_rejected": len(coop.rejected),
        "serial": _pick(serial.aggregates, *_AGG_KEYS),
        "async": _pick(coop.aggregates, *_AGG_KEYS),
    }
