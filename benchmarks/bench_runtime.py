"""Micro-benchmarks of the simulated runtime primitives."""

import numpy as np

from repro.runtime.engine import Engine
from repro.runtime.window import Window


def test_remote_get_throughput(benchmark):
    eng = Engine(2)
    win = eng.windows.add(Window("w", [np.arange(4096, dtype=np.int64)] * 2))
    win.lock_all(0)
    ctx = eng.contexts[0]

    def gets():
        for off in range(0, 1024, 8):
            ctx.get(win, 1, off, 8)

    benchmark(gets)


def test_engine_collective_round(benchmark):
    def round_trip():
        eng = Engine(8)

        def fn(ctx):
            for _ in range(4):
                payloads = [ctx.rank * 100 + d for d in range(8)]
                yield ctx.alltoallv(payloads, [64] * 8)
                yield ctx.barrier()
            return ctx.now

        return eng.run(fn).time

    assert benchmark(round_trip) > 0


def test_engine_message_storm(benchmark):
    def storm():
        eng = Engine(4)

        def fn(ctx):
            if ctx.rank == 0:
                for i in range(64):
                    yield ctx.send(1 + (i % 3), i, 32)
                return 0
            total = 0
            for _ in range(64 // 3 + (ctx.rank <= 64 % 3)):
                total += yield ctx.recv(0)
            return total

        return eng.run(fn).time

    assert benchmark(storm) > 0
