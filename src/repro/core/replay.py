"""Batched replay of cached distributed LCC/TC runs.

The per-edge loops in :mod:`repro.core.lcc` and :mod:`repro.core.tc` are
exact but slow: every edge costs a Python round trip through
``DistributedCSR.read_adjacency`` → ``SimContext.get`` →
``ClampiCache.access`` plus a real intersection.  This module replays the
same runs in bulk:

* each rank's access pattern is *known up front* (it is a pure function of
  the partitioned CSR), so the remote gets are emitted as NumPy access
  streams and pushed through :meth:`ClampiCache.access_batch`, which
  resolves runs of pure hits vectorized and only falls back to the scalar
  cache for state-changing events (misses with their insert/evict/resize
  side effects);
* per-edge compute costs come from the closed-form vectorized formulas in
  :mod:`repro.analysis.throughput` and the scores from the batched counting
  path in :mod:`repro.core.local`, exactly like the cache-less fast path in
  :mod:`repro.core.lcc_fast`.

The replay is **bit-identical** to the loop, including every floating-point
accumulation: virtual clocks and trace totals are rebuilt as the *same
sequence* of additions the loop performs, evaluated with ``np.cumsum``
(a strict left-to-right fold) over delta arrays laid out in program order.
Parity is pinned by ``tests/core/test_cached_fast_parity.py``.

Dispatch (see :func:`repro.core.lcc.execute_lcc` /
:func:`repro.core.tc.execute_tc`): the replay runs whenever
``config.fast_path`` is set and op recording is off — with caches attached,
without, warm or cold.  ``fast_path=False`` keeps the per-edge loop, which
stays importable as the reference oracle
(:func:`repro.core.lcc.execute_lcc_loop`).
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.throughput import kernel_times_vectorized
from repro.clampi.cache import BatchStream
from repro.core.config import DistributedRunResult, LCCConfig
from repro.core.local import (
    lcc_from_triplets,
    triangles_min_vertex,
    triangles_per_vertex_batched,
)
from repro.core.lcc_fast import _get_time_vec, _local_read_vec
from repro.core.threading import OpenMPModel
from repro.graph.distributed import DistributedCSR
from repro.runtime.engine import Engine, RunOutcome
from repro.runtime.trace import RankTrace


def _fold(deltas: np.ndarray) -> float:
    """Strict left-to-right sum — bit-identical to repeated ``+=``."""
    if deltas.shape[0] == 0:
        return 0.0
    return float(np.cumsum(deltas)[-1])


def _adjacency_starts(dist: DistributedCSR) -> np.ndarray:
    """``start_of[v]``: where ``adj(v)`` begins in its owner's window part."""
    start_of = np.zeros(dist.graph.n, dtype=np.int64)
    for rank in range(dist.engine.nranks):
        vs = dist.local_vertices(rank)
        if vs.size:
            start_of[vs] = dist.w_offsets.local_part(rank)[:-1]
    return start_of


def _window_stream(cache, window, network, stream: BatchStream
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Durations + hit verdicts for one rank's gets on one window.

    With a cache attached this is the batched CLaMPI replay; without one it
    is the closed-form network cost (and every get counts as remote).
    """
    if cache is not None:
        return cache.access_batch(stream=stream)
    t = _get_time_vec(network, stream.counts * window.itemsize)
    return t, np.zeros(stream.m, dtype=bool)


class _RankStatic:
    """One rank's topology-derived access pattern, cached on the ``dist``.

    Everything here is a pure function of the partitioned CSR: the edge
    stream, remote/local split, list-length pairs and the prebuilt
    :class:`BatchStream` objects for the two windows.  A resident session
    replays the same pattern query after query, so this is computed once
    per ``DistributedCSR``.
    """

    def __init__(self, dist: DistributedCSR, rank: int, start_of: np.ndarray,
                 degrees_all: np.ndarray, *, tc: bool):
        part = dist.partition
        vs = dist.local_vertices(rank)
        offs_local = dist.w_offsets.local_part(rank).astype(np.int64)
        adj_local = dist.w_adj.local_part(rank)
        self.n_v = n_v = vs.shape[0]
        self.degs = degs = np.diff(offs_local)  # full local-vertex degrees

        dst = adj_local.astype(np.int64)
        if tc:
            src = np.repeat(vs, degs)
            keep = dst > src  # upper-triangle endpoints only
            dst = dst[keep]
            v_idx = np.repeat(np.arange(n_v, dtype=np.int64), degs)[keep]
            e_degs = np.bincount(v_idx, minlength=n_v).astype(np.int64)
        else:
            e_degs = degs
        self.e_degs = e_degs
        self.E = E = dst.shape[0]
        self.estart = np.zeros(n_v + 1, dtype=np.int64)
        np.cumsum(e_degs, out=self.estart[1:])

        owners = part.owners(dst).astype(np.int64)
        self.remote = remote = owners != rank
        self.lb = lb = degrees_all[dst]
        self.la = np.repeat(degs, e_degs)
        self.r_idx = r_idx = np.flatnonzero(remote)
        self.l_idx = l_idx = np.flatnonzero(~remote)

        li = part.to_local_many(dst)
        R = r_idx.shape[0]
        self.off_stream = BatchStream(owners[r_idx], li[r_idx],
                                      np.full(R, 2, dtype=np.int64))
        self.cnt_r = cnt_r = lb[r_idx]
        self.adj_stream = BatchStream(owners[r_idx], start_of[dst[r_idx]],
                                      cnt_r)
        adj_itemsize = dist.w_adj.itemsize
        self.nbytes_l = lb[l_idx] * adj_itemsize
        self.own_nbytes = degs * adj_itemsize


def _rank_static(dist: DistributedCSR, rank: int, start_of: np.ndarray,
                 degrees_all: np.ndarray, *, tc: bool) -> _RankStatic:
    key = ("stream", rank, tc)
    static = dist._replay_memo.get(key)
    if static is None:
        static = _RankStatic(dist, rank, start_of, degrees_all, tc=tc)
        dist._replay_memo[key] = static
    return static


class _RankReplay:
    """One rank's replayed durations, folds and trace totals."""

    def __init__(self, dist: DistributedCSR, config: LCCConfig,
                 omp: OpenMPModel, rank: int, start_of: np.ndarray,
                 degrees_all: np.ndarray, *, tc: bool):
        memory = config.memory
        network = config.network
        ctx = dist.engine.contexts[rank]

        st = _rank_static(dist, rank, start_of, degrees_all, tc=tc)
        self.n_v = st.n_v
        self.e_degs = st.e_degs
        E = st.E
        remote = st.remote
        r_idx, l_idx = st.r_idx, st.l_idx
        la, lb = st.la, st.lb
        cnt_r = st.cnt_r
        R = r_idx.shape[0]
        adj_itemsize = dist.w_adj.itemsize
        off_itemsize = dist.w_offsets.itemsize

        # The two cache streams are independent state machines, so each is
        # replayed separately; interleaving only matters for the time
        # folds, which re-merge them below in program order.
        dur_off, hit_off = _window_stream(
            ctx.cache_for(dist.w_offsets), dist.w_offsets, network,
            st.off_stream)
        dur_adj, hit_adj = _window_stream(
            ctx.cache_for(dist.w_adj), dist.w_adj, network, st.adj_stream)

        nbytes_l = st.nbytes_l
        dur_loc = _local_read_vec(memory, nbytes_l)

        # Full-length per-edge slot arrays (first comm slot, second slot
        # for the remote adjacency get).
        comm1 = np.empty(E, dtype=np.float64)
        comm1[r_idx] = dur_off
        comm1[l_idx] = dur_loc
        comm2 = np.zeros(E, dtype=np.float64)
        comm2[r_idx] = dur_adj

        kern = kernel_times_vectorized(omp, config.method,
                                       la.astype(np.float64),
                                       lb.astype(np.float64))
        own_dt = _local_read_vec(memory, st.own_nbytes)

        self.remote = remote
        self.kern = kern
        self.comm1 = comm1
        self.comm2 = comm2
        self.own_dt = own_dt
        self.estart = st.estart
        self.E = E

        # -- time folds -----------------------------------------------------
        overhead = config.compute.vertex_overhead
        if config.overlap:
            self.clock = self._overlap_clock(tc, overhead)
            comp = self._overlap_comp(tc, overhead)
        else:
            self.clock = self._sequential_clock(tc, overhead)
            comp = self._sequential_comp(tc, overhead)
        if tc:
            nranks = config.nranks
            stages = math.ceil(math.log2(nranks)) if nranks > 1 else 0
            self.clock += stages * (network.alpha + 8 * network.beta)

        if R:
            flat = np.empty(2 * R, dtype=np.float64)
            flat[0::2] = dur_off
            flat[1::2] = dur_adj
            fhit = np.empty(2 * R, dtype=bool)
            fhit[0::2] = hit_off
            fhit[1::2] = hit_adj
            comm_time = _fold(flat[~fhit])
            cache_time = _fold(flat[fhit])
        else:
            comm_time = cache_time = 0.0

        n_miss_off = int(np.count_nonzero(~hit_off))
        n_miss_adj = int(np.count_nonzero(~hit_adj))
        self.trace = RankTrace.from_totals(
            rank,
            n_remote_gets=n_miss_off + n_miss_adj,
            n_cache_hits=2 * R - n_miss_off - n_miss_adj,
            n_local_reads=int(l_idx.shape[0]),
            bytes_remote=(n_miss_off * 2 * off_itemsize
                          + int((cnt_r[~hit_adj] * adj_itemsize).sum())),
            bytes_cached=(int(np.count_nonzero(hit_off)) * 2 * off_itemsize
                          + int((cnt_r[hit_adj] * adj_itemsize).sum())),
            bytes_local=int(nbytes_l.sum()),
            comm_time=comm_time,
            comp_time=comp,
            cache_time=cache_time,
        )

    # -- layout builders ----------------------------------------------------
    # Every builder writes the run's charges into a delta array laid out in
    # the loop implementation's program order, then folds it sequentially;
    # this is what makes the replayed clocks/trace totals bit-identical.

    def _edge_positions(self, sizes_e: np.ndarray, head: int, tail: int
                        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Slot positions for a [head][edge blocks...][tail] vertex layout.

        Returns ``(vcum, epos, total)``: per-vertex start offsets, each
        edge's block start, and the overall length.
        """
        estart, e_degs = self.estart, self.e_degs
        cs = np.zeros(self.E + 1, dtype=np.int64)
        np.cumsum(sizes_e, out=cs[1:])
        seg = cs[estart[1:]] - cs[estart[:-1]]
        vsz = head + seg + tail
        vcum = np.zeros(self.n_v + 1, dtype=np.int64)
        np.cumsum(vsz, out=vcum[1:])
        epos = (np.repeat(vcum[:-1] + head, e_degs)
                + (cs[:-1] - np.repeat(cs[estart[:-1]], e_degs)))
        return vcum, epos, int(vcum[-1])

    def _sequential_clock(self, tc: bool, overhead: float) -> float:
        """[own][(off, adj | loc), kern]...[overhead?] per vertex."""
        remote = self.remote
        nslots = np.where(remote, 2, 1)
        vcum, epos, total = self._edge_positions(nslots + 1, 1, 0 if tc else 1)
        deltas = np.zeros(total, dtype=np.float64)
        deltas[vcum[:-1]] = self.own_dt
        deltas[epos] = self.comm1
        deltas[epos[remote] + 1] = self.comm2[remote]
        deltas[epos + nslots] = self.kern
        if not tc:
            deltas[vcum[1:] - 1] = overhead
        return _fold(deltas)

    def _sequential_comp(self, tc: bool, overhead: float) -> float:
        """comp_time charges in loop order: own, local reads, kernels."""
        remote = self.remote
        sizes = np.where(remote, 1, 2)
        vcum, epos, total = self._edge_positions(sizes, 1, 0 if tc else 1)
        deltas = np.zeros(total, dtype=np.float64)
        deltas[vcum[:-1]] = self.own_dt
        deltas[epos[~remote]] = self.comm1[~remote]
        deltas[epos + sizes - 1] = self.kern
        if not tc:
            deltas[vcum[1:] - 1] = overhead
        return _fold(deltas)

    def _overlap_clock(self, tc: bool, overhead: float) -> float:
        """[own][comm_0][max(kern_i, comm_{i+1})...][kern_last][overhead?]."""
        e_degs, estart, E = self.e_degs, self.estart, self.E
        remote = self.remote
        comm_e = np.where(remote, self.comm1 + self.comm2, self.comm1)
        nonempty = e_degs > 0
        tail = 0 if tc else 1
        vsz = np.where(nonempty, e_degs + 2 + tail, 1 + tail)
        vcum = np.zeros(self.n_v + 1, dtype=np.int64)
        np.cumsum(vsz, out=vcum[1:])
        deltas = np.zeros(int(vcum[-1]), dtype=np.float64)
        deltas[vcum[:-1]] = self.own_dt
        first_e = estart[:-1][nonempty]
        last_e = estart[1:][nonempty] - 1
        vstart_ne = vcum[:-1][nonempty]
        deltas[vstart_ne + 1] = comm_e[first_e]
        # Pipelined steps: edge i hides edge i+1's communication, except
        # across vertex boundaries.
        not_last = np.ones(E, dtype=bool)
        not_last[last_e] = False
        nl = np.flatnonzero(not_last)
        pos_all = (np.repeat(vcum[:-1] + 2, e_degs)
                   + (np.arange(E, dtype=np.int64)
                      - np.repeat(estart[:-1], e_degs)))
        deltas[pos_all[nl]] = np.maximum(self.kern[nl], comm_e[nl + 1])
        deltas[vstart_ne + e_degs[nonempty] + 1] = self.kern[last_e]
        if not tc:
            deltas[vcum[1:] - 1] = overhead
        return _fold(deltas)

    def _overlap_comp(self, tc: bool, overhead: float) -> float:
        """comp charges with the pipeline's issue order.

        The double-buffered loop records edge ``i+1``'s local read *before*
        charging kernel ``i`` (the fetch is issued first), so the layout is
        [own][loc_0?][loc_{i+1}?, kern_i ...][kern_last][overhead?].
        """
        e_degs, estart, E = self.e_degs, self.estart, self.E
        isloc = ~self.remote
        nonempty = e_degs > 0
        first_e = estart[:-1][nonempty]
        last_e = estart[1:][nonempty] - 1
        is_first = np.zeros(E, dtype=bool)
        is_first[first_e] = True
        ss = np.where(is_first, 0, isloc.astype(np.int64) + 1)
        scs = np.zeros(E + 1, dtype=np.int64)
        np.cumsum(ss, out=scs[1:])
        sseg = scs[estart[1:]] - scs[estart[:-1]]
        first_loc = np.zeros(self.n_v, dtype=np.int64)
        first_loc[nonempty] = isloc[first_e].astype(np.int64)
        tail = 0 if tc else 1
        cvsz = 1 + first_loc + sseg + nonempty.astype(np.int64) + tail
        cvcum = np.zeros(self.n_v + 1, dtype=np.int64)
        np.cumsum(cvsz, out=cvcum[1:])
        deltas = np.zeros(int(cvcum[-1]), dtype=np.float64)
        deltas[cvcum[:-1]] = self.own_dt
        fl = isloc[first_e]
        deltas[cvcum[:-1][nonempty][fl] + 1] = self.comm1[first_e[fl]]
        steps_begin = cvcum[:-1] + 1 + first_loc
        bpos = (np.repeat(steps_begin, e_degs)
                + (scs[:-1] - np.repeat(scs[estart[:-1]], e_degs)))
        se = np.flatnonzero(~is_first)
        loc_se = se[isloc[se]]
        deltas[bpos[loc_se]] = self.comm1[loc_se]
        deltas[bpos[se] + isloc[se]] = self.kern[se - 1]
        deltas[(steps_begin + sseg)[nonempty]] = self.kern[last_e]
        if not tc:
            deltas[cvcum[1:] - 1] = overhead
        return _fold(deltas)


def _replay_ranks(engine: Engine, dist: DistributedCSR, config: LCCConfig,
                  *, tc: bool) -> tuple[list[float], list[RankTrace]]:
    omp = OpenMPModel(threads=config.threads, compute=config.compute,
                      wait_policy=config.wait_policy)
    degrees_all = dist.graph.degrees().astype(np.int64)
    start_of = _adjacency_starts(dist)
    clocks: list[float] = []
    traces: list[RankTrace] = []
    for rank in range(engine.nranks):
        rr = _RankReplay(dist, config, omp, rank, start_of, degrees_all, tc=tc)
        clocks.append(rr.clock)
        traces.append(rr.trace)
    return clocks, traces


def execute_lcc_batched(engine: Engine, dist: DistributedCSR,
                        config: LCCConfig, off_caches: list = (),
                        adj_caches: list = ()) -> DistributedRunResult:
    """Batched-replay counterpart of :func:`repro.core.lcc.execute_lcc_loop`.

    Epochs must be open on entry; they are closed on return (firing the
    caches' epoch hooks, so transparent-mode flush accounting matches the
    loop).  Scores come from the vectorized counting path, timing from the
    cache replay — both bit-identical to the loop.
    """
    from repro.core.lcc import _merged_stats

    graph = dist.graph
    clocks, traces = _replay_ranks(engine, dist, config, tc=False)
    dist.close_epochs()

    tpv = dist._replay_memo.get("tpv")
    if tpv is None:
        tpv = triangles_per_vertex_batched(graph)
        dist._replay_memo["tpv"] = tpv
    lcc = lcc_from_triplets(graph, tpv)
    total = int(tpv.sum())
    outcome = RunOutcome(
        time=max(clocks), clocks=clocks, traces=traces,
        results=[int(tpv[dist.local_vertices(r)].sum())
                 for r in range(engine.nranks)])
    return DistributedRunResult(
        lcc=lcc,
        triangles_per_vertex=tpv.copy(),
        global_triangles=total if graph.directed else total // 6,
        outcome=outcome,
        offsets_cache_stats=_merged_stats(off_caches),
        adj_cache_stats=_merged_stats(adj_caches),
    )


def execute_tc_batched(engine: Engine, dist: DistributedCSR,
                       config: LCCConfig, off_caches: list = (),
                       adj_caches: list = ()) -> DistributedRunResult:
    """Batched-replay counterpart of :func:`repro.core.tc.execute_tc_loop`."""
    from repro.core.lcc import _merged_stats

    clocks, traces = _replay_ranks(engine, dist, config, tc=True)
    dist.close_epochs()

    t_min = dist._replay_memo.get("tmin")
    if t_min is None:
        t_min = triangles_min_vertex(dist.graph)
        dist._replay_memo["tmin"] = t_min
    results = [int(t_min[dist.local_vertices(r)].sum())
               for r in range(engine.nranks)]
    outcome = RunOutcome(time=max(clocks), clocks=clocks, traces=traces,
                         results=results)
    return DistributedRunResult(
        lcc=None,
        triangles_per_vertex=None,
        global_triangles=int(sum(results)),
        outcome=outcome,
        offsets_cache_stats=_merged_stats(off_caches),
        adj_cache_stats=_merged_stats(adj_caches),
    )
