"""Tests for the bounded-probing hash index."""

import pytest

from repro.clampi.hashtable import HashIndex
from repro.utils.errors import CacheError


class TestBasicOps:
    def test_insert_lookup(self):
        h = HashIndex(64)
        assert h.insert(("k", 1), "v1")
        assert h.lookup(("k", 1)) == "v1"
        assert h.lookup(("k", 2)) is None
        assert len(h) == 1

    def test_update_in_place(self):
        h = HashIndex(64)
        h.insert("a", 1)
        h.insert("a", 2)
        assert h.lookup("a") == 2
        assert len(h) == 1

    def test_remove(self):
        h = HashIndex(64)
        h.insert("a", 1)
        assert h.remove("a") == 1
        assert h.lookup("a") is None
        assert len(h) == 0

    def test_remove_missing_rejected(self):
        h = HashIndex(16)
        with pytest.raises(CacheError):
            h.remove("nope")

    def test_invalid_geometry_rejected(self):
        with pytest.raises(CacheError):
            HashIndex(0)
        with pytest.raises(CacheError):
            HashIndex(8, probe_limit=0)

    def test_clear(self):
        h = HashIndex(16)
        for i in range(5):
            h.insert(i, i)
        h.clear()
        assert len(h) == 0
        assert h.lookup(3) is None


class TestProbing:
    def test_conflict_when_window_full(self):
        # One slot, probe window of 1: second distinct key must conflict.
        h = HashIndex(1, probe_limit=1)
        assert h.insert("a", 1)
        assert not h.insert("b", 2)
        assert h.conflicts == 1
        # The resident key is still intact.
        assert h.lookup("a") == 1

    def test_probe_window_lists_occupants(self):
        h = HashIndex(1, probe_limit=1)
        h.insert("a", 1)
        window = h.probe_window("b")
        assert window == [("a", 1)]

    def test_conflict_eviction_allows_insert(self):
        h = HashIndex(1, probe_limit=1)
        h.insert("a", 1)
        assert not h.insert("b", 2)
        h.remove("a")
        assert h.insert("b", 2)
        assert h.lookup("b") == 2

    def test_load_factor(self):
        h = HashIndex(10)
        for i in range(5):
            h.insert(i, i)
        assert h.load_factor == pytest.approx(0.5)


class TestBackshift:
    def test_lookup_survives_removal_in_cluster(self):
        # Force collisions by using a table where many keys share slots.
        h = HashIndex(8, probe_limit=8)
        keys = list(range(40, 48))  # fill every slot
        inserted = [k for k in keys if h.insert(k, k * 10)]
        assert len(inserted) >= 4
        victim = inserted[0]
        h.remove(victim)
        for k in inserted[1:]:
            assert h.lookup(k) == k * 10, f"lost key {k} after backshift"

    def test_churn(self):
        h = HashIndex(128, probe_limit=8)
        live = {}
        for i in range(2000):
            k = i % 150
            if k in live:
                h.remove(k)
                del live[k]
            else:
                if h.insert(k, k):
                    live[k] = k
        for k, v in live.items():
            assert h.lookup(k) == v
        assert len(h) == len(live)

    def test_items_iterates_all(self):
        h = HashIndex(64)
        for i in range(10):
            h.insert(i, str(i))
        assert dict(h.items()) == {i: str(i) for i in range(10)}
