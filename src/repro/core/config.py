"""Configuration and result types for distributed runs.

:class:`LCCConfig` is the single knob panel of the public API; it selects
everything the paper's experiments vary: rank count, intersection method,
thread count/wait policy, partitioning, communication overlap, network
preset, and the caching setup (:class:`CacheSpec`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

import numpy as np

from repro.clampi.cache import ConsistencyMode
from repro.clampi.scores import (
    AppScorePolicy,
    DefaultScorePolicy,
    LRUScorePolicy,
    ScorePolicy,
)
from repro.runtime.compute import ComputeModel
from repro.runtime.engine import RunOutcome
from repro.runtime.network import MemoryModel, NetworkModel
from repro.utils.errors import ConfigError


#: Score policies selectable by name in CacheSpec.
SCORE_POLICIES = {
    "default": DefaultScorePolicy,
    "degree": AppScorePolicy,
    "lru": LRUScorePolicy,
}


@dataclass(frozen=True)
class CacheSpec:
    """How to size and drive the two CLaMPI caches.

    ``offsets_bytes`` / ``adj_bytes`` are **per rank**.  The paper's overall
    configuration reserves a total budget and sizes ``C_offsets`` to hold
    the offset pairs of ``0.4 * |V|`` vertices — at 16 bytes per (start,
    end) pair of int64 offsets that is ``6.4 * |V|`` bytes — with the
    remainder of the budget going to ``C_adj`` (Section IV-D2); use
    :meth:`paper_split` for that.  ``score`` picks the eviction policy:
    ``"default"`` (LRU + positional), ``"degree"`` (the paper's extension)
    or ``"lru"``.
    """

    offsets_bytes: int
    adj_bytes: int
    score: str = "default"
    mode: ConsistencyMode = ConsistencyMode.ALWAYS_CACHE
    adaptive: Any = None  # Optional[AdaptiveConfig]

    def __post_init__(self) -> None:
        if self.offsets_bytes < 0 or self.adj_bytes < 0:
            raise ConfigError("cache sizes must be non-negative")
        if self.offsets_bytes == 0 and self.adj_bytes == 0:
            raise ConfigError("CacheSpec with both caches empty; pass cache=None")
        if self.score not in SCORE_POLICIES:
            raise ConfigError(
                f"unknown score policy {self.score!r}; "
                f"expected one of {sorted(SCORE_POLICIES)}"
            )

    def make_policy(self) -> ScorePolicy:
        """Instantiate the configured eviction-score policy."""
        return SCORE_POLICIES[self.score]()

    #: Bytes of one C_offsets entry: an (start, end) pair of int64 offsets.
    OFFSETS_ENTRY_BYTES = 16

    @classmethod
    def paper_split(cls, total_bytes: int, n_vertices: int,
                    score: str = "default") -> "CacheSpec":
        """The paper's allocation (Section IV-D2).

        C_offsets is sized to hold offsets for **0.4 * |V|** vertices —
        "with this configuration C_offsets can store 0.4 |V| many vertices,
        as the position of a remote adjacency list is given as a pair of
        (start, end) positions" — i.e. ``0.4 * n * 16`` bytes with our
        int64 pairs; the rest of the budget goes to C_adj.
        """
        offsets = int(0.4 * n_vertices) * cls.OFFSETS_ENTRY_BYTES
        offsets = min(offsets, max(1, total_bytes // 2))
        adj = max(1, total_bytes - offsets)
        return cls(offsets_bytes=max(1, offsets), adj_bytes=adj, score=score)

    @classmethod
    def relative(cls, graph_nbytes: int, offsets_fraction: float,
                 adj_fraction: float, score: str = "default") -> "CacheSpec":
        """Size caches as fractions of the graph's CSR footprint (Figure 7)."""
        return cls(
            offsets_bytes=max(1, int(offsets_fraction * graph_nbytes)),
            adj_bytes=max(1, int(adj_fraction * graph_nbytes)),
            score=score,
        )


@dataclass(frozen=True)
class LCCConfig:
    """Everything a distributed LCC/TC run depends on."""

    nranks: int = 8
    method: str = "hybrid"           # 'ssi' | 'binary' | 'hybrid'
    threads: int = 1
    wait_policy: str = "active"
    partition: str = "block"         # 'block' | 'cyclic'
    overlap: bool = True             # double-buffering (Section III-A)
    fast_path: bool = True           # closed-form accounting when cacheless
    cache: Optional[CacheSpec] = None
    network: NetworkModel = field(default_factory=NetworkModel.aries)
    memory: MemoryModel = field(default_factory=MemoryModel)
    compute: ComputeModel = field(default_factory=ComputeModel)
    record_ops: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise ConfigError(f"nranks must be >= 1, got {self.nranks}")
        if self.method not in ("ssi", "binary", "hybrid"):
            raise ConfigError(f"unknown method {self.method!r}")
        if self.partition not in ("block", "cyclic"):
            raise ConfigError(f"unknown partition {self.partition!r}")
        if self.threads < 1:
            raise ConfigError(f"threads must be >= 1, got {self.threads}")

    def replace(self, **changes: Any) -> "LCCConfig":
        """Functional update (sweeps mutate one knob at a time)."""
        return replace(self, **changes)


@dataclass
class DistributedRunResult:
    """Outcome of one distributed LCC or TC run."""

    lcc: Optional[np.ndarray]        # per-vertex LCC (None for TC-only runs)
    triangles_per_vertex: Optional[np.ndarray]
    global_triangles: int
    outcome: RunOutcome
    offsets_cache_stats: Optional[dict] = None
    adj_cache_stats: Optional[dict] = None

    @property
    def time(self) -> float:
        """Job runtime: the longest-running rank (paper methodology)."""
        return self.outcome.time

    @property
    def comm_time(self) -> float:
        return self.outcome.comm_time

    @property
    def comp_time(self) -> float:
        return self.outcome.comp_time

    def summary(self) -> dict[str, Any]:
        s = self.outcome.summary()
        s["global_triangles"] = self.global_triangles
        if self.adj_cache_stats:
            s["adj_hit_rate"] = self.adj_cache_stats["hit_rate"]
            s["adj_miss_rate"] = self.adj_cache_stats["miss_rate"]
            s["adj_compulsory_miss_rate"] = self.adj_cache_stats[
                "compulsory_miss_rate"]
        if self.offsets_cache_stats:
            s["offsets_hit_rate"] = self.offsets_cache_stats["hit_rate"]
            s["offsets_miss_rate"] = self.offsets_cache_stats["miss_rate"]
            s["offsets_compulsory_miss_rate"] = self.offsets_cache_stats[
                "compulsory_miss_rate"]
        return s
