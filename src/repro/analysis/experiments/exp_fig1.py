"""Figure 1 (right): LCC data reuse on the Facebook-circles graph.

The paper plots, for the remote reads issued by rank 0 of 2, how many
reads are repeated y times.  The characteristic shape: most targeted
vertices are read a handful of times, but a heavy tail of hub vertices is
read tens of times — the reuse the RMA cache exploits.
"""

from __future__ import annotations


from repro.analysis.reuse import remote_read_counts, repetition_histogram
from repro.analysis.tables import Table
from repro.graph.datasets import load_dataset


def run(scale: float = 1.0, seed: int = 0, fast: bool = False) -> list[Table]:
    g = load_dataset("facebook-circles", scale=scale, seed=seed)
    reps, freq = repetition_histogram(g, nranks=2, initiator=0)

    table = Table(["repetitions", "vertices read that often"],
                  title=(f"Figure 1 (right): remote reads by rank 0 of 2 on "
                         f"{g.name} (n={g.n}, m={g.m})"))
    # Bucket the tail like the paper's plot (1, 2-3, 4-15, 16-63, 64-255...).
    buckets = [(1, 1), (2, 3), (4, 15), (16, 63), (64, 255), (256, 10**9)]
    for lo, hi in buckets:
        mask = (reps >= lo) & (reps <= hi)
        count = int(freq[mask].sum())
        label = f"{lo}" if lo == hi else f"{lo}-{hi if hi < 10**9 else '...'}"
        table.add_row(label, count)

    counts = remote_read_counts(g, 2, initiator=0)
    summary = Table(["metric", "value"], title="Reuse summary")
    touched = counts[counts > 0]
    summary.add_row("remote reads total", int(touched.sum()))
    summary.add_row("distinct vertices read", int(touched.shape[0]))
    summary.add_row("mean repetitions", round(float(touched.mean()), 2))
    summary.add_row("max repetitions", int(touched.max()))
    summary.add_row("reads avoidable by a perfect cache",
                    int(touched.sum() - touched.shape[0]))
    return [table, summary]


def main() -> None:
    for table in run():
        print(table.render())
        print()


if __name__ == "__main__":
    main()
