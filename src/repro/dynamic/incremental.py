"""Incremental LCC/TC recomputation over update batches.

A full LCC/TC pass is linear in the whole graph; an update batch only
perturbs the triangle counts of its affected set (see
:func:`~repro.dynamic.delta.apply_delta`).  :class:`IncrementalState`
keeps the last full per-vertex results resident and, per batch,
recomputes **only the affected vertices** on the post-update graph,
folding them into the previous answer.

Because every per-vertex count is an exact int64 (and LCC is a pure
function of counts and degrees), the fold is **bit-identical** to a full
recompute — pinned by :meth:`IncrementalState.verify` (the full-recompute
parity oracle, which stays the reference path) and by the property suite.

The subset kernels mirror :func:`repro.core.local.triangles_per_vertex_batched`
and :func:`repro.core.local.triangles_min_vertex` exactly, restricted to a
vertex list.
"""

from __future__ import annotations

import numpy as np

from repro.core.local import (
    lcc_from_triplets,
    triangles_min_vertex,
    triangles_per_vertex_batched,
)
from repro.dynamic.delta import DeltaResult, UpdateBatch, apply_delta
from repro.graph.csr import CSRGraph, gather_ranges

__all__ = [
    "IncrementalState",
    "triangles_min_vertex_subset",
    "triangles_per_vertex_subset",
]


def triangles_per_vertex_subset(graph: CSRGraph, vertices: np.ndarray
                                ) -> np.ndarray:
    """``t_v = sum_j |adj(v) ∩ adj(j)|`` for the listed vertices only.

    Same vectorized inner body as the full
    :func:`~repro.core.local.triangles_per_vertex_batched`, looping over
    ``len(vertices)`` vertices instead of all ``n``.
    """
    offsets, adjacency = graph.offsets, graph.adjacency
    degrees = np.diff(offsets)
    out = np.zeros(vertices.shape[0], dtype=np.int64)
    for i, v in enumerate(np.asarray(vertices, dtype=np.int64)):
        a = adjacency[offsets[v]:offsets[v + 1]]
        if a.shape[0] == 0:
            continue
        candidates, _ = gather_ranges(adjacency, offsets[a], degrees[a])
        if candidates.shape[0] == 0:
            continue
        idx = np.searchsorted(a, candidates)
        idx[idx == a.shape[0]] = 0  # clip; mismatch check below handles it
        out[i] = int(np.count_nonzero(a[idx] == candidates))
    return out


def triangles_min_vertex_subset(graph: CSRGraph, vertices: np.ndarray
                                ) -> np.ndarray:
    """Min-vertex triangle counts for the listed vertices (undirected).

    ``t[v] = |{(j, k) : v < j < k, edges (v,j), (v,k), (j,k) present}|``,
    exactly :func:`~repro.core.local.triangles_min_vertex` restricted to
    a subset: for each upper neighbor j of v, count adj(j) entries that
    are > j and also upper neighbors of v.
    """
    offsets, adjacency = graph.offsets, graph.adjacency
    degrees = np.diff(offsets)
    out = np.zeros(vertices.shape[0], dtype=np.int64)
    for i, v in enumerate(np.asarray(vertices, dtype=np.int64)):
        a = adjacency[offsets[v]:offsets[v + 1]].astype(np.int64)
        up = a[a > v]
        if up.shape[0] < 2:
            continue
        lens = degrees[up]
        gathered, _ = gather_ranges(adjacency, offsets[up], lens)
        if gathered.shape[0] == 0:
            continue
        candidates = gathered.astype(np.int64)
        cand_src = np.repeat(up, lens)          # the j of each candidate k
        idx = np.searchsorted(up, candidates)
        idx[idx == up.shape[0]] = 0
        member = up[idx] == candidates          # k is an upper neighbor of v
        out[i] = int(np.count_nonzero(member & (candidates > cand_src)))
    return out


class IncrementalState:
    """Resident per-vertex triangle state, maintained across update batches.

    Holds the graph plus the full ``tpv`` (per-vertex triplet counts, the
    LCC numerator) and — for undirected graphs — ``tmin`` (min-vertex
    triangle counts, the TC per-rank contribution).  :meth:`apply` folds
    an :class:`~repro.dynamic.delta.UpdateBatch` in by recomputing only
    the affected vertices.  All registered kernels' primary outputs
    derive from this state: ``lcc``, ``global_triangles`` (and through
    it every TC baseline's answer).
    """

    def __init__(self, graph: CSRGraph, *, tpv: np.ndarray | None = None,
                 tmin: np.ndarray | None = None):
        self.graph = graph
        self.tpv = tpv if tpv is not None else triangles_per_vertex_batched(graph)
        if graph.directed:
            self.tmin = None
        else:
            self.tmin = tmin if tmin is not None else triangles_min_vertex(graph)
        self.updates_applied = 0
        self.vertices_recomputed = 0

    @classmethod
    def from_graph(cls, graph: CSRGraph) -> "IncrementalState":
        """Build with a full cold recompute (the oracle path, once)."""
        return cls(graph)

    # -- derived results -----------------------------------------------------
    @property
    def lcc(self) -> np.ndarray:
        """Per-vertex LCC from the resident counts (exact fold of tpv)."""
        return lcc_from_triplets(self.graph, self.tpv)

    @property
    def global_triangles(self) -> int:
        """The count every TC kernel reports (transitive triads if directed)."""
        total = int(self.tpv.sum())
        return total if self.graph.directed else total // 6

    # -- updates -------------------------------------------------------------
    def apply(self, batch: UpdateBatch, *, strict: bool = False) -> DeltaResult:
        """Fold one update batch into the resident state."""
        res = apply_delta(self.graph, batch, strict=strict)
        self.graph = res.graph
        aff = res.affected
        if aff.size:
            self.tpv = self.tpv.copy()
            self.tpv[aff] = triangles_per_vertex_subset(res.graph, aff)
            if self.tmin is not None:
                self.tmin = self.tmin.copy()
                self.tmin[aff] = triangles_min_vertex_subset(res.graph, aff)
        self.updates_applied += 1
        self.vertices_recomputed += int(aff.shape[0])
        return res

    # -- the parity oracle ---------------------------------------------------
    def verify(self) -> bool:
        """Full recompute on the current graph equals the folded state?"""
        if not np.array_equal(triangles_per_vertex_batched(self.graph),
                              self.tpv):
            return False
        if self.tmin is not None and not np.array_equal(
                triangles_min_vertex(self.graph), self.tmin):
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"IncrementalState(graph={self.graph.name or '?'}, "
                f"n={self.graph.n}, updates={self.updates_applied}, "
                f"recomputed={self.vertices_recomputed})")
