"""The serving loop: execute a workload through a scheduler and a pool.

The engine is a single simulated server draining a query queue.  Time is
accounted on two clocks at once:

* the **simulated clock** advances by each query's simulated job time
  (:attr:`DistributedRunResult.time` — the paper's longest-rank metric),
  so queueing latency and throughput are properties of the modeled
  cluster, not of the Python interpreter;
* **wall time** is measured per query too, because the repo's batched
  replay makes warm queries cheaper *to simulate* as well — the serving
  report keeps both so speedups can be attributed.

A query's life: it arrives (workload timestamp), waits queued until the
scheduler picks it, acquires its resident session from the pool (building
or evicting if needed), runs with ``keep_cache=True``, and retires with
``latency = finish - arrival`` on the simulated clock.  Answers are
digested (SHA-1 over the result arrays) so scheduler runs can be checked
for bit-identical per-query results.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.config import CacheSpec, LCCConfig
from repro.graph.csr import CSRGraph
from repro.serve.pool import SessionPool
from repro.serve.request import QueryRequest
from repro.serve.scheduler import FIFOScheduler, Scheduler
from repro.utils.errors import ConfigError


@dataclass(frozen=True)
class ServeConfig:
    """Cluster shape + pool sizing every served query shares."""

    nranks: int = 8
    threads: int = 4
    cache_offsets_fraction: float = 0.5   # of each graph's CSR bytes
    cache_adj_fraction: float = 1.0
    pool_capacity: int = 3
    pool_policy: str = "lru"

    def __post_init__(self) -> None:
        if self.cache_offsets_fraction < 0 or self.cache_adj_fraction < 0:
            raise ConfigError("cache fractions must be >= 0")

    def session_config(self, graph: CSRGraph, overrides: dict) -> LCCConfig:
        """The LCCConfig a resident session for ``graph`` is built with."""
        cache = None
        if self.cache_offsets_fraction or self.cache_adj_fraction:
            cache = CacheSpec.relative(graph.nbytes,
                                       self.cache_offsets_fraction,
                                       self.cache_adj_fraction)
        return LCCConfig(nranks=self.nranks, threads=self.threads,
                         cache=cache, **overrides)


@dataclass
class QueryRecord:
    """One served query, on both clocks."""

    qid: int
    tenant: int
    graph: str
    kernel: str
    arrival: float        # simulated
    start: float          # simulated (>= arrival)
    finish: float         # simulated (start + service)
    service_s: float      # simulated job time of the kernel run
    wall_s: float         # real seconds spent executing the query
    warm_cache: bool      # served against carried-over CLaMPI contents
    built_session: bool   # paid a cold partition (pool miss)
    adj_hit_rate: float | None
    digest: str           # SHA-1 over the answer arrays

    @property
    def latency(self) -> float:
        """Simulated end-to-end latency (queueing + service)."""
        return self.finish - self.arrival


@dataclass
class ServeOutcome:
    """Everything one (workload, scheduler) serving run produced."""

    scheduler: str
    records: list[QueryRecord]
    pool_stats: dict
    wall_clock_s: float
    aggregates: dict = field(default_factory=dict)

    def digests(self) -> dict[int, str]:
        """qid -> answer digest (scheduler-order independent)."""
        return {r.qid: r.digest for r in self.records}


def answers_identical(a: ServeOutcome, b: ServeOutcome) -> bool:
    """Did two serving runs produce bit-identical per-query answers?"""
    return a.digests() == b.digests()


def _digest(result: Any) -> str:
    h = hashlib.sha1()
    h.update(str(int(result.global_triangles)).encode())
    for arr in (result.lcc, result.triangles_per_vertex):
        h.update(b"|")
        if arr is not None:
            h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def summarize(records: list[QueryRecord], pool_stats: dict,
              wall_clock_s: float) -> dict[str, Any]:
    """Aggregate one serving run into the report row the benches commit."""
    if not records:
        raise ConfigError("cannot summarize an empty serving run")
    lat = np.array([r.latency for r in records])
    makespan = max(r.finish for r in records)
    return {
        "n_queries": len(records),
        "makespan_s": float(makespan),
        "throughput_qps": float(len(records) / makespan),
        "total_service_s": float(sum(r.service_s for r in records)),
        "latency_mean_s": float(lat.mean()),
        "latency_p50_s": float(np.percentile(lat, 50)),
        "latency_p95_s": float(np.percentile(lat, 95)),
        "latency_max_s": float(lat.max()),
        "warm_fraction": float(np.mean([r.warm_cache for r in records])),
        "mean_adj_hit_rate": float(np.mean(
            [r.adj_hit_rate for r in records if r.adj_hit_rate is not None]
            or [0.0])),
        "session_builds": pool_stats["builds"],
        "session_evictions": pool_stats["evictions"],
        "session_reuses": pool_stats["reuses"],
        "wall_clock_s": float(wall_clock_s),
    }


class ServingEngine:
    """Drain workloads against a catalog with one scheduler and one pool."""

    def __init__(self, catalog: dict[str, CSRGraph],
                 config: ServeConfig | None = None,
                 scheduler: Scheduler | None = None):
        self.catalog = catalog
        self.config = config or ServeConfig()
        self.scheduler = scheduler or FIFOScheduler()

    def serve(self, requests: list[QueryRequest]) -> ServeOutcome:
        """Serve every request; returns records + aggregates.

        The pool is fresh per call (a serving run is self-contained), the
        scheduler is reset, and the loop is fully deterministic for a
        deterministic workload — wall-clock fields aside.
        """
        if not requests:
            raise ConfigError("cannot serve an empty workload")
        config, scheduler = self.config, self.scheduler
        scheduler.reset()
        records: list[QueryRecord] = []
        pending = sorted(requests)          # (arrival, qid) order
        queue: list[QueryRequest] = []
        clock = 0.0
        last_key = None
        t_run = time.perf_counter()
        with SessionPool(self.catalog, config.session_config,
                         capacity=config.pool_capacity,
                         policy=config.pool_policy) as pool:
            while pending or queue:
                if not queue:               # idle server: jump to next arrival
                    clock = max(clock, pending[0].arrival)
                while pending and pending[0].arrival <= clock:
                    queue.append(pending.pop(0))
                req = scheduler.pick(queue, last_key, pool)
                queue.remove(req)
                t0 = time.perf_counter()
                session, built = pool.acquire(req.session_key)
                result = session.run(req.kernel, keep_cache=True)
                wall = time.perf_counter() - t0
                service = float(result.time)
                start = max(clock, req.arrival)
                finish = start + service
                clock = finish
                last_key = req.session_key
                stats = result.adj_cache_stats
                records.append(QueryRecord(
                    qid=req.qid, tenant=req.tenant, graph=req.graph,
                    kernel=req.kernel, arrival=req.arrival, start=start,
                    finish=finish, service_s=service, wall_s=wall,
                    warm_cache=result.warm_cache, built_session=built,
                    adj_hit_rate=(None if stats is None
                                  else float(stats["hit_rate"])),
                    digest=_digest(result)))
            pool_stats = pool.stats.as_dict()
        wall_clock = time.perf_counter() - t_run
        records.sort(key=lambda r: r.qid)
        outcome = ServeOutcome(scheduler=scheduler.name, records=records,
                               pool_stats=pool_stats, wall_clock_s=wall_clock)
        outcome.aggregates = summarize(records, pool_stats, wall_clock)
        return outcome
