"""Micro-benchmarks of the CLaMPI cache data structures."""

import numpy as np
import pytest

from repro.clampi.allocator import BufferAllocator
from repro.clampi.avl import AVLTree
from repro.clampi.cache import ClampiCache, ClampiConfig
from repro.runtime.window import Window


def test_avl_insert_remove(benchmark):
    def churn():
        tree = AVLTree()
        for k in range(512):
            tree.insert((k * 37) % 1024)
        for k in range(512):
            tree.remove((k * 37) % 1024)
        return tree

    benchmark(churn)


def test_allocator_churn(benchmark):
    rng = np.random.default_rng(1)
    sizes = rng.integers(8, 512, 512).tolist()

    def churn():
        alloc = BufferAllocator(1 << 16)
        live = []
        for s in sizes:
            off = alloc.alloc(int(s))
            if off is not None:
                live.append(off)
            elif live:
                alloc.free(live.pop(0))
        return alloc

    benchmark(churn)


@pytest.fixture(scope="module")
def cache_setup():
    win = Window("adj", [np.arange(4096, dtype=np.int64),
                         np.arange(4096, dtype=np.int64)])
    win.lock_all(0)
    rng = np.random.default_rng(2)
    # Zipf-ish access stream: heavy reuse of a few offsets.
    offsets = (rng.zipf(1.5, 4096) % 512).astype(int)
    return win, offsets


def test_cache_hot_access_stream(benchmark, cache_setup):
    win, offsets = cache_setup

    def run():
        cache = ClampiCache(win, 0, ClampiConfig(capacity_bytes=1 << 14,
                                                 nslots=512))
        for off in offsets:
            cache.access(1, int(off), 8)
        return cache.stats.hit_rate

    hit_rate = benchmark(run)
    assert hit_rate > 0.3
