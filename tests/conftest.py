"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    complete_graph,
    ego_circles,
    erdos_renyi,
    powerlaw_configuration,
    ring_of_cliques,
    rmat,
)
from repro.runtime.engine import Engine
from repro.runtime.window import Window


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def k5() -> CSRGraph:
    """Complete graph on 5 vertices: 10 triangles, LCC 1 everywhere."""
    return complete_graph(5)


@pytest.fixture
def cliques() -> CSRGraph:
    """Ring of 4 K5s: 40 triangles."""
    return ring_of_cliques(4, 5)


@pytest.fixture
def small_rmat() -> CSRGraph:
    return rmat(8, 8, seed=7)


@pytest.fixture
def small_er() -> CSRGraph:
    return erdos_renyi(128, 1024, seed=7)


@pytest.fixture
def small_powerlaw() -> CSRGraph:
    return powerlaw_configuration(256, 2048, seed=7)


@pytest.fixture
def small_ego() -> CSRGraph:
    return ego_circles(n_egos=2, circle_size=10, n_circles_per_ego=3, seed=7)


@pytest.fixture
def engine2() -> Engine:
    return Engine(2)


@pytest.fixture
def engine4() -> Engine:
    return Engine(4)


@pytest.fixture
def window_pair(engine2: Engine) -> Window:
    """A 2-rank window with known contents and open epochs."""
    win = engine2.windows.add(Window(
        "data",
        [np.arange(100, dtype=np.int64), np.arange(1000, 1100, dtype=np.int64)],
    ))
    win.lock_all(0)
    win.lock_all(1)
    return win


def make_graph_suite(seed: int = 42) -> list[CSRGraph]:
    """A diverse set of small graphs for cross-implementation checks."""
    return [
        complete_graph(6),
        ring_of_cliques(3, 4),
        rmat(7, 8, seed=seed),
        erdos_renyi(96, 700, seed=seed),
        powerlaw_configuration(128, 900, seed=seed),
        ego_circles(n_egos=2, circle_size=8, n_circles_per_ego=2, seed=seed),
    ]
