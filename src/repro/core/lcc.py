"""Distributed, fully asynchronous LCC (the paper's Algorithm 3).

Per rank, for every locally-owned vertex ``v``:

1. read ``adj(v)`` from the local partition (a DRAM access);
2. for every neighbour ``j``: obtain ``adj(j)`` — locally if owned,
   otherwise via the two-get RMA protocol (offsets window, then adjacency
   window), both gets flowing through the CLaMPI caches when enabled;
3. ``t_v += |adj(v) ∩ adj(j)|`` using the configured intersection kernel
   under the OpenMP cost model;
4. ``LCC(v) = t_v / (deg_v (deg_v - 1))`` — the degree is implicit in the
   CSR offsets, so the score is "instantly attainable" (Section III-A).

No rank ever waits on another (passive-target RMA), so ranks are simulated
independently; the job time is the slowest rank's clock.

**Double buffering** (``overlap=True``): the communication for edge
``i + 1`` is overlapped with the computation of edge ``i``, charging
``max(comm, comp)`` instead of their sum per step (Section III-A's
double-buffering approach).
"""

from __future__ import annotations

import numpy as np

from repro.clampi.wrapper import attach_adjacency_caches, attach_offset_caches
from repro.core.config import CacheSpec, DistributedRunResult, LCCConfig
from repro.core.intersect import count_common
from repro.core.threading import OpenMPModel
from repro.graph.csr import CSRGraph
from repro.graph.distributed import DistributedCSR
from repro.graph.partition import BlockPartition1D, CyclicPartition1D, Partition
from repro.runtime.context import SimContext
from repro.runtime.engine import Engine
from repro.utils.errors import ConfigError


def make_partition(config: LCCConfig, n: int) -> Partition:
    """Instantiate the configured partitioning scheme."""
    if config.partition == "block":
        return BlockPartition1D(n, config.nranks)
    if config.partition == "cyclic":
        return CyclicPartition1D(n, config.nranks)
    raise ConfigError(f"unknown partition {config.partition!r}")


def attach_caches(engine: Engine, dist: DistributedCSR, spec: CacheSpec,
                  n_vertices: int) -> tuple[list, list]:
    """Attach one ``C_offsets``/``C_adj`` pair per rank for ``spec``.

    Returns ``(offsets_caches, adj_caches)``; either list is empty when the
    corresponding capacity is zero.
    """
    policy = spec.make_policy()
    offsets_caches: list = []
    adj_caches: list = []
    if spec.offsets_bytes > 0:
        offsets_caches = attach_offset_caches(
            engine.contexts, dist.w_offsets, spec.offsets_bytes,
            mode=spec.mode, adaptive=spec.adaptive,
        )
    if spec.adj_bytes > 0:
        adj_caches = attach_adjacency_caches(
            engine.contexts, dist.w_adj, spec.adj_bytes,
            mode=spec.mode, score_policy=policy,
            n_vertices=n_vertices, adaptive=spec.adaptive,
        )
    return offsets_caches, adj_caches


def setup_distributed(graph: CSRGraph, config: LCCConfig
                      ) -> tuple[Engine, DistributedCSR, list, list]:
    """Build engine + distributed CSR + (optional) caches for one run.

    Returns ``(engine, dist, offsets_caches, adj_caches)``; the cache lists
    are empty when caching is disabled.
    """
    engine = Engine(
        config.nranks,
        network=config.network,
        memory=config.memory,
        compute=config.compute,
        record_ops=config.record_ops,
    )
    dist = DistributedCSR(graph, make_partition(config, graph.n), engine)
    dist.open_epochs()
    offsets_caches: list = []
    adj_caches: list = []
    if config.cache is not None:
        offsets_caches, adj_caches = attach_caches(engine, dist,
                                                   config.cache, graph.n)
    return engine, dist, offsets_caches, adj_caches


def _lcc_rank_fn(dist: DistributedCSR, config: LCCConfig, omp: OpenMPModel,
                 tpv_out: np.ndarray, lcc_out: np.ndarray):
    """Build the per-rank worker (a plain function: fully asynchronous)."""
    method = config.method
    overlap = config.overlap
    compute_model = config.compute
    memory = config.memory

    def rank_fn(ctx: SimContext) -> int:
        rank = ctx.rank
        vs = dist.local_vertices(rank)
        offs_local = dist.w_offsets.local_part(rank)
        adj_local = dist.w_adj.local_part(rank)
        local_triplets = 0
        for li in range(vs.shape[0]):
            v = int(vs[li])
            a = adj_local[offs_local[li]:offs_local[li + 1]]
            deg = a.shape[0]
            # Local read of the own adjacency list.
            dt = memory.local_read_time(a.nbytes)
            ctx.advance(dt)
            ctx.trace.comp_time += dt
            t_v = 0
            if deg:
                if overlap:
                    t_v = _process_vertex_overlapped(ctx, dist, omp, method,
                                                    a, deg)
                else:
                    t_v = _process_vertex_sequential(ctx, dist, omp, method,
                                                     a, deg)
            ctx.compute(compute_model.vertex_overhead)
            tpv_out[v] = t_v
            denom = deg * (deg - 1)
            lcc_out[v] = t_v / denom if denom > 0 else 0.0
            local_triplets += t_v
        return local_triplets

    return rank_fn


def _process_vertex_sequential(ctx: SimContext, dist: DistributedCSR,
                               omp: OpenMPModel, method: str,
                               a: np.ndarray, deg: int) -> int:
    """Plain per-edge loop: communication then computation, serialized."""
    t_v = 0
    for j in a:
        b = dist.read_adjacency(ctx, int(j))
        ctx.compute(omp.kernel_time(method, deg, b.shape[0]))
        t_v += count_common(a, b, method)
    return t_v


def _process_vertex_overlapped(ctx: SimContext, dist: DistributedCSR,
                               omp: OpenMPModel, method: str,
                               a: np.ndarray, deg: int) -> int:
    """Double-buffered loop: edge i+1's communication hides edge i's compute.

    The first fetch cannot be hidden; afterwards each step advances the
    clock by ``max(kernel_i, comm_{i+1})``.  Trace counters still record
    the *busy* time per category (that is how the paper can report
    communication taking 97% of runtime even with overlap enabled).
    """
    b, comm_dt = dist.read_adjacency_timed(ctx, int(a[0]))
    ctx.advance(comm_dt)
    t_v = 0
    for i in range(deg):
        kernel_dt = omp.kernel_time(method, deg, b.shape[0])
        t_v += count_common(a, b, method)
        if i + 1 < deg:
            b_next, comm_next = dist.read_adjacency_timed(ctx, int(a[i + 1]))
            ctx.advance(max(kernel_dt, comm_next))
            ctx.trace.comp_time += kernel_dt
            b = b_next
        else:
            ctx.compute(kernel_dt)
    return t_v


def run_distributed_lcc(graph: CSRGraph, config: LCCConfig | None = None
                        ) -> DistributedRunResult:
    """Run Algorithm 3 over the simulated cluster; returns scores + metrics.

    Without op recording, runs take a vectorized path pinned by tests to
    produce identical clocks, traces and scores: cache-less runs the
    closed-form accounting (:mod:`repro.core.lcc_fast`), cached runs the
    batched cache replay (:mod:`repro.core.replay`).  Pass
    ``fast_path=False`` to force the per-edge loop.
    """
    config = config or LCCConfig()
    if config.fast_path and config.cache is None and not config.record_ops:
        from repro.core.lcc_fast import run_distributed_lcc_fast

        return run_distributed_lcc_fast(graph, config)
    engine, dist, off_caches, adj_caches = setup_distributed(graph, config)
    return execute_lcc(engine, dist, config, off_caches, adj_caches)


def execute_lcc(engine: Engine, dist: DistributedCSR, config: LCCConfig,
                off_caches: list = (), adj_caches: list = ()
                ) -> DistributedRunResult:
    """Run the LCC kernel on an already-built cluster (epochs open on entry).

    Dispatches between two bit-identical implementations: the batched
    replay (:mod:`repro.core.replay`) whenever ``config.fast_path`` is on
    and op recording is off — cached runs included — and the per-edge loop
    (:func:`execute_lcc_loop`) otherwise.
    """
    if config.fast_path and not config.record_ops:
        from repro.core.replay import execute_lcc_batched

        return execute_lcc_batched(engine, dist, config, off_caches,
                                   adj_caches)
    return execute_lcc_loop(engine, dist, config, off_caches, adj_caches)


def execute_lcc_loop(engine: Engine, dist: DistributedCSR, config: LCCConfig,
                     off_caches: list = (), adj_caches: list = ()
                     ) -> DistributedRunResult:
    """The per-edge loop implementation — the replay's reference oracle.

    The building block behind both :func:`run_distributed_lcc` (which
    creates a throwaway cluster) and :class:`repro.session.Session` (which
    keeps one cluster resident across queries).  Epochs must be open on
    entry; they are closed on return.
    """
    graph = dist.graph
    omp = OpenMPModel(threads=config.threads, compute=config.compute,
                      wait_policy=config.wait_policy)
    tpv = np.zeros(graph.n, dtype=np.int64)
    lcc = np.zeros(graph.n, dtype=np.float64)
    outcome = engine.run(_lcc_rank_fn(dist, config, omp, tpv, lcc))
    dist.close_epochs()

    total = int(tpv.sum())
    if graph.directed:
        global_triangles = total
    else:
        global_triangles = total // 6

    return DistributedRunResult(
        lcc=lcc,
        triangles_per_vertex=tpv,
        global_triangles=global_triangles,
        outcome=outcome,
        offsets_cache_stats=_merged_stats(off_caches),
        adj_cache_stats=_merged_stats(adj_caches),
    )


def _merged_stats(caches: list) -> dict | None:
    """Aggregate per-rank cache stats into one snapshot dict."""
    if not caches:
        return None
    from repro.clampi.stats import CacheStats

    merged = CacheStats()
    for cache in caches:
        merged.merge(cache.stats)
    return merged.snapshot()
