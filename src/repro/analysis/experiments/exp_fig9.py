"""Figure 9: small-scale strong scaling (4-64 nodes, six graphs).

Four series per graph, exactly as in the paper: LCC non-cached, LCC
cached, TriC and TriC-Buffered.  The caching configuration mirrors the
paper's "16 GiB memory overhead": at the paper's scale that budget removes
all capacity misses on these graphs, so the scaled equivalent sizes the
caches at twice the graph's CSR footprint (compulsory misses remain — they
are what erodes the cached series at 64 nodes).

Expected shapes (paper): async speedups 9.2x-14x from 4 to 64 nodes;
caching saves up to 67% (R-MAT S21) but can lose on compulsory-miss-bound
graphs (LiveJournal at 64 nodes); TriC 1-2 orders of magnitude slower on
scale-free graphs, nearly flat in node count.
"""

from __future__ import annotations

from repro.analysis.sweep import run_kernel_variants, series, speedup
from repro.analysis.tables import Table
from repro.core.config import CacheSpec, LCCConfig
from repro.graph.datasets import load_dataset

GRAPHS = ["rmat-s21-ef16", "rmat-s23-ef16", "orkut", "livejournal",
          "skitter", "livejournal1"]
NODE_COUNTS = [4, 8, 16, 32, 64]

#: Paper speedup annotations (smallest -> largest config, non-cached LCC).
PAPER_SPEEDUPS = {
    "rmat-s21-ef16": 10.8, "rmat-s23-ef16": 9.2, "orkut": 9.4,
    "livejournal": 13.9, "skitter": 11.3, "livejournal1": 14.0,
}


def make_variants(graph, buffered_cap: int = 1 << 18):
    """The four Figure 9 series, as Session kernel variants."""
    cache = CacheSpec.paper_split(2 * graph.nbytes, graph.n)
    return {
        "lcc": {"kernel": "lcc"},
        "lcc-cached": {"kernel": "lcc", "cache": cache},
        "tric": {"kernel": "tric"},
        "tric-buffered": {"kernel": "tric", "buffer_capacity": buffered_cap},
    }


def run(scale: float = 1.0, seed: int = 0, fast: bool = False,
        graphs: list[str] | None = None) -> list[Table]:
    names = graphs or (GRAPHS[:1] if fast else GRAPHS)
    counts = [4, 16] if fast else NODE_COUNTS
    tables = []
    for name in names:
        g = load_dataset(name, scale=scale, seed=seed)
        variants = make_variants(g)
        cells = run_kernel_variants(g, counts, variants,
                                    config=LCCConfig(threads=12))
        directed_note = " (directed: transitive triads)" if g.directed else ""
        t = Table(
            ["nodes"] + list(variants) + ["cache gain", "tric/lcc"],
            title=(f"Figure 9: {name} (n={g.n:,}, m={g.m:,}){directed_note} "
                   "- running time (s)"),
        )
        by = {v: dict(series(cells, v)) for v in variants}
        for p in counts:
            lcc_t = by["lcc"][p]
            cached_t = by["lcc-cached"][p]
            tric_t = by["tric"][p]
            t.add_row(p, *[round(by[v][p], 4) for v in variants],
                      f"{(1 - cached_t / lcc_t):.1%}",
                      f"{tric_t / lcc_t:.1f}x")
        tables.append(t)

        ann = Table(["series", "speedup (ours)", "speedup (paper)"],
                    title=f"{name}: speedup {counts[0]} -> {counts[-1]} nodes")
        ann.add_row("lcc", f"{speedup(cells, 'lcc'):.1f}x",
                    f"{PAPER_SPEEDUPS.get(name, float('nan'))}x")
        ann.add_row("lcc-cached", f"{speedup(cells, 'lcc-cached'):.1f}x", "-")
        ann.add_row("tric", f"{speedup(cells, 'tric'):.1f}x",
                    "~flat in the paper")
        tables.append(ann)
    return tables


def main() -> None:
    for table in run():
        print(table.render())
        print()


if __name__ == "__main__":
    main()
