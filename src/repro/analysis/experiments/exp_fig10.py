"""Figure 10: large-scale strong scaling (128-512 nodes, three graphs).

R-MAT S30 EF16, uk-2005 and wiki-en stand-ins over 128/256/512 simulated
nodes; three series (LCC non-cached, LCC cached, TriC — the paper drops
TriC-Buffered at this scale).  The cached configuration follows the
paper's large-scale setup where the per-node budget covers only ~12% of
the R-MAT S30 CSR: caches are sized at 12% of the graph footprint, and the
paper's headline is a 73% total-time reduction for R-MAT S30.
"""

from __future__ import annotations

from repro.analysis.sweep import run_kernel_variants, series, speedup
from repro.analysis.tables import Table
from repro.core.config import CacheSpec, LCCConfig
from repro.graph.datasets import load_dataset

GRAPHS = ["rmat-s30-ef16", "uk-2005", "wiki-en"]
NODE_COUNTS = [128, 256, 512]

#: Paper speedups 128 -> 512 nodes for the non-cached series.
PAPER_SPEEDUPS = {"rmat-s30-ef16": 3.4, "uk-2005": 1.5, "wiki-en": 1.7}


def run(scale: float = 1.0, seed: int = 0, fast: bool = False,
        graphs: list[str] | None = None) -> list[Table]:
    names = graphs or (GRAPHS[1:2] if fast else GRAPHS)
    counts = [128] if fast else NODE_COUNTS
    tables = []
    for name in names:
        g = load_dataset(name, scale=scale, seed=seed)
        cache = CacheSpec.paper_split(max(4096, int(0.12 * g.nbytes)), g.n)

        variants = {
            "lcc": {"kernel": "lcc"},
            "lcc-cached": {"kernel": "lcc", "cache": cache},
            "tric": {"kernel": "tric"},
        }
        cells = run_kernel_variants(g, counts, variants,
                                    config=LCCConfig(threads=12))
        by = {v: dict(series(cells, v)) for v in variants}
        t = Table(
            ["nodes", "lcc", "lcc-cached", "tric", "cache gain", "tric/lcc"],
            title=(f"Figure 10: {name} (n={g.n:,}, m={g.m:,}) "
                   "- running time (s), cache = 12% of CSR"),
        )
        for p in counts:
            lcc_t, cached_t, tric_t = (by["lcc"][p], by["lcc-cached"][p],
                                       by["tric"][p])
            t.add_row(p, round(lcc_t, 4), round(cached_t, 4),
                      round(tric_t, 4),
                      f"{(1 - cached_t / lcc_t):.1%}",
                      f"{tric_t / lcc_t:.1f}x")
        tables.append(t)
        if len(counts) > 1:
            ann = Table(["series", "speedup (ours)", "speedup (paper)"],
                        title=f"{name}: speedup {counts[0]} -> {counts[-1]}")
            ann.add_row("lcc", f"{speedup(cells, 'lcc'):.1f}x",
                        f"{PAPER_SPEEDUPS.get(name, float('nan'))}x")
            tables.append(ann)
    return tables


def main() -> None:
    for table in run():
        print(table.render())
        print()


if __name__ == "__main__":
    main()
