"""Traced serving runs: the ``repro trace`` CLI backend.

``repro trace`` serves one workload through the cooperative
:class:`~repro.serve.engine.AsyncServingEngine` with the full
:class:`~repro.obs.Observation` bundle on, then turns what it collected
into artifacts:

* the **decision journal** as JSONL (``TRACE_journal.jsonl``) — every
  admit/dispatch/window/commit decision, byte-deterministic per seed;
* the **span timeline** as Chrome ``trace_event`` JSON
  (``TRACE_events.json``) — open it in ``chrome://tracing`` or
  https://ui.perfetto.dev;
* a summary payload with the journal's replay verdict
  (:func:`~repro.obs.journal.replay_journal`), span well-formedness
  (:func:`~repro.obs.trace.check_spans`) and the per-(graph, shard-set)
  :func:`~repro.obs.export.utilization_report`.

``repro trace --check`` is the CI gate for the whole observability
layer (:func:`check_traced_run`):

* **parity** — a traced run and an untraced run of the same workload
  must produce bit-identical answers and store digests (observability
  may never perturb the simulation);
* **overhead** — min-of-:data:`OVERHEAD_REPEATS` traced wall clock must
  stay within :data:`OVERHEAD_CEILING` of untraced (tracing-off is the
  zero-cost path; tracing-on must stay cheap enough to leave on);
* **replay** — the recorded journal must replay fence-legal, and be
  byte-identical across two traced runs;
* **spans** — the span tree must be well-formed (no orphans, no
  same-worker task overlaps);
* **artifacts** — every committed ``BENCH_*.json`` in the working
  directory must pass :mod:`repro.analysis.schema` validation.
"""

from __future__ import annotations

import glob
import time
from typing import Any, List, Mapping, Optional

from repro.analysis.benchreport import BENCH_THREADS
from repro.obs import Observation
from repro.obs.export import chrome_trace, utilization_report
from repro.obs.journal import replay_journal
from repro.obs.trace import check_spans
from repro.serve.engine import (
    AsyncServeConfig,
    AsyncServingEngine,
    answers_identical,
)
from repro.serve.scheduler import FIFOScheduler, make_scheduler
from repro.serve.workload import WorkloadSpec, default_catalog, generate_workload
from repro.shardstore import ShardedGraphStore, annotate_shard_sets

TRACE_SCHEMA_VERSION = 1

#: Keys every ``--check`` report carries (pinned by tests and the CLI).
TRACE_REPORT_KEYS = ("schema_version", "quick", "n_requests",
                     "digests_identical", "journal_deterministic",
                     "replay", "span_problems", "overhead_ratio",
                     "overhead_ceiling", "artifact_problems", "ok")

TRACE_NRANKS = 8
TRACE_WORKERS = 6
TRACE_NSHARDS = 4
TRACE_SEED = 23

#: Traced wall clock may exceed untraced by at most this factor.
OVERHEAD_CEILING = 1.05

#: Min-of-N repeats for the overhead measurement (shared runners jitter
#: far more than the instrumentation costs; the minimum is the signal).
OVERHEAD_REPEATS = 3

#: Default artifact paths (gitignored; CI uploads them).
DEFAULT_JOURNAL_PATH = "TRACE_journal.jsonl"
DEFAULT_TRACE_PATH = "TRACE_events.json"


def _config(**kw) -> AsyncServeConfig:
    return AsyncServeConfig(nranks=TRACE_NRANKS, threads=BENCH_THREADS,
                            pool_capacity=4,
                            workers=kw.pop("workers", TRACE_WORKERS), **kw)


def trace_workload(quick: bool = False, seed: int = TRACE_SEED,
                   sharded: bool = True):
    """The pinned trace workload: update-heavy, shard-annotated.

    Updates carry their touched-shard sets over a sharded store so the
    journal and utilization report exercise the finest fence domains
    (``graph[s0,s1]``), including ``barrier``/``reseed`` spans.
    """
    catalog = default_catalog(scale=0.2 if quick else 0.3)
    spec = WorkloadSpec(
        n_queries=36 if quick else 90, arrival_rate=2500.0,
        n_tenants=8, graphs=tuple(catalog), kernels=("lcc", "tc"),
        seed=seed, update_mix=0.3, update_edges=6)
    requests = generate_workload(spec, catalog)
    store_factory = None
    if sharded:
        def store_factory(c):
            return ShardedGraphStore(c, nshards=TRACE_NSHARDS,
                                     nranks=TRACE_NRANKS)
        requests = annotate_shard_sets(requests, store_factory(catalog))
    return catalog, requests, store_factory


def _serve(catalog, requests, store_factory, *, scheduler=None,
           observation: Optional[Observation] = None):
    """One cooperative run; returns ``(outcome, wall_clock_s)``."""
    engine = AsyncServingEngine(
        catalog, _config(), scheduler=scheduler or FIFOScheduler(),
        store_factory=store_factory, observation=observation)
    t0 = time.perf_counter()
    outcome = engine.serve(requests)
    return outcome, time.perf_counter() - t0


def one_off_trace_run(*, journal_path: str = DEFAULT_JOURNAL_PATH,
                      trace_path: str = DEFAULT_TRACE_PATH,
                      quick: bool = False, seed: int = TRACE_SEED,
                      scheduler: str = "fifo") -> dict[str, Any]:
    """Serve the trace workload instrumented; write both artifacts.

    Returns the summary payload the CLI prints: journal/span counts and
    digests, the replay verdict, and the utilization breakdown.
    """
    catalog, requests, store_factory = trace_workload(quick, seed)
    obs = Observation.enabled()
    opts = {"seed": seed} if scheduler == "interleave" else {}
    outcome, wall = _serve(catalog, requests, store_factory,
                           scheduler=make_scheduler(scheduler, **opts),
                           observation=obs)
    obs.journal.write(journal_path)
    trace = chrome_trace(obs.tracer.spans,
                         label=f"repro trace (seed {seed})")
    import json

    with open(trace_path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=1, sort_keys=True)
        fh.write("\n")
    replay = replay_journal(obs.journal, requests)
    span_problems = check_spans(obs.tracer.spans)
    util = utilization_report(outcome.records, outcome.update_records,
                              requests=requests, workers=TRACE_WORKERS)
    return {
        "n_requests": len(requests),
        "scheduler": scheduler,
        "seed": seed,
        "wall_clock_s": wall,
        "n_events": len(obs.journal),
        "n_spans": len(obs.tracer.spans),
        "journal_digest": obs.journal.digest(),
        "span_problems": span_problems,
        "replay": replay.as_dict(),
        "utilization": util,
        "journal_path": journal_path,
        "trace_path": trace_path,
    }


def check_traced_run(*, quick: bool = False, seed: int = TRACE_SEED,
                     repeats: int = OVERHEAD_REPEATS,
                     ceiling: float = OVERHEAD_CEILING,
                     artifact_glob: str = "BENCH_*.json"
                     ) -> dict[str, Any]:
    """The observability gate (see module docstring for the clauses).

    Returns a report dict whose ``ok`` is the overall verdict and whose
    ``problems`` list explains any failure in one line each.
    """
    from repro.analysis.schema import validate_tree

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    catalog, requests, store_factory = trace_workload(quick, seed)

    plain_walls: List[float] = []
    plain_outcome = None
    for _ in range(repeats):
        plain_outcome, wall = _serve(catalog, requests, store_factory)
        plain_walls.append(wall)

    traced_walls: List[float] = []
    traced_outcome, obs = None, None
    digests: List[str] = []
    for _ in range(2 if repeats < 2 else repeats):
        obs = Observation.enabled()
        traced_outcome, wall = _serve(catalog, requests, store_factory,
                                      observation=obs)
        traced_walls.append(wall)
        digests.append(obs.journal.digest())

    problems: List[str] = []
    identical = answers_identical(plain_outcome, traced_outcome)
    if not identical:
        problems.append(
            "tracing perturbed the run: traced answers/digests diverged "
            "from the untraced run")
    deterministic = len(set(digests)) == 1
    if not deterministic:
        problems.append(
            f"journal is not deterministic: {len(set(digests))} distinct "
            f"digests across {len(digests)} runs")
    replay = replay_journal(obs.journal, requests)
    if not replay.ok:
        problems.append(
            f"journal replay found the run fence-illegal: "
            f"{replay.problems[0]}")
    span_problems = check_spans(obs.tracer.spans)
    if span_problems:
        problems.append(f"span tree malformed: {span_problems[0]}")
    floor = min(plain_walls)
    ratio = (min(traced_walls) / floor) if floor > 0 else 0.0
    if ratio > ceiling:
        problems.append(
            f"tracing overhead {ratio:.3f}x exceeds the "
            f"{ceiling:.2f}x ceiling")
    artifact_problems = validate_tree(sorted(glob.glob(artifact_glob)))
    problems.extend(f"artifact schema: {p}" for p in artifact_problems)

    return {
        "schema_version": TRACE_SCHEMA_VERSION,
        "quick": quick,
        "seed": seed,
        "n_requests": len(requests),
        "digests_identical": bool(identical),
        "journal_deterministic": bool(deterministic),
        "journal_digest": digests[0],
        "replay": replay.as_dict(),
        "span_problems": span_problems,
        "n_spans": len(obs.tracer.spans),
        "n_events": len(obs.journal),
        "wall_untraced_s": floor,
        "wall_traced_s": min(traced_walls),
        "overhead_ratio": ratio,
        "overhead_ceiling": ceiling,
        "artifact_problems": artifact_problems,
        "problems": problems,
        "ok": not problems,
    }


def format_check_report(report: Mapping[str, Any]) -> List[str]:
    """Human-readable lines for one ``--check`` report."""
    replay = report.get("replay", {})
    return [
        f"parity       traced answers identical to untraced: "
        f"{report['digests_identical']}",
        f"journal      {report['n_events']} events, deterministic: "
        f"{report['journal_deterministic']}, replay fence-legal: "
        f"{replay.get('ok')} ({replay.get('n_dispatches')} dispatches, "
        f"{replay.get('n_commits')} commits)",
        f"spans        {report['n_spans']} spans, "
        f"{len(report['span_problems'])} problems",
        f"overhead     {report['overhead_ratio']:.3f}x untraced "
        f"(ceiling {report['overhead_ceiling']:.2f}x)",
        f"artifacts    {len(report['artifact_problems'])} schema problems",
    ]
