"""GraphStore benchmark: resident 2D grids, versioned update propagation.

``repro store --bench`` (and :func:`run_store_bench`) records the
graph-store subsystem's trajectory point, ``BENCH_store.json``:

* **tc2d** — serving ``tc2d`` warm from a resident
  :class:`~repro.graphstore.grid2d.GridCluster2D` versus the legacy
  per-call rebuild path (:func:`~repro.core.tc2d.run_distributed_tc_2d`),
  per bench graph, with the rebuild path kept as the bit-identity oracle
  (same triangles *and* same per-rank simulated clocks).  The committed
  gate requires the warm resident query to be at least **2x** faster in
  wall-clock terms — in practice the replay memo makes it orders of
  magnitude faster;
* **versions** — a mixed read/write serving run through FIFO and
  cache-affinity scheduling over the store: per-query answers (prefixed
  with the observed :class:`~repro.graphstore.store.GraphVersion`),
  per-update chained history digests and the final per-graph version
  histories must all be scheduler-independent, proving that an update
  advances one version visible to *every* session of its graph no
  matter who schedules it; the row also records how many consecutive
  queued updates each scheduler coalesced into single store flushes;
* **delete_heavy** — the deletion-dominated scenario (>= 75% deletes
  per batch, sustained across rounds until degrees collapse below the
  min-degree preprocessing threshold): the incremental fold must stay
  bit-identical to a full recompute at every round, and a delete-heavy
  serving workload must stay scheduler-independent.

:func:`check_store_report` is the absolute gate a recorded report must
pass; CI re-runs ``--quick`` sizes and gates them against the committed
baseline with :func:`check_store_against_baseline`.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

import numpy as np

from repro.analysis.benchreport import (
    BENCH_THREADS,
    bench_graphs,
    write_report,
)
from repro.core.config import LCCConfig
from repro.core.tc2d import run_distributed_tc_2d
from repro.dynamic import IncrementalState, random_update_batch
from repro.graph.csr import CSRGraph
from repro.core.local import triangles_min_vertex, triangles_per_vertex_batched
from repro.serve.engine import ServeConfig, ServingEngine, answers_identical
from repro.serve.scheduler import make_scheduler
from repro.serve.workload import WorkloadSpec, default_catalog, generate_workload
from repro.session import Session
from repro.utils.rng import derive_seed

STORE_SCHEMA_VERSION = 1

#: Keys every store report carries (pinned by tests and the CLI).
STORE_REPORT_KEYS = ("schema_version", "quick", "nranks", "threads",
                     "graphs", "tc2d", "versions", "delete_heavy")

#: The 2D bench runs a square grid (3 x 3) so the SUMMA-style kernel —
#: not the rectangular fallback — is what gets measured.
STORE_NRANKS = 9

#: Warm resident queries must beat the per-call rebuild by this factor.
MIN_WARM_SPEEDUP = 2.0

STORE_SEED = 11

#: Deletion-heavy scenario shape: >= 75% of every batch deletes edges.
DELETE_HEAVY_FRACTION = 0.8


def bench_tc2d_resident(graph: CSRGraph, *, repeats: int = 3
                        ) -> dict[str, Any]:
    """Warm resident ``tc2d`` vs the per-call rebuild path on one graph.

    Both paths are timed on their steady state: the rebuild path's
    second-and-later calls (it has no warm state, every call pays the
    full split + pack + count), the resident path's second-and-later
    queries (grid built once, warm queries replay).  ``bit_identical``
    covers triangles *and* per-rank simulated clocks.
    """
    config = LCCConfig(nranks=STORE_NRANKS, threads=BENCH_THREADS)
    rebuild_first = run_distributed_tc_2d(graph, config)
    t0 = time.perf_counter()
    for _ in range(repeats):
        rebuild = run_distributed_tc_2d(graph, config)
    rebuild_warm = (time.perf_counter() - t0) / repeats

    with Session(graph, config) as session:
        cold = session.run("tc2d")
        t0 = time.perf_counter()
        for _ in range(repeats):
            warm = session.run("tc2d")
        resident_warm = (time.perf_counter() - t0) / repeats
        grid_builds = session.grid_builds

    identical = (
        int(warm.global_triangles) == int(rebuild.global_triangles)
        and warm.outcome.clocks == rebuild.outcome.clocks
        and int(cold.global_triangles) == int(rebuild_first.global_triangles)
        and cold.outcome.clocks == rebuild_first.outcome.clocks)
    return {
        "rebuild_warm_wall_s": rebuild_warm,
        "resident_warm_wall_s": resident_warm,
        "warm_speedup": rebuild_warm / resident_warm,
        "bit_identical": bool(identical),
        "global_triangles": int(warm.global_triangles),
        "simulated_time_s": float(warm.time),
        "grid_builds": grid_builds,
        "nranks": STORE_NRANKS,
    }


def bench_version_propagation(quick: bool = False) -> dict[str, Any]:
    """Mixed read/write serving over the store, FIFO vs affinity.

    The scheduler-independence contract now covers three layers at once:
    per-query answer bytes, the graph version each query *observed*, and
    each graph's chained version-history digest — all folded into the
    per-request digests :func:`~repro.serve.engine.answers_identical`
    compares.  The workload mixes ``lcc`` (1D resident cluster) with
    ``tc2d`` (resident 2D grid), so one committed update propagates into
    both partitionings of the same stored graph.
    """
    catalog = default_catalog(scale=0.3 if quick else 0.5)
    spec = WorkloadSpec(
        n_queries=48 if quick else 150, arrival_rate=2000.0,
        n_tenants=8 if quick else 12, graphs=tuple(catalog),
        kernels=("lcc", "tc2d"), seed=STORE_SEED,
        update_mix=0.3, update_edges=8)
    requests = generate_workload(spec, catalog)
    config = ServeConfig(nranks=8, threads=BENCH_THREADS, pool_capacity=3)
    outcomes = {}
    for name in ("fifo", "affinity"):
        engine = ServingEngine(catalog, config, make_scheduler(name))
        outcomes[name] = engine.serve(requests)
    fifo, aff = outcomes["fifo"], outcomes["affinity"]
    return {
        "n_requests": len(requests),
        "n_updates": fifo.aggregates["n_updates"],
        "update_mix": spec.update_mix,
        "results_identical": answers_identical(fifo, aff),
        "version_histories_identical": fifo.graph_versions == aff.graph_versions,
        "final_versions": {name: v for name, (v, _) in
                           sorted(fifo.graph_versions.items())},
        "schedulers": {name: {
            "throughput_qps": o.aggregates["throughput_qps"],
            "warm_fraction": o.aggregates["warm_fraction"],
            "updates_coalesced": o.aggregates["updates_coalesced"],
            "rekeyed_entries": o.aggregates.get("rekeyed_entries", 0),
            "invalidated_entries": o.aggregates.get("invalidated_entries", 0),
        } for name, o in outcomes.items()},
    }


def bench_delete_heavy(graph: CSRGraph, *, rounds: int = 6,
                       seed: int = STORE_SEED) -> dict[str, Any]:
    """Sustained shrinkage: delete-dominated batches, round after round.

    Each round applies a batch that is >= 75% deletes through the
    incremental fold and cross-checks it bit-identically against a full
    recompute of the shrunken graph; degrees are tracked so the report
    shows the collapse below the min-degree-2 preprocessing threshold
    (vertices that can no longer be in any triangle).
    """
    state = IncrementalState.from_graph(graph)
    m0 = graph.m
    identical = True
    batch_edges = max(8, graph.m // 20)
    for r in range(rounds):
        batch = random_update_batch(
            state.graph, batch_edges, DELETE_HEAVY_FRACTION,
            seed=derive_seed(seed, "store-del", graph.name, r))
        state.apply(batch)
        identical = identical and (
            np.array_equal(triangles_per_vertex_batched(state.graph),
                           state.tpv)
            and np.array_equal(triangles_min_vertex(state.graph), state.tmin))
    degrees = state.graph.degrees()
    return {
        "rounds": rounds,
        "delete_fraction": DELETE_HEAVY_FRACTION,
        "edges_before": int(m0),
        "edges_after": int(state.graph.m),
        "bit_identical": bool(identical),
        "collapsed_below_min_degree": int((degrees < 2).sum()),
    }


def bench_delete_heavy_serving(quick: bool = False) -> dict[str, Any]:
    """A delete-dominated serving trace must stay scheduler-independent."""
    catalog = default_catalog(scale=0.25 if quick else 0.4)
    spec = WorkloadSpec(
        n_queries=32 if quick else 80, arrival_rate=2000.0,
        n_tenants=6, graphs=tuple(catalog), seed=STORE_SEED,
        update_mix=0.35, update_edges=10).delete_heavy()
    requests = generate_workload(spec, catalog)
    config = ServeConfig(nranks=8, threads=BENCH_THREADS, pool_capacity=3)
    outcomes = {
        name: ServingEngine(catalog, config, make_scheduler(name))
        .serve(requests)
        for name in ("fifo", "affinity")}
    fifo, aff = outcomes["fifo"], outcomes["affinity"]
    return {
        "n_requests": len(requests),
        "n_updates": fifo.aggregates["n_updates"],
        "delete_fraction": spec.update_delete_fraction,
        "edges_deleted": fifo.aggregates.get("edges_deleted", 0),
        "edges_inserted": fifo.aggregates.get("edges_inserted", 0),
        "results_identical": answers_identical(fifo, aff),
    }


def run_store_bench(quick: bool = False,
                    graphs: Mapping[str, CSRGraph] | None = None
                    ) -> dict[str, Any]:
    """Produce the full store report dict (see module docstring)."""
    graphs = dict(graphs) if graphs is not None else bench_graphs(quick)
    report: dict[str, Any] = {
        "schema_version": STORE_SCHEMA_VERSION,
        "quick": quick,
        "nranks": STORE_NRANKS,
        "threads": BENCH_THREADS,
        "graphs": {name: {"vertices": g.n, "edges": g.m}
                   for name, g in graphs.items()},
        "tc2d": {},
        "versions": bench_version_propagation(quick),
        "delete_heavy": {"serving": bench_delete_heavy_serving(quick)},
    }
    for gname, graph in graphs.items():
        report["tc2d"][gname] = bench_tc2d_resident(graph)
        report["delete_heavy"][gname] = bench_delete_heavy(graph)
    return report


def check_store_report(report: Mapping[str, Any], *,
                       min_speedup: float = MIN_WARM_SPEEDUP) -> list[str]:
    """The absolute gate a store report must pass to be recorded.

    Returns human-readable problems (empty list = pass): every ``tc2d``
    row bit-identical with warm speedup above the floor (2x even for
    quick runs — the resident grid must always beat a full rebuild),
    scheduler-independent versioned serving, and delete-heavy shrinkage
    bit-identical to full recomputes.
    """
    problems = []
    for key in STORE_REPORT_KEYS:
        if key not in report:
            problems.append(f"store report missing key {key!r}")
    for gname, row in report.get("tc2d", {}).items():
        if not row.get("bit_identical", False):
            problems.append(
                f"tc2d:{gname}: resident grid answers/clocks differ from "
                "the per-call rebuild path")
        if float(row.get("warm_speedup", 0.0)) < min_speedup:
            problems.append(
                f"tc2d:{gname}: warm speedup "
                f"{row.get('warm_speedup', 0.0):.2f}x below the "
                f"{min_speedup:.1f}x floor")
        if int(row.get("grid_builds", 0)) != 1:
            problems.append(
                f"tc2d:{gname}: grid was built "
                f"{row.get('grid_builds')}x (resident path must build once)")
    versions = report.get("versions", {})
    if versions.get("results_identical") is not True:
        problems.append(
            "versions: mixed read/write answers are not proven identical "
            "between schedulers (graph fence or propagation broken?)")
    if versions.get("version_histories_identical") is not True:
        problems.append(
            "versions: per-graph version histories differ between "
            "schedulers (store commits are scheduler-dependent?)")
    if versions.get("n_updates", 0) <= 0:
        problems.append("versions: the serving run exercised no updates")
    delete_heavy = report.get("delete_heavy", {})
    for gname, row in delete_heavy.items():
        if gname == "serving":
            if row.get("results_identical") is not True:
                problems.append(
                    "delete_heavy:serving: answers are not "
                    "scheduler-independent under deletion-heavy traffic")
            continue
        if not row.get("bit_identical", False):
            problems.append(
                f"delete_heavy:{gname}: incremental fold diverged from the "
                "full recompute under sustained shrinkage")
        if int(row.get("edges_after", 0)) >= int(row.get("edges_before", 0)):
            problems.append(
                f"delete_heavy:{gname}: the graph did not shrink "
                "(scenario is not deletion-dominated)")
    return problems


def check_store_against_baseline(report: Mapping[str, Any],
                                 baseline: Mapping[str, Any], *,
                                 tolerance: float = 0.25) -> list[str]:
    """CI gate: a fresh (quick) report versus the committed baseline.

    Correctness clauses are absolute (bit-identity, scheduler and
    version-history independence, shrinkage parity) and the 2x warm
    floor always applies; on top, the fresh worst-case warm speedup must
    stay above ``tolerance`` times the baseline's, mirroring ``repro
    bench --check`` (graph names are deliberately not matched: CI runs
    quick sizes against the full-size baseline).
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be > 0, got {tolerance}")
    problems = check_store_report(report)

    def min_warm(rep) -> float:
        rows = rep.get("tc2d", {})
        return min((float(r.get("warm_speedup", 0.0)) for r in rows.values()),
                   default=0.0)

    if not baseline.get("tc2d"):
        problems.append(
            "baseline has no tc2d section (is --check pointed at a "
            "BENCH_store.json?)")
        return problems
    floor = tolerance * min_warm(baseline)
    fresh = min_warm(report)
    if fresh < floor:
        problems.append(
            f"tc2d warm speedup {fresh:.2f}x fell below {floor:.2f}x "
            f"({tolerance:.0%} of the baseline's {min_warm(baseline):.2f}x)")
    return problems


def write_store_report(report: Mapping[str, Any], path: str, *,
                       gate: bool = True) -> None:
    """Gate-check (optionally), schema-check and write the store report.

    ``gate=False`` skips the absolute gate and only schema-checks — for
    CI runs whose pass/fail verdict comes from
    :func:`check_store_against_baseline` instead (the measured report
    should land on disk as an artifact either way).
    """
    if gate:
        problems = check_store_report(report)
        if problems:
            raise ValueError("; ".join(problems))
    write_report(report, path, required_keys=STORE_REPORT_KEYS)


# ---------------------------------------------------------------------------
# One-off CLI runs (``repro store`` without --bench)
# ---------------------------------------------------------------------------

def one_off_store_run(graph: CSRGraph, *, nranks: int = STORE_NRANKS,
                      threads: int = BENCH_THREADS, n_edges: int = 16,
                      delete_fraction: float = 0.25, seed: int = 0
                      ) -> dict[str, Any]:
    """Resident-vs-rebuild tc2d plus one versioned update; report everything."""
    from repro.graphstore import GraphStore

    config = LCCConfig(nranks=nranks, threads=threads)
    name = graph.name or "graph"
    store = GraphStore({name: graph})
    batch = random_update_batch(graph, n_edges, delete_fraction, seed=seed)
    # Time the rebuild oracle on the SAME (pre-update) graph the warm
    # query serves — the update may change the graph size materially.
    t0 = time.perf_counter()
    run_distributed_tc_2d(graph, config)
    rebuild_wall = time.perf_counter() - t0
    with Session(graph, config) as session:
        cold = session.run("tc2d")
        t0 = time.perf_counter()
        warm = session.run("tc2d")
        warm_wall = time.perf_counter() - t0
        update = store.apply(name, batch)
        outcome = session.sync_to(update.delta)
        post = session.run("tc2d")
    ref = run_distributed_tc_2d(store.graph(name), config)
    return {
        "graph": name, "vertices": graph.n, "edges": graph.m,
        "nranks": nranks,
        "version": str(update.version),
        "history_digest": update.digest[:12],
        "edges_inserted": update.delta.n_inserted,
        "edges_deleted": update.delta.n_deleted,
        "touched_blocks": len(outcome.touched_blocks),
        "update_simulated_time_s": outcome.time,
        "cold_triangles": int(cold.global_triangles),
        "post_update_triangles": int(post.global_triangles),
        "post_update_matches_rebuild": bool(
            int(post.global_triangles) == int(ref.global_triangles)
            and post.outcome.clocks == ref.outcome.clocks),
        "warm_wall_s": warm_wall,
        "rebuild_wall_s": rebuild_wall,
        "warm_speedup": rebuild_wall / warm_wall if warm_wall else 0.0,
        "warm_matches_cold": bool(
            int(warm.global_triangles) == int(cold.global_triangles)),
    }
