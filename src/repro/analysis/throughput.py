"""Vectorized shared-memory throughput evaluation (Table III, Figure 6).

The shared-memory experiments need the *total* kernel time over every
edge of a graph for a given method and thread count.  Looping edges in
Python and calling :class:`~repro.core.threading.OpenMPModel` per edge is
too slow for the Table III sweep, so this module evaluates the same cost
formulas vectorized over NumPy arrays of list-length pairs.  A unit test
pins the vectorized forms to the scalar model.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.threading import OpenMPModel
from repro.graph.csr import CSRGraph
from repro.utils.units import US


def exact_log2(x: np.ndarray) -> np.ndarray:
    """``log2`` evaluated with :func:`math.log2` per distinct value.

    ``np.log2`` disagrees with ``math.log2`` by one ulp on a sparse set of
    inputs (1621.0 is one), which is enough to break bit-identical parity
    between these vectorized formulas and the scalar
    :class:`~repro.core.threading.OpenMPModel`.  List lengths are integers
    drawn from few distinct values, so a per-unique lookup table is both
    exact and cheap.
    """
    uniq, inv = np.unique(x, return_inverse=True)
    lut = np.array([math.log2(float(u)) for u in uniq], dtype=np.float64)
    return lut[inv.reshape(-1)].reshape(np.asarray(x).shape)


def edge_length_pairs(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """(|adj(v)|, |adj(j)|) for every directed edge (v, j)."""
    deg = graph.degrees()
    la = np.repeat(deg, deg)             # the source's degree, per edge
    lb = deg[graph.adjacency]            # the target's degree, per edge
    return la.astype(np.float64), lb.astype(np.float64)


def _ssi_time_vec(m: OpenMPModel, la: np.ndarray, lb: np.ndarray) -> np.ndarray:
    cm = m.compute
    seq = cm.edge_overhead + (la + lb) * cm.c_ssi
    if m.threads == 1:
        return seq
    short = np.minimum(la, lb)
    long_ = np.maximum(la, lb)
    per_thread = long_ / m.threads + short
    par = (cm.edge_overhead + m.region_overhead
           + per_thread * (1.0 + m.chunk_imbalance) * cm.c_ssi)
    return np.where(la + lb < m.cutoff, seq, par)


def _bs_time_vec(m: OpenMPModel, la: np.ndarray, lb: np.ndarray) -> np.ndarray:
    cm = m.compute
    short = np.minimum(la, lb)
    long_ = np.maximum(la, lb)
    log_term = np.where(long_ > 1,
                        np.maximum(1.0, exact_log2(np.maximum(long_, 2))), 1.0)
    seq = cm.edge_overhead + short * log_term * cm.c_bs
    # Degenerate tree (<= 1 element): one comparison per key.
    seq = np.where(long_ <= 1, cm.edge_overhead + short * cm.c_bs, seq)
    if m.threads == 1:
        return seq
    keys_per_thread = np.ceil(short / m.threads)
    par = (cm.edge_overhead + m.region_overhead
           + keys_per_thread * log_term * (1.0 + m.chunk_imbalance) * cm.c_bs)
    return np.where(short < max(1, m.cutoff // 8), seq, par)


def kernel_times_vectorized(model: OpenMPModel, method: str,
                            la: np.ndarray, lb: np.ndarray) -> np.ndarray:
    """Per-edge kernel times for arrays of list-length pairs."""
    la = np.asarray(la, dtype=np.float64)
    lb = np.asarray(lb, dtype=np.float64)
    if method == "ssi":
        return _ssi_time_vec(model, la, lb)
    if method == "binary":
        return _bs_time_vec(model, la, lb)
    if method == "hybrid":
        return np.minimum(_ssi_time_vec(model, la, lb),
                          _bs_time_vec(model, la, lb))
    raise ValueError(f"unknown intersection method: {method!r}")


def edges_per_microsecond(graph: CSRGraph, method: str,
                          threads: int = 16,
                          wait_policy: str = "active") -> float:
    """The paper's Table III / Figure 6 metric for one graph and method."""
    model = OpenMPModel(threads=threads, wait_policy=wait_policy)
    la, lb = edge_length_pairs(graph)
    if la.shape[0] == 0:
        return 0.0
    total = kernel_times_vectorized(model, method, la, lb).sum()
    return float(la.shape[0] / (total / US))
