"""Units and human-readable formatting helpers.

The simulator works in SI base units throughout: **seconds** for time and
**bytes** for sizes.  These constants make configuration code read like the
paper ("16 GiB memory overhead", "2.5 us setup latency").
"""

from __future__ import annotations

# -- byte units ------------------------------------------------------------
KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB

# -- time units (expressed in seconds) --------------------------------------
NS: float = 1e-9
US: float = 1e-6
MS: float = 1e-3


def format_bytes(nbytes: float) -> str:
    """Render a byte count like ``905.8 MiB`` (paper Table II style).

    >>> format_bytes(949_947_187)
    '905.9 MiB'
    >>> format_bytes(512)
    '512 B'
    """
    nbytes = float(nbytes)
    if nbytes < KiB:
        return f"{nbytes:.0f} B"
    if nbytes < MiB:
        return f"{nbytes / KiB:.1f} KiB"
    if nbytes < GiB:
        return f"{nbytes / MiB:.1f} MiB"
    return f"{nbytes / GiB:.2f} GiB"


def format_seconds(seconds: float) -> str:
    """Render a duration with an adaptive unit.

    >>> format_seconds(2.5e-6)
    '2.50 us'
    >>> format_seconds(0.25)
    '250.0 ms'
    >>> format_seconds(90)
    '90.00 s'
    """
    if seconds < 0:
        return "-" + format_seconds(-seconds)
    if seconds < US:
        return f"{seconds / NS:.0f} ns"
    if seconds < MS:
        return f"{seconds / US:.2f} us"
    if seconds < 1.0:
        return f"{seconds / MS:.1f} ms"
    return f"{seconds:.2f} s"


def format_rate(edges: float, seconds: float) -> str:
    """Render a throughput as edges per microsecond (paper Table III unit)."""
    if seconds <= 0:
        return "inf"
    return f"{edges / (seconds / US):.3f} edges/us"
