"""The recorded serving benchmark and its gate (BENCH_serve.json)."""

import json

import pytest

from repro.analysis.serving import (
    SERVE_REPORT_KEYS,
    check_serve_report,
    run_serving_bench,
    write_serve_report,
)


@pytest.fixture(scope="module")
def report():
    return run_serving_bench(quick=True)


class TestServingBench:
    def test_report_shape(self, report):
        for key in SERVE_REPORT_KEYS:
            assert key in report
        assert set(report["workloads"]) == {"zipf", "uniform"}
        for row in report["workloads"].values():
            assert set(row["schedulers"]) == {"fifo", "affinity"}
            for agg in row["schedulers"].values():
                assert agg["throughput_qps"] > 0
                assert agg["n_queries"] == row["n_queries"]

    def test_parity_and_zipf_win(self, report):
        """The committed report's contract, exercised on quick sizes."""
        for row in report["workloads"].values():
            assert row["results_identical"] is True
        assert report["workloads"]["zipf"]["throughput_ratio"] > 1.0

    def test_gate_passes_on_fresh_report(self, report):
        assert check_serve_report(report) == []

    def test_gate_catches_parity_breaks(self, report):
        broken = json.loads(json.dumps(report))
        broken["workloads"]["zipf"]["results_identical"] = False
        assert any("not proven identical" in p
                   for p in check_serve_report(broken))

    def test_gate_rejects_vacuous_reports(self, report):
        """Dropping the comparison fields must fail, not pass silently."""
        vacuous = json.loads(json.dumps(report))
        del vacuous["workloads"]["zipf"]["results_identical"]
        del vacuous["workloads"]["zipf"]["throughput_ratio"]
        problems = check_serve_report(vacuous)
        assert any("not proven identical" in p for p in problems)
        assert any("no affinity-vs-fifo" in p for p in problems)

    def test_gate_requires_both_workloads(self, report):
        partial = json.loads(json.dumps(report))
        del partial["workloads"]["uniform"]
        assert any("missing workload 'uniform'" in p
                   for p in check_serve_report(partial))

    def test_gate_catches_affinity_losing(self, report):
        broken = json.loads(json.dumps(report))
        broken["workloads"]["zipf"]["throughput_ratio"] = 0.9
        assert any("must beat FIFO" in p for p in check_serve_report(broken))

    def test_gate_catches_missing_keys(self):
        assert any("missing key" in p for p in check_serve_report({}))

    def test_write_round_trip(self, report, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        write_serve_report(report, str(path))
        assert json.loads(path.read_text())["workloads"]["zipf"][
            "results_identical"] is True

    def test_write_refuses_failing_report(self, report, tmp_path):
        broken = json.loads(json.dumps(report))
        broken["workloads"]["zipf"]["throughput_ratio"] = 0.5
        with pytest.raises(ValueError, match="beat FIFO"):
            write_serve_report(broken, str(tmp_path / "x.json"))


class TestCommittedReport:
    def test_committed_bench_serve_passes_the_gate(self):
        from pathlib import Path
        committed = Path(__file__).resolve().parents[2] / "BENCH_serve.json"
        report = json.loads(committed.read_text())
        assert check_serve_report(report) == []
        assert report["quick"] is False
