"""Unified observability: spans, metrics, and the decision journal.

One package instruments the whole serving/store stack:

* :mod:`repro.obs.trace` — span tracing on the simulated clock,
  zero-cost when disabled (:func:`~repro.obs.trace.span` resolves the
  process-wide tracer installed by :func:`~repro.obs.trace.activate`);
* :mod:`repro.obs.metrics` — typed counters/gauges/histograms behind a
  :class:`~repro.obs.metrics.MetricsRegistry` whose ``snapshot()`` the
  legacy stat blocks (``AsyncServeOutcome``, ``CacheStats``) delegate
  to, byte-identically;
* :mod:`repro.obs.journal` — every engine decision (admit/defer/shed,
  dispatch, window open/close, commit, retire) as deterministic JSONL,
  plus :func:`~repro.obs.journal.replay_journal`, which re-drives the
  scheduling fences over a journal and proves the recorded run was
  fence-legal;
* :mod:`repro.obs.export` — Chrome ``trace_event`` timelines and the
  per-(graph, shard-set) utilization report.

The engine takes one :class:`Observation` bundle: pass
``Observation.enabled()`` to collect everything, or leave it ``None``
(the default everywhere) for the plain fast path.

Import discipline: :mod:`~repro.obs.trace` and
:mod:`~repro.obs.metrics` depend only on the stdlib, because the deep
layers (the graph store, the cache, the session pool) import them at
module load.  The journal and the exporters depend on
:mod:`repro.serve` and are therefore exposed *lazily* here — importing
``repro.obs`` from inside a serve-stack module must not re-enter the
serve package mid-initialization.
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib import import_module
from typing import TYPE_CHECKING, Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    Span,
    SpanTracer,
    activate,
    active_tracer,
    check_spans,
    span,
)

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.obs.journal import DecisionJournal

__all__ = [
    "Counter",
    "DecisionJournal",
    "EVENT_KINDS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observation",
    "ReplayReport",
    "Span",
    "SpanTracer",
    "activate",
    "active_tracer",
    "chrome_trace",
    "check_spans",
    "replay_journal",
    "span",
    "utilization_report",
]

#: Serve-stack-dependent names, resolved on first attribute access.
_LAZY = {
    "DecisionJournal": "repro.obs.journal",
    "EVENT_KINDS": "repro.obs.journal",
    "ReplayReport": "repro.obs.journal",
    "replay_journal": "repro.obs.journal",
    "chrome_trace": "repro.obs.export",
    "utilization_report": "repro.obs.export",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))


@dataclass
class Observation:
    """What one serving run should collect; ``None`` fields collect nothing."""

    tracer: Optional[SpanTracer] = None
    journal: Optional["DecisionJournal"] = None

    @classmethod
    def enabled(cls) -> "Observation":
        """Fresh tracer + journal, everything on."""
        from repro.obs.journal import DecisionJournal
        return cls(tracer=SpanTracer(), journal=DecisionJournal())
