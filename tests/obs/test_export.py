"""Exporters: Chrome trace structure and the utilization breakdown."""

import json

import pytest

from repro.obs import Observation
from repro.obs.export import chrome_trace, utilization_report
from repro.obs.trace import SpanTracer
from repro.serve.engine import AsyncServeConfig, AsyncServingEngine
from repro.serve.records import concurrency_profile
from repro.serve.scheduler import FIFOScheduler
from repro.serve.workload import WorkloadSpec, default_catalog, generate_workload
from repro.shardstore import ShardedGraphStore, annotate_shard_sets


@pytest.fixture(scope="module")
def traced():
    catalog = default_catalog(scale=0.2)
    requests = generate_workload(
        WorkloadSpec(n_queries=30, arrival_rate=2500.0, n_tenants=6,
                     graphs=tuple(catalog), kernels=("lcc",),
                     seed=9, update_mix=0.3), catalog)

    def sharded(c):
        return ShardedGraphStore(c, nshards=4, nranks=4)

    requests = annotate_shard_sets(requests, sharded(catalog))
    obs = Observation.enabled()
    outcome = AsyncServingEngine(
        catalog,
        AsyncServeConfig(nranks=4, threads=2, pool_capacity=3, workers=4),
        scheduler=FIFOScheduler(), store_factory=sharded,
        observation=obs).serve(requests)
    return outcome, obs, requests


def test_chrome_trace_structure(traced):
    _, obs, _ = traced
    doc = chrome_trace(obs.tracer.spans, label="test trace")
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    assert any(e["name"] == "process_name" for e in meta)
    assert any(e["name"] == "thread_name" for e in meta)
    complete = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    assert complete and instants
    for e in complete:
        assert e["dur"] > 0
        assert e["ts"] >= 0
    # The document must be plain JSON (what chrome://tracing loads).
    json.dumps(doc)


def test_chrome_trace_rows_are_workers(traced):
    _, obs, _ = traced
    doc = chrome_trace(obs.tracer.spans)
    tids = {e["tid"] for e in doc["traceEvents"] if e["ph"] != "M"}
    workers = {s.worker for s in obs.tracer.spans if s.worker is not None}
    assert tids <= workers | {0}


def test_chrome_trace_instants_for_zero_duration():
    tracer = SpanTracer()
    tracer.emit("commit", cat="store", t0=1.0, t1=1.0, worker=0, graph="g")
    doc = chrome_trace(tracer.spans)
    (event,) = [e for e in doc["traceEvents"] if e["ph"] not in ("M",)]
    assert event["ph"] == "i"
    assert event["args"]["graph"] == "g"


def test_utilization_domains_split_by_shard_set(traced):
    outcome, _, requests = traced
    report = utilization_report(outcome.records, outcome.update_records,
                                requests=requests, workers=4)
    domains = report["domains"]
    # Queries land in whole-graph domains; annotated updates in
    # graph[s0,...] domains.
    assert any("[" not in key for key in domains)
    assert any("[" in key for key in domains)
    n_queries = sum(r["n_queries"] for r in domains.values())
    n_updates = sum(r["n_updates"] for r in domains.values())
    assert n_queries == len(outcome.records)
    assert n_updates == len(outcome.update_records)
    for row in domains.values():
        assert 0.0 <= row["busy_fraction"] <= 1.0 + 1e-9
        assert "utilization" in row
    json.dumps(report)


def test_utilization_overall_is_concurrency_profile(traced):
    outcome, _, requests = traced
    report = utilization_report(outcome.records, outcome.update_records,
                                requests=requests)
    assert report["overall"] == concurrency_profile(
        outcome.records, outcome.update_records)
    assert report["makespan_s"] > 0


def test_utilization_empty_run():
    report = utilization_report([], [])
    assert report["makespan_s"] == 0.0
    assert report["domains"] == {}
