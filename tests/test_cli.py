"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main


class TestDatasets:
    def test_lists_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "livejournal" in out
        assert "rmat-s21-ef16" in out


class TestInfo:
    def test_dataset_info(self, capsys):
        assert main(["info", "skitter", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "vertices" in out
        assert "degree_max" in out

    def test_info_json(self, capsys):
        assert main(["info", "skitter", "--scale", "0.2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["vertices"] > 0

    def test_input_file(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n0 2\n")
        assert main(["info", "--input", str(path)]) == 0
        assert "vertices" in capsys.readouterr().out

    def test_missing_graph_rejected(self):
        with pytest.raises(SystemExit):
            main(["info"])


class TestLcc:
    def test_lcc_run(self, capsys):
        assert main(["lcc", "skitter", "--scale", "0.2",
                     "--nranks", "4"]) == 0
        out = capsys.readouterr().out
        assert "simulated_time" in out
        assert "global_triangles" in out

    def test_lcc_cached_json(self, capsys):
        assert main(["lcc", "skitter", "--scale", "0.2", "--nranks", "4",
                     "--cache", "degree", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["hit_rate"] >= 0

    def test_lcc_top_and_output(self, tmp_path, capsys):
        out_file = tmp_path / "scores.npy"
        assert main(["lcc", "skitter", "--scale", "0.2", "--nranks", "2",
                     "--top", "3", "--json", "--output", str(out_file)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["top_lcc_vertices"]) == 3
        scores = np.load(out_file)
        assert scores.shape[0] == payload["vertices"]


class TestTc:
    @pytest.mark.parametrize("algorithm", ["async", "async-2d", "tric",
                                           "disttc", "mapreduce"])
    def test_all_algorithms_agree(self, algorithm, capsys):
        assert main(["tc", "skitter", "--scale", "0.15", "--nranks", "4",
                     "--algorithm", algorithm, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["triangles"] > 0

    def test_triangle_counts_consistent(self, capsys):
        counts = set()
        for algorithm in ("async", "tric", "mapreduce"):
            main(["tc", "skitter", "--scale", "0.15", "--nranks", "4",
                  "--algorithm", algorithm, "--json"])
            counts.add(json.loads(capsys.readouterr().out)["triangles"])
        assert len(counts) == 1


class TestKernels:
    def test_lists_every_registered_kernel(self, capsys):
        from repro.session import kernel_names

        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        for name in kernel_names():
            assert name in out
        assert "resident" in out  # traits are shown

    def test_square_grid_trait_listed(self, capsys):
        # The SUMMA kernels advertise their grid-shape requirement.
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        for line in out.splitlines():
            name = line.split()[0] if line.split() else ""
            if name in ("tc2d_spgemm", "lcc2d"):
                assert "square-grid" in line, line
            elif name == "tc2d":
                assert "square-grid" not in line, line

    def test_run_unknown_kernel_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "skitter", "--scale", "0.2", "--kernel", "nope"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_run_unknown_dataset_rejected(self):
        from repro.utils.errors import ConfigError

        with pytest.raises(ConfigError, match="unknown dataset"):
            main(["run", "no-such-dataset", "--kernel", "lcc"])

    def test_run_without_graph_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--kernel", "lcc"])


class TestServe:
    ARGS = ["serve", "--queries", "24", "--rate", "3000", "--tenants", "6",
            "--catalog-scale", "0.2", "--pool-capacity", "2"]

    def test_serve_both_schedulers_json(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["queries"] == 24
        assert payload["results_identical"] is True
        assert payload["fifo_n_queries"] == 24
        assert payload["affinity_n_queries"] == 24
        assert payload["throughput_ratio"] > 0

    def test_serve_single_scheduler_text(self, capsys):
        assert main(self.ARGS + ["--scheduler", "affinity",
                                 "--skew", "uniform"]) == 0
        out = capsys.readouterr().out
        assert "affinity_throughput_qps" in out
        assert "results_identical" not in out

    def test_serve_bench_writes_gated_report(self, tmp_path, capsys):
        from repro.analysis.serving import SERVE_REPORT_KEYS, check_serve_report

        out_file = tmp_path / "BENCH_serve.json"
        assert main(["serve", "--quick", "--bench", str(out_file)]) == 0
        report = json.loads(out_file.read_text())
        for key in SERVE_REPORT_KEYS:
            assert key in report
        assert check_serve_report(report) == []
        out = capsys.readouterr().out
        assert "affinity/fifo throughput" in out

    def test_serve_bench_rejects_customization_flags(self, tmp_path):
        """The recorded benchmark is pinned; one-off flags must not be
        silently ignored when writing a baseline."""
        with pytest.raises(SystemExit, match="--pool-capacity"):
            main(["serve", "--bench", str(tmp_path / "x.json"),
                  "--quick", "--pool-capacity", "5"])

    def test_serve_rejects_bad_pool(self):
        from repro.utils.errors import ConfigError

        with pytest.raises(ConfigError, match="capacity"):
            main(self.ARGS[:1] + ["--pool-capacity", "0"])


class TestBench:
    def test_bench_json_round_trip(self, tmp_path, capsys):
        from repro.analysis.benchreport import REPORT_KEYS, check_report

        out_file = tmp_path / "BENCH_kernels.json"
        assert main(["bench", "--quick", "--json", str(out_file)]) == 0
        assert out_file.exists()
        report = json.loads(out_file.read_text())
        for key in REPORT_KEYS:
            assert key in report
        check_report(report)  # raises on any non-finite value
        assert report["quick"] is True
        # Every kernel × graph cell records wall clock + simulated time.
        assert report["kernels"]
        for row in report["kernels"].values():
            assert row["wall_clock_s"] > 0
            assert row["simulated_time_s"] > 0
        # The cached-replay section proves the fast path stayed exact.
        assert report["cached_replay"]
        for row in report["cached_replay"].values():
            assert row["bit_identical"] is True
            assert row["warm_speedup"] > 0
        out = capsys.readouterr().out
        assert "batched replay" in out

    def test_bench_check_passes_against_lenient_baseline(self, tmp_path,
                                                         capsys,
                                                         monkeypatch):
        self._patch_canned_bench(monkeypatch, warm=8.0)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"cached_replay": {
            "lcc:full": {"warm_speedup": 8.0, "bit_identical": True},
            "tc:full": {"warm_speedup": 12.0, "bit_identical": True},
        }}))
        out_file = tmp_path / "fresh.json"
        assert main(["bench", "--quick", "--json", str(out_file),
                     "--check", str(baseline)]) == 0
        assert "bench check OK" in capsys.readouterr().err
        assert out_file.exists()

    def test_bench_check_fails_on_regression(self, tmp_path, capsys,
                                             monkeypatch):
        self._patch_canned_bench(monkeypatch, warm=0.5)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"cached_replay": {
            "lcc:full": {"warm_speedup": 8.0, "bit_identical": True},
        }}))
        assert main(["bench", "--quick", "--json",
                     str(tmp_path / "fresh.json"),
                     "--check", str(baseline),
                     "--check-tolerance", "0.5"]) == 1
        err = capsys.readouterr().err
        assert "bench check FAILED" in err
        assert "fell below" in err

    def test_bench_check_same_path_reads_baseline_before_writing(
            self, tmp_path, capsys, monkeypatch):
        """--json defaults to the baseline path; the gate must compare
        against the *previous* contents, not the just-written report."""
        self._patch_canned_bench(monkeypatch, warm=0.5)
        path = tmp_path / "BENCH_kernels.json"
        path.write_text(json.dumps({"cached_replay": {
            "lcc:full": {"warm_speedup": 8.0, "bit_identical": True},
        }}))
        assert main(["bench", "--quick", "--json", str(path),
                     "--check", str(path),
                     "--check-tolerance", "0.5"]) == 1
        assert "bench check FAILED" in capsys.readouterr().err

    @staticmethod
    def _patch_canned_bench(monkeypatch, warm):
        """Replace the (slow) bench run with a canned report."""
        import repro.analysis.benchreport as br

        canned = {
            "schema_version": br.SCHEMA_VERSION, "quick": True,
            "nranks": 8, "threads": 4,
            "grid_nranks": br.BENCH_GRID_NRANKS, "graphs": {},
            "linalg": {"tc2d_spgemm:quick": {
                "warm_wall_clock_loop_s": 0.2,
                "warm_wall_clock_spgemm_s": 0.2 / max(warm, 4.0),
                "warm_speedup": max(warm, 4.0), "bit_identical": True,
                "global_triangles": 1, "nranks": br.BENCH_GRID_NRANKS}},
            "kernels": {"lcc:quick": {
                "wall_clock_s": 0.1, "simulated_time_s": 0.01,
                "global_triangles": 1, "adj_hit_rate": None,
                "offsets_hit_rate": None}},
            "cached_replay": {"lcc:quick": {
                "cold_wall_clock_loop_s": 0.2,
                "cold_wall_clock_batched_s": 0.1, "cold_speedup": 2.0,
                "warm_wall_clock_loop_s": 0.2,
                "warm_wall_clock_batched_s": 0.2 / warm,
                "warm_speedup": warm, "bit_identical": True,
                "adj_hit_rate": 0.9, "offsets_hit_rate": 0.9},
                "tc:quick": {
                "cold_wall_clock_loop_s": 0.2,
                "cold_wall_clock_batched_s": 0.1, "cold_speedup": 2.0,
                "warm_wall_clock_loop_s": 0.2,
                "warm_wall_clock_batched_s": 0.2 / warm,
                "warm_speedup": warm, "bit_identical": True,
                "adj_hit_rate": 0.9, "offsets_hit_rate": 0.9}},
        }
        monkeypatch.setattr(br, "run_bench", lambda quick=False: canned)


class TestBenchTrajectory:
    def test_row_appended_next_to_report(self, tmp_path, capsys, monkeypatch):
        TestBench._patch_canned_bench(monkeypatch, warm=8.0)
        out_file = tmp_path / "BENCH_kernels.json"
        traj = tmp_path / "BENCH_trajectory.json"
        assert main(["bench", "--quick", "--json", str(out_file)]) == 0
        data = json.loads(traj.read_text())
        assert len(data["rows"]) == 1
        row = data["rows"][0]
        assert row["quick"] is True
        assert row["min_warm_speedups"]["lcc"] == 8.0
        assert row["date"]
        # A second run appends, never overwrites.
        assert main(["bench", "--quick", "--json", str(out_file)]) == 0
        assert len(json.loads(traj.read_text())["rows"]) == 2

    def test_explicit_path_and_opt_out(self, tmp_path, monkeypatch):
        TestBench._patch_canned_bench(monkeypatch, warm=8.0)
        traj = tmp_path / "history.json"
        assert main(["bench", "--quick", "--json",
                     str(tmp_path / "r.json"), "--trajectory",
                     str(traj)]) == 0
        assert len(json.loads(traj.read_text())["rows"]) == 1
        assert main(["bench", "--quick", "--json",
                     str(tmp_path / "r.json"), "--no-trajectory"]) == 0
        assert len(json.loads(traj.read_text())["rows"]) == 1

    def test_non_trajectory_file_rejected(self, tmp_path, monkeypatch):
        TestBench._patch_canned_bench(monkeypatch, warm=8.0)
        traj = tmp_path / "not_a_trajectory.json"
        traj.write_text(json.dumps({"rows": "oops"}))
        with pytest.raises(ValueError, match="trajectory"):
            main(["bench", "--quick", "--json", str(tmp_path / "r.json"),
                  "--trajectory", str(traj)])


class TestUpdate:
    def test_one_off_update_json(self, capsys):
        assert main(["update", "skitter", "--scale", "0.2", "--nranks", "4",
                     "--edges", "10", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["edges_inserted"] + payload["edges_deleted"] > 0
        assert payload["incremental_matches_query"] is True
        assert payload["invalidated_entries"] > 0
        assert payload["retained_entries"] > 0

    def test_update_bench_writes_gated_report(self, tmp_path, capsys):
        from repro.analysis.dynamic import (
            DYNAMIC_REPORT_KEYS,
            check_dynamic_report,
        )

        out_file = tmp_path / "BENCH_dynamic.json"
        assert main(["update", "--quick", "--bench", str(out_file)]) == 0
        report = json.loads(out_file.read_text())
        for key in DYNAMIC_REPORT_KEYS:
            assert key in report
        assert check_dynamic_report(report) == []
        out = capsys.readouterr().out
        assert "incremental" in out
        assert "answers identical: True" in out

    def test_update_bench_check_against_committed_baseline(self, tmp_path,
                                                           capsys):
        out_file = tmp_path / "fresh.json"
        assert main(["update", "--quick", "--bench", str(out_file),
                     "--check", "BENCH_dynamic.json"]) == 0
        assert "dynamic check OK" in capsys.readouterr().err

    def test_update_bench_check_fails_on_regression(self, tmp_path, capsys,
                                                    monkeypatch):
        import repro.analysis.dynamic as dyn

        canned = {
            "schema_version": 1, "quick": True, "nranks": 8, "threads": 4,
            "graphs": {}, "update_edges": 12,
            "incremental": {"g": {
                "speedup": 1.5, "bit_identical": True, "n_affected": 1,
                "n_vertices": 10, "incremental_wall_s": 1.0,
                "full_wall_s": 1.5, "edges_inserted": 1, "edges_deleted": 0}},
            "invalidation": {"g": {
                "warm_hit_rate": 0.9, "post_update_hit_rate": 0.7,
                "cold_hit_rate": 0.5, "retained_warm_hits": 5,
                "invalidated_entries": 3, "retained_entries": 4,
                "touched_ranks": 1, "update_time_s": 0.0,
                "post_update_bit_identical": True}},
            "serving": {"results_identical": True, "n_requests": 4,
                        "n_updates": 1, "update_mix": 0.25,
                        "throughput_ratio": 1.1, "schedulers": {}},
        }
        monkeypatch.setattr(dyn, "run_dynamic_bench",
                            lambda quick=False: canned)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(
            {"incremental": {"g": {"speedup": 8.0}}}))
        assert main(["update", "--quick", "--bench",
                     str(tmp_path / "fresh.json"),
                     "--check", str(baseline)]) == 1
        assert "dynamic check FAILED" in capsys.readouterr().err


class TestStore:
    def test_one_off_store_json(self, capsys):
        assert main(["store", "skitter", "--scale", "0.2", "--nranks", "9",
                     "--edges", "10", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"].endswith("@v1")
        assert payload["post_update_matches_rebuild"] is True
        assert payload["warm_matches_cold"] is True
        assert payload["warm_speedup"] > 1.0

    def test_store_bench_writes_gated_report(self, tmp_path, capsys):
        from repro.analysis.store import STORE_REPORT_KEYS, check_store_report

        out_file = tmp_path / "BENCH_store.json"
        assert main(["store", "--quick", "--bench", str(out_file)]) == 0
        report = json.loads(out_file.read_text())
        for key in STORE_REPORT_KEYS:
            assert key in report
        assert check_store_report(report) == []
        out = capsys.readouterr().out
        assert "resident tc2d" in out
        assert "histories identical: True" in out

    def test_store_bench_check_against_committed_baseline(self, tmp_path,
                                                          capsys):
        out_file = tmp_path / "fresh.json"
        assert main(["store", "--quick", "--bench", str(out_file),
                     "--check", "BENCH_store.json"]) == 0
        assert "store check OK" in capsys.readouterr().err

    def test_store_bench_check_fails_on_regression(self, tmp_path, capsys,
                                                   monkeypatch):
        import repro.analysis.store as sto

        canned = {
            "schema_version": 1, "quick": True, "nranks": 9, "threads": 4,
            "graphs": {},
            "tc2d": {"g": {
                "rebuild_warm_wall_s": 1.0, "resident_warm_wall_s": 0.4,
                "warm_speedup": 2.5, "bit_identical": True,
                "global_triangles": 1, "simulated_time_s": 0.0,
                "grid_builds": 1, "nranks": 9}},
            "versions": {"results_identical": True,
                         "version_histories_identical": True,
                         "n_requests": 4, "n_updates": 1, "update_mix": 0.3,
                         "final_versions": {}, "schedulers": {
                             "fifo": {"updates_coalesced": 0,
                                      "rekeyed_entries": 0,
                                      "warm_fraction": 0.5},
                             "affinity": {"updates_coalesced": 0,
                                          "rekeyed_entries": 0,
                                          "warm_fraction": 0.5}}},
            "delete_heavy": {"serving": {"results_identical": True},
                             "g": {"rounds": 2, "delete_fraction": 0.8,
                                   "edges_before": 10, "edges_after": 5,
                                   "bit_identical": True,
                                   "collapsed_below_min_degree": 0}},
        }
        monkeypatch.setattr(sto, "run_store_bench",
                            lambda quick=False: canned)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"tc2d": {"g": {
            "warm_speedup": 100.0}}}))
        assert main(["store", "--quick", "--bench",
                     str(tmp_path / "fresh.json"),
                     "--check", str(baseline)]) == 1
        assert "store check FAILED" in capsys.readouterr().err

    def test_store_bench_rejects_customization_flags(self, tmp_path):
        with pytest.raises(SystemExit, match="--edges"):
            main(["store", "--bench", str(tmp_path / "x.json"), "--quick",
                  "--edges", "50"])
        with pytest.raises(SystemExit, match="dataset"):
            main(["store", "skitter", "--bench", str(tmp_path / "x.json"),
                  "--quick"])

    def test_check_without_bench_rejected(self):
        with pytest.raises(SystemExit, match="--bench"):
            main(["store", "skitter", "--check", "BENCH_store.json"])


class TestShard:
    @staticmethod
    def _patch_canned_shard(monkeypatch, scaling=2.0, **overrides):
        """Replace the (slow) shard bench with a canned passing report."""
        import repro.analysis.shard as shd

        canned = {
            "schema_version": shd.SHARD_SCHEMA_VERSION, "quick": True,
            "nranks": 8, "nshards": 4, "replicas": 3, "threads": 4,
            "graphs": {},
            "bit_identity": {"g": {
                "rounds": 4, "nshards": 4, "multi_shard_commits": 3,
                "heads_identical": True, "kernels_checked": 6,
                "kernels_identical": True, "version_vector": [3, 3, 3, 3],
                "version_vector_ok": True, "final_version": 4}},
            "read_scaling": {
                "n_queries": 36, "replicas": 3, "throughput_1_qps": 500.0,
                "throughput_n_qps": 500.0 * scaling,
                "read_scaling": scaling, "digests_identical": True,
                "replica_counts": {"r0": 12, "r1": 12, "r2": 12}},
            "updates": {
                "serving": {
                    "n_requests": 32, "n_updates": 8,
                    "multi_shard_updates": 4, "results_identical": True,
                    "matches_unsharded_queries": True, "schedulers": {}},
                "g": {"edges_per_batch": 8, "single_shard_wall_s": 0.001,
                      "cross_shard_wall_s": 0.002,
                      "cross_to_single_latency": 2.0,
                      "cross_shards_touched_mean": 4.0,
                      "version_vector_ok": True}},
            "failover": {
                "n_queries": 36, "killed_replica": "r1", "kill_at_qid": 12,
                "rejoin_at_qid": 24, "digests_identical": True,
                "reseeds": 1, "rejoined_converged": True,
                "throughput_plain_qps": 1000.0,
                "throughput_faulted_qps": 900.0,
                "replica_counts_faulted": {}},
            "replication": {"g": {
                "commits": 4, "replicas": 3, "converged": True,
                "divergence_detected": True, "healed": True,
                "converged_after_heal": True, "reseeds": 1}},
        }
        canned.update(overrides)
        monkeypatch.setattr(shd, "run_shard_bench",
                            lambda quick=False, graphs=None: canned)

    def test_one_off_shard_json(self, capsys):
        assert main(["shard", "skitter", "--scale", "0.2", "--nranks", "8",
                     "--nshards", "4", "--edges", "10", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["bit_identical"] is True
        assert payload["version_vector_ok"] is True
        assert payload["replicas_converged"] is True
        assert payload["version"].endswith("@v1")

    def test_shard_bench_writes_gated_report(self, tmp_path, capsys,
                                             monkeypatch):
        from repro.analysis.shard import SHARD_REPORT_KEYS, check_shard_report

        self._patch_canned_shard(monkeypatch)
        out_file = tmp_path / "BENCH_shard.json"
        assert main(["shard", "--quick", "--bench", str(out_file)]) == 0
        report = json.loads(out_file.read_text())
        for key in SHARD_REPORT_KEYS:
            assert key in report
        assert check_shard_report(report) == []
        out = capsys.readouterr().out
        assert "sharded == unsharded" in out
        assert "failover" in out

    def test_shard_bench_check_against_baseline(self, tmp_path, capsys,
                                                monkeypatch):
        self._patch_canned_shard(monkeypatch)
        baseline = tmp_path / "baseline.json"
        self._patch_canned_shard(monkeypatch)
        assert main(["shard", "--quick", "--bench", str(baseline),
                     "--no-trajectory"]) == 0
        assert main(["shard", "--quick", "--bench",
                     str(tmp_path / "fresh.json"), "--check",
                     str(baseline), "--no-trajectory"]) == 0
        assert "shard check OK" in capsys.readouterr().err

    def test_shard_bench_check_fails_on_regression(self, tmp_path, capsys,
                                                   monkeypatch):
        self._patch_canned_shard(monkeypatch, scaling=8.0)
        baseline = tmp_path / "baseline.json"
        assert main(["shard", "--quick", "--bench", str(baseline),
                     "--no-trajectory"]) == 0
        self._patch_canned_shard(monkeypatch, scaling=1.6)
        assert main(["shard", "--quick", "--bench",
                     str(tmp_path / "fresh.json"), "--check",
                     str(baseline), "--no-trajectory"]) == 1
        err = capsys.readouterr().err
        assert "shard check FAILED" in err
        assert "fell below" in err

    def test_failed_check_records_no_trajectory_row(self, tmp_path,
                                                    monkeypatch):
        self._patch_canned_shard(monkeypatch, scaling=8.0)
        baseline = tmp_path / "baseline.json"
        assert main(["shard", "--quick", "--bench", str(baseline),
                     "--no-trajectory"]) == 0
        self._patch_canned_shard(monkeypatch, scaling=1.6)
        assert main(["shard", "--quick", "--bench",
                     str(tmp_path / "fresh.json"), "--check",
                     str(baseline)]) == 1
        assert not (tmp_path / "BENCH_trajectory.json").exists()

    def test_trajectory_row_appended(self, tmp_path, monkeypatch):
        self._patch_canned_shard(monkeypatch)
        out_file = tmp_path / "BENCH_shard.json"
        assert main(["shard", "--quick", "--bench", str(out_file)]) == 0
        data = json.loads((tmp_path / "BENCH_trajectory.json").read_text())
        assert len(data["rows"]) == 1
        assert data["rows"][0]["kind"] == "shard"
        assert data["rows"][0]["read_scaling"] == 2.0

    def test_shard_bench_rejects_customization_flags(self, tmp_path):
        with pytest.raises(SystemExit, match="--nshards"):
            main(["shard", "--bench", str(tmp_path / "x.json"), "--quick",
                  "--nshards", "8"])
        with pytest.raises(SystemExit, match="dataset"):
            main(["shard", "skitter", "--bench", str(tmp_path / "x.json"),
                  "--quick"])

    def test_check_without_bench_rejected(self):
        with pytest.raises(SystemExit, match="--bench"):
            main(["shard", "skitter", "--check", "BENCH_shard.json"])


class TestAsyncServe:
    @staticmethod
    def _patch_canned_async(monkeypatch, speedup=2.0, **overrides):
        """Replace the (slow) async bench with a canned passing report."""
        import repro.analysis.async_serve as asv

        canned = {
            "schema_version": asv.ASYNC_SCHEMA_VERSION, "quick": True,
            "nranks": 8, "threads": 4, "workers": 6,
            "steady": {
                "n_requests": 48, "results_identical": True,
                "p99_serial_s": 0.02, "p99_async_s": 0.01,
                "p99_ratio": 0.5, "serial": {}, "async": {}},
            "burst": {
                "n_requests": 48, "disjoint_updates": 9,
                "results_identical": True,
                "throughput_serial_qps": 800.0,
                "throughput_async_qps": 800.0 * speedup,
                "throughput_ratio": speedup,
                "p99_serial_s": 0.05, "p99_async_s": 0.03,
                "serial": {}, "async": {"overlap_fraction": 0.7}},
            "backpressure": {
                "n_requests": 40, "defer_identical": True,
                "n_deferred": 12, "shed_deterministic": True,
                "n_rejected": 8, "rejected_absent_from_digests": True,
                "deferred_keep_arrival_accounting": True,
                "defer": {}, "shed": {}},
            "interleavings": {
                "n_requests": 32, "seeds": [0, 1, 2, 3],
                "identical": {"0": True, "1": True, "2": True, "3": True},
                "all_identical": True, "overlap_fraction_min": 0.4},
        }
        canned.update(overrides)
        monkeypatch.setattr(asv, "run_async_bench",
                            lambda quick=False: canned)

    def test_one_off_async_json(self, capsys):
        assert main(["async-serve", "--queries", "24", "--tenants", "4",
                     "--workers", "3", "--update-mix", "0.25",
                     "--catalog-scale", "0.2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["results_identical"] is True
        assert payload["workers"] == 3
        assert payload["async"]["max_concurrency"] >= 1

    def test_async_bench_writes_gated_report(self, tmp_path, capsys,
                                             monkeypatch):
        from repro.analysis.async_serve import (
            ASYNC_REPORT_KEYS,
            check_async_report,
        )

        self._patch_canned_async(monkeypatch)
        out_file = tmp_path / "BENCH_async.json"
        assert main(["async-serve", "--quick", "--bench",
                     str(out_file)]) == 0
        report = json.loads(out_file.read_text())
        for key in ASYNC_REPORT_KEYS:
            assert key in report
        assert check_async_report(report) == []
        out = capsys.readouterr().out
        assert "answers identical: True" in out
        assert "interleaving" in out

    def test_async_bench_check_against_baseline(self, tmp_path, capsys,
                                                monkeypatch):
        self._patch_canned_async(monkeypatch)
        baseline = tmp_path / "baseline.json"
        assert main(["async-serve", "--quick", "--bench", str(baseline),
                     "--no-trajectory"]) == 0
        assert main(["async-serve", "--quick", "--bench",
                     str(tmp_path / "fresh.json"), "--check",
                     str(baseline), "--no-trajectory"]) == 0
        assert "async check OK" in capsys.readouterr().err

    def test_async_bench_check_fails_on_regression(self, tmp_path, capsys,
                                                   monkeypatch):
        self._patch_canned_async(monkeypatch, speedup=8.0)
        baseline = tmp_path / "baseline.json"
        assert main(["async-serve", "--quick", "--bench", str(baseline),
                     "--no-trajectory"]) == 0
        self._patch_canned_async(monkeypatch, speedup=1.6)
        assert main(["async-serve", "--quick", "--bench",
                     str(tmp_path / "fresh.json"), "--check",
                     str(baseline), "--no-trajectory"]) == 1
        err = capsys.readouterr().err
        assert "async check FAILED" in err
        assert "fell below" in err

    def test_failed_check_records_no_trajectory_row(self, tmp_path,
                                                    monkeypatch):
        self._patch_canned_async(monkeypatch, speedup=8.0)
        baseline = tmp_path / "baseline.json"
        assert main(["async-serve", "--quick", "--bench", str(baseline),
                     "--no-trajectory"]) == 0
        self._patch_canned_async(monkeypatch, speedup=1.6)
        assert main(["async-serve", "--quick", "--bench",
                     str(tmp_path / "fresh.json"), "--check",
                     str(baseline)]) == 1
        assert not (tmp_path / "BENCH_trajectory.json").exists()

    def test_trajectory_row_appended(self, tmp_path, monkeypatch):
        self._patch_canned_async(monkeypatch)
        out_file = tmp_path / "BENCH_async.json"
        assert main(["async-serve", "--quick", "--bench",
                     str(out_file)]) == 0
        data = json.loads((tmp_path / "BENCH_trajectory.json").read_text())
        assert len(data["rows"]) == 1
        assert data["rows"][0]["kind"] == "async"
        assert data["rows"][0]["burst_speedup"] == 2.0

    def test_async_bench_rejects_customization_flags(self, tmp_path):
        with pytest.raises(SystemExit, match="--workers"):
            main(["async-serve", "--bench", str(tmp_path / "x.json"),
                  "--quick", "--workers", "2"])

    def test_check_without_bench_rejected(self):
        with pytest.raises(SystemExit, match="--bench"):
            main(["async-serve", "--check", "BENCH_async.json"])

    def test_bad_overflow_rejected(self):
        with pytest.raises(SystemExit):
            main(["async-serve", "--overflow", "drop"])


class TestBaselineErrors:
    """--check must fail fast, nonzero, with a one-line reason."""

    def test_missing_baseline_one_line_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["shard", "--quick", "--bench", str(tmp_path / "f.json"),
                  "--check", str(tmp_path / "nope.json")])
        msg = str(exc.value)
        assert "does not exist" in msg and "\n" not in msg
        # Nothing ran, nothing was written.
        assert not (tmp_path / "f.json").exists()

    def test_corrupt_baseline_one_line_error(self, tmp_path):
        bad = tmp_path / "corrupt.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit) as exc:
            main(["store", "--quick", "--bench", str(tmp_path / "f.json"),
                  "--check", str(bad)])
        msg = str(exc.value)
        assert "not valid JSON" in msg and "\n" not in msg
        assert not (tmp_path / "f.json").exists()

    @pytest.mark.parametrize("cmd", ["bench", "update", "store", "shard",
                                     "async-serve"])
    def test_every_gated_command_fails_fast(self, cmd, tmp_path):
        flag = "--json" if cmd == "bench" else "--bench"
        with pytest.raises(SystemExit, match="does not exist"):
            main([cmd, "--quick", flag, str(tmp_path / "f.json"),
                  "--check", str(tmp_path / "missing.json")])


class TestRound2Guards:
    def test_failed_bench_check_records_no_trajectory_row(self, tmp_path,
                                                          monkeypatch):
        TestBench._patch_canned_bench(monkeypatch, warm=0.5)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"cached_replay": {
            "lcc:full": {"warm_speedup": 8.0, "bit_identical": True},
        }}))
        assert main(["bench", "--quick", "--json", str(tmp_path / "f.json"),
                     "--check", str(baseline),
                     "--check-tolerance", "0.5"]) == 1
        assert not (tmp_path / "BENCH_trajectory.json").exists()

    def test_update_bench_rejects_customization_flags(self, tmp_path):
        with pytest.raises(SystemExit, match="--edges"):
            main(["update", "--bench", str(tmp_path / "x.json"), "--quick",
                  "--edges", "50"])
        with pytest.raises(SystemExit, match="dataset"):
            main(["update", "skitter", "--bench", str(tmp_path / "x.json"),
                  "--quick"])
