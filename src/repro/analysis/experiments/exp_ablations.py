"""Ablations for the design choices DESIGN.md calls out.

Not figures from the paper, but the knobs the paper discusses in prose:

* **double buffering** (Section III-A) — overlap on/off;
* **block vs cyclic 1D partitioning** (Section III-A cites cyclic as the
  balanced alternative it chose not to use);
* **adaptive tuning** (Section III-B1: why initial sizes matter);
* **DistTC-style precompute** (Section I's scalability criticism);
* **TriC wedge-volume growth** — the mechanism behind the paper's "up to
  100x on scale-free graphs": TriC's query volume grows quadratically in
  hub degree while the async design's read volume grows linearly.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import Table
from repro.baselines.disttc import DistTCConfig, run_disttc
from repro.baselines.tric import TricConfig, run_tric
from repro.core.config import CacheSpec, LCCConfig
from repro.core.lcc import run_distributed_lcc
from repro.graph.datasets import load_dataset
from repro.graph.generators import rmat


def ablate_overlap(scale: float, seed: int) -> Table:
    g = load_dataset("rmat-s21-ef16", scale=scale, seed=seed)
    t = Table(["nodes", "overlap on (s)", "overlap off (s)", "gain"],
              title="Ablation: double buffering (Section III-A)")
    for p in (4, 16, 64):
        on = run_distributed_lcc(g, LCCConfig(nranks=p, threads=12,
                                              overlap=True))
        off = run_distributed_lcc(g, LCCConfig(nranks=p, threads=12,
                                               overlap=False))
        t.add_row(p, round(on.time, 4), round(off.time, 4),
                  f"{(1 - on.time / off.time):.1%}")
    return t


def ablate_partition(scale: float, seed: int) -> Table:
    g = load_dataset("orkut", scale=scale, seed=seed)
    t = Table(["nodes", "block (s)", "cyclic (s)", "block imbalance",
               "cyclic imbalance"],
              title="Ablation: 1D block vs cyclic partitioning")
    for p in (8, 32):
        blk = run_distributed_lcc(g, LCCConfig(nranks=p, threads=12,
                                               partition="block"))
        cyc = run_distributed_lcc(g, LCCConfig(nranks=p, threads=12,
                                               partition="cyclic"))
        t.add_row(p, round(blk.time, 4), round(cyc.time, 4),
                  f"{blk.outcome.load_imbalance:.2%}",
                  f"{cyc.outcome.load_imbalance:.2%}")
    return t


def ablate_adaptive(scale: float, seed: int) -> Table:
    from repro.clampi.adaptive import AdaptiveConfig

    g = load_dataset("rmat-s20-ef16", scale=scale, seed=seed)
    t = Table(["C_adj slots seed", "adaptive", "time (s)", "hit rate",
               "resizes"],
              title="Ablation: adaptive hash-table tuning (Section III-B1)")
    cap = max(4096, g.adjacency.nbytes // 4)
    for adaptive in (None, AdaptiveConfig(check_interval=1024)):
        spec = CacheSpec(offsets_bytes=0, adj_bytes=cap)
        cfg = LCCConfig(nranks=8, threads=12, cache=CacheSpec(
            offsets_bytes=0, adj_bytes=cap, adaptive=adaptive))
        res = run_distributed_lcc(g, cfg)
        stats = res.adj_cache_stats
        t.add_row("heuristic", "on" if adaptive else "off",
                  round(res.time, 4), f"{stats['hit_rate']:.3f}",
                  int(stats["flushes"]))
    return t


def ablate_disttc(scale: float, seed: int) -> Table:
    g = load_dataset("rmat-s21-ef16", scale=scale, seed=seed)
    t = Table(["nodes", "total (s)", "precompute (s)", "count (s)",
               "precompute share"],
              title="Ablation: DistTC-style shadow-edge precompute")
    for p in (4, 16, 64):
        res = run_disttc(g, DistTCConfig(nranks=p))
        t.add_row(p, round(res.time, 4), round(res.precompute_time, 4),
                  round(res.count_time, 4),
                  f"{res.precompute_time / res.time:.1%}")
    return t


def tric_volume_growth(scale: float, seed: int) -> Table:
    """The quadratic-volume mechanism behind the paper's 100x claim."""
    t = Table(
        ["R-MAT scale", "async fetch words", "tric query words",
         "ratio", "tric/async time"],
        title=("Ablation: TriC wedge volume vs async fetch volume "
               "(grows with hub degree -> the paper's 100x at S21+)"),
    )
    for s in (9, 11, 13):
        g = rmat(s, 16, seed=seed)
        p = 8
        async_res = run_distributed_lcc(g, LCCConfig(nranks=p, threads=12))
        tric_res = run_tric(g, TricConfig(nranks=p))
        async_words = async_res.outcome.total("bytes_remote") / 4
        tric_words = (tric_res.outcome.total("bytes_sent")) / 4
        t.add_row(f"S{s}", int(async_words), int(tric_words),
                  f"{tric_words / max(async_words, 1):.2f}",
                  f"{tric_res.time / async_res.time:.1f}x")
    return t


def ablate_2d_partition(scale: float, seed: int) -> Table:
    """1D vs 2D distribution (the paper's future-work direction i)."""
    from repro.core.tc import run_distributed_tc
    from repro.core.tc2d import run_distributed_tc_2d
    from repro.graph.partition2d import (
        communication_peers_1d,
        communication_peers_2d,
    )

    g = load_dataset("rmat-s21-ef16", scale=scale, seed=seed)
    t = Table(["nodes", "1D time (s)", "2D time (s)", "1D gets", "2D gets",
               "1D peers/rank", "2D peers/rank"],
              title="Ablation: 1D vs 2D distribution for global TC "
                    "(future work i)")
    for p in (16, 64):
        one = run_distributed_tc(g, LCCConfig(nranks=p, threads=12))
        two = run_distributed_tc_2d(g, LCCConfig(nranks=p, threads=12))
        assert one.global_triangles == two.global_triangles
        t.add_row(p, round(one.time, 4), round(two.time, 4),
                  one.outcome.total("n_remote_gets"),
                  two.outcome.total("n_remote_gets"),
                  round(communication_peers_1d(g, p), 1),
                  round(communication_peers_2d(p), 1))
    return t


def ablate_score_policies(scale: float, seed: int) -> Table:
    """Extended eviction scores (future work iii)."""
    from repro.clampi.scores_ext import EXTENDED_POLICIES
    from repro.clampi.wrapper import degree_app_score
    from repro.core.lcc import setup_distributed

    g = load_dataset("rmat-s20-ef16", scale=scale, seed=seed)
    cap = max(4096, g.adjacency.nbytes // 4)
    t = Table(["policy", "time (s)", "C_adj hit rate", "evictions"],
              title="Ablation: application-specific score policies "
                    "(future work iii), C_adj = 25% of adjacency")
    policies = {"default": None, "degree": None}
    names = ["default", "degree"] + sorted(EXTENDED_POLICIES)
    for name in names:
        spec = CacheSpec(offsets_bytes=0, adj_bytes=cap,
                         score="default")  # placeholder, replaced below
        config = LCCConfig(nranks=8, threads=12, cache=spec)
        engine, dist, _, adj_caches = setup_distributed(g, config)
        if name not in ("default", "degree"):
            # Swap in the extended policy on every rank's cache.
            policy_cls = EXTENDED_POLICIES[name]
            for cache in adj_caches:
                cache.config.score_policy = policy_cls()
                if cache.config.score_policy.uses_app_score:
                    cache.config.app_score_fn = degree_app_score
        elif name == "degree":
            from repro.clampi.scores import AppScorePolicy

            for cache in adj_caches:
                cache.config.score_policy = AppScorePolicy()
                cache.config.app_score_fn = degree_app_score
        from repro.core.lcc import _lcc_rank_fn
        from repro.core.threading import OpenMPModel

        import numpy as np

        omp = OpenMPModel(threads=12, compute=config.compute)
        tpv = np.zeros(g.n, dtype=np.int64)
        lcc = np.zeros(g.n)
        outcome = engine.run(_lcc_rank_fn(dist, config, omp, tpv, lcc))
        from repro.clampi.stats import CacheStats

        merged = CacheStats()
        for cache in adj_caches:
            merged.merge(cache.stats)
        t.add_row(name, round(outcome.time, 4),
                  f"{merged.hit_rate:.3f}", merged.evictions)
    return t


def seed_stability(scale: float, seed: int) -> Table:
    """LibLSB-style reporting: median + 95% CI over seeds (paper IV-A).

    The simulator is deterministic per seed; across seeds the graph sample
    varies, which is the analogue of the paper's repeated executions.
    """
    from repro.analysis.statistics import repeat_over_seeds
    from repro.graph.datasets import load_dataset as _load

    t = Table(["config", "median time (s)", "95% CI", "CI half-width"],
              title="Measurement methodology: median and 95% CI over 7 seeds")
    for label, p in [("lcc p=8", 8), ("lcc p=32", 32)]:
        def run_one(s: int) -> float:
            g = _load("rmat-s21-ef16", scale=scale, seed=s)
            return run_distributed_lcc(
                g, LCCConfig(nranks=p, threads=12)).time

        ci = repeat_over_seeds(run_one, seeds=range(7))
        t.add_row(label, round(ci.median, 4),
                  f"[{ci.lo:.4f}, {ci.hi:.4f}]",
                  f"{ci.half_width_fraction:.1%}")
    return t


def run(scale: float = 1.0, seed: int = 0, fast: bool = False) -> list[Table]:
    if fast:
        return [ablate_overlap(0.5, seed)]
    return [
        ablate_overlap(scale, seed),
        ablate_partition(scale, seed),
        ablate_adaptive(scale, seed),
        ablate_disttc(scale, seed),
        tric_volume_growth(scale, seed),
        ablate_2d_partition(scale, seed),
        ablate_score_policies(scale, seed),
        seed_stability(scale, seed),
    ]


def main() -> None:
    for table in run():
        print(table.render())
        print()


if __name__ == "__main__":
    main()
