"""Partition-aligned shard geometry for one logical graph.

A :class:`ShardPlan` cuts an ``n``-vertex graph into ``nshards``
contiguous vertex ranges whose boundaries are **snapped to resident
-cluster boundaries**: either the 1D rank partition
(:class:`~repro.graph.partition.BlockPartition1D` — every serving rank's
range lands inside exactly one shard) or the 2D grid's block rows
(:class:`~repro.graph.partition2d.GridPartition2D` — every block row of
the ``tc2d`` grid lands inside one shard).  That alignment is the whole
point: a resident ``Cluster1D`` / ``GridCluster2D`` acquisition never
straddles shards, so shard-local storage and rank-local compute agree on
where data lives.

Why grouping, not re-dividing: ``BlockPartition1D(n, nshards)``
boundaries are generally *not* a subset of ``BlockPartition1D(n,
nranks)`` boundaries (``n=10, nranks=4`` puts starts at ``[0, 3, 6, 8,
10]`` while 2 shards would want ``[0, 5, 10]``).  So a plan is built by
**grouping whole rank ranges** — ``nranks`` must divide into
``nshards`` even groups — which makes the subset property structural
instead of accidental.

The plan also owns the bit-identity machinery:

* :meth:`slice_shard` — one shard's rows of a global CSR, kept in
  global vertex ids (offsets flat outside the owned range, ``directed=
  True`` because a row slice of an undirected graph is not symmetric);
* :meth:`assemble` — concatenate shard slices back into the global CSR.
  Because slices partition the rows and CSR adjacency is
  row-major, assembly is exact: the assembled bytes equal the unsharded
  graph's bytes, which is what the sharded store's digest proof checks;
* :meth:`split_batch` — split an :class:`~repro.dynamic.delta
  .UpdateBatch` into per-shard sub-batches by the *source* vertex of
  each stored-form key (an undirected batch carries both directions, so
  each direction lands on the shard owning its row).
"""

from __future__ import annotations

import numpy as np

from repro.dynamic.delta import UpdateBatch
from repro.graph.csr import CSRGraph, OFFSET_DTYPE, VERTEX_DTYPE
from repro.graph.partition import BlockPartition1D
from repro.graph.partition2d import GridPartition2D
from repro.utils.errors import PartitionError

__all__ = ["ShardPlan"]


class ShardPlan:
    """Contiguous vertex ranges, snapped to a resident partitioning.

    Build with :meth:`align_1d` (group 1D rank ranges) or
    :meth:`align_2d` (group the 2D grid's block rows); the raw
    constructor accepts explicit boundary starts for tests and tools.
    """

    def __init__(self, n: int, starts: np.ndarray):
        starts = np.asarray(starts, dtype=np.int64)
        if starts.ndim != 1 or starts.shape[0] < 2:
            raise PartitionError(
                f"shard starts must be a 1D array of >= 2 boundaries, "
                f"got shape {starts.shape}")
        if starts[0] != 0 or starts[-1] != n:
            raise PartitionError(
                f"shard starts must run 0..{n}, got "
                f"[{int(starts[0])}..{int(starts[-1])}]")
        if np.any(np.diff(starts) < 0):
            raise PartitionError("shard starts must be non-decreasing")
        self.n = int(n)
        self._starts = starts

    # -- construction --------------------------------------------------------
    @classmethod
    def align_1d(cls, n: int, nranks: int, nshards: int) -> "ShardPlan":
        """Shards as groups of contiguous 1D rank ranges.

        Requires ``nshards`` to divide ``nranks``: shard ``s`` owns the
        ranges of ranks ``[s*k, (s+1)*k)`` with ``k = nranks //
        nshards``, so every rank's vertex range lies inside one shard.
        """
        cls._check_divides(nranks, nshards, "nranks")
        part = BlockPartition1D(n, nranks)
        k = nranks // nshards
        return cls(n, part._starts[::k])

    @classmethod
    def align_2d(cls, n: int, nranks: int, nshards: int) -> "ShardPlan":
        """Shards as groups of the 2D grid's block rows.

        Requires ``nshards`` to divide the grid's row count (for a
        square grid of ``nranks = r*r``, that is ``r``), so every
        ``tc2d`` block row — and with it every grid rank's row range —
        lies inside one shard.
        """
        grid = GridPartition2D(n, nranks)
        cls._check_divides(grid.rows, nshards,
                           f"the {grid.rows}x{grid.cols} grid's row count")
        k = grid.rows // nshards
        return cls(n, grid._row_starts[::k])

    @staticmethod
    def _check_divides(parts: int, nshards: int, what: str) -> None:
        if nshards < 1:
            raise PartitionError(f"need >= 1 shard, got {nshards}")
        if parts % nshards != 0:
            raise PartitionError(
                f"{nshards} shards must evenly group {what} ({parts}); "
                "boundaries would otherwise straddle resident clusters")

    # -- geometry ------------------------------------------------------------
    @property
    def nshards(self) -> int:
        return self._starts.shape[0] - 1

    @property
    def starts(self) -> np.ndarray:
        """Boundary starts, ``[0, ..., n]`` (read-only view)."""
        return self._starts

    def range_of(self, shard: int) -> tuple[int, int]:
        """Half-open global-id range owned by ``shard``."""
        if not (0 <= shard < self.nshards):
            raise PartitionError(
                f"shard {shard} out of range [0, {self.nshards})")
        return int(self._starts[shard]), int(self._starts[shard + 1])

    def shard_of(self, v: int) -> int:
        """Shard owning vertex ``v``."""
        if not (0 <= v < self.n):
            raise PartitionError(f"vertex {v} out of range [0, {self.n})")
        return int(np.searchsorted(self._starts, v, side="right") - 1)

    def owners(self, vs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`shard_of`."""
        return np.searchsorted(self._starts, np.asarray(vs),
                               side="right") - 1

    def aligns_with(self, starts) -> bool:
        """Is every shard boundary also a boundary of ``starts``?

        ``starts`` is a partition's boundary array (e.g. ``BlockPartition
        1D._starts``); True means no range of that partition straddles a
        shard boundary — resident acquisition stays shard-local.
        """
        return bool(np.isin(self._starts, np.asarray(starts)).all())

    # -- update routing ------------------------------------------------------
    def touched_shards(self, batch: UpdateBatch) -> frozenset:
        """Shards whose rows the batch's stored-form keys touch."""
        self._check_batch(batch)
        keys = np.concatenate([batch.insert_keys, batch.delete_keys])
        if keys.size == 0:
            return frozenset()
        return frozenset(int(s) for s in
                         np.unique(self.owners(keys // self.n)))

    def split_batch(self, batch: UpdateBatch) -> dict[int, UpdateBatch]:
        """Per-shard sub-batches, keyed by touched shard id.

        Stored-form keys are ``u * n + v`` sorted ascending, so each
        shard's keys form one contiguous segment at the key boundaries
        ``start[s] * n``.  Sub-batches are **directed** batches over the
        full vertex universe — exactly what the shard's directed row
        slice applies — and an untouched shard gets no entry at all.
        """
        self._check_batch(batch)
        out: dict[int, UpdateBatch] = {}
        bounds = self._starts * np.int64(self.n)
        empty = np.empty(0, dtype=np.int64)
        ins_cuts = np.searchsorted(batch.insert_keys, bounds)
        del_cuts = np.searchsorted(batch.delete_keys, bounds)
        for s in range(self.nshards):
            ins = batch.insert_keys[ins_cuts[s]:ins_cuts[s + 1]]
            dels = batch.delete_keys[del_cuts[s]:del_cuts[s + 1]]
            if ins.size == 0 and dels.size == 0:
                continue
            out[s] = UpdateBatch(n=batch.n, directed=True,
                                 insert_keys=ins if ins.size else empty,
                                 delete_keys=dels if dels.size else empty)
        return out

    def _check_batch(self, batch: UpdateBatch) -> None:
        if batch.n != self.n:
            raise PartitionError(
                f"batch over {batch.n} vertices does not match the "
                f"plan's {self.n}")

    # -- slicing / assembly --------------------------------------------------
    def slice_shard(self, graph: CSRGraph, shard: int) -> CSRGraph:
        """One shard's rows of ``graph``, in global ids over all ``n``.

        Offsets are flat (degree 0) outside the owned range, so the
        slice is a standalone CSR any update machinery can apply
        sub-batches to.  The slice is ``directed=True`` regardless of
        the logical graph: a row range of an undirected CSR is not
        symmetric, and keeping stored-form direction is what makes
        per-shard application exact.
        """
        if graph.n != self.n:
            raise PartitionError(
                f"graph with {graph.n} vertices does not match the "
                f"plan's {self.n}")
        lo, hi = self.range_of(shard)
        offsets = np.zeros(self.n + 1, dtype=OFFSET_DTYPE)
        base = graph.offsets[lo]
        offsets[lo:hi + 1] = graph.offsets[lo:hi + 1] - base
        offsets[hi + 1:] = offsets[hi]
        adjacency = np.ascontiguousarray(
            graph.adjacency[base:graph.offsets[hi]], dtype=VERTEX_DTYPE)
        name = f"{graph.name}:shard{shard}" if graph.name else f"shard{shard}"
        return CSRGraph(offsets, adjacency, directed=True, name=name)

    def assemble(self, slices: list[CSRGraph], *, directed: bool,
                 name: str | None = None) -> CSRGraph:
        """Concatenate per-shard slices back into the global CSR.

        The inverse of :meth:`slice_shard` applied to every shard: row
        degrees concatenate in shard order (ranges partition ``[0,
        n)``), adjacency segments concatenate likewise.  Applying a
        batch per-shard and assembling yields bytes identical to
        applying the whole batch to the unsharded graph — the invariant
        the sharded store's commit digest proves on every apply.
        """
        if len(slices) != self.nshards:
            raise PartitionError(
                f"expected {self.nshards} slices, got {len(slices)}")
        degrees, parts = [], []
        for s, piece in enumerate(slices):
            if piece.n != self.n:
                raise PartitionError(
                    f"slice {s} covers {piece.n} vertices, expected {self.n}")
            lo, hi = self.range_of(s)
            degrees.append(piece.offsets[lo + 1:hi + 1] - piece.offsets[lo:hi])
            parts.append(piece.adjacency[piece.offsets[lo]:piece.offsets[hi]])
        offsets = np.zeros(self.n + 1, dtype=OFFSET_DTYPE)
        if degrees:
            np.cumsum(np.concatenate(degrees), out=offsets[1:])
        adjacency = (np.concatenate(parts) if parts
                     else np.empty(0, dtype=VERTEX_DTYPE))
        return CSRGraph(offsets, np.ascontiguousarray(adjacency,
                                                      dtype=VERTEX_DTYPE),
                        directed=directed, name=name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        ranges = ", ".join(f"[{int(a)},{int(b)})" for a, b in
                           zip(self._starts[:-1], self._starts[1:]))
        return f"ShardPlan(n={self.n}, {ranges})"
