"""Deterministic random-number management.

Every stochastic component in the library (graph generators, random
relabeling, workload shuffling) receives an explicit ``numpy.random
.Generator``.  Determinism is a hard requirement: the whole experimental
harness must produce bit-identical results for a given seed so that
paper-reproduction tables are stable across runs.
"""

from __future__ import annotations


import numpy as np

#: Seed used by the experiment harness when the user does not supply one.
DEFAULT_SEED: int = 0xC1A0


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a ``Generator`` from a seed, passing generators through.

    Accepting an already-constructed generator lets internal helpers thread
    a single RNG through a pipeline without re-seeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` statistically independent child generators.

    Used to give each simulated rank its own RNG stream so per-rank behaviour
    does not depend on rank execution order.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    ss = np.random.SeedSequence(DEFAULT_SEED if seed is None else seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def derive_seed(seed: int | None, *labels: str | int) -> int:
    """Derive a stable sub-seed from a base seed and a label path.

    This keeps experiments independent: changing the seed usage in one
    experiment does not perturb the random stream of another.

    >>> derive_seed(1, "fig9", "orkut", 4) == derive_seed(1, "fig9", "orkut", 4)
    True
    >>> derive_seed(1, "fig9") != derive_seed(1, "fig10")
    True
    """
    base = DEFAULT_SEED if seed is None else int(seed)
    mask = (1 << 64) - 1
    h = (base * 0x9E3779B97F4A7C15) & mask
    for label in labels:
        for byte in str(label).encode():
            h = ((h ^ byte) * 0x100000001B3) & mask
    return h % (1 << 63)
