"""Experiment runner: regenerate every table and figure.

Usage::

    python -m repro.analysis.runner --all
    python -m repro.analysis.runner --exp fig9 fig7 --scale 0.5
    python -m repro.analysis.runner --all --markdown -o results.md
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis.experiments import ALL_EXPERIMENTS


def run_experiments(names: list[str], scale: float, seed: int, fast: bool,
                    markdown: bool, out=None) -> None:
    # Resolve stdout at call time (it may be captured/replaced by tests).
    out = out if out is not None else sys.stdout
    for name in names:
        module = ALL_EXPERIMENTS[name]
        start = time.perf_counter()
        tables = module.run(scale=scale, seed=seed, fast=fast)
        elapsed = time.perf_counter() - start
        header = f"==== {name} ({elapsed:.1f}s wall) ===="
        print(header, file=out)
        for table in tables:
            print(table.render_markdown() if markdown else table.render(),
                  file=out)
            print(file=out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("--exp", nargs="*", default=[],
                        choices=sorted(ALL_EXPERIMENTS),
                        help="experiments to run")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="dataset scale multiplier")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--fast", action="store_true",
                        help="trimmed sweeps (smoke test)")
    parser.add_argument("--markdown", action="store_true",
                        help="emit markdown tables")
    parser.add_argument("-o", "--output", default=None,
                        help="write to a file instead of stdout")
    args = parser.parse_args(argv)

    names = list(ALL_EXPERIMENTS) if args.all else args.exp
    if not names:
        parser.error("pass --all or --exp <name>...")

    if args.output:
        with open(args.output, "w") as fh:
            run_experiments(names, args.scale, args.seed, args.fast,
                            args.markdown, out=fh)
    else:
        run_experiments(names, args.scale, args.seed, args.fast,
                        args.markdown)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
