"""Async-serving benchmarks: cooperative scheduling overhead and overlap.

Wall-clock timings of the cooperative runtime itself.  The
simulated-clock numbers (steady p99 ceiling, burst throughput floor,
backpressure determinism, the interleaving parity battery) are recorded
per PR in ``BENCH_async.json`` by ``repro async-serve --bench``; here we
watch the real cost of the event loop — a bursty disjoint-update mix
driven through the cooperative engine vs the serial engine on the same
requests, and one full parity round including the oracle comparison.
"""

import pytest

from repro.serve import (
    AsyncServeConfig,
    AsyncServingEngine,
    FIFOScheduler,
    InterleaveScheduler,
    ServeConfig,
    ServingEngine,
    answers_identical,
    default_catalog,
    generate_workload,
)
from repro.serve.workload import WorkloadSpec
from repro.shardstore import ShardedGraphStore, annotate_shard_sets

NRANKS = 8
NSHARDS = 4
WORKERS = 6


@pytest.fixture(scope="module")
def catalog():
    return default_catalog(scale=0.25)


@pytest.fixture(scope="module")
def burst_requests(catalog):
    spec = WorkloadSpec(
        n_queries=64, arrival_rate=2500.0, n_tenants=10,
        graphs=tuple(catalog), kernels=("lcc", "tc"), seed=17,
        update_mix=0.35, update_edges=8).bursty(factor=8.0, fraction=0.5)
    requests = generate_workload(spec, catalog)
    store = ShardedGraphStore(catalog, nshards=NSHARDS, nranks=NRANKS)
    return annotate_shard_sets(requests, store)


def _sharded(c):
    return ShardedGraphStore(c, nshards=NSHARDS, nranks=NRANKS)


def test_cooperative_burst(benchmark, catalog, burst_requests):
    """Full event loop on the disjoint-update burst: the overlap path."""
    config = AsyncServeConfig(nranks=NRANKS, pool_capacity=4,
                              workers=WORKERS)

    def run():
        engine = AsyncServingEngine(catalog, config, FIFOScheduler(),
                                    store_factory=_sharded)
        return engine.serve(burst_requests)

    outcome = benchmark.pedantic(run, iterations=1, rounds=5)
    assert (len(outcome.records) + len(outcome.update_records)
            == len(burst_requests))
    assert outcome.aggregates["max_concurrency"] > 1


def test_serial_burst(benchmark, catalog, burst_requests):
    """The serial baseline the cooperative loop's overhead is judged by."""
    config = ServeConfig(nranks=NRANKS, pool_capacity=4)

    def run():
        engine = ServingEngine(catalog, config, FIFOScheduler(),
                               store_factory=_sharded)
        return engine.serve(burst_requests)

    outcome = benchmark.pedantic(run, iterations=1, rounds=5)
    assert (len(outcome.records) + len(outcome.update_records)
            == len(burst_requests))


def test_interleaving_parity_round(benchmark, catalog):
    """One parity round: seeded interleaving + oracle digest comparison."""
    spec = WorkloadSpec(
        n_queries=40, arrival_rate=2000.0, n_tenants=8,
        graphs=tuple(catalog), kernels=("lcc",), seed=23, update_mix=0.3)
    requests = generate_workload(spec, catalog)
    serial = ServingEngine(
        catalog, ServeConfig(nranks=NRANKS, pool_capacity=4),
        FIFOScheduler()).serve(requests)
    config = AsyncServeConfig(nranks=NRANKS, pool_capacity=4,
                              workers=WORKERS)

    def run():
        coop = AsyncServingEngine(
            catalog, config, InterleaveScheduler(seed=5)).serve(requests)
        return answers_identical(serial, coop)

    identical = benchmark.pedantic(run, iterations=1, rounds=5)
    assert identical
