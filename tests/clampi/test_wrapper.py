"""Tests for the cache-attachment helpers and sizing heuristics."""

import numpy as np
import pytest

from repro.clampi.scores import AppScorePolicy
from repro.clampi.wrapper import (
    adjacency_hash_slots,
    attach_adjacency_caches,
    attach_offset_caches,
    degree_app_score,
    offsets_hash_slots,
)
from repro.runtime.engine import Engine
from repro.runtime.window import Window


class TestSizingHeuristics:
    def test_offsets_slots_one_per_entry(self):
        assert offsets_hash_slots(16 * 1000, 16) == 1000

    def test_offsets_slots_floor(self):
        assert offsets_hash_slots(16, 16) == 64  # never below the minimum

    def test_adjacency_slots_power_law(self):
        n = 100_000
        full = adjacency_hash_slots(1000, 1000, n)        # cache == graph
        half = adjacency_hash_slots(500, 1000, n)         # half the graph
        assert full == n
        assert half == pytest.approx(n * 0.25, rel=0.01)  # 0.5**2

    def test_adjacency_slots_clamped_to_one(self):
        n = 1000
        # Cache bigger than the graph: relative size clamps at 1.
        assert adjacency_hash_slots(5000, 1000, n) == n

    def test_degree_app_score_is_length(self):
        data = np.arange(17)
        assert degree_app_score(1, 0, 17, data) == 17.0


class TestAttachment:
    def make_engine_window(self):
        eng = Engine(2)
        win = eng.windows.add(Window(
            "adjacencies",
            [np.arange(64, dtype=np.int32), np.arange(64, dtype=np.int32)],
        ))
        win.lock_all(0)
        win.lock_all(1)
        return eng, win

    def test_attach_adjacency_creates_per_rank_caches(self):
        eng, win = self.make_engine_window()
        caches = attach_adjacency_caches(eng.contexts, win, 1024)
        assert len(caches) == 2
        for ctx, cache in zip(eng.contexts, caches):
            assert ctx.cache_for(win) is cache
            assert cache.rank == ctx.rank

    def test_attached_cache_intercepts_gets(self):
        eng, win = self.make_engine_window()
        caches = attach_adjacency_caches(eng.contexts, win, 1024)
        eng.contexts[0].get(win, 1, 0, 8)
        eng.contexts[0].get(win, 1, 0, 8)
        assert caches[0].stats.hits == 1
        assert caches[0].stats.misses == 1
        # Rank 1's cache untouched.
        assert caches[1].stats.accesses == 0

    def test_degree_policy_gets_default_score_fn(self):
        eng, win = self.make_engine_window()
        caches = attach_adjacency_caches(
            eng.contexts, win, 1024, score_policy=AppScorePolicy())
        eng.contexts[0].get(win, 1, 0, 8)
        (entry,) = caches[0].entries()
        assert entry.app_score == 8.0

    def test_attach_offsets(self):
        eng = Engine(2)
        win = eng.windows.add(Window(
            "offsets",
            [np.arange(10, dtype=np.int64), np.arange(10, dtype=np.int64)],
        ))
        win.lock_all(0)
        win.lock_all(1)
        caches = attach_offset_caches(eng.contexts, win, 320)
        assert len(caches) == 2
        eng.contexts[1].get(win, 0, 2, 2)
        assert caches[1].stats.misses == 1
