"""CSR graph representation (paper Figure 2).

``offsets[i]`` is the index in ``adjacency`` where vertex ``i``'s list
starts; ``offsets[n]`` equals ``len(adjacency)``.  Adjacency lists are kept
**sorted** — both intersection kernels require it, and "most graph datasets
are already of this form" (paper Section II-C).

Conventions:

* vertex ids are ``int32`` (adjacency) — the CSR byte sizes then match the
  paper's Table II accounting; offsets are ``int64``;
* an *undirected* graph stores both directions of every edge, so
  ``num_directed_edges = 2 * num_undirected_edges``;
* no self-loops, no multi-edges (enforced on construction).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.utils.errors import GraphFormatError
from repro.utils.rng import make_rng

OFFSET_DTYPE = np.int64
VERTEX_DTYPE = np.int32


def gather_ranges(values: np.ndarray, starts: np.ndarray, lens: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate ``values[s:s+l]`` for every (start, length) pair.

    The vectorized ragged gather used wherever a set of CSR rows must be
    pulled into one array (partition slicing, neighborhood gathers,
    invalidation content checks).  Returns ``(gathered, bounds)`` with
    ``bounds`` of length ``len(starts) + 1`` such that
    ``gathered[bounds[i]:bounds[i+1]]`` is the i-th range.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lens = np.asarray(lens, dtype=np.int64)
    bounds = np.zeros(starts.shape[0] + 1, dtype=np.int64)
    np.cumsum(lens, out=bounds[1:])
    total = int(bounds[-1])
    if total == 0:
        return values[:0], bounds
    idx = (np.arange(total, dtype=np.int64)
           - np.repeat(bounds[:-1], lens) + np.repeat(starts, lens))
    return values[idx], bounds


def _check_vertex_range(n: int) -> None:
    """Reject vertex counts whose ids cannot be stored in VERTEX_DTYPE.

    Without this guard, ids >= 2**31 silently wrap when the adjacency is
    cast to int32 (a wrap to a *positive* id corrupts the graph without
    tripping any CSR invariant).
    """
    limit = int(np.iinfo(VERTEX_DTYPE).max)
    if n - 1 > limit:
        raise GraphFormatError(
            f"vertex id {n - 1} does not fit the int32 adjacency dtype "
            f"(max representable id is {limit})")


class CSRGraph:
    """Immutable CSR graph."""

    __slots__ = ("offsets", "adjacency", "directed", "name")

    def __init__(self, offsets: np.ndarray, adjacency: np.ndarray,
                 directed: bool = False, name: str = "", validate: bool = True):
        self.offsets = np.ascontiguousarray(offsets, dtype=OFFSET_DTYPE)
        self.adjacency = np.ascontiguousarray(adjacency, dtype=VERTEX_DTYPE)
        self.directed = bool(directed)
        self.name = name
        if validate:
            self.check_invariants()

    # -- construction -------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: np.ndarray | Iterable[tuple[int, int]],
        n: int | None = None,
        *,
        directed: bool = False,
        name: str = "",
    ) -> "CSRGraph":
        """Build from an (m, 2) edge array.

        Undirected graphs are symmetrized; self-loops and duplicate edges
        are dropped (the paper considers simple graphs only).
        """
        e = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
        if e.size == 0:
            nv = int(n or 0)
            _check_vertex_range(nv)
            return cls(np.zeros(nv + 1, dtype=OFFSET_DTYPE),
                       np.empty(0, dtype=VERTEX_DTYPE), directed, name)
        if e.ndim != 2 or e.shape[1] != 2:
            raise GraphFormatError(f"edges must be (m, 2), got {e.shape}")
        if e.dtype.kind not in "iu":
            raise GraphFormatError(
                f"edges must be an integer array, got dtype {e.dtype}")
        if e.min() < 0:
            raise GraphFormatError("negative vertex id in edge list")
        nv = int(n if n is not None else e.max() + 1)
        if e.max() >= nv:
            raise GraphFormatError(
                f"vertex id {e.max()} out of range for n={nv}"
            )
        _check_vertex_range(nv)
        src = e[:, 0].astype(np.int64)
        dst = e[:, 1].astype(np.int64)
        keep = src != dst  # drop self-loops
        src, dst = src[keep], dst[keep]
        if not directed:
            src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        # Sort by (src, dst) then dedup.
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        if src.size:
            uniq = np.concatenate([[True], (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])])
            src, dst = src[uniq], dst[uniq]
        counts = np.bincount(src, minlength=nv)
        offsets = np.zeros(nv + 1, dtype=OFFSET_DTYPE)
        np.cumsum(counts, out=offsets[1:])
        return cls(offsets, dst.astype(VERTEX_DTYPE), directed, name)

    # -- geometry --------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self.offsets.shape[0] - 1

    @property
    def num_adjacency_entries(self) -> int:
        """Stored directed edges (2x the undirected edge count)."""
        return int(self.adjacency.shape[0])

    @property
    def m(self) -> int:
        """Number of edges as the paper counts them (undirected: unordered)."""
        stored = self.num_adjacency_entries
        return stored // 2 if not self.directed else stored

    def adj(self, v: int) -> np.ndarray:
        """Sorted adjacency list of ``v`` (zero-copy view)."""
        return self.adjacency[self.offsets[v]:self.offsets[v + 1]]

    def degree(self, v: int) -> int:
        """Out-degree of ``v`` (== degree for undirected graphs)."""
        return int(self.offsets[v + 1] - self.offsets[v])

    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return np.diff(self.offsets)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex (== out-degree when undirected)."""
        if not self.directed:
            return self.degrees()
        return np.bincount(self.adjacency, minlength=self.n).astype(np.int64)

    def has_edge(self, u: int, v: int) -> bool:
        """O(log deg) membership test."""
        lst = self.adj(u)
        i = np.searchsorted(lst, v)
        return bool(i < lst.shape[0] and lst[i] == v)

    @property
    def nbytes(self) -> int:
        """CSR footprint (paper Table II's "CSR Size")."""
        return int(self.offsets.nbytes + self.adjacency.nbytes)

    def edges(self) -> np.ndarray:
        """(stored_edges, 2) array of directed edges (both dirs if undirected)."""
        src = np.repeat(np.arange(self.n, dtype=np.int64), self.degrees())
        return np.column_stack([src, self.adjacency.astype(np.int64)])

    # -- validation -------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise GraphFormatError on malformed CSR."""
        if self.offsets.ndim != 1 or self.offsets.shape[0] < 1:
            raise GraphFormatError("offsets must be 1-D with length n+1 >= 1")
        if self.offsets[0] != 0:
            raise GraphFormatError("offsets[0] must be 0")
        if np.any(np.diff(self.offsets) < 0):
            raise GraphFormatError("offsets must be non-decreasing")
        if self.offsets[-1] != self.adjacency.shape[0]:
            raise GraphFormatError(
                f"offsets[-1]={self.offsets[-1]} != len(adjacency)="
                f"{self.adjacency.shape[0]}"
            )
        if self.adjacency.size:
            if self.adjacency.min() < 0 or self.adjacency.max() >= self.n:
                raise GraphFormatError("adjacency ids out of range")
        # Sortedness + no dup within each list + no self loops (vectorized).
        if self.adjacency.size:
            row_of = np.repeat(np.arange(self.n, dtype=np.int64), self.degrees())
            if np.any(self.adjacency.astype(np.int64) == row_of):
                v = int(row_of[self.adjacency.astype(np.int64) == row_of][0])
                raise GraphFormatError(f"self-loop at vertex {v}")
            if self.adjacency.size > 1:
                same_row = row_of[1:] == row_of[:-1]
                non_increasing = np.diff(self.adjacency.astype(np.int64)) <= 0
                bad = same_row & non_increasing
                if np.any(bad):
                    v = int(row_of[1:][bad][0])
                    raise GraphFormatError(
                        f"adjacency of vertex {v} not strictly sorted"
                    )
        if not self.directed:
            # Spot-check symmetry (full check is O(m log n); sample for speed).
            deg = self.degrees()
            if int(deg.sum()) % 2 != 0:
                raise GraphFormatError("undirected graph has odd adjacency total")

    def check_symmetric(self) -> None:
        """Full O(m) symmetry check (tests only)."""
        e = self.edges()
        fwd = set(map(tuple, e))
        for u, v in e:
            if (v, u) not in fwd:
                raise GraphFormatError(f"missing reverse edge for ({u}, {v})")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "D" if self.directed else "U"
        return (f"CSRGraph(name={self.name!r}, n={self.n}, m={self.m}, "
                f"{kind}, {self.nbytes} B)")


def remove_low_degree_vertices(graph: CSRGraph, min_degree: int = 2) -> CSRGraph:
    """Drop vertices with degree < ``min_degree`` and compact ids.

    The paper removes degree-<2 vertices before distribution ("as they
    cannot be part of any triangle", Section II-B).  A single pass, as in
    the paper — not an iterative k-core.
    """
    deg = graph.degrees()
    if graph.directed:
        deg = deg + graph.in_degrees()
    keep = deg >= min_degree
    if keep.all():
        return graph
    new_id = np.cumsum(keep) - 1
    edges = graph.edges()
    mask = keep[edges[:, 0]] & keep[edges[:, 1]]
    edges = edges[mask]
    remapped = np.column_stack([new_id[edges[:, 0]], new_id[edges[:, 1]]])
    n_new = int(keep.sum())
    if not graph.directed:
        # edges() emitted both directions; keep one to avoid double counting.
        remapped = remapped[remapped[:, 0] < remapped[:, 1]]
    return CSRGraph.from_edges(remapped, n_new, directed=graph.directed,
                               name=graph.name)


def relabel_random(graph: CSRGraph, seed: int | np.random.Generator | None = None
                   ) -> CSRGraph:
    """Apply a random permutation to vertex ids.

    Used when the input is degree-ordered so that 1D partitioning does not
    assign all high-degree vertices to the same rank (paper Section II-B).
    """
    rng = make_rng(seed)
    perm = rng.permutation(graph.n)
    edges = graph.edges()
    remapped = np.column_stack([perm[edges[:, 0]], perm[edges[:, 1]]])
    if not graph.directed:
        remapped = remapped[remapped[:, 0] < remapped[:, 1]]
    return CSRGraph.from_edges(remapped, graph.n, directed=graph.directed,
                               name=graph.name)
