"""Tests for graph I/O."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat
from repro.graph.io import (
    load_csr,
    read_edge_list,
    save_csr,
    write_edge_list,
)
from repro.utils.errors import GraphFormatError


class TestEdgeList:
    def test_roundtrip_undirected(self, tmp_path):
        g = rmat(6, 4, seed=3)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        g2 = read_edge_list(path, n=g.n)
        np.testing.assert_array_equal(g.offsets, g2.offsets)
        np.testing.assert_array_equal(g.adjacency, g2.adjacency)

    def test_roundtrip_directed(self, tmp_path):
        g = CSRGraph.from_edges([(0, 1), (2, 1), (1, 2)], directed=True)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        g2 = read_edge_list(path, directed=True, n=3)
        np.testing.assert_array_equal(g.adjacency, g2.adjacency)

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n% another\n\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.m == 2

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\njunk\n")
        with pytest.raises(GraphFormatError, match="junk"):
            read_edge_list(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_name_from_stem(self, tmp_path):
        path = tmp_path / "mygraph.txt"
        path.write_text("0 1\n")
        assert read_edge_list(path).name == "mygraph"


class TestBinaryCSR:
    def test_roundtrip(self, tmp_path):
        g = rmat(6, 4, seed=3, name="roundtrip")
        path = tmp_path / "g.npz"
        save_csr(g, path)
        g2 = load_csr(path)
        np.testing.assert_array_equal(g.offsets, g2.offsets)
        np.testing.assert_array_equal(g.adjacency, g2.adjacency)
        assert g2.directed == g.directed
        assert g2.name == "roundtrip"

    def test_bad_archive_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(GraphFormatError):
            load_csr(path)
