"""Property-based tests for the buffer allocator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clampi.allocator import BufferAllocator

CAPACITY = 1 << 12

ops = st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(min_value=1, max_value=600)),
        st.tuples(st.just("free"), st.integers(min_value=0, max_value=30)),
    ),
    max_size=250,
)


@given(ops)
@settings(max_examples=150)
def test_allocator_never_overlaps_and_conserves(operations):
    alloc = BufferAllocator(CAPACITY)
    live: list[tuple[int, int]] = []  # (offset, size) in insertion order
    for op, arg in operations:
        if op == "alloc":
            off = alloc.alloc(arg)
            if off is not None:
                # In-bounds.
                assert 0 <= off and off + arg <= CAPACITY
                # No overlap with any live block.
                for o, s in live:
                    assert off + arg <= o or o + s <= off, (
                        f"overlap: [{off},{off+arg}) vs [{o},{o+s})")
                live.append((off, arg))
        else:  # free the arg-th live block, if it exists
            if live:
                off, size = live.pop(arg % len(live))
                assert alloc.free(off) == size
    assert alloc.used_bytes == sum(s for _, s in live)
    assert alloc.free_bytes == CAPACITY - alloc.used_bytes
    alloc.check_invariants()


@given(st.lists(st.integers(min_value=1, max_value=300), max_size=60))
def test_alloc_all_then_free_all_restores_capacity(sizes):
    alloc = BufferAllocator(CAPACITY)
    offsets = []
    for size in sizes:
        off = alloc.alloc(size)
        if off is not None:
            offsets.append(off)
    for off in offsets:
        alloc.free(off)
    assert alloc.free_bytes == CAPACITY
    assert alloc.largest_free_block() == CAPACITY
    assert alloc.n_free_regions() == 1
    alloc.check_invariants()
