"""Bench: regenerate Table II (dataset construction)."""

from conftest import run_once

from repro.analysis.experiments import exp_table2


def test_table2(benchmark):
    tables = run_once(benchmark, exp_table2.run, fast=True)
    assert tables and tables[0].rows
