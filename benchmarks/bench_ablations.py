"""Bench: the design-choice ablations DESIGN.md calls out."""

from conftest import run_once

from repro.analysis.experiments.exp_ablations import (
    ablate_overlap,
    tric_volume_growth,
)
from repro.core.config import LCCConfig
from repro.core.lcc import run_distributed_lcc


def test_overlap_ablation(benchmark):
    table = run_once(benchmark, ablate_overlap, 0.5, 0)
    for row in table.rows:
        assert float(row[1]) <= float(row[2]) * 1.001  # overlap never slower


def test_partition_ablation(benchmark, livejournal_small):
    def run():
        blk = run_distributed_lcc(livejournal_small,
                                  LCCConfig(nranks=8, partition="block"))
        cyc = run_distributed_lcc(livejournal_small,
                                  LCCConfig(nranks=8, partition="cyclic"))
        return blk, cyc

    blk, cyc = benchmark(run)
    # Both correct; report imbalance difference in the timing data.
    assert blk.global_triangles == cyc.global_triangles


def test_tric_volume_mechanism(benchmark):
    table = run_once(benchmark, tric_volume_growth, 1.0, 0)
    ratios = [float(row[3]) for row in table.rows]
    # TriC's relative wire volume grows with graph scale (hub degree).
    assert ratios[-1] > ratios[0]
