"""Figure 7: cache behaviour as a function of cache size.

An R-MAT S20 EF16-class graph on 2 nodes; caching enabled on **one**
window at a time while the other window's reads stay uncached.  The paper
observes:

* ``C_offsets``: miss rate falls ~linearly with cache size (fixed-size
  entries, frequency ~ degree);
* ``C_adj``: miss rate falls like a power law — a small cache already
  captures the hub lists (up to ~30% communication-time saving at small
  sizes; 51.6% when the full window is cached);
* a compulsory-miss floor that no cache size removes (the grey band).
"""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.core.config import CacheSpec, LCCConfig
from repro.core.lcc import run_distributed_lcc
from repro.graph.datasets import load_dataset

RELATIVE_SIZES = [0.05, 0.1, 0.2, 0.4, 0.7, 1.0]


def run(scale: float = 1.0, seed: int = 0, fast: bool = False) -> list[Table]:
    g = load_dataset("rmat-s20-ef16", scale=scale, seed=seed)
    sizes = [0.1, 1.0] if fast else RELATIVE_SIZES
    base_cfg = LCCConfig(nranks=2, threads=12)
    baseline = run_distributed_lcc(g, base_cfg)
    base_comm = baseline.comm_time

    # Full-need capacities: every (start,end) pair / the whole adjacency.
    offsets_full = g.n * 16
    adj_full = g.adjacency.nbytes

    tables = []
    for label, full, which in [("C_offsets", offsets_full, "offsets"),
                               ("C_adj", adj_full, "adj")]:
        t = Table(
            ["relative size", "capacity (B)", "miss rate",
             "compulsory floor", "comm time (s)", "saving vs uncached"],
            title=(f"Figure 7 ({label}): cache-size sweep on {g.name}, "
                   f"2 nodes (uncached comm {base_comm:.3f}s)"),
        )
        for rel in sizes:
            cap = max(64, int(rel * full))
            if which == "offsets":
                spec = CacheSpec(offsets_bytes=cap, adj_bytes=0)
            else:
                spec = CacheSpec(offsets_bytes=0, adj_bytes=cap)
            res = run_distributed_lcc(g, base_cfg.replace(cache=spec))
            stats = (res.offsets_cache_stats if which == "offsets"
                     else res.adj_cache_stats)
            comm = res.comm_time
            t.add_row(rel, cap, f"{stats['miss_rate']:.3f}",
                      f"{stats['compulsory_miss_rate']:.3f}",
                      round(comm, 4),
                      f"{(1 - comm / base_comm):.1%}")
        tables.append(t)
    note = Table(["note"], title="")
    note.add_row(
        "paper shapes: C_offsets miss rate falls ~linearly in size "
        "(reproduced); C_adj falls power-law-like, with caching the full "
        "window saving 51.6% of communication (ours saves ~47% at full "
        "size). In the small-C_adj regime our scaled hubs' lists are a "
        "large fraction of the cache, so the paper's early savings are "
        "granularity-compressed here.")
    tables.append(note)
    return tables


def main() -> None:
    for table in run():
        print(table.render())
        print()


if __name__ == "__main__":
    main()
