"""Schema validation for the committed ``BENCH_*.json`` artifacts.

Every subsystem writes its own report (``BENCH_kernels.json``,
``BENCH_async.json``, ...) and appends condensed rows to the shared
``BENCH_trajectory.json``.  The writers already gate on their own
required-key tuples; this module is the *read-side* check — the one the
``--check`` paths run against committed files, so a baseline that was
hand-edited, truncated by a bad merge, or written by a different repo
fails with a one-line problem string instead of a ``KeyError`` three
stacks deep.

Validators return lists of one-line problem strings (empty = valid)
rather than raising, so callers decide between a ``SystemExit`` (CLI)
and an assertion (tests).  Kind-specific required keys are resolved
lazily from the module that owns them — this file never hard-codes a
second copy of a report schema.
"""

from __future__ import annotations

import json
import math
import os
import re
from importlib import import_module
from typing import Any, List, Mapping, Optional, Sequence

__all__ = [
    "REPORT_KINDS",
    "infer_kind",
    "required_keys",
    "validate_file",
    "validate_report",
    "validate_trajectory",
    "validate_trajectory_row",
    "validate_tree",
]

#: Report kind -> (owning module, required-keys attribute).  The kind is
#: the ``BENCH_<kind>.json`` filename stem; keys resolve lazily so that
#: validating one report never imports every benchmark's dependencies.
REPORT_KINDS = {
    "kernels": ("repro.analysis.benchreport", "REPORT_KEYS"),
    "dynamic": ("repro.analysis.dynamic", "DYNAMIC_REPORT_KEYS"),
    "store": ("repro.analysis.store", "STORE_REPORT_KEYS"),
    "shard": ("repro.analysis.shard", "SHARD_REPORT_KEYS"),
    "serve": ("repro.analysis.serving", "SERVE_REPORT_KEYS"),
    "async": ("repro.analysis.async_serve", "ASYNC_REPORT_KEYS"),
    "trace": ("repro.analysis.tracing", "TRACE_REPORT_KEYS"),
}

_DATE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}$")


def required_keys(kind: str) -> tuple:
    """The top-level keys a ``kind`` report must carry."""
    try:
        module, attr = REPORT_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown report kind {kind!r}; expected one of "
            f"{', '.join(sorted(REPORT_KINDS))}") from None
    return getattr(import_module(module), attr)


def infer_kind(path: str) -> Optional[str]:
    """The report kind a ``BENCH_<kind>.json`` filename claims, if any."""
    stem = os.path.basename(path)
    m = re.match(r"^BENCH_([a-z]+)\.json$", stem)
    if m and m.group(1) in REPORT_KINDS:
        return m.group(1)
    return None


def _check_numbers(node: Any, path: str, problems: List[str]) -> None:
    """Every number in the tree must be finite (JSON can't carry NaN)."""
    if isinstance(node, Mapping):
        for k, v in node.items():
            _check_numbers(v, f"{path}.{k}", problems)
    elif isinstance(node, (list, tuple)):
        for i, v in enumerate(node):
            _check_numbers(v, f"{path}[{i}]", problems)
    elif isinstance(node, float) and not math.isfinite(node):
        problems.append(f"non-finite number at {path}: {node}")


def validate_report(report: Any, kind: Optional[str] = None, *,
                    strict: bool = True) -> List[str]:
    """One report dict against its kind's schema; one-line problems.

    With ``kind=None`` only the kind-agnostic checks run (a dict with a
    positive integer ``schema_version`` and finite numbers throughout).
    ``strict=False`` is the *baseline* mode: ``--check`` baselines are
    allowed to be partial (the regression gates only read the sections
    they compare, and tests pin that leniency), so required keys are
    not enforced and ``schema_version`` may be absent — but anything
    present must still be well-formed.
    """
    if not isinstance(report, Mapping):
        return [f"report is a {type(report).__name__}, not an object"]
    problems: List[str] = []
    version = report.get("schema_version")
    if version is None and not strict:
        pass
    elif not isinstance(version, int) or isinstance(version, bool) \
            or version < 1:
        problems.append(
            f"schema_version must be a positive integer, got {version!r}")
    if kind is not None and strict:
        for key in required_keys(kind):
            if key not in report:
                problems.append(f"{kind} report missing key {key!r}")
    _check_numbers(report, "report", problems)
    return problems


def validate_trajectory_row(row: Any, index: Optional[int] = None
                            ) -> List[str]:
    """One condensed trajectory row: dated, finite, JSON-shaped."""
    where = "row" if index is None else f"row {index}"
    if not isinstance(row, Mapping):
        return [f"{where} is a {type(row).__name__}, not an object"]
    problems: List[str] = []
    date = row.get("date")
    if not isinstance(date, str) or not _DATE_RE.match(date):
        problems.append(
            f"{where}: 'date' must be an ISO date string, got {date!r}")
    kind = row.get("kind")
    if kind is not None and not isinstance(kind, str):
        problems.append(f"{where}: 'kind' must be a string, got {kind!r}")
    if not any(k not in ("date", "kind") for k in row):
        problems.append(f"{where}: carries no measurements")
    _check_numbers(row, where, problems)
    return problems


def validate_trajectory(data: Any) -> List[str]:
    """A whole ``BENCH_trajectory.json`` document."""
    if not isinstance(data, Mapping):
        return [f"trajectory is a {type(data).__name__}, not an object"]
    problems: List[str] = []
    version = data.get("schema_version")
    if not isinstance(version, int) or isinstance(version, bool) \
            or version < 1:
        problems.append(
            f"schema_version must be a positive integer, got {version!r}")
    rows = data.get("rows")
    if not isinstance(rows, list):
        problems.append(
            f"'rows' must be a list, got {type(rows).__name__}")
        return problems
    for i, row in enumerate(rows):
        problems.extend(validate_trajectory_row(row, i))
    return problems


def validate_file(path: str, kind: Optional[str] = None) -> List[str]:
    """Load and validate one committed benchmark artifact.

    ``kind`` defaults to what the filename claims:
    ``BENCH_trajectory.json`` validates as a trajectory, any other
    ``BENCH_<kind>.json`` as that kind's report, and unknown names get
    the kind-agnostic checks only.
    """
    try:
        with open(path) as fh:
            data = json.load(fh)
    except FileNotFoundError:
        return [f"{path}: does not exist"]
    except json.JSONDecodeError as exc:
        return [f"{path}: not valid JSON ({exc})"]
    if os.path.basename(path) == "BENCH_trajectory.json":
        problems = validate_trajectory(data)
    else:
        problems = validate_report(data, kind or infer_kind(path))
    return [f"{path}: {p}" for p in problems]


def validate_tree(paths: Sequence[str]) -> List[str]:
    """Validate several artifacts; problems keep their path prefix."""
    problems: List[str] = []
    for path in paths:
        problems.extend(validate_file(path))
    return problems
