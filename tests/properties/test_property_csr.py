"""Property-based tests for CSR construction and transformations."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph, relabel_random, remove_low_degree_vertices
from repro.graph.partition import BlockPartition1D, CyclicPartition1D, split_csr


@st.composite
def edge_lists(draw):
    n = draw(st.integers(min_value=1, max_value=50))
    m = draw(st.integers(min_value=0, max_value=150))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    return rng.integers(0, n, size=(m, 2)), n


@given(edge_lists())
def test_csr_invariants_always_hold(data):
    edges, n = data
    g = CSRGraph.from_edges(edges, n)
    g.check_invariants()
    g.check_symmetric()


@given(edge_lists())
def test_edge_roundtrip(data):
    edges, n = data
    g = CSRGraph.from_edges(edges, n)
    g2 = CSRGraph.from_edges(g.edges(), n)
    np.testing.assert_array_equal(g.offsets, g2.offsets)
    np.testing.assert_array_equal(g.adjacency, g2.adjacency)


@given(edge_lists(), st.integers(min_value=0, max_value=2**31))
def test_relabel_preserves_degree_multiset_and_triangles(data, seed):
    from repro.core.local import triangle_count_local

    edges, n = data
    g = CSRGraph.from_edges(edges, n)
    g2 = relabel_random(g, seed=seed)
    np.testing.assert_array_equal(np.sort(g.degrees()), np.sort(g2.degrees()))
    assert triangle_count_local(g) == triangle_count_local(g2)


@given(edge_lists())
def test_low_degree_removal_preserves_triangles(data):
    from repro.core.local import triangle_count_local

    edges, n = data
    g = CSRGraph.from_edges(edges, n)
    g2 = remove_low_degree_vertices(g)
    assert triangle_count_local(g2) == triangle_count_local(g)
    # Single-pass semantics (as in the paper): the *input's* low-degree
    # vertices are gone, but removal may expose new degree-1 vertices.
    assert g2.n <= g.n
    g2.check_invariants()


@given(edge_lists(), st.integers(min_value=1, max_value=8),
       st.booleans())
def test_split_csr_partitions_every_entry(data, nranks, cyclic):
    edges, n = data
    g = CSRGraph.from_edges(edges, n)
    part = (CyclicPartition1D if cyclic else BlockPartition1D)(g.n, nranks)
    offsets_parts, adjacency_parts = split_csr(g, part)
    assert sum(a.shape[0] for a in adjacency_parts) == g.num_adjacency_entries
    for r in range(nranks):
        vs = part.local_vertices(r)
        offs = offsets_parts[r]
        assert offs.shape[0] == vs.shape[0] + 1
        for li, v in enumerate(vs):
            np.testing.assert_array_equal(
                adjacency_parts[r][offs[li]:offs[li + 1]], g.adj(int(v)))


@given(st.integers(min_value=1, max_value=200),
       st.integers(min_value=1, max_value=17),
       st.booleans())
def test_partition_is_a_bijection(n, nranks, cyclic):
    part = (CyclicPartition1D if cyclic else BlockPartition1D)(n, nranks)
    seen = set()
    for r in range(nranks):
        for li, v in enumerate(part.local_vertices(r)):
            v = int(v)
            assert part.owner(v) == r
            assert part.to_local(v) == li
            seen.add(v)
    assert seen == set(range(n))
