"""Resumable serving tasks: requests as generators yielding effects.

The cooperative engine does not call blocking functions — it *steps
tasks*.  A task is a Python generator that yields **effect** objects
(the Spawn/Wait idiom: each ``yield`` is a suspension point on the
simulated clock) and receives the effect's outcome back through
``send``.  The runtime decides *when* each effect resolves; the task
only describes *what happens next*:

* a query task acquires its resident session (:class:`Acquire`), runs
  its kernel (:class:`Run` — suspended for the kernel's simulated job
  time), and retires with a :class:`~repro.serve.records.QueryRecord`;
* an update-leader task holds for its coalescing window
  (:class:`Hold` — suspended until the window closes, absorbing rider
  updates that arrive meanwhile), then commits the whole group
  (:class:`Commit` — suspended for the resync's simulated cost) and
  retires with one :class:`~repro.serve.records.UpdateRecord` per group
  member.

Because every interaction with shared state (pool, store, fences) goes
through an effect, the interleaving of tasks is fully owned by the
event loop — which is exactly what lets the property suite drive the
same workload through arbitrary seeded interleavings and compare
answers against the serial oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.serve.records import QueryRecord, UpdateRecord, result_digest
from repro.serve.request import QueryRequest, SessionKey, UpdateRequest
from repro.utils.errors import ConfigError

# -- effects: what a suspended task is waiting on ---------------------------


@dataclass(frozen=True)
class Acquire:
    """Wait for (and pin) the request's resident session."""

    key: SessionKey


@dataclass(frozen=True)
class Run:
    """Execute the query's kernel; suspend for its simulated job time."""

    request: QueryRequest


@dataclass(frozen=True)
class Hold:
    """Hold an admitted update leader open for its coalescing window."""

    request: UpdateRequest


@dataclass(frozen=True)
class Commit:
    """Commit the leader plus its absorbed riders as one store flush."""

    leader: UpdateRequest
    riders: tuple


# -- payloads the runtime sends back into a resumed task --------------------


@dataclass(frozen=True)
class Executed:
    """What a :class:`Run` effect resolved to."""

    result: Any           # the kernel's DistributedRunResult
    version: int          # store version the query observed
    start: float
    finish: float
    wall_s: float
    worker: int
    built_session: bool


@dataclass(frozen=True)
class Committed:
    """What a :class:`Commit` effect resolved to."""

    updates: tuple        # one StoreUpdate per group member, arrival order
    fields: dict          # head-only propagation counters
    start: float          # dispatch time (hold began)
    commit_at: float      # window close (commit began)
    finish: float         # commit_at + simulated resync service
    service_s: float
    wall_s: float
    worker: int


def effect_name(effect) -> str:
    """The decision journal's label for a pending effect.

    The journal's ``dispatch`` events name what the task model is about
    to do (``"acquire"`` for a query, ``"hold"`` for an update leader)
    in the task vocabulary rather than the request vocabulary — the
    suspension point, not the payload.  ``"done"`` labels a completed
    task (never dispatched, but reachable from debug tooling).
    """
    return "done" if effect is None else type(effect).__name__.lower()


class Task:
    """One request's resumable execution state inside the event loop."""

    __slots__ = ("request", "_gen", "effect", "done", "value",
                 "deferred", "queue_steps")

    def __init__(self, request, gen: Iterator):
        self.request = request
        self._gen = gen
        self.effect = None
        self.done = False
        self.value = None
        self.deferred = False     # stamped by admission control
        self.queue_steps = 0      # stamped by the dispatcher

    def start(self) -> None:
        """Advance to the first suspension point."""
        self.effect = next(self._gen)

    def resume(self, payload) -> None:
        """Deliver an effect's outcome; advances to the next suspension
        point or to completion (``done`` + ``value``)."""
        try:
            self.effect = self._gen.send(payload)
        except StopIteration as stop:
            self.effect, self.done, self.value = None, True, stop.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else type(self.effect).__name__
        return f"Task(qid={self.request.qid}, {state})"


def query_task(req: QueryRequest) -> Iterator:
    """The life of a served query, as effects."""
    session, built = yield Acquire(req.session_key)
    del session, built  # the runtime runs the kernel; Acquire pins the key
    done: Executed = yield Run(req)
    stats = done.result.adj_cache_stats
    return QueryRecord(
        qid=req.qid, tenant=req.tenant, graph=req.graph, kernel=req.kernel,
        arrival=req.arrival, start=done.start, finish=done.finish,
        service_s=done.finish - done.start, wall_s=done.wall_s,
        warm_cache=done.result.warm_cache, built_session=done.built_session,
        adj_hit_rate=(None if stats is None else float(stats["hit_rate"])),
        version=done.version, digest=result_digest(done.result, done.version),
        worker=done.worker)


def update_task(req: UpdateRequest) -> Iterator:
    """The life of an update leader: hold, absorb riders, commit."""
    riders = yield Hold(req)
    done: Committed = yield Commit(req, tuple(riders))
    group = (req, *riders)
    if len(done.updates) != len(group):
        raise ConfigError("commit returned a mismatched update group")
    records = []
    for i, (member, upd) in enumerate(zip(group, done.updates)):
        head = i == 0
        records.append(UpdateRecord(
            qid=member.qid, tenant=member.tenant, graph=member.graph,
            arrival=member.arrival,
            start=done.start if head else done.commit_at,
            finish=done.finish,
            service_s=done.service_s if head else 0.0,
            wall_s=done.wall_s if head else 0.0,
            n_inserted=upd.delta.n_inserted, n_deleted=upd.delta.n_deleted,
            version=upd.version.version, digest=upd.digest,
            coalesced=not head, worker=done.worker,
            held_s=done.commit_at - done.start if head else 0.0,
            riders=len(riders) if head else 0,
            **(done.fields if head else {
                "n_affected": int(upd.delta.affected.shape[0]),
                "invalidated_entries": 0,
                "retained_entries": 0,
                "rekeyed_entries": 0,
                "sessions_synced": 0,
            })))
    return records


def make_task(req) -> Task:
    """Wrap a request in its task generator, advanced to the first effect."""
    gen = update_task(req) if req.is_update else query_task(req)
    task = Task(req, gen)
    task.start()
    return task
