"""Shard geometry: alignment, slicing/assembly, batch splitting."""

import numpy as np
import pytest

from repro.dynamic.delta import UpdateBatch, random_update_batch
from repro.graph.generators import powerlaw_configuration
from repro.graph.partition import BlockPartition1D
from repro.graph.partition2d import GridPartition2D
from repro.shardstore import ShardPlan
from repro.utils.errors import PartitionError


@pytest.fixture(scope="module")
def graph():
    return powerlaw_configuration(120, 700, seed=3, name="g")


class TestAlignment:
    @pytest.mark.parametrize("n,nranks,nshards", [
        (100, 8, 4), (100, 8, 2), (100, 8, 8), (10, 4, 2), (7, 6, 3),
    ])
    def test_1d_boundaries_group_whole_rank_ranges(self, n, nranks, nshards):
        plan = ShardPlan.align_1d(n, nranks, nshards)
        assert plan.nshards == nshards
        assert plan.aligns_with(BlockPartition1D(n, nranks)._starts)

    def test_1d_rejects_non_dividing_shards(self):
        with pytest.raises(PartitionError, match="evenly group"):
            ShardPlan.align_1d(100, 8, 3)

    def test_2d_boundaries_group_grid_block_rows(self):
        plan = ShardPlan.align_2d(100, 9, 3)
        assert plan.nshards == 3
        assert plan.aligns_with(GridPartition2D(100, 9)._row_starts)

    def test_2d_rejects_non_dividing_rows(self):
        with pytest.raises(PartitionError, match="row count"):
            ShardPlan.align_2d(100, 9, 2)   # 3x3 grid, 2 does not divide 3

    def test_redividing_would_straddle(self):
        """The motivating counterexample: BlockPartition1D(10, 2) starts
        are not a subset of BlockPartition1D(10, 4) starts — grouping is
        what makes alignment structural."""
        fine = BlockPartition1D(10, 4)._starts        # [0, 3, 6, 8, 10]
        naive = BlockPartition1D(10, 2)._starts       # [0, 5, 10]
        assert not np.isin(naive, fine).all()
        plan = ShardPlan.align_1d(10, 4, 2)
        assert plan.aligns_with(fine)


class TestGeometry:
    def test_raw_ctor_validation(self):
        with pytest.raises(PartitionError, match=">= 2 boundaries"):
            ShardPlan(10, [0])
        with pytest.raises(PartitionError, match="must run 0..10"):
            ShardPlan(10, [0, 5, 9])
        with pytest.raises(PartitionError, match="non-decreasing"):
            ShardPlan(10, [0, 7, 5, 10])

    def test_shard_of_matches_ranges(self):
        plan = ShardPlan.align_1d(50, 4, 2)
        for s in range(plan.nshards):
            lo, hi = plan.range_of(s)
            for v in (lo, hi - 1):
                assert plan.shard_of(v) == s
        np.testing.assert_array_equal(
            plan.owners(np.arange(50)),
            [plan.shard_of(v) for v in range(50)])

    def test_out_of_range_rejected(self):
        plan = ShardPlan.align_1d(50, 4, 2)
        with pytest.raises(PartitionError, match="out of range"):
            plan.range_of(2)
        with pytest.raises(PartitionError, match="out of range"):
            plan.shard_of(50)


class TestSliceAssemble:
    def test_round_trip_is_exact(self, graph):
        plan = ShardPlan.align_1d(graph.n, 8, 4)
        slices = [plan.slice_shard(graph, s) for s in range(4)]
        back = plan.assemble(slices, directed=graph.directed,
                             name=graph.name)
        np.testing.assert_array_equal(back.offsets, graph.offsets)
        np.testing.assert_array_equal(back.adjacency, graph.adjacency)
        assert back.directed == graph.directed

    def test_slices_are_directed_row_ranges(self, graph):
        plan = ShardPlan.align_1d(graph.n, 8, 4)
        piece = plan.slice_shard(graph, 1)
        assert piece.directed is True
        assert piece.n == graph.n
        lo, hi = plan.range_of(1)
        # Degree 0 outside the owned range, original degrees inside.
        degs = np.diff(piece.offsets)
        assert not degs[:lo].any() and not degs[hi:].any()
        np.testing.assert_array_equal(
            degs[lo:hi], np.diff(graph.offsets)[lo:hi])

    def test_mismatched_inputs_rejected(self, graph):
        plan = ShardPlan.align_1d(graph.n, 8, 4)
        with pytest.raises(PartitionError, match="does not match"):
            plan.slice_shard(powerlaw_configuration(30, 60, seed=1), 0)
        with pytest.raises(PartitionError, match="expected 4 slices"):
            plan.assemble([graph], directed=False)


class TestSplitBatch:
    def test_partition_of_stored_keys(self, graph):
        plan = ShardPlan.align_1d(graph.n, 8, 4)
        batch = random_update_batch(graph, n_edges=40, seed=9)
        sub = plan.split_batch(batch)
        assert set(sub) == set(plan.touched_shards(batch))
        for s, piece in sub.items():
            assert piece.directed is True
            lo, hi = plan.range_of(s)
            keys = np.concatenate([piece.insert_keys, piece.delete_keys])
            src = keys // graph.n
            assert (src >= lo).all() and (src < hi).all()
        np.testing.assert_array_equal(
            np.sort(np.concatenate(
                [p.insert_keys for p in sub.values()])),
            batch.insert_keys)
        np.testing.assert_array_equal(
            np.sort(np.concatenate(
                [p.delete_keys for p in sub.values()])),
            batch.delete_keys)

    def test_empty_batch_touches_nothing(self, graph):
        plan = ShardPlan.align_1d(graph.n, 8, 4)
        batch = UpdateBatch.build(None, None, n=graph.n)
        assert plan.split_batch(batch) == {}
        assert plan.touched_shards(batch) == frozenset()

    def test_wrong_universe_rejected(self, graph):
        plan = ShardPlan.align_1d(graph.n, 8, 4)
        with pytest.raises(PartitionError, match="does not match"):
            plan.split_batch(UpdateBatch.build([[0, 1]], None, n=10))
