"""Tests for graph-property helpers."""

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi, powerlaw_configuration, star_graph
from repro.graph.properties import (
    degree_histogram,
    degree_stats,
    gini,
    top_degree_share,
)


class TestGini:
    def test_uniform_is_zero(self):
        assert gini(np.full(100, 7.0)) == pytest.approx(0.0, abs=1e-9)

    def test_extreme_skew_near_one(self):
        values = np.zeros(1000)
        values[0] = 1e6
        assert gini(values) > 0.99

    def test_empty_and_zero(self):
        assert gini(np.array([])) == 0.0
        assert gini(np.zeros(5)) == 0.0

    def test_scale_invariant(self):
        v = np.array([1.0, 2, 3, 10])
        assert gini(v) == pytest.approx(gini(v * 100))


class TestDegreeStats:
    def test_keys_and_values(self):
        g = erdos_renyi(256, 2048, seed=1)
        s = degree_stats(g)
        assert s["min"] <= s["median"] <= s["p99"] <= s["max"]
        assert s["mean"] == pytest.approx(g.degrees().mean())

    def test_histogram_sums_to_n(self):
        g = powerlaw_configuration(512, 4096, seed=1)
        values, counts = degree_histogram(g)
        assert counts.sum() == g.n
        assert np.all(np.diff(values) > 0)


class TestTopDegreeShare:
    def test_star_hub_dominates(self):
        g = star_graph(99)
        # Top 10% (10 vertices) includes the hub: most in-edges point at it.
        assert top_degree_share(g, 0.1) >= 0.5

    def test_share_bounded(self):
        g = erdos_renyi(256, 2048, seed=1)
        assert 0.1 <= top_degree_share(g, 0.1) <= 1.0
