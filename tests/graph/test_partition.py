"""Tests for the partitioning schemes."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat
from repro.graph.partition import (
    BlockPartition1D,
    CyclicPartition1D,
    split_csr,
)
from repro.utils.errors import PartitionError


class TestBlockPartition:
    def test_even_split(self):
        p = BlockPartition1D(16, 4)
        assert p.range_of(0) == (0, 4)
        assert p.range_of(3) == (12, 16)
        assert p.owner(0) == 0
        assert p.owner(5) == 1
        assert p.owner(15) == 3

    def test_uneven_split(self):
        p = BlockPartition1D(10, 4)  # 3,3,2,2
        counts = [p.local_count(r) for r in range(4)]
        assert counts == [3, 3, 2, 2]
        assert sum(counts) == 10

    def test_paper_formula(self):
        # V_k = { v_i : i in ((k-1) n/p, k n/p] } with 1-based k.
        n, p = 64, 8
        part = BlockPartition1D(n, p)
        for k in range(1, p + 1):
            lo, hi = part.range_of(k - 1)
            assert lo == (k - 1) * n // p
            assert hi == k * n // p

    def test_owner_to_local_consistency(self):
        p = BlockPartition1D(100, 7)
        for v in range(100):
            r = p.owner(v)
            li = p.to_local(v)
            assert p.local_vertices(r)[li] == v

    def test_vectorized_matches_scalar(self):
        p = BlockPartition1D(100, 7)
        vs = np.arange(100)
        np.testing.assert_array_equal(p.owners(vs),
                                      [p.owner(v) for v in vs])
        np.testing.assert_array_equal(p.to_local_many(vs),
                                      [p.to_local(v) for v in vs])

    def test_out_of_range_rejected(self):
        p = BlockPartition1D(10, 2)
        with pytest.raises(PartitionError):
            p.owner(10)
        with pytest.raises(PartitionError):
            p.local_vertices(2)

    def test_single_rank(self):
        p = BlockPartition1D(5, 1)
        assert all(p.owner(v) == 0 for v in range(5))


class TestCyclicPartition:
    def test_round_robin(self):
        p = CyclicPartition1D(10, 3)
        assert [p.owner(v) for v in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_local_indexing(self):
        p = CyclicPartition1D(10, 3)
        np.testing.assert_array_equal(p.local_vertices(1), [1, 4, 7])
        assert p.to_local(7) == 2

    def test_balances_degree_ordered_hubs(self):
        # Build an explicitly degree-ordered graph (id 0 = highest degree),
        # the input class the paper says needs relabeling or cyclic
        # distribution: block then piles all hubs onto rank 0.
        import numpy as np

        from repro.graph.csr import CSRGraph
        from repro.graph.generators import powerlaw_configuration

        g0 = powerlaw_configuration(512, 4096, seed=1)
        order = np.argsort(-g0.degrees())          # ids sorted by degree desc
        rank_of = np.empty(g0.n, dtype=np.int64)
        rank_of[order] = np.arange(g0.n)
        e = g0.edges()
        e = e[e[:, 0] < e[:, 1]]
        g = CSRGraph.from_edges(
            np.column_stack([rank_of[e[:, 0]], rank_of[e[:, 1]]]), g0.n)
        deg = g.degrees()
        block = BlockPartition1D(g.n, 4)
        cyclic = CyclicPartition1D(g.n, 4)

        def max_rank_degree_sum(part):
            return max(int(deg[part.local_vertices(r)].sum()) for r in range(4))

        assert max_rank_degree_sum(cyclic) < max_rank_degree_sum(block)

    def test_vectorized_matches_scalar(self):
        p = CyclicPartition1D(50, 4)
        vs = np.arange(50)
        np.testing.assert_array_equal(p.owners(vs), vs % 4)
        np.testing.assert_array_equal(p.to_local_many(vs), vs // 4)


class TestSplitCSR:
    @pytest.mark.parametrize("partition_cls", [BlockPartition1D,
                                               CyclicPartition1D])
    def test_split_preserves_adjacency(self, partition_cls):
        g = rmat(7, 8, seed=2)
        part = partition_cls(g.n, 4)
        offsets_parts, adjacency_parts = split_csr(g, part)
        for r in range(4):
            vs = part.local_vertices(r)
            offs = offsets_parts[r]
            adj = adjacency_parts[r]
            assert offs[0] == 0
            assert offs[-1] == adj.shape[0]
            for li, v in enumerate(vs):
                np.testing.assert_array_equal(
                    adj[offs[li]:offs[li + 1]], g.adj(int(v)),
                    err_msg=f"rank {r} vertex {v}")

    def test_split_covers_all_edges(self):
        g = rmat(7, 8, seed=2)
        part = BlockPartition1D(g.n, 4)
        _, adjacency_parts = split_csr(g, part)
        total = sum(a.shape[0] for a in adjacency_parts)
        assert total == g.num_adjacency_entries

    def test_empty_rank(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        part = BlockPartition1D(g.n, 8)  # more ranks than vertices
        offsets_parts, adjacency_parts = split_csr(g, part)
        assert len(offsets_parts) == 8
        for r in range(3, 8):
            assert adjacency_parts[r].shape[0] == 0
