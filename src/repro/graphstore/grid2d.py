"""The resident 2D grid cluster: ``tc2d`` without per-call rebuilds.

:func:`repro.core.tc2d.run_distributed_tc_2d` historically rebuilt its
whole world — engine, :class:`~repro.graph.partition2d.GridPartition2D`,
every adjacency block and the packed RMA window — on every call, so a
served ``tc2d`` query paid the full edge-split cost no matter how warm
the session was, and updates could only reach it via that rebuild.

:class:`GridCluster2D` is the 2D member of the
:class:`~repro.graphstore.resident.ResidentCluster` family:

* **acquire** builds the grid once and replays queries against the same
  blocks/window (bit-identical to the per-call path, pinned by tests:
  same triangles, same per-rank clocks);
* **resync** is the 2D analogue of :mod:`repro.dynamic.invalidate` —
  the touched units are ``(row, col)`` *blocks* instead of rank slices.
  A changed edge ``(u, v)`` (both stored directions) dirties exactly
  block ``(row_block(u), col_block(v))``; only those blocks are rebuilt
  (:func:`repro.core.tc2d.build_block` — one row-range slice of the new
  CSR, not a full edge re-split), their window regions swapped, and
  their packed-block cache entries invalidated while every other
  block's cached bytes stay warm;
* optional **block caches**: with a cache spec configured, each rank
  gets a CLaMPI cache over the packed-blocks window, so repeated block
  fetches hit locally exactly like the 1D kernels' adjacency reads.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Optional

import numpy as np

from repro.clampi.cache import ClampiCache, ClampiConfig
from repro.clampi.stats import CacheStats
from repro.core.config import CacheSpec, DistributedRunResult, LCCConfig
from repro.core.lcc import _merged_stats
from repro.core.linalg import (
    build_round_streams,
    execute_lcc2d,
    execute_tc2d_spgemm,
    summa_stats,
)
from repro.core.tc2d import (
    BLOCKS_WINDOW,
    build_block,
    build_grid_blocks,
    execute_tc2d,
    pack_block,
    require_square_grid,
)
from repro.dynamic.delta import DeltaResult
from repro.graph.csr import CSRGraph
from repro.graph.partition2d import GridPartition2D
from repro.graphstore.resident import ClusterResync, ResidentCluster
from repro.runtime.engine import Engine, RunOutcome
from repro.runtime.trace import RankTrace
from repro.runtime.window import Window

__all__ = ["GridCluster2D", "stale_block_keys", "touched_blocks"]


def touched_blocks(grid: GridPartition2D, changed_keys: np.ndarray, n: int
                   ) -> tuple[int, ...]:
    """Ranks whose block a set of changed stored-form edge keys dirties.

    Each key encodes a stored directed edge ``u * n + v``; undirected
    batches carry both directions, so both of an edge's mirror blocks
    appear.  The lookup is one vectorized pass (no per-edge Python).
    """
    if changed_keys.size == 0:
        return ()
    edges = np.column_stack([changed_keys // n, changed_keys % n])
    return tuple(int(r) for r in np.unique(grid.owners_of_edges(edges)))


def stale_block_keys(rank: int, old_packed: np.ndarray,
                     new_packed: np.ndarray) -> list[tuple]:
    """Cache keys invalidated by swapping one rank's packed block.

    Block fetches are whole-part reads keyed ``(rank, 0, part_len)``, so
    at most one key per block can be live; it survives only if the new
    packed bytes are identical (same retention criterion as the 1D
    :func:`~repro.dynamic.invalidate.stale_part_keys`).
    """
    if (old_packed.shape[0] == new_packed.shape[0]
            and np.array_equal(old_packed, new_packed)):
        return []
    return [(rank, 0, int(old_packed.shape[0]))]


class GridCluster2D(ResidentCluster):
    """An ``r x c`` grid of adjacency blocks held resident across queries."""

    kind = "2d"

    def __init__(self) -> None:
        self.graph: Optional[CSRGraph] = None
        self.grid_builds = 0
        self.last_reused = False
        self.last_warm = False
        self._engine: Optional[Engine] = None
        self._grid: Optional[GridPartition2D] = None
        self._blocks: list = []
        self._win: Optional[Window] = None
        self._caches: list[ClampiCache] = []
        self._cluster_key: Any = None
        self._cache_spec: Optional[CacheSpec] = None
        # Replay memo: warm cache-less queries over unchanged blocks are
        # deterministic, so the previous result is replayed instead of
        # re-multiplying (the 2D analogue of repro.core.replay's
        # state-epoch memo).  _epoch bumps whenever block state changes.
        self._epoch = 0
        self._memo: Optional[tuple[int, DistributedRunResult]] = None
        # Resident SUMMA panels: the per-round masked-product tables and
        # per-rank block-fetch streams the algebraic kernels
        # (tc2d_spgemm / lcc2d) and the cached-tc2d batched replay run
        # from.  Pure functions of block state, so they live and die
        # with _epoch — a resync that swaps a block rebuilds them once,
        # and every warm query after that replays the same tables.
        self._panel_memo: Optional[tuple[int, Any, list]] = None

    @property
    def resident(self) -> bool:
        return self._engine is not None

    @property
    def caches(self) -> list:
        return list(self._caches)

    # -- acquisition ---------------------------------------------------------
    def acquire(self, graph: CSRGraph, config: LCCConfig,
                keep_cache: bool = False
                ) -> tuple[Engine, GridPartition2D, list, Window, list]:
        """Build or reuse the grid cluster for ``config``.

        Returns ``(engine, grid, blocks, window, caches)``.  Clocks and
        traces reset per query (a warm query's simulated time matches a
        standalone run); the blocks and packed window — and, with
        ``keep_cache=True``, the block-cache contents — are reused while
        the cluster shape is unchanged.
        """
        key = (config.nranks, config.network, config.memory, config.compute)
        rebuilt = self._engine is None or key != self._cluster_key
        if rebuilt:
            self._drop_caches()
            engine = Engine(config.nranks, network=config.network,
                            memory=config.memory, compute=config.compute)
            grid = GridPartition2D(graph.n, config.nranks)
            blocks = build_grid_blocks(graph, grid)
            win = engine.windows.add(
                Window(BLOCKS_WINDOW, [pack_block(b) for b in blocks]))
            self._engine, self._grid = engine, grid
            self._blocks, self._win = blocks, win
            self._cluster_key = key
            self.graph = graph
            self.grid_builds += 1
            self._epoch += 1
        engine, win = self._engine, self._win
        for ctx in engine.contexts:
            ctx.now = 0.0
            ctx.trace = RankTrace(rank=ctx.rank, record_ops=False)
        # Each query is one access epoch (as the 1D kernels model it):
        # re-open here, close after execution / on update boundaries.
        for rank in range(engine.nranks):
            if not win.epoch_open(rank):
                win.lock_all(rank)
        self._configure_caches(config, keep_cache, rebuilt)
        self.last_reused = not rebuilt
        return engine, self._grid, self._blocks, win, self._caches

    def panel_state(self):
        """The resident SUMMA panels: ``(stats, streams)`` for this epoch.

        Built once per state epoch from the resident blocks (square
        grids only) and reused by every warm ``tc2d_spgemm``/``lcc2d``
        query and cached-tc2d batched replay until a resync swaps a
        block (which bumps ``_epoch`` and retires the tables, exactly
        like the result memo).
        """
        if self._panel_memo is None or self._panel_memo[0] != self._epoch:
            stats = summa_stats(self.graph, self._grid, self._blocks)
            streams = build_round_streams(self._grid, self._win)
            self._panel_memo = (self._epoch, stats, streams)
        return self._panel_memo[1], self._panel_memo[2]

    def execute(self, config: LCCConfig) -> DistributedRunResult:
        """Run the 2D triangle count on the resident grid.

        Dispatch (mirroring the 1D kernels' ``fast_path`` contract):

        * **cached, fast path, square grid** — the batched replay: the
          per-rank block-fetch streams go through
          :meth:`~repro.clampi.cache.ClampiCache.access_batch` and the
          clocks/traces are rebuilt from the resident SUMMA tables,
          bit-identical to the scalar loop (pinned by tests);
        * **cached otherwise** — the scalar per-round loop (the oracle;
          also the only path on rectangular grids, whose fallback has a
          different access pattern);
        * **cache-less, fast path** — a warm query over unchanged blocks
          is fully determined by block state, so the previous result is
          replayed from the state-epoch memo (fresh trace/clock objects;
          nothing aliases the live contexts);
        * ``fast_path=False`` always runs the scalar loop — the
          reference oracle every fast path is pinned against.
        """
        fast = config.fast_path and not config.record_ops
        if self._caches:
            if fast and require_square_grid(self._grid):
                stats, streams = self.panel_state()
                result = execute_tc2d_spgemm(
                    self._engine, self._grid, self._blocks, self._win,
                    config, self.graph, stats, streams,
                    with_cache_stats=False)
            else:
                result = execute_tc2d(self._engine, self._grid, self._blocks,
                                      self._win, config, self.graph)
            self._close_epochs()  # transparent-mode caches flush here
            return result
        if fast and self._memo is not None and self._memo[0] == self._epoch:
            prev = self._memo[1]
            outcome = RunOutcome(
                time=prev.outcome.time,
                clocks=list(prev.outcome.clocks),
                traces=[replace(t, ops=list(t.ops))
                        for t in prev.outcome.traces],
                results=list(prev.outcome.results),
            )
            return DistributedRunResult(
                lcc=None, triangles_per_vertex=None,
                global_triangles=prev.global_triangles, outcome=outcome)
        result = execute_tc2d(self._engine, self._grid, self._blocks,
                              self._win, config, self.graph)
        self._close_epochs()
        self._memo = (self._epoch, result)
        return result

    def execute_spgemm(self, config: LCCConfig) -> DistributedRunResult:
        """Run the algebraic ``tc2d_spgemm`` kernel on the resident grid.

        Square grids only (strict guard).  ``fast_path=False`` runs the
        scalar edge-centric loop instead — the two price the identical
        program, so this doubles as the kernel's in-place oracle mode
        (with the same merged block-cache statistics attached, so the
        two modes stay comparable field for field).
        """
        require_square_grid(self._grid, kernel="tc2d_spgemm", strict=True)
        if not config.fast_path or config.record_ops:
            result = replace(
                execute_tc2d(self._engine, self._grid, self._blocks,
                             self._win, config, self.graph),
                adj_cache_stats=_merged_stats(self._caches))
        else:
            stats, streams = self.panel_state()
            result = execute_tc2d_spgemm(
                self._engine, self._grid, self._blocks, self._win, config,
                self.graph, stats, streams)
        self._close_epochs()
        return result

    def execute_lcc2d(self, config: LCCConfig) -> DistributedRunResult:
        """Run the ``lcc2d`` kernel on the resident grid (square only)."""
        require_square_grid(self._grid, kernel="lcc2d", strict=True)
        stats, streams = self.panel_state()
        result = execute_lcc2d(
            self._engine, self._grid, self._blocks, self._win, config,
            self.graph, stats, streams)
        self._close_epochs()
        return result

    def _configure_caches(self, config: LCCConfig, keep_cache: bool,
                          rebuilt: bool) -> None:
        spec = config.cache
        if spec is None or spec.adj_bytes <= 0:
            self._drop_caches()
            return
        warm = (keep_cache and not rebuilt and spec == self._cache_spec
                and bool(self._caches))
        if warm:
            for cache in self._caches:
                cache.stats = CacheStats()
        else:
            self._drop_caches()
            for ctx in self._engine.contexts:
                cache = ClampiCache(
                    self._win, ctx.rank,
                    ClampiConfig(capacity_bytes=spec.adj_bytes,
                                 mode=spec.mode),
                    network=ctx.network, memory=ctx.memory)
                ctx.attach_cache(self._win, cache)
                self._caches.append(cache)
        self._cache_spec = spec
        self.last_warm = warm

    def _drop_caches(self) -> None:
        if self._engine is not None and self._win is not None:
            for ctx in self._engine.contexts:
                ctx.detach_cache(self._win)
        self._caches = []
        self._cache_spec = None

    def _close_epochs(self) -> None:
        """Unlock the blocks window and fire the caches' epoch hooks.

        The epoch-closure boundary is what makes transparent-mode block
        caches flush exactly as the paper's Section II-F requires — the
        same contract ``DistributedCSR.close_epochs`` gives the 1D
        kernels.  Epoch state never touches simulated clocks, so the
        resident path stays bit-identical to the per-call one (which
        simply abandons its open epochs with the throwaway engine).
        """
        if self._engine is None or self._win is None:
            return
        for rank in range(self._engine.nranks):
            if self._win.epoch_open(rank):
                self._win.unlock_all(rank)
            cache = self._engine.contexts[rank].cache_for(self._win)
            if cache is not None:
                cache.on_epoch_close()

    # -- dynamic updates -----------------------------------------------------
    def resync(self, result: DeltaResult, *, rekey: bool = True
               ) -> ClusterResync:
        """Rebuild exactly the blocks a delta's changed edges dirty.

        ``rekey`` is accepted for protocol symmetry; packed blocks are
        always fetched whole from offset 0, so nothing can merely shift.
        """
        outcome = ClusterResync(kind=self.kind)
        self.graph = result.graph
        if self._engine is None or not result.changed:
            outcome.retained_entries = sum(len(c) for c in self._caches)
            return outcome

        engine, grid, win = self._engine, self._grid, self._win
        # An update is an epoch boundary, exactly as on the 1D cluster:
        # transparent-mode caches flush before the targeted invalidation.
        self._close_epochs()
        n = result.graph.n
        ranks = touched_blocks(grid, result.changed_keys, n)
        inval_dt = [0.0] * engine.nranks
        rebuilt_bytes_by_rank: dict[int, int] = {}
        touched: list[tuple[int, int]] = []
        for rank in ranks:
            old_packed = win.local_part(rank)
            new_block = build_block(result.graph, grid, rank)
            new_packed = pack_block(new_block)
            stale = stale_block_keys(rank, old_packed, new_packed)
            if not stale:
                continue  # the dirtying edges netted out to no byte change
            touched.append(grid.grid_coords(rank))
            for cache in self._caches:
                mgmt_before = cache.stats.mgmt_time
                dropped, dropped_bytes = cache.invalidate(stale)
                inval_dt[cache.rank] += cache.stats.mgmt_time - mgmt_before
                outcome.invalidated_adj_entries += dropped
                outcome.invalidated_bytes += dropped_bytes
            win.replace_part(rank, new_packed)
            self._blocks[rank] = new_block
            self._epoch += 1
            rebuilt_bytes_by_rank[rank] = int(new_packed.nbytes)
        outcome.touched = tuple(touched)
        outcome.rebuilt_bytes = sum(rebuilt_bytes_by_rank.values())
        outcome.retained_entries = sum(len(c) for c in self._caches)
        memory = engine.contexts[0].memory
        outcome.time = max(
            ((memory.local_read_time(rebuilt_bytes_by_rank[r])
              if r in rebuilt_bytes_by_rank else 0.0) + inval_dt[r])
            for r in range(engine.nranks))
        return outcome

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        self._close_epochs()
        self._drop_caches()
        self._engine = None
        self._grid = None
        self._blocks = []
        self._win = None
        self._cluster_key = None
        self._panel_memo = None
        self._memo = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "resident" if self.resident else "idle"
        shape = (f"{self._grid.rows}x{self._grid.cols}"
                 if self._grid is not None else "?")
        return f"GridCluster2D({state}, grid={shape}, builds={self.grid_builds})"
