"""Compute-cost model for the intersection kernels.

The distributed experiments in the paper are communication-bound, but the
shared-memory results (Table III, Figure 6) and the computation/communication
overlap depend on how long an adjacency-list intersection takes.  We charge
analytic costs per kernel invocation:

* **Sorted set intersection (SSI)** walks both lists linearly —
  ``(|A| + |B|)`` sequential comparisons with near-perfect cache behaviour
  (Hu et al.'s observation, restated in Section IV-C), so it gets the lower
  per-comparison cost ``c_ssi``.
* **Binary search** issues ``|A|`` searches into ``B`` — ``|A| * log2 |B|``
  random accesses with poor cache behaviour, hence a higher per-comparison
  cost ``c_bs``.

These two constants are the whole reason a hybrid exists: SSI wins on
similar-length lists, binary search wins on highly skewed pairs (the paper's
Eq. 3 decision rule).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.units import NS
from repro.utils.validation import require_non_negative, require_positive


@dataclass(frozen=True)
class ComputeModel:
    """Per-operation compute costs for triangle counting.

    Parameters
    ----------
    c_ssi:
        Seconds per element for the linear-scan SSI kernel.  Calibrated
        against the paper's Table III throughput (~0.2-0.5 edges/us on
        R-MAT EF16, i.e. a few microseconds per edge): even a streaming
        kernel spends tens of nanoseconds per element on a real CPU once
        the lists fall out of L1.
    c_bs:
        Seconds per comparison for binary search — random accesses into the
        lookup tree miss cache ("the main weakness of binary search on
        CPUs", Section IV-C), so it is several times ``c_ssi``.
    edge_overhead:
        Fixed per-edge bookkeeping (loop control, counter updates).
    vertex_overhead:
        Fixed per-vertex cost of finalizing an LCC score (one division).
    """

    c_ssi: float = 55 * NS
    c_bs: float = 140 * NS
    edge_overhead: float = 80 * NS
    vertex_overhead: float = 60 * NS

    def __post_init__(self) -> None:
        require_positive("c_ssi", self.c_ssi)
        require_positive("c_bs", self.c_bs)
        require_non_negative("edge_overhead", self.edge_overhead)
        require_non_negative("vertex_overhead", self.vertex_overhead)

    # -- sequential kernel costs ---------------------------------------------
    def ssi_time(self, len_a: int, len_b: int) -> float:
        """Sequential SSI over lists of the given lengths."""
        return self.edge_overhead + (len_a + len_b) * self.c_ssi

    def binary_search_time(self, len_a: int, len_b: int) -> float:
        """Sequential binary search; the shorter list supplies the keys."""
        keys, tree = (len_a, len_b) if len_a <= len_b else (len_b, len_a)
        if tree <= 1:
            comparisons = keys
        else:
            comparisons = keys * max(1.0, math.log2(tree))
        return self.edge_overhead + comparisons * self.c_bs

    def hybrid_time(self, len_a: int, len_b: int) -> float:
        """Cost of the hybrid kernel: the cheaper method for this pair.

        The paper's Eq. 3 rule is the comparison-count instantiation of
        "pick the cheaper kernel" (it assumes both comparisons cost the
        same); with explicit per-comparison constants the equivalent rule
        is a direct cost comparison, which reduces to Eq. 3 when
        ``c_bs == c_ssi``.
        """
        return min(self.ssi_time(len_a, len_b),
                   self.binary_search_time(len_a, len_b))

    def kernel_time(self, method: str, len_a: int, len_b: int) -> float:
        """Dispatch by method name ('ssi' | 'binary' | 'hybrid')."""
        if method == "ssi":
            return self.ssi_time(len_a, len_b)
        if method == "binary":
            return self.binary_search_time(len_a, len_b)
        if method == "hybrid":
            return self.hybrid_time(len_a, len_b)
        raise ValueError(f"unknown intersection method: {method!r}")


def prefer_ssi(len_a: int, len_b: int) -> bool:
    """Decision rule (paper Eq. 3): SSI iff ``|B|/|A| <= log2(|B|) - 1``.

    ``A`` is the shorter list.  Degenerate sizes fall back to SSI, which is
    never asymptotically worse for near-equal lengths.
    """
    short, long_ = (len_a, len_b) if len_a <= len_b else (len_b, len_a)
    if short == 0 or long_ <= 2:
        return True
    return (long_ / short) <= (math.log2(long_) - 1.0)
