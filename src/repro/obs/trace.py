"""Span tracing on the simulated clock, zero-cost when disabled.

A span is one timed region of the serving stack — a query's kernel
execution (``run``), an update leader holding its coalescing window
(``hold``), a store commit, a shard ``barrier``, a session ``resync``,
a cache ``invalidate``.  Spans carry *simulated* timestamps (the async
engine's clock), so a trace lines up with the engine's own timeline and
is deterministic per seed; real elapsed time, where measured, rides
along as a ``wall_s`` attribute and never enters the simulated axis.

Two integration styles:

* the engine owns a :class:`SpanTracer` and emits its own worker-loop
  spans explicitly (it knows simulated start/finish times that bracket
  *future* simulated work);
* deep layers (:class:`~repro.serve.pool.SessionPool`,
  :class:`~repro.graphstore.store.GraphStore`,
  :class:`~repro.clampi.cache.ClampiCache`, ...) call the module-level
  :func:`span` helper, which resolves the process-wide *active* tracer
  installed by :func:`activate`.  When no tracer is active the helper
  returns one shared no-op context manager — the disabled cost is a
  single global load and ``None`` check, no allocation.

Parenting is lexical: spans opened while another span's context is
entered become its children, which is exactly the engine's synchronous
call structure (``commit`` → store ``commit``/``barrier`` → ``resync``
→ ``invalidate``/``rekey``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

__all__ = [
    "Span",
    "SpanTracer",
    "activate",
    "active_tracer",
    "check_spans",
    "span",
]


@dataclass
class Span:
    """One closed region on the simulated timeline."""

    sid: int                      # unique id within one tracer
    parent: Optional[int]         # parent sid, or None for a root
    name: str                     # taxonomy name: run, hold, commit, ...
    cat: str                      # layer: task, engine, pool, store, ...
    t0: float                     # simulated start (seconds)
    t1: float                     # simulated end (seconds); >= t0
    worker: Optional[int] = None  # engine worker slot, when applicable
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class _LiveSpan:
    """Handle for an open context-manager span."""

    __slots__ = ("sid", "name", "_end_at", "attrs")

    def __init__(self, sid: int, name: str):
        self.sid = sid
        self.name = name
        self._end_at: Optional[float] = None
        self.attrs: Dict[str, object] = {}

    def end_at(self, t1: float) -> None:
        """Pin the span's simulated end time (default: tracer ``now``)."""
        self._end_at = t1

    def note(self, **attrs: object) -> None:
        self.attrs.update(attrs)


class _NoopSpan:
    """The shared disabled-path span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def end_at(self, t1: float) -> None:
        return None

    def note(self, **attrs: object) -> None:
        return None


_NOOP = _NoopSpan()


class SpanTracer:
    """Collects spans against a simulated clock.

    ``now`` is the tracer's notion of current simulated time; the engine
    advances it as its event loop advances.  Context-manager spans open
    at ``now`` and close at ``now`` unless pinned via
    :meth:`_LiveSpan.end_at`; nested layer spans therefore land *inside*
    whatever engine interval is currently on the stack.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_sid = 0

    # -- explicit emission (engine-level, knows its own interval) ------------
    def emit(self, name: str, *, cat: str, t0: float, t1: float,
             worker: Optional[int] = None,
             parent: Optional[int] = None,
             **attrs: object) -> Span:
        """Record a complete span whose interval is already known."""
        if parent is None and self._stack:
            parent = self._stack[-1].sid
        sp = Span(sid=self._next_sid, parent=parent, name=name, cat=cat,
                  t0=t0, t1=max(t0, t1), worker=worker, attrs=dict(attrs))
        self._next_sid += 1
        self.spans.append(sp)
        return sp

    # -- lexical nesting (layer-level, brackets a synchronous call) ----------
    @contextmanager
    def span(self, name: str, *, cat: str, t0: Optional[float] = None,
             worker: Optional[int] = None,
             **attrs: object) -> Iterator[_LiveSpan]:
        """Open a span around a synchronous region.

        The span's simulated interval defaults to ``[now, now]`` — an
        instant on the simulated axis — because a synchronous Python
        call consumes no simulated time unless the caller pins an end
        with :meth:`_LiveSpan.end_at`.  Real elapsed time is always
        measured and attached as ``wall_s``.
        """
        start = self.now if t0 is None else t0
        parent = self._stack[-1].sid if self._stack else None
        sp = Span(sid=self._next_sid, parent=parent, name=name, cat=cat,
                  t0=start, t1=start, worker=worker, attrs=dict(attrs))
        self._next_sid += 1
        self._stack.append(sp)
        live = _LiveSpan(sp.sid, name)
        wall0 = time.perf_counter()
        try:
            yield live
        finally:
            wall1 = time.perf_counter()
            self._stack.pop()
            end = live._end_at if live._end_at is not None else self.now
            sp.t1 = max(sp.t0, end)
            sp.attrs.update(live.attrs)
            sp.attrs["wall_s"] = wall1 - wall0
            self.spans.append(sp)

    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent is None]

    def children_of(self, sid: int) -> List[Span]:
        return [s for s in self.spans if s.parent == sid]

    def __len__(self) -> int:
        return len(self.spans)


# -- the process-wide active tracer ------------------------------------------
_ACTIVE: Optional[SpanTracer] = None


def active_tracer() -> Optional[SpanTracer]:
    """The tracer installed by :func:`activate`, or ``None``."""
    return _ACTIVE


@contextmanager
def activate(tracer: Optional[SpanTracer]) -> Iterator[Optional[SpanTracer]]:
    """Install ``tracer`` as the active tracer for the enclosed region.

    ``activate(None)`` is a no-op context, so callers can write
    ``with activate(obs.tracer if obs else None):`` unconditionally.
    Activations nest; the previous tracer is restored on exit.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


def span(name: str, *, cat: str, worker: Optional[int] = None,
         **attrs: object):
    """Open a span on the active tracer, or do nothing.

    The disabled path — no active tracer — returns one shared no-op
    context manager: no allocation, no string work, one global load.
    """
    tracer = _ACTIVE
    if tracer is None:
        return _NOOP
    return tracer.span(name, cat=cat, worker=worker, **attrs)


# -- well-formedness ----------------------------------------------------------
def check_spans(spans: Sequence[Span]) -> List[str]:
    """Structural problems in a span set; empty means well-formed.

    Checks: unique sids; no orphan parents; parents enclose children on
    the simulated axis; no negative durations; and no two ``task``-
    category spans overlapping on one worker (a worker slot executes one
    task at a time, so overlap means the trace lies about the engine).
    """
    problems: List[str] = []
    by_sid: Dict[int, Span] = {}
    for sp in spans:
        if sp.sid in by_sid:
            problems.append(f"duplicate sid {sp.sid} ({sp.name})")
        by_sid[sp.sid] = sp
    for sp in spans:
        if sp.t1 < sp.t0:
            problems.append(
                f"span {sp.sid} ({sp.name}) ends before it starts: "
                f"{sp.t1:.6f} < {sp.t0:.6f}")
        if sp.parent is not None:
            parent = by_sid.get(sp.parent)
            if parent is None:
                problems.append(
                    f"span {sp.sid} ({sp.name}) has orphan parent "
                    f"{sp.parent}")
            elif not (parent.t0 <= sp.t0 and sp.t1 <= parent.t1):
                problems.append(
                    f"span {sp.sid} ({sp.name}) "
                    f"[{sp.t0:.6f}, {sp.t1:.6f}] escapes parent "
                    f"{parent.sid} ({parent.name}) "
                    f"[{parent.t0:.6f}, {parent.t1:.6f}]")
    per_worker: Dict[int, List[Span]] = {}
    for sp in spans:
        if sp.cat == "task" and sp.worker is not None:
            per_worker.setdefault(sp.worker, []).append(sp)
    for worker, group in per_worker.items():
        group.sort(key=lambda s: (s.t0, s.t1))
        for prev, cur in zip(group, group[1:]):
            if cur.t0 < prev.t1 - 1e-12:
                problems.append(
                    f"worker {worker}: span {cur.sid} ({cur.name}) starts "
                    f"at {cur.t0:.6f} before span {prev.sid} ({prev.name}) "
                    f"ends at {prev.t1:.6f}")
    return problems
