"""Per-(graph, shard-set) fencing in the serving scheduler."""

import numpy as np

from repro.graph.generators import powerlaw_configuration
from repro.serve import (
    ServeConfig,
    ServingEngine,
    UpdateRequest,
    coalescible_updates,
    default_catalog,
    eligible_requests,
    make_scheduler,
)
from repro.serve.engine import answers_identical
from repro.serve.request import QueryRequest
from repro.serve.workload import WorkloadSpec, generate_workload
from repro.shardstore import ShardedGraphStore, annotate_shard_sets


def query(arrival, qid, graph="g"):
    return QueryRequest(arrival=arrival, qid=qid, tenant=0, graph=graph,
                        kernel="lcc")


def update(arrival, qid, graph="g", shards=None):
    req = UpdateRequest(arrival=arrival, qid=qid, tenant=0, graph=graph,
                        inserts=np.array([[0, 1]]))
    return req.with_shards(shards) if shards is not None else req


class TestShardSetFence:
    def test_disjoint_updates_flow_past_each_other(self):
        u0 = update(0.0, 0, shards={0, 1})
        u1 = update(1.0, 1, shards={2, 3})
        assert set(eligible_requests([u1, u0])) == {u0, u1}

    def test_overlapping_updates_serialize(self):
        u0 = update(0.0, 0, shards={0, 1})
        u1 = update(1.0, 1, shards={1, 2})
        assert eligible_requests([u1, u0]) == [u0]

    def test_queries_conflict_with_every_update(self):
        """A kernel reads the whole graph: a query never overtakes an
        annotated update, and an update never overtakes a query."""
        u0 = update(0.0, 0, shards={0})
        q1 = query(1.0, 1)
        u2 = update(2.0, 2, shards={3})
        eligible = eligible_requests([u2, q1, u0])
        assert u0 in eligible
        assert q1 not in eligible   # behind the shard-0 update
        # u2 is disjoint from u0 but behind the query: still fenced.
        assert u2 not in eligible

    def test_unannotated_updates_keep_the_whole_graph_fence(self):
        u0 = update(0.0, 0, shards={0})
        u1 = update(1.0, 1)                  # shards=None: full fence
        u2 = update(2.0, 2, shards={3})
        eligible = eligible_requests([u2, u1, u0])
        assert eligible == [u0]

    def test_empty_shard_set_means_full_fence(self):
        req = update(0.0, 0).with_shards(frozenset())
        assert req.shards is None

    def test_other_graphs_unaffected(self):
        u0 = update(0.0, 0, graph="a", shards={0})
        q1 = query(1.0, 1, graph="b")
        assert set(eligible_requests([u0, q1])) == {u0, q1}


class TestEmptyShardSetRegression:
    """``shards=frozenset()`` must fence like an unannotated update.

    An empty annotation means "this batch touches no shard" — it still
    commits a logical version, so treating it as "fences nothing" would
    let it overtake a concurrent query and desynchronize that query's
    version observation from its arrival order.
    """

    def test_constructor_normalizes_empty_set_to_none(self):
        req = UpdateRequest(arrival=0.0, qid=0, tenant=0, graph="g",
                            shards=frozenset())
        assert req.shards is None

    def test_with_shards_keeps_empty_as_none(self):
        assert update(0.0, 0).with_shards(frozenset()).shards is None
        assert update(0.0, 0).with_shards([]).shards is None
        assert update(0.0, 0).with_shards({1}).shards == frozenset({1})

    def test_forced_empty_set_still_gets_whole_graph_fence(self):
        """Even bypassing normalization (object.__setattr__ on the
        frozen dataclass), the fence's own guard must hold."""
        u0 = update(0.0, 0)
        object.__setattr__(u0, "shards", frozenset())
        q1 = query(1.0, 1)
        u2 = update(2.0, 2, shards={3})
        eligible = eligible_requests([u2, q1, u0])
        assert eligible == [u0]
        # And symmetrically: it never overtakes an earlier query.
        u3 = update(2.0, 3)
        object.__setattr__(u3, "shards", frozenset())
        assert u3 not in eligible_requests([query(1.0, 4), u3])


class TestInflightFence:
    """The cooperative engine widens the conflict universe with the
    requests already executing/holding; they block but are never
    returned."""

    def test_inflight_blocks_younger_conflicts(self):
        u0 = update(0.0, 0, shards={0})          # in flight
        q1 = query(1.0, 1)
        u2 = update(2.0, 2, shards={3})
        assert eligible_requests([q1, u2], inflight=[u0]) == []

    def test_inflight_never_blocks_older_requests(self):
        u1 = update(1.0, 1, shards={0})          # in flight, younger
        q0 = query(0.0, 0)
        assert eligible_requests([q0], inflight=[u1]) == [q0]

    def test_disjoint_inflight_does_not_block(self):
        u0 = update(0.0, 0, shards={0})          # in flight
        u1 = update(1.0, 1, shards={3})
        assert eligible_requests([u1], inflight=[u0]) == [u1]

    def test_inflight_requests_not_returned(self):
        u0 = update(0.0, 0, shards={0})
        out = eligible_requests([update(1.0, 1, shards={1})],
                                inflight=[u0])
        assert u0 not in out


class TestCoalescingUnderShardFences:
    def test_admitted_non_leader_coalesces_nothing(self):
        """Shard fencing can admit an update that does not lead its
        graph's queue; coalescing across the gap would reorder the
        skipped commit, so the merge set is empty — not an assert."""
        u0 = update(0.0, 0, shards={0})
        u1 = update(1.0, 1, shards={3})
        assert u1 in eligible_requests([u0, u1])
        assert coalescible_updates([u0, u1], u1) == []

    def test_leader_still_merges_its_run(self):
        u0 = update(0.0, 0, shards={0})
        u1 = update(1.0, 1, shards={3})
        assert coalescible_updates([u0, u1], u0) == [u1]


class TestAnnotatedServing:
    def test_annotated_workload_is_scheduler_independent(self):
        """End to end: a sharded store behind the engine, shard sets
        stamped on every update — fifo and affinity answers identical,
        and identical to the conservative unannotated run."""
        catalog = default_catalog(scale=0.25)
        requests = generate_workload(WorkloadSpec(
            n_queries=28, arrival_rate=2000.0, n_tenants=6,
            graphs=tuple(catalog), kernels=("lcc",), update_mix=0.3,
            seed=21), catalog)
        probe = ShardedGraphStore(catalog, nshards=2, nranks=4)
        annotated = annotate_shard_sets(requests, probe)
        assert any(r.is_update and r.shards is not None for r in annotated)

        def run(reqs, scheduler):
            engine = ServingEngine(
                catalog, ServeConfig(nranks=4, threads=2, pool_capacity=2),
                make_scheduler(scheduler),
                store_factory=lambda cat: ShardedGraphStore(
                    cat, nshards=2, nranks=4))
            return engine.serve(reqs)

        fifo = run(annotated, "fifo")
        affinity = run(annotated, "affinity")
        plain = run(requests, "fifo")
        assert answers_identical(fifo, affinity)
        assert answers_identical(fifo, plain)

    def test_annotation_requires_membership(self):
        g = powerlaw_configuration(40, 120, seed=1, name="g")
        store = ShardedGraphStore({"g": g}, nshards=2)
        outside = update(0.0, 0, graph="elsewhere")
        assert annotate_shard_sets([outside], store)[0] is outside
