"""Dynamic-graph benchmarks: delta merge, incremental fold, warm resync.

Wall-clock timings of the write path.  The recorded trajectory numbers
(incremental-vs-full speedup, retained hit rates) live in
``BENCH_dynamic.json`` via ``repro update --bench``; here we watch the
real cost of the building blocks: the vectorized CSR merge, the
incremental fold against its full-recompute oracle, and a resident
session absorbing an update (slice resync + targeted invalidation)
followed by a still-warm query.
"""

import pytest

from repro.analysis.benchreport import bench_graphs
from repro.core.config import CacheSpec, LCCConfig
from repro.core.local import triangles_min_vertex, triangles_per_vertex_batched
from repro.dynamic import IncrementalState, apply_delta, random_update_batch
from repro.session import Session


@pytest.fixture(scope="module")
def graph():
    return bench_graphs(quick=True)["powerlaw-s"]


@pytest.fixture(scope="module")
def batch(graph):
    return random_update_batch(graph, 12, 0.25, seed=7)


def test_apply_delta(benchmark, graph, batch):
    res = benchmark(apply_delta, graph, batch, strict=False)
    assert res.changed


@pytest.fixture(scope="module")
def counts(graph):
    """Precomputed full results: the fold alone is what gets timed."""
    return triangles_per_vertex_batched(graph), triangles_min_vertex(graph)


def test_incremental_fold(benchmark, graph, batch, counts):
    tpv0, tmin0 = counts

    def fold():
        # apply() copies tpv/tmin before scattering, so sharing the
        # precomputed arrays across rounds is safe.
        return IncrementalState(graph, tpv=tpv0, tmin=tmin0).apply(batch)

    res = benchmark(fold)
    assert res.affected.size


def test_full_recompute_oracle(benchmark, graph, batch):
    new_graph = apply_delta(graph, batch, strict=False).graph
    benchmark(lambda: (triangles_per_vertex_batched(new_graph),
                       triangles_min_vertex(new_graph)))


def test_session_update_then_warm_query(benchmark, graph, batch):
    config = LCCConfig(nranks=8, threads=4,
                       cache=CacheSpec.relative(graph.nbytes, 0.5, 1.0))

    def cycle():
        with Session(graph, config) as session:
            session.run("lcc", keep_cache=True)
            outcome = session.apply_updates(batch)
            post = session.run("lcc", keep_cache=True)
        return outcome, post

    outcome, post = benchmark.pedantic(cycle, iterations=1, rounds=3)
    assert outcome.retained_entries > 0
    assert post.warm_cache
