"""OpenMP edge-level parallelisation cost model (paper Section III-C).

The paper parallelises the *intersection itself* with OpenMP — not the
edge loop — to keep thread imbalance low:

* **binary search**: the keys (shorter) array is split into equal chunks,
  one per thread; each thread searches the whole tree, so per-thread work
  is ``ceil(|A|/T) * log2 |B|``;
* **SSI**: the *longer* array is split; every thread intersects its chunk
  with the whole shorter list, so per-thread work is ``|B|/T + |A|`` —
  the ``|A|`` term is why SSI stops scaling (each thread still scans the
  short list) and, together with the per-edge parallel-region entry cost,
  why Figure 6 saturates around 2.7x at 16 threads;
* a **cut-off**: intersections smaller than ``cutoff`` stay sequential
  ("a too-small parallel region would limit performance");
* ``OMP_WAIT_POLICY=active`` keeps threads spinning between regions,
  reducing the region entry cost (the paper measured 2-4% — so the two
  overhead values here differ by a few percent of a typical edge).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.runtime.compute import ComputeModel
from repro.utils.units import US
from repro.utils.validation import require_in_range, require_positive


@dataclass(frozen=True)
class OpenMPModel:
    """Timing model for the (simulated) OpenMP intersection kernels."""

    threads: int = 1
    compute: ComputeModel = field(default_factory=ComputeModel)
    wait_policy: str = "active"      # 'active' | 'passive'
    cutoff: int = 128                # below this total work: sequential
    region_overhead_active: float = 1.8 * US
    region_overhead_passive: float = 2.0 * US
    chunk_imbalance: float = 0.07    # slack for uneven chunk boundaries

    def __post_init__(self) -> None:
        require_positive("threads", self.threads)
        if self.wait_policy not in ("active", "passive"):
            raise ValueError(f"wait_policy must be active|passive, got "
                             f"{self.wait_policy!r}")
        require_in_range("chunk_imbalance", self.chunk_imbalance, 0.0, 1.0)

    @property
    def region_overhead(self) -> float:
        """Parallel-region entry/exit cost under the configured wait policy."""
        if self.wait_policy == "active":
            return self.region_overhead_active
        return self.region_overhead_passive

    # -- kernel costs ------------------------------------------------------------
    def ssi_time(self, len_a: int, len_b: int) -> float:
        """SSI: split the longer list over threads (paper Section III-C)."""
        cm = self.compute
        if self.threads == 1 or (len_a + len_b) < self.cutoff:
            return cm.ssi_time(len_a, len_b)
        short, long_ = (len_a, len_b) if len_a <= len_b else (len_b, len_a)
        per_thread = long_ / self.threads + short
        work = per_thread * (1.0 + self.chunk_imbalance) * cm.c_ssi
        return cm.edge_overhead + self.region_overhead + work

    def binary_search_time(self, len_a: int, len_b: int) -> float:
        """Binary search: split the keys (shorter) array over threads."""
        cm = self.compute
        short, long_ = (len_a, len_b) if len_a <= len_b else (len_b, len_a)
        if self.threads == 1 or short < max(1, self.cutoff // 8):
            return cm.binary_search_time(len_a, len_b)
        keys_per_thread = math.ceil(short / self.threads)
        log_term = max(1.0, math.log2(long_)) if long_ > 1 else 1.0
        work = keys_per_thread * log_term * (1.0 + self.chunk_imbalance) * cm.c_bs
        return cm.edge_overhead + self.region_overhead + work

    def hybrid_time(self, len_a: int, len_b: int) -> float:
        """The cheaper kernel for this pair under the threading model.

        The hybrid "empirically compares frontiers to decide which method
        to apply" (paper Section III-C); under an explicit cost model that
        comparison is a direct cost evaluation (Eq. 3 is its equal-cost
        -per-comparison special case).
        """
        return min(self.ssi_time(len_a, len_b),
                   self.binary_search_time(len_a, len_b))

    def kernel_time(self, method: str, len_a: int, len_b: int) -> float:
        """Dispatch by method name ('ssi' | 'binary' | 'hybrid')."""
        if method == "ssi":
            return self.ssi_time(len_a, len_b)
        if method == "binary":
            return self.binary_search_time(len_a, len_b)
        if method == "hybrid":
            return self.hybrid_time(len_a, len_b)
        raise ValueError(f"unknown intersection method: {method!r}")

    def with_threads(self, threads: int) -> "OpenMPModel":
        """Copy of this model with a different thread count."""
        return OpenMPModel(
            threads=threads,
            compute=self.compute,
            wait_policy=self.wait_policy,
            cutoff=self.cutoff,
            region_overhead_active=self.region_overhead_active,
            region_overhead_passive=self.region_overhead_passive,
            chunk_imbalance=self.chunk_imbalance,
        )
