"""Decision journal: determinism, replay verification, tamper detection."""

import json

import pytest

from repro.obs import Observation
from repro.obs.journal import (
    EVENT_KINDS,
    DecisionJournal,
    replay_journal,
)
from repro.serve.engine import AsyncServeConfig, AsyncServingEngine
from repro.serve.scheduler import FIFOScheduler, InterleaveScheduler
from repro.serve.workload import WorkloadSpec, default_catalog, generate_workload


@pytest.fixture(scope="module")
def catalog():
    return default_catalog(scale=0.2)


@pytest.fixture(scope="module")
def requests(catalog):
    return generate_workload(
        WorkloadSpec(n_queries=36, arrival_rate=2500.0, n_tenants=6,
                     graphs=tuple(catalog), kernels=("lcc", "tc"),
                     seed=11, update_mix=0.3), catalog)


def _traced_run(catalog, requests, scheduler=None, **cfg):
    obs = Observation.enabled()
    engine = AsyncServingEngine(
        catalog,
        AsyncServeConfig(nranks=4, threads=2, pool_capacity=3,
                         workers=4, **cfg),
        scheduler=scheduler or FIFOScheduler(), observation=obs)
    outcome = engine.serve(requests)
    return outcome, obs


def test_journal_rejects_unknown_kind():
    journal = DecisionJournal()
    with pytest.raises(ValueError):
        journal.append("teleport", 0.0)


def test_journal_jsonl_roundtrip(tmp_path):
    journal = DecisionJournal()
    journal.append("admit", 0.0, qid=1, graph="g")
    journal.append("dispatch", 0.5, qid=1, graph="g", worker=0)
    path = tmp_path / "journal.jsonl"
    journal.write(path)
    back = DecisionJournal.load(path)
    assert back.events == journal.events
    assert back.digest() == journal.digest()
    # Each line parses standalone and keys are sorted (byte-stable).
    for line in journal.to_jsonl().splitlines():
        ev = json.loads(line)
        assert list(ev) == sorted(ev)


def test_journal_deterministic_across_runs(catalog, requests):
    _, obs_a = _traced_run(catalog, requests)
    _, obs_b = _traced_run(catalog, requests)
    assert obs_a.journal.to_jsonl() == obs_b.journal.to_jsonl()
    assert obs_a.journal.digest() == obs_b.journal.digest()


def test_journal_deterministic_across_interleave_replays(catalog, requests):
    for seed in (0, 3):
        _, obs_a = _traced_run(catalog, requests, InterleaveScheduler(seed))
        _, obs_b = _traced_run(catalog, requests, InterleaveScheduler(seed))
        assert obs_a.journal.to_jsonl() == obs_b.journal.to_jsonl()


def test_journal_covers_the_vocabulary(catalog, requests):
    _, obs = _traced_run(catalog, requests)
    kinds = {e["ev"] for e in obs.journal}
    # Admission-control kinds need a bounded queue to fire; the core
    # lifecycle must always appear on an update-heavy workload.
    for kind in ("admit", "dispatch", "window_open", "window_close",
                 "commit", "retire"):
        assert kind in kinds, kind
    assert kinds <= set(EVENT_KINDS)


def test_replay_proves_run_fence_legal(catalog, requests):
    _, obs = _traced_run(catalog, requests)
    report = replay_journal(obs.journal, requests)
    assert report.ok, report.problems
    assert report.n_events == len(obs.journal)
    assert report.n_dispatches == len(obs.journal.of_kind("dispatch"))
    assert report.n_commits == len(obs.journal.of_kind("commit"))


def test_replay_ok_under_interleavings_and_backpressure(catalog, requests):
    for seed in (0, 5):
        _, obs = _traced_run(catalog, requests,
                             InterleaveScheduler(seed))
        assert replay_journal(obs.journal, requests).ok
    _, obs = _traced_run(catalog, requests, max_queue=4, overflow="shed")
    report = replay_journal(obs.journal, requests)
    assert report.ok, report.problems
    assert report.n_sheds == len(obs.journal.of_kind("shed"))


def test_replay_catches_swapped_dispatches(catalog, requests):
    _, obs = _traced_run(catalog, requests)
    events = [dict(e) for e in obs.journal]
    dispatches = [i for i, e in enumerate(events) if e["ev"] == "dispatch"]
    # Swap the qids of two dispatches on the same graph pair so the
    # earlier pick no longer matches the fence-eligible set.
    i, j = dispatches[0], dispatches[-1]
    events[i]["qid"], events[j]["qid"] = events[j]["qid"], events[i]["qid"]
    report = replay_journal(events, requests)
    assert not report.ok


def test_replay_catches_dropped_retire(catalog, requests):
    _, obs = _traced_run(catalog, requests)
    events = [dict(e) for e in obs.journal]
    pruned = [e for e in events if e["ev"] != "retire"]
    assert len(pruned) < len(events)
    report = replay_journal(pruned, requests)
    assert not report.ok


def test_replay_catches_version_chain_break(catalog, requests):
    _, obs = _traced_run(catalog, requests)
    events = [dict(e) for e in obs.journal]
    commits = [e for e in events if e["ev"] == "commit"]
    assert commits
    commits[0]["versions"] = [v + 1 for v in commits[0]["versions"]]
    report = replay_journal(events, requests)
    assert not report.ok
