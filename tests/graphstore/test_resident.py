"""Cluster1D / the ResidentCluster protocol, incl. rekeying resyncs."""

import numpy as np
import pytest

from repro.core.config import CacheSpec, LCCConfig
from repro.dynamic import apply_delta, random_update_batch
from repro.graph.generators import powerlaw_configuration
from repro.graphstore import Cluster1D, GridCluster2D, ResidentCluster
from repro.session import Session


@pytest.fixture(scope="module")
def graph():
    return powerlaw_configuration(180, 1100, seed=4, name="res")


def cached_cfg(graph, **kw):
    return LCCConfig(nranks=6, threads=4,
                     cache=CacheSpec(offsets_bytes=max(1, graph.nbytes // 2),
                                     adj_bytes=graph.nbytes), **kw)


class TestProtocol:
    def test_implementations_satisfy_protocol(self):
        assert issubclass(Cluster1D, ResidentCluster)
        assert issubclass(GridCluster2D, ResidentCluster)
        assert Cluster1D.kind == "1d" and GridCluster2D.kind == "2d"

    def test_abstract_base_not_instantiable(self):
        with pytest.raises(TypeError):
            ResidentCluster()


class TestAcquire:
    def test_reuse_while_shape_unchanged(self, graph):
        cluster = Cluster1D()
        cfg = cached_cfg(graph)
        e1, d1, _, _ = cluster.acquire(graph, cfg)
        e2, d2, _, _ = cluster.acquire(graph, cfg, keep_cache=True)
        assert e1 is e2 and d1 is d2
        assert cluster.partition_builds == 1
        assert cluster.last_reused and cluster.last_warm
        cluster.close()
        assert not cluster.resident

    def test_shape_change_rebuilds(self, graph):
        cluster = Cluster1D()
        cluster.acquire(graph, cached_cfg(graph))
        cluster.acquire(graph, LCCConfig(nranks=4, threads=4))
        assert cluster.partition_builds == 2
        assert not cluster.last_reused
        cluster.close()


class TestResyncRekey:
    def run_update(self, graph, rekey):
        cfg = cached_cfg(graph)
        with Session(graph, cfg) as session:
            session.run("lcc", keep_cache=True)
            session.run("lcc", keep_cache=True)
            batch = random_update_batch(graph, 12, 0.25, seed=55)
            out = session.apply_updates(batch, rekey=rekey)
            post = session.run("lcc", keep_cache=True)
        return out, post

    def test_rekey_retains_more_warmth(self, graph):
        """The satellite's headline: shifted-but-unchanged entries are
        remapped, not dropped, so the post-update hit rate improves."""
        with_rk, post_rk = self.run_update(graph, rekey=True)
        without, post_no = self.run_update(graph, rekey=False)
        assert with_rk.rekeyed_entries > 0
        assert without.rekeyed_entries == 0
        assert with_rk.retained_entries > without.retained_entries
        assert (post_rk.adj_cache_stats["hit_rate"]
                > post_no.adj_cache_stats["hit_rate"])
        # Answers must agree regardless of retention policy.
        np.testing.assert_array_equal(post_rk.lcc, post_no.lcc)

    def test_rekeyed_answers_match_cold(self, graph):
        out, post = self.run_update(graph, rekey=True)
        with Session(out.graph, cached_cfg(out.graph)) as fresh:
            cold = fresh.run("lcc")
        np.testing.assert_array_equal(post.lcc, cold.lcc)
        np.testing.assert_array_equal(post.triangles_per_vertex,
                                      cold.triangles_per_vertex)

    def test_cache_stats_carry_rekeys(self, graph):
        cfg = cached_cfg(graph)
        with Session(graph, cfg) as session:
            session.run("lcc", keep_cache=True)
            batch = random_update_batch(graph, 12, 0.25, seed=55)
            session.apply_updates(batch)
            stats = sum(c.stats.rekeys for c in session._adj_caches)
            snap = session._adj_caches[0].stats.snapshot()
        assert stats > 0
        assert "rekeys" in snap and "rekeyed_bytes" in snap

    def test_unresident_cluster_resync_is_graph_swap(self, graph):
        cluster = Cluster1D()
        batch = random_update_batch(graph, 6, 0.25, seed=2)
        res = apply_delta(graph, batch, strict=False)
        out = cluster.resync(res)
        assert cluster.graph is res.graph
        assert out.touched == () and out.time == 0.0


class TestSessionFold:
    def test_outcome_folds_all_resident_clusters(self, graph):
        cfg = cached_cfg(graph)
        with Session(graph, cfg) as session:
            session.run("lcc", keep_cache=True)
            session.run("tc2d", config=LCCConfig(nranks=9, threads=4))
            batch = random_update_batch(graph, 12, 0.25, seed=8)
            out = session.apply_updates(batch)
        kinds = sorted(r.kind for r in out.resyncs)
        assert kinds == ["1d", "2d"]
        assert out.touched_ranks and out.touched_blocks
        assert out.time == max(r.time for r in out.resyncs)
        assert out.retained_entries == sum(r.retained_entries
                                           for r in out.resyncs)
