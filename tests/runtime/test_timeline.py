"""Tests for timeline export."""

import csv

import numpy as np
import pytest

from repro.core.config import LCCConfig
from repro.core.lcc import run_distributed_lcc
from repro.graph.generators import rmat
from repro.runtime.timeline import (
    comm_comp_profile,
    render_ascii_gantt,
    summarize_ops,
    to_rows,
    write_csv,
)


@pytest.fixture(scope="module")
def traced_outcome():
    g = rmat(6, 4, seed=10)
    res = run_distributed_lcc(g, LCCConfig(nranks=2, record_ops=True,
                                           overlap=False))
    return res.outcome


class TestRows:
    def test_rows_sorted_by_time(self, traced_outcome):
        rows = to_rows(traced_outcome)
        assert rows
        times = [r["t"] for r in rows]
        assert times == sorted(times)

    def test_rows_cover_all_ops(self, traced_outcome):
        rows = to_rows(traced_outcome)
        total_ops = sum(len(t.ops) for t in traced_outcome.traces)
        assert len(rows) == total_ops

    def test_csv_roundtrip(self, traced_outcome, tmp_path):
        path = tmp_path / "timeline.csv"
        n = write_csv(traced_outcome, path)
        with path.open() as fh:
            read = list(csv.DictReader(fh))
        assert len(read) == n
        assert {"rank", "kind", "t"} <= set(read[0])


class TestProfile:
    def test_profile_shape(self, traced_outcome):
        profile = comm_comp_profile(traced_outcome, buckets=10)
        assert set(profile) == {0, 1}
        for frac in profile.values():
            assert frac.shape == (10,)
            assert np.all((0 <= frac) & (frac <= 1))

    def test_comm_present_in_profile(self, traced_outcome):
        profile = comm_comp_profile(traced_outcome, buckets=5)
        assert any(frac.max() > 0 for frac in profile.values())

    def test_invalid_buckets(self, traced_outcome):
        with pytest.raises(ValueError):
            comm_comp_profile(traced_outcome, buckets=0)


class TestGantt:
    def test_render(self, traced_outcome):
        chart = render_ascii_gantt(traced_outcome, width=40)
        lines = chart.splitlines()
        assert len(lines) == 3  # header + 2 ranks
        assert "rank   0" in lines[1]
        body = lines[1].split("|")[1]
        assert len(body) == 40
        assert "#" in body or "." in body

    def test_invalid_width(self, traced_outcome):
        with pytest.raises(ValueError):
            render_ascii_gantt(traced_outcome, width=0)


class TestSummary:
    def test_summarize(self, traced_outcome):
        counts = summarize_ops(traced_outcome.traces[0])
        assert counts.get("get_remote", 0) > 0
        assert sum(counts.values()) == len(traced_outcome.traces[0].ops)
