"""Table II: the graph inventory.

Prints the paper's graphs next to the generated stand-ins (vertices,
edges, CSR size after degree-<2 removal), keeping the substitution
visible.
"""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.graph.datasets import DATASETS, load_dataset
from repro.utils.units import format_bytes

#: The Table II rows, in the paper's order.
TABLE2_NAMES = [
    "orkut", "livejournal", "livejournal1", "skitter",
    "uk-2005", "wiki-en", "rmat-s21-ef16", "rmat-s23-ef16", "rmat-s30-ef16",
]


def run(scale: float = 1.0, seed: int = 0, fast: bool = False) -> list[Table]:
    names = TABLE2_NAMES[:4] if fast else TABLE2_NAMES
    table = Table(
        ["name", "type", "paper |V|", "paper |E|", "paper CSR",
         "ours |V|", "ours |E|", "ours CSR"],
        title="Table II: graphs (paper vs laptop-scale stand-ins)",
    )
    for name in names:
        spec = DATASETS[name]
        g = load_dataset(name, scale=scale, seed=seed)
        table.add_row(
            name,
            "D" if spec.directed else "U",
            f"{spec.paper_vertices:,}",
            f"{spec.paper_edges:,}",
            spec.paper_csr,
            f"{g.n:,}",
            f"{g.m:,}",
            format_bytes(g.nbytes),
        )
    return [table]


def main() -> None:
    for table in run():
        print(table.render())
        print()


if __name__ == "__main__":
    main()
